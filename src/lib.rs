//! # adaptive-ba — Byzantine agreement under an adaptive adversary
//!
//! Facade crate for the reproduction of Dufoulon & Pandurangan,
//! *Improved Byzantine Agreement under an Adaptive Adversary* (PODC
//! 2025, arXiv:2506.04919). It re-exports the workspace crates:
//!
//! * [`sim`] — synchronous full-information round simulator (substrate);
//! * [`adversary`] — adversary framework and generic strategies;
//! * [`coin`] — the paper's common-coin protocols (Algorithms 1 and 2);
//! * [`agreement`] — the paper's committee-based Byzantine agreement
//!   protocol (Algorithm 3) and the baselines it is compared against;
//! * [`attacks`] — protocol-aware adaptive rushing attack strategies;
//! * [`analysis`] — statistics, regression, and theory bound curves;
//! * [`harness`] — experiment definitions and the parallel trial runner.
//!
//! See `examples/quickstart.rs` for a five-minute tour, and DESIGN.md /
//! EXPERIMENTS.md at the repository root for the system inventory and the
//! paper-claim-by-claim experiment index.

#![forbid(unsafe_code)]

pub use aba_adversary as adversary;
pub use aba_agreement as agreement;
pub use aba_analysis as analysis;
pub use aba_attacks as attacks;
pub use aba_coin as coin;
pub use aba_harness as harness;
pub use aba_sim as sim;

/// Workspace-wide prelude: the most common types for running experiments.
pub mod prelude {
    pub use aba_agreement::prelude::*;
    pub use aba_attacks::prelude::*;
    pub use aba_coin::prelude::*;
    pub use aba_sim::prelude::*;
}
