//! # adaptive-ba — Byzantine agreement under an adaptive adversary
//!
//! Facade crate for the reproduction of Dufoulon & Pandurangan,
//! *Improved Byzantine Agreement under an Adaptive Adversary* (PODC
//! 2025, arXiv:2506.04919).
//!
//! ## Running an experiment
//!
//! There is exactly one blessed way to run an experiment: the
//! [`ScenarioBuilder`] facade. It composes protocol × adversary ×
//! parameters declaratively, runs trials on all cores, and returns typed
//! [`TrialResult`]/[`BatchReport`] values:
//!
//! ```
//! use adaptive_ba::prelude::*;
//!
//! let report = ScenarioBuilder::new(64, 21)       // n = 64, t = 21 < n/3
//!     .protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
//!     .adversary(AttackSpec::FullAttack)          // adaptive rushing attack
//!     .info_model(InfoModel::Rushing)
//!     .seed(42)
//!     .trials(8)
//!     .run_batch();
//! assert_eq!(report.agreement_rate(), 1.0);       // Theorem 2 in action
//! ```
//!
//! Single runs use `.run()`; custom adversaries plug in through
//! `.run_with(...)` (see `examples/custom_adversary.rs`).
//!
//! ## Running a campaign
//!
//! Whole scenario *grids* — protocol × adversary × network × `(n, t)` —
//! run through the [`CampaignSpec`] orchestrator from `aba-sweep`: one
//! campaign-wide work-stealing pool schedules individual `(cell,
//! trial)` tasks, a per-cell sequential stopping rule allocates trials
//! adaptively, and CSV/JSON artifacts (byte-identical at any worker
//! count, resumable via checkpoints) come out the other end:
//!
//! ```
//! use adaptive_ba::prelude::*;
//!
//! let result = CampaignSpec::new("demo")
//!     .sizes(&[(16, 5)])
//!     .protocols(&[ProtocolSpec::PaperLasVegas { alpha: 2.0 }])
//!     .attacks(&[AttackSpec::Benign, AttackSpec::FullAttack])
//!     .stop(StopRule::fixed(2))
//!     .run();
//! assert_eq!(result.cells.len(), 2);
//! ```
//!
//! See `examples/campaign.rs` for stopping rules, checkpoints, and
//! artifact emission.
//!
//! ## Workspace layout
//!
//! This crate re-exports the workspace crates:
//!
//! * [`sim`] — synchronous full-information round simulator (substrate);
//! * [`net`] — pluggable network-condition models (lossy links,
//!   bounded-delay partial synchrony, partitions) behind the engine's
//!   delivery seam;
//! * [`adversary`] — adversary framework and generic strategies;
//! * [`coin`] — the paper's common-coin protocols (Algorithms 1 and 2);
//! * [`agreement`] — the paper's committee-based Byzantine agreement
//!   protocol (Algorithm 3) and the baselines it is compared against;
//! * [`attacks`] — protocol-aware adaptive rushing attack strategies;
//! * [`analysis`] — statistics, regression, and theory bound curves;
//! * [`check`] — online invariant oracles (one per paper lemma), trace
//!   capture/replay, and the failure shrinker behind
//!   `ScenarioBuilder::check()` and the sweep's `oracle_violations`
//!   column;
//! * [`harness`] — the [`ScenarioBuilder`] facade and the parallel
//!   trial runner;
//! * [`obs`] — two-channel observability: a deterministic event log +
//!   metrics registry on logical time (part of the reproducibility
//!   surface) and a separate wall-clock profiling channel, with Chrome
//!   trace-event and collapsed-stack exporters;
//! * [`sweep`] — campaign orchestration (scenario grids, adaptive trial
//!   allocation, work stealing, resumable artifacts) and the experiment
//!   suite E1–E16 behind the `aba-experiments` binary.
//!
//! See `examples/quickstart.rs` for a five-minute tour, and DESIGN.md /
//! EXPERIMENTS.md at the repository root for the system inventory and the
//! paper-claim-by-claim experiment index.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use aba_adversary as adversary;
pub use aba_agreement as agreement;
pub use aba_analysis as analysis;
pub use aba_attacks as attacks;
pub use aba_check as check;
pub use aba_coin as coin;
pub use aba_harness as harness;
pub use aba_net as net;
pub use aba_obs as obs;
pub use aba_sim as sim;
pub use aba_sweep as sweep;

pub use aba_harness::{
    observe_replay, observe_scenario, provenance_replay, provenance_scenario, AttackSpec,
    BatchReport, BlameReport, CheckedTrial, DelayScheduler, InputSpec, NetworkSpec, ObservedReplay,
    ObservedTrial, OracleReport, PlaneSpec, ProtocolSpec, ProvenancedReplay, ProvenancedTrial,
    ReplayOutcome, Scenario, ScenarioBuilder, TrialResult, Violation,
};
pub use aba_sweep::{CampaignResult, CampaignSpec, CellSummary, RoundCap, RunOptions, StopRule};

/// Workspace-wide prelude: the most common types for running experiments.
pub mod prelude {
    pub use aba_agreement::prelude::*;
    pub use aba_attacks::prelude::*;
    pub use aba_coin::prelude::*;
    pub use aba_harness::{
        AttackSpec, BatchReport, CheckedTrial, DelayScheduler, InputSpec, NetworkSpec,
        OracleReport, PlaneSpec, ProtocolSpec, ReplayOutcome, Scenario, ScenarioBuilder,
        TrialResult, Violation,
    };
    pub use aba_sim::prelude::*;
    pub use aba_sweep::{
        CampaignResult, CampaignSpec, CellSummary, RoundCap, RunOptions, StopRule,
    };
}
