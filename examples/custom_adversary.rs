//! Writing your own adversary: implement `Adversary` against the
//! agreement protocol, with the same full-information rushing view the
//! built-in attacks get, then plug it into the `ScenarioBuilder` facade
//! through the `run_with`/`run_batch_with` escape hatch.
//!
//! The example adversary below is a "flip-flopper": every round it makes
//! all its corrupted nodes broadcast the *minority* value among honest
//! nodes, trying to drag the network back and forth. (It is measurably
//! weaker than the library's coin-killing attacks — the point is the
//! API.)
//!
//! ```text
//! cargo run --release --example custom_adversary
//! ```

use adaptive_ba::agreement::{BaConfig, BaMsg, BaNodeView, CommitteeBa, SubRound};
use adaptive_ba::attacks::{AdaptiveFullAttack, BudgetPolicy};
use adaptive_ba::prelude::*;
use adaptive_ba::sim::adversary::{Adversary, AdversaryAction, RoundView};
use rand::RngCore;

/// Corrupts `t` nodes immediately, then always pushes the honest
/// minority value.
#[derive(Clone)]
struct FlipFlopper;

impl Adversary<CommitteeBa> for FlipFlopper {
    fn act(
        &mut self,
        view: &RoundView<'_, CommitteeBa>,
        _rng: &mut dyn RngCore,
    ) -> AdversaryAction<BaMsg> {
        // Round 0: grab the whole budget at once (IDs spread out so every
        // committee gets a puppet).
        let corruptions: Vec<NodeId> = if view.round == Round::ZERO {
            let n = view.n();
            let t = view.ledger.budget();
            (0..t)
                .map(|i| NodeId::new((i * n / t.max(1)) as u32))
                .collect()
        } else {
            Vec::new()
        };

        // Full information: read every honest node's current value.
        let honest_ones = view
            .live_honest()
            .filter(|id| view.nodes[id.index()].ba_val())
            .count();
        let honest_total = view.live_honest().count().max(1);
        let minority = honest_ones * 2 < honest_total;

        // All puppets broadcast the minority value with a current-phase
        // header (the config is shared by every node).
        let cfg: &BaConfig = view.nodes[0].ba_config();
        let (phase, sub) = cfg.schedule(view.round);
        let msg = BaMsg::Phase {
            phase,
            sub: SubRound::from_index(sub),
            val: minority,
            decided: false,
            flip: Some(if minority { 1 } else { -1 }),
        };
        let sends = view
            .ledger
            .corrupted_nodes()
            .chain(corruptions.iter().copied())
            .map(|id| (id, Emission::Broadcast(msg)))
            .collect();

        AdversaryAction { corruptions, sends }
    }

    fn name(&self) -> &'static str {
        "flip-flopper"
    }
}

fn main() {
    let trials = 15;
    // The facade runs the scenario's committee protocol against any
    // caller-supplied adversary: one fresh instance per trial.
    let base = ScenarioBuilder::new(64, 21)
        .protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
        .inputs(InputSpec::Split)
        .max_rounds(10_000)
        .trials(trials);

    let custom = base.run_batch_with(|_seed| FlipFlopper);
    let library = base.run_batch_with(|_seed| AdaptiveFullAttack::new(BudgetPolicy::Greedy));
    assert_eq!(
        custom.agreement_rate(),
        1.0,
        "no adversary can break agreement"
    );
    assert_eq!(
        library.agreement_rate(),
        1.0,
        "no adversary can break agreement"
    );

    println!("mean rounds over {trials} trials (n=64, t=21, split inputs):");
    println!("  your FlipFlopper attack : {:.1}", custom.mean_rounds());
    println!("  library full attack     : {:.1}", library.mean_rounds());
    println!(
        "\nBoth keep agreement intact (they must — Theorem 2); the library attack just\n\
         delays longer because it prices its corruptions against the committee coin."
    );
}
