//! Campaign orchestration demo: a declarative grid, adaptive trial
//! allocation, resumable checkpoints, and byte-deterministic artifacts.
//!
//! ```text
//! cargo run --release --example campaign -- [--out DIR]
//! ```
//!
//! Runs a small protocol × attack × network grid twice: once fresh
//! (writing a checkpoint), once resumed from the checkpoint (no trials
//! re-run), verifies the two emit byte-identical artifacts, and
//! re-parses the JSON artifact to prove it round-trips. CI runs this
//! after the experiment smoke step.

use adaptive_ba::prelude::*;
use adaptive_ba::sweep::checkpoint;
use std::path::PathBuf;

fn main() {
    let mut out = std::env::temp_dir().join("aba-campaign-demo");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(dir) => out = PathBuf::from(dir),
                None => {
                    eprintln!("error: --out needs a directory");
                    std::process::exit(1);
                }
            },
            other => {
                eprintln!("error: unknown argument: {other}");
                std::process::exit(1);
            }
        }
    }

    // A heterogeneous grid: a Las Vegas committee protocol next to the
    // deterministic Phase-King baseline, under three network models.
    // The adaptive rule gives deterministic cells the 4-trial minimum
    // and lets noisy cells earn up to 16.
    let spec = CampaignSpec::new("demo")
        .sizes(&[(16, 5)])
        .protocols(&[
            ProtocolSpec::PaperLasVegas { alpha: 2.0 },
            ProtocolSpec::PhaseKing,
        ])
        .attacks(&[AttackSpec::Benign, AttackSpec::FullAttack])
        .networks(&[
            NetworkSpec::Synchronous,
            NetworkSpec::LossyLinks { p_drop: 0.1 },
            NetworkSpec::BoundedDelay {
                max_delay: 2,
                scheduler: DelayScheduler::Random,
            },
        ])
        .round_cap(RoundCap::Fixed(400))
        .seed(7)
        .stop(StopRule::adaptive(4, 4, 16));

    let ckpt = out.join("demo-checkpoint.json");
    let _ = std::fs::remove_file(&ckpt);

    println!("== fresh campaign ({} cells)", spec.cells().len());
    #[allow(clippy::disallowed_methods)] // demo-shell progress timing, never in results
    let started = std::time::Instant::now();
    let fresh = spec.run_with(&RunOptions {
        workers: 0,
        checkpoint: Some(ckpt.clone()),
        repro_dir: None,
        ..RunOptions::default()
    });
    println!(
        "   {} trials in {:.2?} (adaptive allocation: {}..{} per cell)",
        fresh.total_trials(),
        started.elapsed(),
        fresh.cells.iter().map(|c| c.trials).min().unwrap(),
        fresh.cells.iter().map(|c| c.trials).max().unwrap(),
    );
    for cell in &fresh.cells {
        println!(
            "   {:55} trials={:2} stop={:9} agree={:5.1}% mean_rounds={:.1}",
            cell.key,
            cell.trials,
            cell.stopped,
            cell.agreement_rate() * 100.0,
            cell.mean_rounds(),
        );
    }

    println!("== resumed campaign (from {})", ckpt.display());
    #[allow(clippy::disallowed_methods)] // demo-shell progress timing, never in results
    let started = std::time::Instant::now();
    let resumed = spec.run_with(&RunOptions {
        workers: 0,
        checkpoint: Some(ckpt.clone()),
        repro_dir: None,
        ..RunOptions::default()
    });
    println!("   restored in {:.2?}", started.elapsed());
    assert_eq!(
        resumed.to_json(),
        fresh.to_json(),
        "resume must reproduce artifacts byte for byte"
    );

    let (csv, json) = fresh.write_artifacts(&out).expect("artifacts written");
    println!("== artifacts");
    println!("   {}", csv.display());
    println!("   {}", json.display());

    // Prove the JSON artifact parses back into the same cells.
    let parsed = checkpoint::load(&json)
        .expect("artifact parses")
        .expect("artifact exists");
    assert_eq!(parsed.cells, fresh.cells, "artifact round-trips");
    println!(
        "   artifact parse OK: {} cells, {} trials",
        parsed.cells.len(),
        fresh.total_trials()
    );
}
