//! Two anti-concentration protocols side by side (paper §1.3).
//!
//! The paper's committee protocol and the sampling-majority dynamic of
//! Augustine–Pandurangan–Robinson both lean on anti-concentration, but
//! buy different guarantees:
//!
//! * committee BA: everywhere-agreement, `t < n/3`, `O(n²)` msgs/round;
//! * sampling majority: almost-everywhere agreement, `t = Õ(√n)`,
//!   `O(n)` msgs/round.
//!
//! ```text
//! cargo run --release --example sampling_vs_committee
//! ```

use adaptive_ba::agreement::SamplingMajorityNode;
use adaptive_ba::prelude::*;

fn main() {
    let n = 256;
    let sqrt_n = (n as f64).sqrt() as usize; // 16
    let trials = 10;
    let iters = SamplingMajorityNode::recommended_iterations(n);

    println!("n = {n}, split inputs, {trials} trials per cell\n");
    println!("| t | committee BA: agree frac | msgs/round | sampling: agree frac | msgs/round |");
    println!("|---|---|---|---|---|");

    for t in [sqrt_n / 2, sqrt_n, 2 * sqrt_n, n / 4] {
        // The paper's protocol under the strongest attack.
        let ba = ScenarioBuilder::new(n, t)
            .protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
            .adversary(AttackSpec::FullAttack)
            .inputs(InputSpec::Split)
            .max_rounds(8_000)
            .trials(trials)
            .run_batch();

        // Sampling majority under the poisoner.
        let sm = ScenarioBuilder::new(n, t)
            .protocol(ProtocolSpec::SamplingMajority { iters })
            .adversary(AttackSpec::SamplingPoison)
            .inputs(InputSpec::Split)
            .max_rounds(4 * iters + 8)
            .trials(trials)
            .run_batch();

        println!(
            "| {t} | {:.3} | {:.0} | {:.3} | {:.0} |",
            ba.mean_agree_fraction(),
            ba.mean_messages_per_round(),
            sm.mean_agree_fraction(),
            sm.mean_messages_per_round()
        );
    }

    println!(
        "\nReading guide: committee BA holds full agreement at every t < n/3 but pays ~n² \
         messages per round; sampling majority pays ~n messages per round and holds almost-\
         everywhere agreement only while t stays below ~√n = {sqrt_n}."
    );
}
