//! Two anti-concentration protocols side by side (paper §1.3).
//!
//! The paper's committee protocol and the sampling-majority dynamic of
//! Augustine–Pandurangan–Robinson both lean on anti-concentration, but
//! buy different guarantees:
//!
//! * committee BA: everywhere-agreement, `t < n/3`, `O(n²)` msgs/round;
//! * sampling majority: almost-everywhere agreement, `t = Õ(√n)`,
//!   `O(n)` msgs/round.
//!
//! ```text
//! cargo run --release --example sampling_vs_committee
//! ```

use adaptive_ba::agreement::{BaConfig, CommitteeBa, SamplingMajorityNode};
use adaptive_ba::attacks::{AdaptiveFullAttack, BudgetPolicy, SamplingPoison};
use adaptive_ba::sim::{RunReport, SimConfig, Simulation};

fn agreement_fraction(report: &RunReport) -> f64 {
    let outs: Vec<bool> = report
        .outputs
        .iter()
        .zip(&report.honest)
        .filter(|(_, h)| **h)
        .filter_map(|(o, _)| *o)
        .collect();
    if outs.is_empty() {
        return 1.0;
    }
    let ones = outs.iter().filter(|b| **b).count();
    ones.max(outs.len() - ones) as f64 / outs.len() as f64
}

fn main() {
    let n = 256;
    let sqrt_n = (n as f64).sqrt() as usize; // 16
    let trials = 10u64;

    println!("n = {n}, split inputs, {trials} trials per cell\n");
    println!("| t | committee BA: agree frac | msgs/round | sampling: agree frac | msgs/round |");
    println!("|---|---|---|---|---|");

    for t in [sqrt_n / 2, sqrt_n, 2 * sqrt_n, n / 4] {
        let mut ba_frac = 0.0;
        let mut ba_msgs = 0.0;
        let mut sm_frac = 0.0;
        let mut sm_msgs = 0.0;
        for seed in 0..trials {
            let inputs: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();

            // The paper's protocol under the strongest attack.
            let cfg = BaConfig::paper_las_vegas(n, t, 2.0).unwrap();
            let nodes = CommitteeBa::network(&cfg, &inputs);
            let sim = SimConfig::new(n, t).with_seed(seed).with_max_rounds(8_000);
            let r = Simulation::new(sim, nodes, AdaptiveFullAttack::new(BudgetPolicy::Greedy))
                .run();
            ba_frac += agreement_fraction(&r);
            ba_msgs += r.metrics.total_messages as f64 / r.rounds as f64;

            // Sampling majority under the poisoner.
            let iters = SamplingMajorityNode::recommended_iterations(n);
            let nodes = SamplingMajorityNode::network(n, iters, &inputs);
            let sim = SimConfig::new(n, t)
                .with_seed(seed)
                .with_max_rounds(4 * iters + 8);
            let r = Simulation::new(sim, nodes, SamplingPoison::eager()).run();
            sm_frac += agreement_fraction(&r);
            sm_msgs += r.metrics.total_messages as f64 / r.rounds as f64;
        }
        let k = trials as f64;
        println!(
            "| {t} | {:.3} | {:.0} | {:.3} | {:.0} |",
            ba_frac / k,
            ba_msgs / k,
            sm_frac / k,
            sm_msgs / k
        );
    }

    println!(
        "\nReading guide: committee BA holds full agreement at every t < n/3 but pays ~n² \
         messages per round; sampling majority pays ~n messages per round and holds almost-\
         everywhere agreement only while t stays below ~√n = {sqrt_n}."
    );
}
