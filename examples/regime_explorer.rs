//! Regime explorer: sweep `t` at a fixed `n` and watch the paper's
//! `min{t²·log n/n, t/log n}` bound switch branches, with measured
//! rounds for both the paper's protocol and the Chor–Coan baseline.
//!
//! ```text
//! cargo run --release --example regime_explorer [n]
//! ```

use adaptive_ba::analysis::{theory, Table};
use adaptive_ba::harness::{run_many, AttackSpec, ProtocolSpec, Scenario};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(256);
    let trials = 8;

    let mut table = Table::new(
        format!("Regime explorer at n = {n} (adaptive rushing full attack, {trials} trials)"),
        &[
            "t",
            "committees c",
            "committee size s",
            "paper rounds",
            "chor-coan rounds",
            "paper bound",
            "cc bound",
            "regime",
        ],
    );

    let boundary = theory::regime_boundary(n);
    let mut t = 2usize;
    while t < n / 3 {
        let c = theory::committee_count(n, t, 2.0);
        let s = theory::committee_size(n, t, 2.0);
        let paper = run_many(
            &Scenario::new(n, t)
                .with_protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
                .with_attack(AttackSpec::FullAttack)
                .with_seed(11)
                .with_max_rounds((8 * n) as u64),
            trials,
        );
        let cc = run_many(
            &Scenario::new(n, t)
                .with_protocol(ProtocolSpec::ChorCoan { beta: 1.0 })
                .with_attack(AttackSpec::FullAttack)
                .with_seed(11)
                .with_max_rounds((8 * n) as u64),
            trials,
        );
        let mean = |rs: &[adaptive_ba::harness::TrialResult]| {
            rs.iter().map(|r| r.rounds as f64).sum::<f64>() / rs.len() as f64
        };
        table.push_row(vec![
            t.into(),
            c.into(),
            s.into(),
            mean(&paper).into(),
            mean(&cc).into(),
            theory::paper_bound(n, t).into(),
            theory::chor_coan_bound(n, t).into(),
            (if (t as f64) < boundary {
                "t < n/log²n (improvement)"
            } else {
                "t ≥ n/log²n (parity)"
            })
            .into(),
        ]);
        t *= 2;
    }

    println!("{}", table.to_markdown());
    println!("regime boundary t* = n/log²n = {boundary:.1}");
}
