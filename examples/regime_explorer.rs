//! Regime explorer: sweep `t` at a fixed `n` and watch the paper's
//! `min{t²·log n/n, t/log n}` bound switch branches, with measured
//! rounds for both the paper's protocol and the Chor–Coan baseline.
//!
//! ```text
//! cargo run --release --example regime_explorer [n]
//! ```

use adaptive_ba::analysis::{theory, Table};
use adaptive_ba::prelude::*;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(256);
    let trials = 8;

    let mut table = Table::new(
        format!("Regime explorer at n = {n} (adaptive rushing full attack, {trials} trials)"),
        &[
            "t",
            "committees c",
            "committee size s",
            "paper rounds",
            "chor-coan rounds",
            "paper bound",
            "cc bound",
            "regime",
        ],
    );

    let boundary = theory::regime_boundary(n);
    let mut t = 2usize;
    while t < n / 3 {
        let c = theory::committee_count(n, t, 2.0);
        let s = theory::committee_size(n, t, 2.0);
        let paper = ScenarioBuilder::new(n, t)
            .protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
            .adversary(AttackSpec::FullAttack)
            .seed(11)
            .max_rounds((8 * n) as u64)
            .trials(trials)
            .run_batch();
        let cc = ScenarioBuilder::new(n, t)
            .protocol(ProtocolSpec::ChorCoan { beta: 1.0 })
            .adversary(AttackSpec::FullAttack)
            .seed(11)
            .max_rounds((8 * n) as u64)
            .trials(trials)
            .run_batch();
        table.push_row(vec![
            t.into(),
            c.into(),
            s.into(),
            paper.mean_rounds().into(),
            cc.mean_rounds().into(),
            theory::paper_bound(n, t).into(),
            theory::chor_coan_bound(n, t).into(),
            (if (t as f64) < boundary {
                "t < n/log²n (improvement)"
            } else {
                "t ≥ n/log²n (parity)"
            })
            .into(),
        ]);
        t *= 2;
    }

    println!("{}", table.to_markdown());
    println!("regime boundary t* = n/log²n = {boundary:.1}");
}
