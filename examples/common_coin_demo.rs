//! Common-coin demo: Algorithm 1 live, with and without an adversary.
//!
//! Shows the anti-concentration effect Theorem 3 rests on: the honest
//! ±1 sum lands `Ω(√n)` away from zero with constant probability, so an
//! adversary with only `√n/2` corruptions usually cannot drag it across
//! the boundary — the coin stays *common*.
//!
//! ```text
//! cargo run --release --example common_coin_demo
//! ```

use adaptive_ba::coin::analysis;
use adaptive_ba::prelude::*;

/// `(Pr[common], Pr[1 | common])` over a batch of standalone coin runs.
fn common_rate(n: usize, t: usize, trials: usize, attack: bool) -> (f64, f64) {
    let report = ScenarioBuilder::new(n, t)
        .protocol(ProtocolSpec::CommonCoin)
        .adversary(if attack {
            AttackSpec::CoinKiller
        } else {
            AttackSpec::Benign
        })
        .trials(trials)
        .run_batch();
    (report.agreement_rate(), report.decision_rate(true))
}

fn main() {
    let n = 256;
    let sqrt_n = (n as f64).sqrt();
    let trials = 400;

    println!("Algorithm 1 on n = {n} nodes, {trials} trials per row\n");
    println!("| budget t | t/√n | Pr[common] | Pr[1|common] | exact theory | PZ floor |");
    println!("|---|---|---|---|---|---|");
    for t in [0usize, 4, 8, 12, 16, 24, 32, 48, 64] {
        if 3 * t >= n {
            break;
        }
        let (p_comm, bias) = common_rate(n, t, trials, t > 0);
        let theory = if t == 0 {
            1.0
        } else {
            analysis::prob_abs_sum_greater(n as u64, (2 * t - 1) as u64)
        };
        let pz = analysis::theorem3_bound(n as u64)
            .map(|b| format!("{:.3}", 2.0 * b))
            .unwrap_or_else(|| "—".into());
        println!(
            "| {t} | {:.2} | {p_comm:.3} | {bias:.3} | {theory:.3} | {pz} |",
            t as f64 / sqrt_n
        );
    }
    println!(
        "\nTheorem 3 (paper): up to √n/2 = {:.0} adaptive rushing corruptions cannot stop the\n\
         coin from being common with constant probability — watch Pr[common] stay above the\n\
         Paley–Zygmund floor there, then collapse as t grows past Θ(√n).",
        sqrt_n / 2.0
    );
}
