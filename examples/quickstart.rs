//! Quickstart: run the paper's Byzantine agreement protocol against the
//! strongest adaptive rushing adversary and inspect the outcome.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use adaptive_ba::prelude::*;

fn main() {
    // A 64-node network tolerating up to t = 21 < n/3 Byzantine nodes,
    // running Algorithm 3's Las Vegas variant (Section 3.2) against the
    // full-information rushing adversary on split inputs — the paper's
    // worst case. The whole experiment is one builder chain:
    let result = ScenarioBuilder::new(64, 21)
        .protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
        .adversary(AttackSpec::FullAttack)
        .inputs(InputSpec::Split)
        .info_model(InfoModel::Rushing)
        .seed(42)
        .max_rounds(10_000)
        .run();

    println!("rounds to termination : {}", result.rounds);
    println!("corruptions performed : {}/21", result.corruptions);
    println!("messages sent         : {}", result.messages);
    println!("max bits/edge/round   : {}", result.max_edge_bits);
    println!("agreement             : {}", result.agreement);
    println!("decision              : {:?}", result.decision);
    assert!(result.agreement, "Theorem 2 says this cannot fail");

    // Batches run in parallel on all cores; the report aggregates them.
    let batch = ScenarioBuilder::new(64, 21)
        .protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
        .adversary(AttackSpec::FullAttack)
        .seed(42)
        .trials(16)
        .run_batch();
    println!(
        "\n16 trials: agreement {:.0}%, mean rounds {:.1}, worst {}",
        batch.agreement_rate() * 100.0,
        batch.mean_rounds(),
        batch.max_rounds()
    );
}
