//! Quickstart: run the paper's Byzantine agreement protocol against the
//! strongest adaptive rushing adversary and inspect the outcome.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use adaptive_ba::agreement::{BaConfig, CommitteeBa};
use adaptive_ba::attacks::{AdaptiveFullAttack, BudgetPolicy};
use adaptive_ba::sim::{SimConfig, Simulation, Verdict};

fn main() {
    // A 64-node network tolerating up to t = 21 < n/3 Byzantine nodes.
    let n = 64;
    let t = 21;

    // Algorithm 3, Las Vegas variant (Section 3.2): loops over the
    // committees until the early-termination mechanism fires, so
    // agreement is certain and the round count is the random variable.
    let cfg = BaConfig::paper_las_vegas(n, t, 2.0).expect("n ≥ 3t + 1");
    println!(
        "protocol: {} committees of size {} (α = 2)",
        cfg.plan.count(),
        cfg.plan.committee_size()
    );

    // Adversarial worst case: split inputs, full-information rushing
    // adversary that creates deciders, tops up thresholds, and kills
    // committee coins at minimal cost.
    let inputs: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
    let nodes = CommitteeBa::network(&cfg, &inputs);
    let adversary = AdaptiveFullAttack::new(BudgetPolicy::Greedy);

    let sim_cfg = SimConfig::new(n, t).with_seed(42).with_max_rounds(10_000);
    let report = Simulation::new(sim_cfg, nodes, adversary).run();

    let verdict = Verdict::evaluate(&inputs, &report.outputs, &report.honest);
    println!("rounds to termination : {}", report.rounds);
    println!("corruptions performed : {}/{}", report.corruptions_used, t);
    println!("messages sent         : {}", report.metrics.total_messages);
    println!("max bits/edge/round   : {}", report.metrics.max_edge_bits);
    println!("agreement             : {}", verdict.agreement);
    println!("decision              : {:?}", verdict.decision);
    assert!(verdict.agreement, "Theorem 2 says this cannot fail");
}
