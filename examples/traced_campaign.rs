//! Observability demo: a quick campaign with both channels attached.
//!
//! ```text
//! cargo run --release --example traced_campaign -- [--out DIR]
//! ```
//!
//! Runs a small grid with the deterministic event probe and the
//! wall-clock profiler enabled, then verifies what the two channels
//! wrote:
//!
//! * deterministic channel — `traced.events.log`, `traced.metrics.txt`,
//!   `traced.trace.json`, `traced.collapsed.txt`: functions of the spec
//!   and seed alone, byte-identical at any worker count;
//! * timing channel — `traced.timing.csv`, `traced.profile.json`,
//!   `traced.timing.collapsed.txt`: wall-clock numbers, different every
//!   run by design.
//!
//! Load either `.json` file in Perfetto (<https://ui.perfetto.dev>) or
//! `chrome://tracing`; feed the `.collapsed.txt` files to flamegraph
//! tooling. CI runs this as the trace-export smoke test.

use adaptive_ba::prelude::*;
use std::path::PathBuf;

fn main() {
    let mut out = std::env::temp_dir().join("aba-traced-campaign-demo");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(dir) => out = PathBuf::from(dir),
                None => {
                    eprintln!("error: --out needs a directory");
                    std::process::exit(1);
                }
            },
            other => {
                eprintln!("error: unknown argument: {other}");
                std::process::exit(1);
            }
        }
    }

    let spec = CampaignSpec::new("traced")
        .sizes(&[(16, 5)])
        .protocols(&[
            ProtocolSpec::PaperLasVegas { alpha: 2.0 },
            ProtocolSpec::PhaseKing,
        ])
        .attacks(&[AttackSpec::Benign, AttackSpec::FullAttack])
        .networks(&[
            NetworkSpec::Synchronous,
            NetworkSpec::LossyLinks { p_drop: 0.1 },
        ])
        .round_cap(RoundCap::Fixed(400))
        .seed(7)
        .stop(StopRule::fixed(3));

    println!("== traced campaign ({} cells)", spec.cells().len());
    let result = spec.run_with(&RunOptions {
        workers: 0,
        obs_dir: Some(out.clone()),
        profile_dir: Some(out.clone()),
        ..RunOptions::default()
    });
    println!(
        "   {} trials across {} cells",
        result.total_trials(),
        result.cells.len()
    );

    println!("== exported artifacts");
    let deterministic = [
        "traced.events.log",
        "traced.metrics.txt",
        "traced.trace.json",
        "traced.collapsed.txt",
    ];
    let timing = [
        "traced.timing.csv",
        "traced.profile.json",
        "traced.timing.collapsed.txt",
    ];
    for name in deterministic.iter().chain(&timing) {
        let path = out.join(name);
        let bytes = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing artifact {}: {e}", path.display()));
        assert!(!bytes.is_empty(), "{name} is empty");
        println!("   {:28} {:>8} bytes", name, bytes.len());
    }

    // Both Chrome traces must at least be well-formed JSON arrays of
    // objects (Perfetto's loader requirement); CI re-parses them with a
    // real JSON parser on top of this shape check.
    for name in ["traced.trace.json", "traced.profile.json"] {
        let trace = std::fs::read_to_string(out.join(name)).expect("trace readable");
        assert!(
            trace.starts_with("[\n") && trace.trim_end().ends_with(']'),
            "{name} is not a JSON array"
        );
        assert!(trace.contains("\"ph\":"), "{name} has no trace events");
    }

    // The deterministic channel is part of the reproducibility surface:
    // the same spec re-run must reproduce it byte for byte.
    let second = out.join("second");
    spec.run_with(&RunOptions {
        workers: 2,
        obs_dir: Some(second.clone()),
        ..RunOptions::default()
    });
    for name in &deterministic {
        let a = std::fs::read_to_string(out.join(name)).expect("first run artifact");
        let b = std::fs::read_to_string(second.join(name)).expect("second run artifact");
        assert_eq!(a, b, "{name} must be reproducible");
    }
    println!("   deterministic channel reproduced byte-for-byte at 2 workers");

    println!(
        "== open {} in https://ui.perfetto.dev",
        out.join("traced.trace.json").display()
    );
}
