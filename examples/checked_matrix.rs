//! The oracle-checked quick matrix CI runs on every push: a small
//! protocol × attack × network grid where every lemma is expected to
//! hold, each cell run with the full `aba-check` oracle suite attached.
//! Any violation prints its repro-ready details and fails the process.
//!
//! ```text
//! cargo run --release -p adaptive-ba --example checked_matrix
//! ```

use adaptive_ba::{AttackSpec, NetworkSpec, ProtocolSpec, ScenarioBuilder};
use std::process::ExitCode;

fn main() -> ExitCode {
    let protocols = [
        ProtocolSpec::PaperLasVegas { alpha: 2.0 },
        ProtocolSpec::ChorCoan { beta: 1.0 },
        ProtocolSpec::PhaseKing,
    ];
    let attacks = [
        AttackSpec::Benign,
        AttackSpec::StaticMirror,
        AttackSpec::FullAttack,
        AttackSpec::FullAttackCapped { q: 2 },
    ];
    let networks = [
        NetworkSpec::Synchronous,
        NetworkSpec::LossyLinks { p_drop: 0.05 },
    ];

    let mut cells = 0usize;
    let mut trials = 0usize;
    let mut violations = 0usize;
    println!(
        "{:<14} {:<14} {:<8} {:>6} {:>10}",
        "protocol", "attack", "net", "rounds", "violations"
    );
    for protocol in protocols {
        for attack in attacks {
            for network in networks {
                // Phase-King is deterministic lock-step: its agreement
                // lemma assumes synchrony, so only the synchronous row
                // is a *claim* (the adversarial-network failure mode is
                // pinned by tests/oracle_goldens.rs instead).
                if matches!(protocol, ProtocolSpec::PhaseKing)
                    && !matches!(network, NetworkSpec::Synchronous)
                {
                    continue;
                }
                let checked = ScenarioBuilder::new(16, 5)
                    .protocol(protocol)
                    .adversary(attack)
                    .network(network)
                    .max_rounds(2_000)
                    .seed(2026)
                    .trials(2)
                    .check_batch();
                cells += 1;
                let cell_violations: usize = checked.iter().map(|c| c.oracle.total).sum();
                let max_rounds = checked.iter().map(|c| c.result.rounds).max().unwrap_or(0);
                trials += checked.len();
                violations += cell_violations;
                println!(
                    "{:<14} {:<14} {:<8} {:>6} {:>10}",
                    protocol.name(),
                    attack.name(),
                    network.name(),
                    max_rounds,
                    cell_violations
                );
                for c in &checked {
                    for v in &c.oracle.violations {
                        eprintln!("VIOLATION seed={}: {v}", c.result.seed);
                    }
                }
            }
        }
    }
    println!("\n{cells} cells, {trials} oracle-checked trials, {violations} violations");
    if violations > 0 {
        eprintln!("error: the quick matrix must be violation-free");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
