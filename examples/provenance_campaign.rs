//! Causal-provenance demo: trace *why* a violation happened.
//!
//! ```text
//! cargo run --release --example provenance_campaign -- [--out DIR]
//! ```
//!
//! Runs the known-violating Phase-King grid with the provenance probe
//! attached to every trial, then walks what the layer produced:
//!
//! * `prov.provenance.txt` — per-trial, per-node communication
//!   profiles and decision-cone stats, with a blame line on every
//!   trial whose honest deciders disagreed;
//! * `prov-cell{NNN}.cone.dot` / `.cone.jsonl` — the violating cell's
//!   causal graph (render with `dot -Tsvg`, or post-process the
//!   line-JSON);
//! * a single-trial deep dive: the shrunken repro's blame set and the
//!   flow-annotated Chrome trace for Perfetto.
//!
//! Everything except the Chrome trace is byte-identical at any worker
//! or thread count. CI runs this as the provenance-export smoke test.

use adaptive_ba::harness::shrink_violation;
use adaptive_ba::prelude::*;
use adaptive_ba::provenance_scenario;
use std::path::PathBuf;

fn main() {
    let mut out = std::env::temp_dir().join("aba-provenance-campaign-demo");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(dir) => out = PathBuf::from(dir),
                None => {
                    eprintln!("error: --out needs a directory");
                    std::process::exit(1);
                }
            },
            other => {
                eprintln!("error: unknown argument: {other}");
                std::process::exit(1);
            }
        }
    }

    // The golden grid: Phase-King under the adversarial bounded-delay
    // scheduler disagrees; the sibling cells stay clean.
    let spec = CampaignSpec::new("prov")
        .sizes(&[(13, 4)])
        .protocols(&[
            ProtocolSpec::PhaseKing,
            ProtocolSpec::PaperLasVegas { alpha: 2.0 },
        ])
        .attacks(&[AttackSpec::StaticMirror])
        .networks(&[
            NetworkSpec::Synchronous,
            NetworkSpec::BoundedDelay {
                max_delay: 2,
                scheduler: DelayScheduler::DelayHonest,
            },
        ])
        .round_cap(RoundCap::Fixed(200))
        .stop(StopRule::fixed(2))
        .oracles(true)
        .seed(5);

    println!("== provenance campaign ({} cells)", spec.cells().len());
    let result = spec.run_with(&RunOptions {
        workers: 0,
        provenance_dir: Some(out.clone()),
        ..RunOptions::default()
    });
    println!(
        "   {} trials across {} cells",
        result.total_trials(),
        result.cells.len()
    );

    println!("== exported artifacts");
    let mut names: Vec<String> = std::fs::read_dir(&out)
        .expect("provenance dir written")
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    names.sort();
    for name in &names {
        let bytes = std::fs::read_to_string(out.join(name)).expect("artifact readable");
        assert!(!bytes.is_empty(), "{name} is empty");
        println!("   {:28} {:>8} bytes", name, bytes.len());
    }
    assert!(
        names.contains(&"prov.provenance.txt".to_string()),
        "campaign summary missing"
    );
    assert!(
        names.iter().any(|f| f.ends_with(".cone.dot"))
            && names.iter().any(|f| f.ends_with(".cone.jsonl")),
        "the violating cell must export its causal graph"
    );
    let summary = std::fs::read_to_string(out.join("prov.provenance.txt")).expect("summary");
    assert!(
        summary.contains("blame blamed=["),
        "violating trials must carry a blame line"
    );

    // Single-trial deep dive: shrink the violation, trace the minimal
    // repro, and explain the disagreement.
    println!("== shrunken-repro deep dive");
    let violating = ScenarioBuilder::new(13, 4)
        .protocol(ProtocolSpec::PhaseKing)
        .adversary(AttackSpec::StaticMirror)
        .inputs(InputSpec::Split)
        .network(NetworkSpec::BoundedDelay {
            max_delay: 2,
            scheduler: DelayScheduler::DelayHonest,
        })
        .max_rounds(200)
        .seed(5);
    let repro = shrink_violation(violating.scenario()).expect("scenario violates");
    let t = provenance_scenario(&repro.shrunk);
    println!(
        "   shrunk to n={} t={} seed={}; blame {}",
        repro.shrunk.n,
        repro.shrunk.t,
        repro.shrunk.seed,
        t.blame.render()
    );
    assert!(!t.blame.is_empty(), "a disagreement must assign blame");
    for (name, contents) in [
        ("repro.cone.dot", t.dot_graph()),
        ("repro.cone.jsonl", t.jsonl_graph()),
        ("repro.flows.json", t.chrome_trace()),
    ] {
        std::fs::write(out.join(name), &contents).expect("artifact written");
        println!("   {:28} {:>8} bytes", name, contents.len());
    }

    // The provenance layer is part of the reproducibility surface: the
    // same spec re-run at a different worker count must reproduce the
    // deterministic artifacts byte for byte.
    let second = out.join("second");
    spec.run_with(&RunOptions {
        workers: 3,
        provenance_dir: Some(second.clone()),
        ..RunOptions::default()
    });
    for name in &names {
        let a = std::fs::read_to_string(out.join(name)).expect("first run artifact");
        let b = std::fs::read_to_string(second.join(name)).expect("second run artifact");
        assert_eq!(a, b, "{name} must be reproducible");
    }
    println!("   provenance artifacts reproduced byte-for-byte at 3 workers");

    println!(
        "== render {} with `dot -Tsvg`, open {} in https://ui.perfetto.dev",
        out.join("repro.cone.dot").display(),
        out.join("repro.flows.json").display()
    );
}
