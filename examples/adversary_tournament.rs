//! Adversary tournament: every implemented attack plays against the
//! paper's protocol; the table shows how many rounds each adversary
//! class actually buys (Section 1's model hierarchy, measured).
//!
//! ```text
//! cargo run --release --example adversary_tournament
//! ```

use adaptive_ba::analysis::Table;
use adaptive_ba::harness::{run_many, AttackSpec, ProtocolSpec, Scenario};
use adaptive_ba::sim::InfoModel;

fn main() {
    let n = 64;
    let t = 21;
    let trials = 20;

    let attacks = [
        AttackSpec::Benign,
        AttackSpec::StaticSilent,
        AttackSpec::StaticMirror,
        AttackSpec::Crash { per_round: 1 },
        AttackSpec::SplitVote,
        AttackSpec::FullAttackFrugal,
        AttackSpec::FullAttack,
    ];

    let mut table = Table::new(
        format!("Adversary tournament vs Algorithm 3 (n={n}, t={t}, {trials} trials)"),
        &["attack", "info", "mean rounds", "max rounds", "agree%", "corruptions"],
    );

    for attack in attacks {
        for info in [InfoModel::NonRushing, InfoModel::Rushing] {
            let scenario = Scenario::new(n, t)
                .with_protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
                .with_attack(attack)
                .with_info(info)
                .with_seed(7)
                .with_max_rounds(20_000);
            let results = run_many(&scenario, trials);
            let mean = results.iter().map(|r| r.rounds as f64).sum::<f64>() / trials as f64;
            let max = results.iter().map(|r| r.rounds).max().unwrap_or(0);
            let agree =
                results.iter().filter(|r| r.agreement).count() as f64 * 100.0 / trials as f64;
            let corr = results.iter().map(|r| r.corruptions as f64).sum::<f64>() / trials as f64;
            table.push_row(vec![
                attack.name().into(),
                (if info.is_rushing() { "rushing" } else { "non-rushing" }).into(),
                mean.into(),
                max.into(),
                agree.into(),
                corr.into(),
            ]);
        }
    }

    println!("{}", table.to_markdown());
    println!(
        "Reading guide: agreement stays at 100% for every adversary (the protocol cannot be\n\
         broken, only delayed); rounds climb with adaptivity and information — the rushing\n\
         full attack is the paper's model and the most expensive row."
    );
}
