//! Adversary tournament: every implemented attack plays against the
//! paper's protocol; the table shows how many rounds each adversary
//! class actually buys (Section 1's model hierarchy, measured).
//!
//! ```text
//! cargo run --release --example adversary_tournament
//! ```

use adaptive_ba::analysis::Table;
use adaptive_ba::prelude::*;

fn main() {
    let n = 64;
    let t = 21;
    let trials = 20;

    let attacks = [
        AttackSpec::Benign,
        AttackSpec::StaticSilent,
        AttackSpec::StaticMirror,
        AttackSpec::Crash { per_round: 1 },
        AttackSpec::SplitVote,
        AttackSpec::FullAttackFrugal,
        AttackSpec::FullAttack,
    ];

    let mut table = Table::new(
        format!("Adversary tournament vs Algorithm 3 (n={n}, t={t}, {trials} trials)"),
        &[
            "attack",
            "info",
            "mean rounds",
            "max rounds",
            "agree%",
            "corruptions",
        ],
    );

    for attack in attacks {
        for info in [InfoModel::NonRushing, InfoModel::Rushing] {
            let report = ScenarioBuilder::new(n, t)
                .protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
                .adversary(attack)
                .info_model(info)
                .seed(7)
                .max_rounds(20_000)
                .trials(trials)
                .run_batch();
            table.push_row(vec![
                attack.name().into(),
                (if info.is_rushing() {
                    "rushing"
                } else {
                    "non-rushing"
                })
                .into(),
                report.mean_rounds().into(),
                report.max_rounds().into(),
                (report.agreement_rate() * 100.0).into(),
                report.mean_corruptions().into(),
            ]);
        }
    }

    println!("{}", table.to_markdown());
    println!(
        "Reading guide: agreement stays at 100% for every adversary (the protocol cannot be\n\
         broken, only delayed); rounds climb with adaptivity and information — the rushing\n\
         full attack is the paper's model and the most expensive row."
    );
}
