//! The deterministic structured event log.
//!
//! Events are stamped with a **logical tick** — a counter incremented on
//! every push — never with wall-clock time. A log is therefore a pure
//! function of what was pushed in what order, and two runs that observe
//! the same engine behaviour render byte-identical text. That makes the
//! rendered log part of the workspace's reproducibility surface,
//! alongside the campaign CSV/JSON artifacts: tests pin that it is
//! identical across sweep worker counts and between a live run and its
//! trace replay.

use std::fmt::Write as _;

use aba_sim::probe::RoundPhase;
use aba_sim::{NodeId, Round};

/// One hierarchy level or point event on the logical timeline.
///
/// The span levels nest campaign → cell → trial → round → phase; the
/// remaining variants are point events inside a round or annotations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A campaign (named grid of cells) began.
    CampaignStart {
        /// Campaign name.
        name: String,
    },
    /// A grid cell's trials begin.
    CellStart {
        /// The cell's stable key (label).
        key: String,
    },
    /// All of a cell's trials are accounted for.
    CellEnd {
        /// The cell's stable key (label).
        key: String,
    },
    /// One simulation run began.
    TrialStart {
        /// Network size.
        n: usize,
        /// Corruption budget.
        t: usize,
        /// Master seed.
        seed: u64,
    },
    /// One simulation run finished.
    TrialEnd {
        /// Rounds executed.
        rounds: u64,
        /// Whether every honest node halted.
        all_halted: bool,
    },
    /// An engine round began.
    RoundStart {
        /// The round.
        round: Round,
    },
    /// One of the round's four phases completed.
    PhaseEnd {
        /// The round.
        round: Round,
        /// Which phase ended.
        phase: RoundPhase,
    },
    /// The adversary corrupted a node.
    Corruption {
        /// The round.
        round: Round,
        /// The corrupted node.
        node: NodeId,
        /// Corruptions used so far, including this one.
        total: usize,
    },
    /// An honest node halted (decided).
    Halt {
        /// The round.
        round: Round,
        /// The halting node.
        node: NodeId,
        /// Its output, if it produced one.
        output: Option<bool>,
    },
    /// An oracle reported an invariant violation.
    Violation {
        /// Round the violation was observed.
        round: u64,
        /// Which oracle fired.
        oracle: String,
        /// Human-readable detail.
        detail: String,
    },
    /// An engine round completed, with its measurements.
    RoundEnd {
        /// The round.
        round: Round,
        /// Messages emitted this round.
        messages: usize,
        /// Bits on the wire this round.
        bits: usize,
        /// Messages actually delivered.
        delivered: usize,
        /// Messages dropped by the network.
        dropped: usize,
        /// Delay events.
        delayed: usize,
        /// Corruptions this round.
        corruptions: usize,
    },
    /// The per-round metrics ring buffer evicted rounds — the recorded
    /// history in `RunMetrics::per_round` is truncated.
    Truncated {
        /// Rounds evicted from the per-round history.
        dropped_rounds: u64,
    },
    /// Free-form annotation (e.g. "cell restored from checkpoint").
    Note {
        /// The annotation.
        text: String,
    },
}

impl EventKind {
    /// Stable lowercase tag, the first token of the rendered line.
    pub fn tag(&self) -> &'static str {
        match self {
            EventKind::CampaignStart { .. } => "campaign-start",
            EventKind::CellStart { .. } => "cell-start",
            EventKind::CellEnd { .. } => "cell-end",
            EventKind::TrialStart { .. } => "trial-start",
            EventKind::TrialEnd { .. } => "trial-end",
            EventKind::RoundStart { .. } => "round-start",
            EventKind::PhaseEnd { .. } => "phase-end",
            EventKind::Corruption { .. } => "corruption",
            EventKind::Halt { .. } => "halt",
            EventKind::Violation { .. } => "violation",
            EventKind::RoundEnd { .. } => "round-end",
            EventKind::Truncated { .. } => "truncated",
            EventKind::Note { .. } => "note",
        }
    }
}

/// An event stamped with its logical tick.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsEvent {
    /// Position on the logical timeline (0-based, dense).
    pub tick: u64,
    /// What happened.
    pub kind: EventKind,
}

/// An append-only log of [`ObsEvent`]s on a logical timeline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventLog {
    events: Vec<ObsEvent>,
}

impl EventLog {
    /// An empty log at tick 0.
    pub fn new() -> Self {
        EventLog::default()
    }

    /// Appends `kind` at the next tick.
    pub fn push(&mut self, kind: EventKind) {
        let tick = self.events.len() as u64;
        self.events.push(ObsEvent { tick, kind });
    }

    /// The recorded events, in tick order.
    pub fn events(&self) -> &[ObsEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Appends every event of `other`, re-stamping ticks onto this log's
    /// timeline. Campaign assembly splices per-trial logs into one
    /// campaign log with this; because ticks are re-assigned, the result
    /// depends only on splice order, not on which worker produced which
    /// piece.
    pub fn absorb(&mut self, other: &EventLog) {
        for ev in &other.events {
            self.push(ev.kind.clone());
        }
    }

    /// Renders the log as deterministic text: one `tick tag k=v ...`
    /// line per event, `\n`-terminated. Byte-identical logs ⇔ equal
    /// logs, so tests compare these strings directly.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 32);
        for ev in &self.events {
            let _ = write!(out, "{} {}", ev.tick, ev.kind.tag());
            match &ev.kind {
                EventKind::CampaignStart { name } => {
                    let _ = write!(out, " name={name}");
                }
                EventKind::CellStart { key } | EventKind::CellEnd { key } => {
                    let _ = write!(out, " key={key}");
                }
                EventKind::TrialStart { n, t, seed } => {
                    let _ = write!(out, " n={n} t={t} seed={seed}");
                }
                EventKind::TrialEnd { rounds, all_halted } => {
                    let _ = write!(out, " rounds={rounds} all_halted={all_halted}");
                }
                EventKind::RoundStart { round } => {
                    let _ = write!(out, " round={}", round.index());
                }
                EventKind::PhaseEnd { round, phase } => {
                    let _ = write!(out, " round={} phase={}", round.index(), phase.name());
                }
                EventKind::Corruption { round, node, total } => {
                    let _ = write!(out, " round={} node={} total={total}", round.index(), node);
                }
                EventKind::Halt {
                    round,
                    node,
                    output,
                } => {
                    let _ = write!(out, " round={} node={} output=", round.index(), node);
                    match output {
                        Some(b) => {
                            let _ = write!(out, "{b}");
                        }
                        None => out.push('-'),
                    }
                }
                EventKind::Violation {
                    round,
                    oracle,
                    detail,
                } => {
                    let _ = write!(out, " round={round} oracle={oracle} detail={detail}");
                }
                EventKind::RoundEnd {
                    round,
                    messages,
                    bits,
                    delivered,
                    dropped,
                    delayed,
                    corruptions,
                } => {
                    let _ = write!(
                        out,
                        " round={} messages={messages} bits={bits} delivered={delivered} \
                         dropped={dropped} delayed={delayed} corruptions={corruptions}",
                        round.index()
                    );
                }
                EventKind::Truncated { dropped_rounds } => {
                    let _ = write!(out, " dropped_rounds={dropped_rounds}");
                }
                EventKind::Note { text } => {
                    let _ = write!(out, " text={text}");
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_are_dense_and_ordered() {
        let mut log = EventLog::new();
        log.push(EventKind::TrialStart {
            n: 4,
            t: 1,
            seed: 7,
        });
        log.push(EventKind::RoundStart { round: Round::ZERO });
        assert_eq!(log.len(), 2);
        assert_eq!(log.events()[0].tick, 0);
        assert_eq!(log.events()[1].tick, 1);
    }

    #[test]
    fn render_is_stable() {
        let mut log = EventLog::new();
        log.push(EventKind::TrialStart {
            n: 4,
            t: 1,
            seed: 7,
        });
        log.push(EventKind::PhaseEnd {
            round: Round::ZERO,
            phase: RoundPhase::Emit,
        });
        log.push(EventKind::Halt {
            round: Round::new(2),
            node: NodeId::new(3),
            output: Some(true),
        });
        log.push(EventKind::Truncated { dropped_rounds: 9 });
        assert_eq!(
            log.render(),
            "0 trial-start n=4 t=1 seed=7\n\
             1 phase-end round=0 phase=emit\n\
             2 halt round=2 node=v3 output=true\n\
             3 truncated dropped_rounds=9\n"
        );
    }

    #[test]
    fn absorb_restamps_ticks() {
        let mut a = EventLog::new();
        a.push(EventKind::CampaignStart {
            name: "c".to_string(),
        });
        let mut b = EventLog::new();
        b.push(EventKind::Note {
            text: "x".to_string(),
        });
        a.absorb(&b);
        assert_eq!(a.events()[1].tick, 1);
        // Splicing equal pieces in equal order gives equal renders,
        // regardless of the logs they came from.
        let mut c = EventLog::new();
        c.push(EventKind::CampaignStart {
            name: "c".to_string(),
        });
        c.push(EventKind::Note {
            text: "x".to_string(),
        });
        assert_eq!(a.render(), c.render());
    }
}
