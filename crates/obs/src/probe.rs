//! [`EventProbe`] — the deterministic-channel implementation of the
//! engine's [`Probe`] seam.
//!
//! It records every hook into an [`EventLog`] and a [`MetricsRegistry`];
//! both are functions of logical time only, so an instrumented run's
//! observability output is as reproducible as the run itself. The probe
//! is reusable across trials: the harness and sweep construct one per
//! trial and splice the results in deterministic order.

use aba_sim::probe::{Probe, RoundPhase};
use aba_sim::{NodeId, Round, RoundMetrics, RunReport, SimConfig};

use crate::event::{EventKind, EventLog};
use crate::metrics::{Histogram, MetricsRegistry};

/// Metric names emitted by [`EventProbe`], kept in one place so
/// exporters and tests don't scatter string literals.
pub mod names {
    /// Counter: rounds executed.
    pub const ROUNDS: &str = "sim.rounds";
    /// Counter: point-to-point messages emitted.
    pub const MESSAGES: &str = "sim.messages";
    /// Counter: bits on the wire.
    pub const BITS: &str = "sim.bits";
    /// Counter: messages actually delivered.
    pub const DELIVERED: &str = "sim.delivered";
    /// Counter: messages dropped by the network.
    pub const DROPPED: &str = "sim.dropped";
    /// Counter: delay events.
    pub const DELAYED: &str = "sim.delayed";
    /// Counter: adversary corruptions.
    pub const CORRUPTIONS: &str = "sim.corruptions";
    /// Counter: honest halts (decisions).
    pub const HALTS: &str = "sim.halts";
    /// Counter: trials observed.
    pub const TRIALS: &str = "sim.trials";
    /// Counter: trials whose per-round history was ring-truncated.
    pub const TRUNCATED_TRIALS: &str = "sim.truncated_trials";
    /// Gauge: max bits crossing any edge in any round (CONGEST bound).
    pub const MAX_EDGE_BITS: &str = "sim.max_edge_bits";
    /// Histogram: messages per round.
    pub const ROUND_MESSAGES: &str = "sim.round_messages";
    /// Histogram: round at which honest nodes halted.
    pub const HALT_ROUND: &str = "sim.halt_round";
}

/// In-flight metric accumulators, held as plain fields so the per-round
/// and per-halt hooks never touch the registry's name-keyed maps; the
/// whole tally is folded into the [`MetricsRegistry`] once, at
/// `run_end`. This keeps the probe's hot path to a handful of integer
/// adds — what lets the probe-enabled engine sit inside the CI
/// overhead gate.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Tally {
    rounds: u64,
    messages: u64,
    bits: u64,
    delivered: u64,
    dropped: u64,
    delayed: u64,
    corruptions: u64,
    halts: u64,
    max_edge_bits: i64,
    round_messages: Histogram,
    halt_round: Histogram,
}

/// A probe that fills an [`EventLog`] and a [`MetricsRegistry`] from the
/// engine's hooks. Purely logical-time: no clocks, no I/O.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventProbe {
    log: EventLog,
    metrics: MetricsRegistry,
    tally: Tally,
}

impl EventProbe {
    /// An empty probe.
    pub fn new() -> Self {
        EventProbe::default()
    }

    /// The recorded event log.
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// The recorded metrics. Hot-path tallies land here when the
    /// engine calls `run_end` (i.e. once the run finishes); mid-run the
    /// registry holds only what previous flushes deposited.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Folds the in-flight tally into the registry and resets it, so a
    /// probe reused across runs keeps accumulating additively. Metric
    /// names appear only when the corresponding hook fired, matching
    /// what per-hook registry writes would have produced.
    fn flush_tally(&mut self) {
        let t = std::mem::take(&mut self.tally);
        if t.rounds > 0 {
            self.metrics.counter_add(names::ROUNDS, t.rounds);
            self.metrics.counter_add(names::MESSAGES, t.messages);
            self.metrics.counter_add(names::BITS, t.bits);
            self.metrics.counter_add(names::DELIVERED, t.delivered);
            self.metrics.counter_add(names::DROPPED, t.dropped);
            self.metrics.counter_add(names::DELAYED, t.delayed);
            self.metrics
                .gauge_max(names::MAX_EDGE_BITS, t.max_edge_bits);
            self.metrics
                .merge_histogram(names::ROUND_MESSAGES, &t.round_messages);
        }
        if t.corruptions > 0 {
            self.metrics.counter_add(names::CORRUPTIONS, t.corruptions);
        }
        if t.halts > 0 {
            self.metrics.counter_add(names::HALTS, t.halts);
            self.metrics
                .merge_histogram(names::HALT_ROUND, &t.halt_round);
        }
    }

    /// Appends an event outside the engine hooks (the harness uses this
    /// for oracle violations; the sweep for notes).
    pub fn push(&mut self, kind: EventKind) {
        self.log.push(kind);
    }

    /// Consumes the probe, yielding its two channels.
    pub fn into_parts(self) -> (EventLog, MetricsRegistry) {
        (self.log, self.metrics)
    }
}

impl Probe for EventProbe {
    fn run_start(&mut self, cfg: &SimConfig) {
        self.log.push(EventKind::TrialStart {
            n: cfg.n,
            t: cfg.t,
            seed: cfg.seed,
        });
        self.metrics.counter_add(names::TRIALS, 1);
    }

    fn round_start(&mut self, round: Round) {
        self.log.push(EventKind::RoundStart { round });
    }

    fn phase_end(&mut self, round: Round, phase: RoundPhase) {
        self.log.push(EventKind::PhaseEnd { round, phase });
    }

    fn corruption(&mut self, round: Round, node: NodeId, total: usize) {
        self.log.push(EventKind::Corruption { round, node, total });
        self.tally.corruptions += 1;
    }

    fn halt(&mut self, round: Round, node: NodeId, output: Option<bool>) {
        self.log.push(EventKind::Halt {
            round,
            node,
            output,
        });
        self.tally.halts += 1;
        self.tally.halt_round.observe(round.index());
    }

    fn round_end(&mut self, round: Round, rm: &RoundMetrics) {
        self.log.push(EventKind::RoundEnd {
            round,
            messages: rm.messages,
            bits: rm.bits,
            delivered: rm.delivered,
            dropped: rm.dropped,
            delayed: rm.delayed,
            corruptions: rm.corruptions,
        });
        self.tally.rounds += 1;
        self.tally.messages += rm.messages as u64;
        self.tally.bits += rm.bits as u64;
        self.tally.delivered += rm.delivered as u64;
        self.tally.dropped += rm.dropped as u64;
        self.tally.delayed += rm.delayed as u64;
        self.tally.round_messages.observe(rm.messages as u64);
        self.tally.max_edge_bits = self.tally.max_edge_bits.max(rm.max_edge_bits as i64);
    }

    fn run_end(&mut self, report: &RunReport) {
        self.log.push(EventKind::TrialEnd {
            rounds: report.rounds,
            all_halted: report.all_halted,
        });
        if report.metrics.per_round_truncated() {
            self.log.push(EventKind::Truncated {
                dropped_rounds: report.metrics.per_round_dropped,
            });
            self.metrics.counter_add(names::TRUNCATED_TRIALS, 1);
        }
        self.flush_tally();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aba_sim::{RunMetrics, Trace};

    fn report() -> RunReport {
        RunReport {
            rounds: 1,
            all_halted: true,
            outputs: vec![Some(false); 4],
            honest: vec![true; 4],
            corruptions_used: 0,
            halt_rounds: vec![Some(0); 4],
            metrics: RunMetrics::default(),
            trace: Trace::default(),
        }
    }

    #[test]
    fn probe_records_trial_span_and_counters() {
        let mut p = EventProbe::new();
        let cfg = SimConfig::new(4, 1).with_seed(9);
        p.run_start(&cfg);
        p.round_start(Round::ZERO);
        for phase in RoundPhase::ALL {
            p.phase_end(Round::ZERO, phase);
        }
        p.halt(Round::ZERO, NodeId::new(2), Some(false));
        p.round_end(
            Round::ZERO,
            &RoundMetrics {
                messages: 12,
                bits: 120,
                max_edge_bits: 10,
                delivered: 12,
                ..RoundMetrics::default()
            },
        );
        // Hot-path tallies reach the registry at run_end.
        assert_eq!(p.metrics().counter(names::MESSAGES), 0);
        p.run_end(&report());
        assert_eq!(p.metrics().counter(names::TRIALS), 1);
        assert_eq!(p.metrics().counter(names::MESSAGES), 12);
        assert_eq!(p.metrics().counter(names::HALTS), 1);
        assert_eq!(p.metrics().gauge(names::MAX_EDGE_BITS), Some(10));
        let hist = p.metrics().histogram(names::HALT_ROUND).expect("hist");
        assert_eq!(hist.count(), 1);
        let text = p.log().render();
        assert!(text.starts_with("0 trial-start n=4 t=1 seed=9\n"));
        assert!(text.contains("phase-end round=0 phase=deliver"));
        assert!(text.contains("halt round=0 node=v2 output=false"));
    }

    #[test]
    fn flush_is_additive_across_reuse() {
        let mut p = EventProbe::new();
        let rm = RoundMetrics {
            messages: 5,
            ..RoundMetrics::default()
        };
        p.round_end(Round::ZERO, &rm);
        p.run_end(&report());
        p.round_end(Round::ZERO, &rm);
        p.run_end(&report());
        assert_eq!(p.metrics().counter(names::ROUNDS), 2);
        assert_eq!(p.metrics().counter(names::MESSAGES), 10);
    }
}
