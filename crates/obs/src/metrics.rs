//! The deterministic metrics registry: named counters, gauges, and
//! fixed-boundary histograms.
//!
//! Everything here is engineered for **merge-order invariance**: counter
//! merges add, gauge merges take the maximum, histogram merges add
//! bucket-wise over identical fixed boundaries — all commutative and
//! associative — and rendering iterates `BTreeMap`s in key order. A
//! campaign registry assembled from per-trial registries is therefore a
//! pure function of the trial set, independent of worker count or
//! completion order, and its rendered text is pinned by the same
//! determinism tests as the event log.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Fixed histogram bucket boundaries: powers of two from `1` to
/// `2^31`, plus an implicit overflow bucket. Fixed boundaries (rather
/// than adaptive ones) are what make histogram merges associative.
pub const POW2_BOUNDS: [u64; 32] = {
    let mut b = [0u64; 32];
    let mut i = 0;
    while i < 32 {
        b[i] = 1u64 << i;
        i += 1;
    }
    b
};

/// A histogram over the fixed [`POW2_BOUNDS`] boundaries. Bucket `i`
/// counts observations `v` with `v <= POW2_BOUNDS[i]` (first matching
/// bucket); larger observations land in the overflow bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Per-bucket counts; index `POW2_BOUNDS.len()` is overflow.
    counts: Vec<u64>,
    /// Total observations.
    count: u64,
    /// Sum of all observations (u128: immune to overflow at any
    /// realistic campaign size).
    sum: u128,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: vec![0; POW2_BOUNDS.len() + 1],
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&mut self, v: u64) {
        let idx = POW2_BOUNDS
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(POW2_BOUNDS.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += u128::from(v);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Adds `other` bucket-wise.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Non-empty buckets as `(upper_bound, count)`; the overflow bucket
    /// reports `u64::MAX` as its bound.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| (POW2_BOUNDS.get(i).copied().unwrap_or(u64::MAX), *c))
            .collect()
    }
}

/// A named registry of counters, gauges, and histograms.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `v` to counter `name` (creating it at zero). Allocation-free
    /// when the counter already exists — this sits on the probe's flush
    /// path.
    pub fn counter_add(&mut self, name: &str, v: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += v;
        } else {
            self.counters.insert(name.to_string(), v);
        }
    }

    /// Raises gauge `name` to `v` if `v` is larger (high-water-mark
    /// semantics — the only gauge merge that is order-invariant).
    pub fn gauge_max(&mut self, name: &str, v: i64) {
        if let Some(g) = self.gauges.get_mut(name) {
            *g = (*g).max(v);
        } else {
            self.gauges.insert(name.to_string(), v);
        }
    }

    /// Records `v` into histogram `name`.
    pub fn observe(&mut self, name: &str, v: u64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.observe(v);
        } else {
            let mut h = Histogram::default();
            h.observe(v);
            self.histograms.insert(name.to_string(), h);
        }
    }

    /// Folds a pre-accumulated histogram into histogram `name`
    /// (bucket-wise add — same semantics as [`merge`](Self::merge)).
    pub fn merge_histogram(&mut self, name: &str, h: &Histogram) {
        if let Some(mine) = self.histograms.get_mut(name) {
            mine.merge(h);
        } else {
            self.histograms.insert(name.to_string(), h.clone());
        }
    }

    /// Reads counter `name` (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Reads gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// Reads histogram `name`.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Folds `other` into `self`: counters add, gauges max, histograms
    /// add bucket-wise. Commutative and associative, so campaign
    /// assembly may merge per-trial registries in any order.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            let g = self.gauges.entry(k.clone()).or_insert(i64::MIN);
            *g = (*g).max(*v);
        }
        for (k, v) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(v);
        }
    }

    /// Renders the registry as deterministic text, keys sorted within
    /// each section:
    ///
    /// ```text
    /// counter <name> <value>
    /// gauge <name> <value>
    /// hist <name> count=<n> sum=<s> buckets=<le1>:<c1>,<le2>:<c2>,...
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            let _ = writeln!(out, "counter {k} {v}");
        }
        for (k, v) in &self.gauges {
            let _ = writeln!(out, "gauge {k} {v}");
        }
        for (k, h) in &self.histograms {
            let _ = write!(out, "hist {k} count={} sum={} buckets=", h.count(), h.sum());
            let buckets = h.nonzero_buckets();
            for (i, (le, c)) in buckets.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if *le == u64::MAX {
                    let _ = write!(out, "inf:{c}");
                } else {
                    let _ = write!(out, "{le}:{c}");
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_are_powers_of_two() {
        assert_eq!(POW2_BOUNDS[0], 1);
        assert_eq!(POW2_BOUNDS[10], 1024);
        assert_eq!(POW2_BOUNDS[31], 1 << 31);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::default();
        h.observe(1);
        h.observe(3);
        h.observe(u64::MAX);
        assert_eq!(h.count(), 3);
        assert_eq!(h.nonzero_buckets(), vec![(1, 1), (4, 1), (u64::MAX, 1)]);
    }

    #[test]
    fn merge_is_order_invariant() {
        let mut a = MetricsRegistry::new();
        a.counter_add("msgs", 3);
        a.gauge_max("edge_bits", 10);
        a.observe("lat", 5);
        let mut b = MetricsRegistry::new();
        b.counter_add("msgs", 4);
        b.gauge_max("edge_bits", 7);
        b.observe("lat", 900);

        let mut ab = MetricsRegistry::new();
        ab.merge(&a);
        ab.merge(&b);
        let mut ba = MetricsRegistry::new();
        ba.merge(&b);
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.render(), ba.render());
        assert_eq!(ab.counter("msgs"), 7);
        assert_eq!(ab.gauge("edge_bits"), Some(10));
    }

    #[test]
    fn render_is_sorted_and_stable() {
        let mut r = MetricsRegistry::new();
        r.counter_add("b", 2);
        r.counter_add("a", 1);
        r.observe("h", 2);
        r.observe("h", 2);
        assert_eq!(
            r.render(),
            "counter a 1\ncounter b 2\nhist h count=2 sum=4 buckets=2:2\n"
        );
    }
}
