//! Causal provenance tracing: decision cones, violation blame inputs,
//! and per-node communication profiles.
//!
//! [`ProvenanceProbe`] sits on the engine's [`Probe`] seam and opts into
//! the per-round [`ArrivalScan`] ([`Probe::WANTS_ARRIVALS`]). From the
//! scan's frontier bitsets it maintains, **online**, three per-node
//! closures over the happens-before relation:
//!
//! * `anc(v)` — the backward causal closure of `v`'s current state: the
//!   set of nodes whose round-0 state can reach `v` through delivered
//!   messages (self included; self-delivery counts like any arrival);
//! * `bad(v)` — the subset of `anc(v)` consisting of nodes that were
//!   corrupted *when their message entered `v`'s past* (adversary
//!   influence, robust to later corruptions);
//! * `depth(v)` — the longest chain of message hops ending at `v`.
//!
//! The update is one pass per round: receivers whose arrival in-set is
//! exactly the broadcast bases ([`ArrivalScan::is_clean`]) take a
//! precomputed frontier union (`U = ⋃ anc(s)` over base senders) in
//! O(n/64) word-ORs, so a broadcast round costs O(n²/64) — a few
//! percent of the dense receive loop it rides along. Deviating
//! receivers pay per in-edge, bounded by the round's deviation count.
//!
//! The closure is **honesty- and halt-agnostic**: every node's state
//! `(v, k)` depends on `(v, k−1)` and on `(s, k−1)` for every message
//! `s → v` delivered in round `k` — corrupted senders propagate the
//! provenance they accumulated (no cross-node adversary coordination is
//! modeled; adversary influence enters through `bad`).
//!
//! A node's **decision cone** is `anc(v)` frozen at its halt hook:
//! a halt during the emit phase precedes the round's arrival scan, one
//! during the receive phase follows it, so freezing at hook time is
//! exactly "everything that could have influenced the decision".
//!
//! Everything the probe records is a function of logical time, so its
//! artifacts — [`ProvenanceProbe::summary`], [`ProvenanceProbe::dot_graph`],
//! [`ProvenanceProbe::jsonl_graph`], [`chrome_trace_with_flows`] — are
//! byte-identical across sweep worker counts, thread counts, and under
//! trace replay, like the rest of the deterministic channel.

use std::fmt::Write as _;

use aba_sim::arrivals::ArrivalScan;
use aba_sim::probe::Probe;
use aba_sim::{NodeId, Round, RunReport, SimConfig};

use crate::event::{EventKind, EventLog};
use crate::export::{chrome_trace_events, escape_json, join_trace};
use crate::metrics::{Histogram, MetricsRegistry};

/// Metric names emitted by [`ProvenanceProbe`] at `run_end`.
pub mod names {
    /// Histogram: messages offered per node per run.
    pub const NODE_SENT_MSGS: &str = "prov.node_sent_msgs";
    /// Histogram: bits offered per node per run.
    pub const NODE_SENT_BITS: &str = "prov.node_sent_bits";
    /// Histogram: messages delivered per node per run.
    pub const NODE_RECV_MSGS: &str = "prov.node_recv_msgs";
    /// Histogram: bits delivered per node per run.
    pub const NODE_RECV_BITS: &str = "prov.node_recv_bits";
    /// Gauge: max bits offered by any single node in a run.
    pub const MAX_NODE_SENT_BITS: &str = "prov.max_node_sent_bits";
    /// Gauge: max bits delivered to any single node in a run.
    pub const MAX_NODE_RECV_BITS: &str = "prov.max_node_recv_bits";
    /// Histogram: decision-cone width (nodes, self included).
    pub const CONE_WIDTH: &str = "prov.cone_width";
    /// Histogram: decision-cone depth (message hops).
    pub const CONE_DEPTH: &str = "prov.cone_depth";
    /// Histogram: corrupted ancestors per decision cone.
    pub const CONE_CORRUPTED: &str = "prov.cone_corrupted";
    /// Counter: runs traced.
    pub const TRIALS: &str = "prov.trials";
}

/// One round's arrival relation, retained for export: the broadcast-base
/// bitset, the corruption bitset at scan time, and the deviating
/// receivers' knocked/extra rows (clean receivers are implicit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundEdges {
    /// Round index.
    pub round: u64,
    /// Bit `s`: sender `s`'s broadcast base arrived this round.
    pub base_senders: Vec<u64>,
    /// Bit `s`: sender `s` was corrupted at scan time.
    pub corrupted: Vec<u64>,
    /// `(receiver, knocked_row, extra_row)` for each receiver whose
    /// in-set deviates from the bases, ascending by receiver.
    pub deviations: Vec<(u32, Vec<u64>, Vec<u64>)>,
}

impl RoundEdges {
    /// Calls `f(sender, receiver, explicit)` for every arrival edge this
    /// round, receiver-major then sender order. `explicit` is true for
    /// deviation-cell messages, false for broadcast-base copies.
    pub fn for_each_edge(&self, n: usize, mut f: impl FnMut(u32, u32, bool)) {
        let words = self.base_senders.len();
        let mut di = 0usize;
        for r in 0..n as u32 {
            let dev = self
                .deviations
                .get(di)
                .filter(|(dr, _, _)| *dr == r)
                .map(|(_, k, e)| (k, e));
            if dev.is_some() {
                di += 1;
            }
            for w in 0..words {
                let (base_word, extra_word) = match dev {
                    Some((k, e)) => (self.base_senders[w] & !k[w], e[w]),
                    None => (self.base_senders[w], 0),
                };
                let mut bits = base_word & !extra_word;
                while bits != 0 {
                    let s = (w * 64 + bits.trailing_zeros() as usize) as u32;
                    f(s, r, false);
                    bits &= bits - 1;
                }
                let mut bits = extra_word;
                while bits != 0 {
                    let s = (w * 64 + bits.trailing_zeros() as usize) as u32;
                    f(s, r, true);
                    bits &= bits - 1;
                }
            }
        }
    }
}

/// Metadata of a node's decision cone, frozen at its halt (or at run
/// end for nodes that never decided). The three frozen bitsets
/// (`anc(v)`, `bad(v)`, corruption snapshot) live in the probe's flat
/// `frozen_bits` pool — freezing a cone on the halt hook must not
/// allocate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FrozenCone {
    /// Round of the halt hook (or the last round, if never decided).
    round: u64,
    /// The node's decided output at freeze time.
    output: Option<bool>,
    /// Whether the node actually halted (vs. a run-end snapshot).
    decided: bool,
    /// `depth(v)` at freeze time.
    depth: u64,
}

/// A frozen cone plus views into its pooled bitsets.
struct ConeView<'a> {
    round: u64,
    output: Option<bool>,
    decided: bool,
    depth: u64,
    /// `anc(v)` at freeze time.
    members: &'a [u64],
    /// `bad(v)` at freeze time.
    influence: &'a [u64],
    /// Corruption bitset at freeze time.
    corrupted: &'a [u64],
}

/// Summary statistics of one node's decision cone — what
/// [`ProvenanceProbe::explain`] answers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConeStats {
    /// The node.
    pub node: NodeId,
    /// Round the cone was frozen at (halt round, or last round).
    pub round: u64,
    /// The node's output at freeze time.
    pub output: Option<bool>,
    /// Whether the node halted (false: run-end snapshot).
    pub decided: bool,
    /// Cone width: number of causal ancestors, self included.
    pub width: u64,
    /// Longest chain of message hops into the decision.
    pub depth: u64,
    /// Cone members corrupted by freeze time.
    pub corrupted_ancestors: u64,
    /// Members of `bad(v)`: senders corrupted when their message
    /// entered the cone.
    pub influenced_by: u64,
}

impl ConeStats {
    /// Adversary-influence fraction: `|bad(v)| / |cone(v)|`.
    pub fn influence_fraction(&self) -> f64 {
        if self.width == 0 {
            0.0
        } else {
            self.influenced_by as f64 / self.width as f64
        }
    }
}

/// The provenance probe. See the module docs for semantics; see
/// [`EventProbe`](crate::probe::EventProbe) for the registry-discipline
/// pattern it follows (hot hooks touch plain fields, the
/// [`MetricsRegistry`] is written once per run at `run_end`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProvenanceProbe {
    n: usize,
    words: usize,
    /// Row-major `n × words` ancestor closures (current round).
    anc: Vec<u64>,
    anc_prev: Vec<u64>,
    /// Row-major `n × words` adversary-influence closures.
    bad: Vec<u64>,
    bad_prev: Vec<u64>,
    depth: Vec<u64>,
    depth_prev: Vec<u64>,
    /// Scratch: frontier unions over the round's base senders.
    u_all: Vec<u64>,
    u_bad: Vec<u64>,
    in_buf: Vec<u64>,
    /// Latest corruption bitset seen by the arrivals hook.
    corrupted: Vec<u64>,
    /// Per-node traffic totals over the run.
    sent_msgs: Vec<u64>,
    sent_bits: Vec<u64>,
    recv_msgs: Vec<u64>,
    recv_bits: Vec<u64>,
    frozen: Vec<Option<FrozenCone>>,
    /// Flat `n × 3·words` pool behind [`ConeView`]: per node, the
    /// frozen `anc`, `bad`, and corruption bitsets, in that order.
    frozen_bits: Vec<u64>,
    /// Saturation fast path: set when the last full update changed no
    /// `anc`/`bad` word on an all-clean round. A later all-clean round
    /// whose base is a subset of [`Self::stable_base`] and whose
    /// corruption set still matches [`Self::corrupted`] provably cannot
    /// change the closures either, so the row copies and union loops
    /// are skipped (only depth and traffic move). Any round failing
    /// those checks falls back to the full update, which re-evaluates
    /// stability from scratch.
    stable: bool,
    /// The base-sender set the `stable` flag was established under.
    stable_base: Vec<u64>,
    /// `Some(d)` when every node's depth is exactly `d` — the steady
    /// state of saturated all-clean broadcast rounds, where the depth
    /// update collapses to a uniform `d + 1` fill with no per-sender
    /// max scan.
    depth_uniform: Option<u64>,
    rounds: Vec<RoundEdges>,
    metrics: MetricsRegistry,
}

fn popcount(words: &[u64]) -> u64 {
    words.iter().map(|w| w.count_ones() as u64).sum()
}

fn popcount_and(a: &[u64], b: &[u64]) -> u64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x & y).count_ones() as u64)
        .sum()
}

fn or_into(dst: &mut [u64], src: &[u64]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d |= s;
    }
}

fn set_bits(words: &[u64]) -> impl Iterator<Item = usize> + '_ {
    words.iter().enumerate().flat_map(|(w, &word)| {
        std::iter::successors((word != 0).then_some(word), |&bits| {
            let next = bits & (bits - 1);
            (next != 0).then_some(next)
        })
        .map(move |bits| w * 64 + bits.trailing_zeros() as usize)
    })
}

impl ProvenanceProbe {
    /// An empty probe; sized at `run_start`.
    pub fn new() -> Self {
        ProvenanceProbe::default()
    }

    /// The recorded metrics (filled at `run_end`, additively across
    /// reused runs, like [`EventProbe`](crate::probe::EventProbe)).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The per-round arrival relations, in round order.
    pub fn rounds(&self) -> &[RoundEdges] {
        &self.rounds
    }

    /// Number of nodes in the traced run.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Per-node offered messages over the run (index = node id).
    pub fn sent_msgs(&self) -> &[u64] {
        &self.sent_msgs
    }

    /// Per-node offered bits over the run.
    pub fn sent_bits(&self) -> &[u64] {
        &self.sent_bits
    }

    /// Per-node delivered messages over the run.
    pub fn recv_msgs(&self) -> &[u64] {
        &self.recv_msgs
    }

    /// Per-node delivered bits over the run.
    pub fn recv_bits(&self) -> &[u64] {
        &self.recv_bits
    }

    fn cone(&self, node: NodeId) -> Option<ConeView<'_>> {
        let i = node.index();
        let meta = (*self.frozen.get(i)?)?;
        let w = self.words;
        let base = i * 3 * w;
        Some(ConeView {
            round: meta.round,
            output: meta.output,
            decided: meta.decided,
            depth: meta.depth,
            members: &self.frozen_bits[base..base + w],
            influence: &self.frozen_bits[base + w..base + 2 * w],
            corrupted: &self.frozen_bits[base + 2 * w..base + 3 * w],
        })
    }

    /// The decision-cone statistics of `node` — `None` before the run
    /// ends if the node has not halted yet.
    pub fn explain(&self, node: NodeId) -> Option<ConeStats> {
        let c = self.cone(node)?;
        Some(ConeStats {
            node,
            round: c.round,
            output: c.output,
            decided: c.decided,
            width: popcount(c.members),
            depth: c.depth,
            corrupted_ancestors: popcount_and(c.members, c.corrupted),
            influenced_by: popcount(c.influence),
        })
    }

    /// The members of `node`'s decision cone, ascending.
    pub fn cone_members(&self, node: NodeId) -> Vec<NodeId> {
        self.cone(node)
            .map(|c| set_bits(c.members).map(|i| NodeId::new(i as u32)).collect())
            .unwrap_or_default()
    }

    /// Whether `member` is in `node`'s decision cone.
    pub fn in_cone(&self, node: NodeId, member: NodeId) -> bool {
        self.cone(node)
            .is_some_and(|c| c.members[member.index() / 64] & (1 << (member.index() % 64)) != 0)
    }

    /// The adversary-influence set `bad(node)`: senders that were
    /// corrupted when their message entered `node`'s causal past.
    pub fn influencers(&self, node: NodeId) -> Vec<NodeId> {
        self.cone(node)
            .map(|c| {
                set_bits(c.influence)
                    .map(|i| NodeId::new(i as u32))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Whether `by` is in `bad(node)`.
    pub fn influenced(&self, node: NodeId, by: NodeId) -> bool {
        self.cone(node)
            .is_some_and(|c| c.influence[by.index() / 64] & (1 << (by.index() % 64)) != 0)
    }

    fn freeze(&mut self, i: usize, round: u64, output: Option<bool>, decided: bool) {
        let w = self.words;
        let base = i * 3 * w;
        self.frozen_bits[base..base + w].copy_from_slice(&self.anc[i * w..(i + 1) * w]);
        self.frozen_bits[base + w..base + 2 * w].copy_from_slice(&self.bad[i * w..(i + 1) * w]);
        self.frozen_bits[base + 2 * w..base + 3 * w].copy_from_slice(&self.corrupted);
        self.frozen[i] = Some(FrozenCone {
            round,
            output,
            decided,
            depth: self.depth[i],
        });
    }

    /// Deterministic per-node text summary: traffic profile and cone
    /// stats, one line per node — the byte-compared artifact body.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for i in 0..self.n {
            let id = NodeId::new(i as u32);
            let _ = write!(
                out,
                "node v{i} sent={}/{}b recv={}/{}b",
                self.sent_msgs[i], self.sent_bits[i], self.recv_msgs[i], self.recv_bits[i]
            );
            if let Some(stats) = self.explain(id) {
                let out_s = match stats.output {
                    Some(b) => b.to_string(),
                    None => "-".to_string(),
                };
                let _ = write!(
                    out,
                    " {}={} round={} cone: width={} depth={} corrupted={} influenced-by={}",
                    if stats.decided { "decided" } else { "final" },
                    out_s,
                    stats.round,
                    stats.width,
                    stats.depth,
                    stats.corrupted_ancestors,
                    stats.influenced_by,
                );
            }
            out.push('\n');
        }
        out
    }

    /// The causal graph as DOT: one node per simulation node (decided
    /// output, corruption, and cone width in the label), arrival edges
    /// aggregated over rounds and weighted by round count. Self-edges
    /// are omitted. Deterministic: everything renders in id order.
    pub fn dot_graph(&self) -> String {
        let n = self.n;
        // Sparse aggregation keyed `(sender, receiver)`: the arrival
        // relation at large `n` holds O(deviations + base·n) distinct
        // edges per run, and an `n × n` counter matrix (1 GiB of `u32`s
        // at n = 16 384) would wall off exactly the sizes the sparse
        // plane exists for. `BTreeMap` iterates ascending, which is the
        // sender-major order the exporter always printed.
        let mut edge_rounds: std::collections::BTreeMap<(u32, u32), u32> =
            std::collections::BTreeMap::new();
        for re in &self.rounds {
            re.for_each_edge(n, |s, r, _| {
                if s != r {
                    *edge_rounds.entry((s, r)).or_insert(0) += 1;
                }
            });
        }
        let mut out = String::from("digraph provenance {\n  rankdir=LR;\n");
        for i in 0..n {
            let corrupted = self.corrupted[i / 64] & (1 << (i % 64)) != 0;
            let stats = self.explain(NodeId::new(i as u32));
            let label = match &stats {
                Some(s) => {
                    let o = match s.output {
                        Some(b) => b.to_string(),
                        None => "-".to_string(),
                    };
                    format!("v{i}\\nout={o} w={}", s.width)
                }
                None => format!("v{i}"),
            };
            let _ = writeln!(
                out,
                "  v{i} [label=\"{label}\"{}];",
                if corrupted {
                    " style=filled fillcolor=salmon"
                } else {
                    ""
                }
            );
        }
        for (&(s, r), &c) in &edge_rounds {
            let _ = writeln!(out, "  v{s} -> v{r} [label=\"{c}\"];");
        }
        out.push_str("}\n");
        out
    }

    /// The causal graph as line-JSON: a header object, then one object
    /// per round (`base` senders, `corrupted` set), then one object per
    /// deviating receiver (`knocked` and `extra` sender lists), then one
    /// summary object per node. Every line is a complete JSON object;
    /// arrays are ascending — byte-identical for identical runs.
    pub fn jsonl_graph(&self) -> String {
        fn ids(words: &[u64]) -> String {
            let mut s = String::from("[");
            for (k, i) in set_bits(words).enumerate() {
                if k > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{i}");
            }
            s.push(']');
            s
        }
        let mut out = String::new();
        let _ = writeln!(out, "{{\"n\":{},\"rounds\":{}}}", self.n, self.rounds.len());
        for re in &self.rounds {
            let _ = writeln!(
                out,
                "{{\"round\":{},\"base\":{},\"corrupted\":{}}}",
                re.round,
                ids(&re.base_senders),
                ids(&re.corrupted)
            );
            for (r, knocked, extra) in &re.deviations {
                let _ = writeln!(
                    out,
                    "{{\"round\":{},\"receiver\":{},\"knocked\":{},\"extra\":{}}}",
                    re.round,
                    r,
                    ids(knocked),
                    ids(extra)
                );
            }
        }
        for i in 0..self.n {
            let id = NodeId::new(i as u32);
            match self.explain(id) {
                Some(s) => {
                    let o = match s.output {
                        Some(b) => b.to_string(),
                        None => "null".to_string(),
                    };
                    let _ = writeln!(
                        out,
                        "{{\"node\":{i},\"decided\":{},\"output\":{o},\"round\":{},\
                         \"cone_width\":{},\"cone_depth\":{},\"corrupted_ancestors\":{},\
                         \"influenced_by\":{},\"sent_msgs\":{},\"sent_bits\":{},\
                         \"recv_msgs\":{},\"recv_bits\":{}}}",
                        s.decided,
                        s.round,
                        s.width,
                        s.depth,
                        s.corrupted_ancestors,
                        s.influenced_by,
                        self.sent_msgs[i],
                        self.sent_bits[i],
                        self.recv_msgs[i],
                        self.recv_bits[i],
                    );
                }
                None => {
                    let _ = writeln!(out, "{{\"node\":{i}}}");
                }
            }
        }
        out
    }
}

impl Probe for ProvenanceProbe {
    const WANTS_ARRIVALS: bool = true;

    fn run_start(&mut self, cfg: &SimConfig) {
        let n = cfg.n;
        let words = n.div_ceil(64);
        self.n = n;
        self.words = words;
        let rw = n * words;
        for v in [
            &mut self.anc,
            &mut self.anc_prev,
            &mut self.bad,
            &mut self.bad_prev,
        ] {
            v.clear();
            v.resize(rw, 0);
        }
        for v in [
            &mut self.u_all,
            &mut self.u_bad,
            &mut self.in_buf,
            &mut self.corrupted,
            &mut self.stable_base,
        ] {
            v.clear();
            v.resize(words, 0);
        }
        self.stable = false;
        self.depth_uniform = None;
        for v in [
            &mut self.depth,
            &mut self.depth_prev,
            &mut self.sent_msgs,
            &mut self.sent_bits,
            &mut self.recv_msgs,
            &mut self.recv_bits,
        ] {
            v.clear();
            v.resize(n, 0);
        }
        self.frozen.clear();
        self.frozen.resize(n, None);
        self.frozen_bits.clear();
        self.frozen_bits.resize(n * 3 * words, 0);
        self.rounds.clear();
        // Every node starts in its own causal past.
        for i in 0..n {
            self.anc[i * words + i / 64] |= 1 << (i % 64);
        }
    }

    fn arrivals(&mut self, round: Round, scan: &ArrivalScan) {
        let (n, w) = (self.n, self.words);
        debug_assert_eq!(n, scan.n());
        let base = scan.base_senders();
        let all_clean = scan.dirty().iter().all(|&d| d == 0);
        if self.stable
            && all_clean
            && self.corrupted[..] == *scan.corrupted()
            && base.iter().zip(&self.stable_base).all(|(b, s)| b & !s == 0)
        {
            // Closures provably unchanged (see `stable`); only depth
            // and traffic move this round.
            if let Some(d) = self.depth_uniform {
                if base.iter().any(|&b| b != 0) {
                    self.depth.fill(d + 1);
                    self.depth_uniform = Some(d + 1);
                }
            } else {
                let mut maxd: Option<u64> = None;
                for s in set_bits(base) {
                    maxd = Some(maxd.map_or(self.depth[s], |m| m.max(self.depth[s])));
                }
                if let Some(m) = maxd {
                    let mut uniform = true;
                    for d in &mut self.depth {
                        *d = (*d).max(m + 1);
                        uniform &= *d == m + 1;
                    }
                    if uniform {
                        self.depth_uniform = Some(m + 1);
                    }
                }
            }
        } else {
            self.depth_uniform = None;
            self.anc_prev.copy_from_slice(&self.anc);
            self.bad_prev.copy_from_slice(&self.bad);
            self.depth_prev.copy_from_slice(&self.depth);
            // Frontier unions over the round's base senders: the shared
            // fast path for every clean receiver.
            self.u_all.fill(0);
            self.u_bad.fill(0);
            let mut max_base_depth = 0u64;
            let mut any_base = false;
            for s in set_bits(base) {
                or_into(&mut self.u_all, &self.anc_prev[s * w..(s + 1) * w]);
                or_into(&mut self.u_bad, &self.bad_prev[s * w..(s + 1) * w]);
                if scan.is_corrupted(s) {
                    self.u_bad[s / 64] |= 1 << (s % 64);
                }
                max_base_depth = max_base_depth.max(self.depth_prev[s]);
                any_base = true;
            }
            // OR of every `new ^ old` word: zero iff the round changed
            // neither closure — the saturation signal.
            let mut delta = 0u64;
            if all_clean {
                if any_base {
                    for row in self.anc.chunks_exact_mut(w) {
                        for (d, s) in row.iter_mut().zip(&self.u_all) {
                            let v = *d | s;
                            delta |= v ^ *d;
                            *d = v;
                        }
                    }
                    for row in self.bad.chunks_exact_mut(w) {
                        for (d, s) in row.iter_mut().zip(&self.u_bad) {
                            let v = *d | s;
                            delta |= v ^ *d;
                            *d = v;
                        }
                    }
                    for d in &mut self.depth {
                        *d = (*d).max(max_base_depth + 1);
                    }
                }
            } else {
                delta = 1;
                for r in 0..n {
                    if scan.is_clean(r) {
                        if any_base {
                            or_into(&mut self.anc[r * w..(r + 1) * w], &self.u_all);
                            or_into(&mut self.bad[r * w..(r + 1) * w], &self.u_bad);
                            self.depth[r] = self.depth[r].max(max_base_depth + 1);
                        }
                    } else {
                        scan.in_set(r, &mut self.in_buf);
                        let mut best: Option<u64> = None;
                        for bw in 0..w {
                            let mut bits = self.in_buf[bw];
                            while bits != 0 {
                                let s = bw * 64 + bits.trailing_zeros() as usize;
                                for k in 0..w {
                                    self.anc[r * w + k] |= self.anc_prev[s * w + k];
                                    self.bad[r * w + k] |= self.bad_prev[s * w + k];
                                }
                                if scan.is_corrupted(s) {
                                    self.bad[r * w + s / 64] |= 1 << (s % 64);
                                }
                                let d = self.depth_prev[s];
                                best = Some(best.map_or(d, |b| b.max(d)));
                                bits &= bits - 1;
                            }
                        }
                        if let Some(b) = best {
                            self.depth[r] = self.depth[r].max(b + 1);
                        }
                    }
                }
            }
            self.stable = delta == 0;
            if self.stable {
                self.stable_base.copy_from_slice(base);
            }
        }
        for (d, &s) in self.sent_msgs.iter_mut().zip(scan.sent_msgs()) {
            *d += s as u64;
        }
        for (d, &s) in self.sent_bits.iter_mut().zip(scan.sent_bits()) {
            *d += s;
        }
        for (d, &s) in self.recv_msgs.iter_mut().zip(scan.recv_msgs()) {
            *d += s as u64;
        }
        for (d, &s) in self.recv_bits.iter_mut().zip(scan.recv_bits()) {
            *d += s;
        }
        self.corrupted.copy_from_slice(scan.corrupted());
        let deviations = set_bits(scan.dirty())
            .map(|r| {
                (
                    r as u32,
                    scan.knocked_row(r).to_vec(),
                    scan.extra_row(r).to_vec(),
                )
            })
            .collect();
        self.rounds.push(RoundEdges {
            round: round.index(),
            base_senders: scan.base_senders().to_vec(),
            corrupted: scan.corrupted().to_vec(),
            deviations,
        });
    }

    fn halt(&mut self, round: Round, node: NodeId, output: Option<bool>) {
        self.freeze(node.index(), round.index(), output, true);
    }

    fn run_end(&mut self, report: &RunReport) {
        // Nodes that never halted get a run-end snapshot cone.
        let last = report.rounds.saturating_sub(1);
        for i in 0..self.n {
            if self.frozen[i].is_none() {
                let output = report.outputs.get(i).copied().flatten();
                self.freeze(i, last, output, false);
            }
        }
        // One registry lookup per metric name: fill local histograms in
        // node order, then merge each once (merge is bucket-wise, so
        // the result is identical to per-node `observe` calls).
        let mut hists = [(); 7].map(|()| Histogram::default());
        let [sent_m, sent_b, recv_m, recv_b, width, depth, corr] = &mut hists;
        let (mut max_sent, mut max_recv) = (0u64, 0u64);
        for i in 0..self.n {
            sent_m.observe(self.sent_msgs[i]);
            sent_b.observe(self.sent_bits[i]);
            recv_m.observe(self.recv_msgs[i]);
            recv_b.observe(self.recv_bits[i]);
            max_sent = max_sent.max(self.sent_bits[i]);
            max_recv = max_recv.max(self.recv_bits[i]);
            if let Some(stats) = self.explain(NodeId::new(i as u32)) {
                width.observe(stats.width);
                depth.observe(stats.depth);
                corr.observe(stats.corrupted_ancestors);
            }
        }
        for (name, h) in [
            (names::NODE_SENT_MSGS, &hists[0]),
            (names::NODE_SENT_BITS, &hists[1]),
            (names::NODE_RECV_MSGS, &hists[2]),
            (names::NODE_RECV_BITS, &hists[3]),
            (names::CONE_WIDTH, &hists[4]),
            (names::CONE_DEPTH, &hists[5]),
            (names::CONE_CORRUPTED, &hists[6]),
        ] {
            if h.count() > 0 {
                self.metrics.merge_histogram(name, h);
            }
        }
        self.metrics
            .gauge_max(names::MAX_NODE_SENT_BITS, max_sent as i64);
        self.metrics
            .gauge_max(names::MAX_NODE_RECV_BITS, max_recv as i64);
        self.metrics.counter_add(names::TRIALS, 1);
    }
}

/// Renders the deterministic event log as a Chrome trace (see
/// [`chrome_trace`](crate::export::chrome_trace)) with **flow events**
/// spliced in: for every round in which a corrupted sender's message
/// arrived somewhere, one flow arrow (`ph:"s"` → `ph:"f"`) from the
/// round's deliver boundary to its receive boundary, named after the
/// sender — adversary influence made visible on the Perfetto timeline.
pub fn chrome_trace_with_flows(log: &EventLog, prov: &ProvenanceProbe) -> String {
    // Ticks of each round's deliver and receive phase boundaries.
    use aba_sim::probe::RoundPhase;
    let mut bounds: Vec<(u64, u64, u64)> = Vec::new(); // (round, deliver, receive)
    for ev in log.events() {
        if let EventKind::PhaseEnd { round, phase } = &ev.kind {
            match phase {
                RoundPhase::Deliver => bounds.push((round.index(), ev.tick, ev.tick)),
                RoundPhase::Receive => {
                    if let Some(b) = bounds.last_mut() {
                        if b.0 == round.index() {
                            b.2 = ev.tick;
                        }
                    }
                }
                _ => {}
            }
        }
    }
    let mut events = chrome_trace_events(log);
    let n = prov.n() as u64;
    for re in prov.rounds() {
        let Some(&(_, deliver, receive)) = bounds.iter().find(|b| b.0 == re.round) else {
            continue;
        };
        // One flow per corrupted sender that contributed anything this
        // round (a base, or at least one explicit message).
        for s in set_bits(&re.corrupted) {
            let has_base = re.base_senders[s / 64] & (1 << (s % 64)) != 0;
            let has_extra = re
                .deviations
                .iter()
                .any(|(_, _, extra)| extra[s / 64] & (1 << (s % 64)) != 0);
            if !has_base && !has_extra {
                continue;
            }
            let name = escape_json(&format!("adv v{s} r{}", re.round));
            let id = re.round * n + s as u64;
            events.push(format!(
                "{{\"name\":\"{name}\",\"cat\":\"adversary\",\"ph\":\"s\",\"ts\":{deliver},\"pid\":0,\"tid\":0,\"id\":{id}}}"
            ));
            events.push(format!(
                "{{\"name\":\"{name}\",\"cat\":\"adversary\",\"ph\":\"f\",\"bp\":\"e\",\"ts\":{receive},\"pid\":0,\"tid\":0,\"id\":{id}}}"
            ));
        }
    }
    join_trace(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aba_sim::probe::RoundPhase;

    fn scan_for(n: usize, build: impl FnOnce(&mut ArrivalScan)) -> ArrivalScan {
        let mut s = ArrivalScan::new();
        s.reset(n);
        build(&mut s);
        s.set_corrupted(&vec![false; n]);
        s
    }

    fn probe_for(n: usize) -> ProvenanceProbe {
        let mut p = ProvenanceProbe::new();
        p.run_start(&SimConfig::new(n, 0));
        p
    }

    #[test]
    fn broadcast_round_unions_everyone() {
        let mut p = probe_for(4);
        let scan = scan_for(4, |s| {
            for i in 0..4 {
                s.mark_base(i, 8);
            }
            s.finish_base_recv();
        });
        p.arrivals(Round::ZERO, &scan);
        p.halt(Round::ZERO, NodeId::new(2), Some(true));
        let stats = p.explain(NodeId::new(2)).expect("frozen");
        assert_eq!(stats.width, 4);
        assert_eq!(stats.depth, 1);
        assert_eq!(stats.influenced_by, 0);
        assert!(p.in_cone(NodeId::new(2), NodeId::new(0)));
    }

    #[test]
    fn knocked_edges_keep_nodes_out_of_the_cone() {
        let mut p = probe_for(3);
        // Round 0: only 0 broadcasts, and 2 is knocked out of it.
        let scan = scan_for(3, |s| {
            s.mark_base(0, 8);
            s.mark_knocked(2, 0);
            s.finish_base_recv();
        });
        p.arrivals(Round::ZERO, &scan);
        p.halt(Round::ZERO, NodeId::new(1), Some(false));
        p.halt(Round::ZERO, NodeId::new(2), Some(true));
        assert!(p.in_cone(NodeId::new(1), NodeId::new(0)));
        assert!(!p.in_cone(NodeId::new(2), NodeId::new(0)));
        assert_eq!(p.explain(NodeId::new(2)).unwrap().width, 1);
    }

    #[test]
    fn influence_propagates_transitively() {
        let mut p = probe_for(3);
        // Round 0: corrupted 0 sends only to 1 (explicit).
        let mut s0 = ArrivalScan::new();
        s0.reset(3);
        s0.mark_extra(1, 0);
        s0.add_recv(1, 1, 8);
        s0.set_corrupted(&[true, false, false]);
        p.arrivals(Round::ZERO, &s0);
        // Round 1: 1 broadcasts (honest), reaching 2.
        let mut s1 = ArrivalScan::new();
        s1.reset(3);
        s1.mark_base(1, 8);
        s1.finish_base_recv();
        s1.set_corrupted(&[true, false, false]);
        p.arrivals(Round::new(1), &s1);
        p.halt(Round::new(1), NodeId::new(2), Some(true));
        let stats = p.explain(NodeId::new(2)).expect("frozen");
        // 2's cone: {0 (via 1), 1, 2}; 0 influenced it transitively.
        assert_eq!(stats.width, 3);
        assert_eq!(stats.depth, 2);
        assert_eq!(stats.influenced_by, 1);
        assert!(p.influenced(NodeId::new(2), NodeId::new(0)));
        assert_eq!(stats.corrupted_ancestors, 1);
    }

    #[test]
    fn late_corruption_does_not_taint_earlier_messages() {
        let mut p = probe_for(2);
        // Round 0: honest 0 broadcasts.
        let s0 = scan_for(2, |s| {
            s.mark_base(0, 8);
            s.finish_base_recv();
        });
        p.arrivals(Round::ZERO, &s0);
        // Round 1: 0 now corrupted but silent.
        let mut s1 = ArrivalScan::new();
        s1.reset(2);
        s1.set_corrupted(&[true, false]);
        p.arrivals(Round::new(1), &s1);
        p.halt(Round::new(1), NodeId::new(1), Some(true));
        let stats = p.explain(NodeId::new(1)).expect("frozen");
        // 0 is in the cone and corrupted *now*, but influenced no one.
        assert_eq!(stats.width, 2);
        assert_eq!(stats.influenced_by, 0);
        assert_eq!(stats.corrupted_ancestors, 1);
    }

    #[test]
    fn run_end_freezes_undecided_nodes_and_fills_metrics() {
        let mut p = probe_for(2);
        let scan = scan_for(2, |s| {
            s.mark_base(0, 8);
            s.mark_base(1, 8);
            s.add_sent(0, 1, 8);
            s.add_sent(1, 1, 8);
            s.finish_base_recv();
        });
        p.arrivals(Round::ZERO, &scan);
        let report = RunReport {
            rounds: 1,
            all_halted: false,
            outputs: vec![None, Some(true)],
            honest: vec![true, true],
            corruptions_used: 0,
            halt_rounds: vec![None, None],
            metrics: aba_sim::RunMetrics::default(),
            trace: aba_sim::Trace::default(),
        };
        p.run_end(&report);
        let s = p.explain(NodeId::new(0)).expect("snapshot");
        assert!(!s.decided);
        assert_eq!(s.width, 2);
        assert_eq!(p.metrics().counter(names::TRIALS), 1);
        let h = p.metrics().histogram(names::CONE_WIDTH).expect("hist");
        assert_eq!(h.count(), 2);
        // Per-node traffic reached the registry.
        assert_eq!(
            p.metrics().histogram(names::NODE_SENT_MSGS).unwrap().sum(),
            2
        );
    }

    #[test]
    fn round_edges_enumerates_base_and_extra_edges() {
        let mut re = RoundEdges {
            round: 3,
            base_senders: vec![0b01],
            corrupted: vec![0],
            deviations: vec![(1, vec![0b01], vec![0b100])],
        };
        let mut edges = Vec::new();
        re.for_each_edge(3, |s, r, explicit| edges.push((s, r, explicit)));
        // r=0: base from 0; r=1: base knocked, extra from 2; r=2: base.
        assert_eq!(edges, vec![(0, 0, false), (2, 1, true), (0, 2, false)]);
        // An extra that overrides a base must not double-report.
        re.deviations = vec![(1, vec![0b01], vec![0b01])];
        edges.clear();
        re.for_each_edge(3, |s, r, explicit| edges.push((s, r, explicit)));
        assert_eq!(edges, vec![(0, 0, false), (0, 1, true), (0, 2, false)]);
    }

    #[test]
    fn exporters_are_deterministic() {
        let mut p = probe_for(3);
        let scan = scan_for(3, |s| {
            s.mark_base(0, 8);
            s.mark_extra(1, 2);
            s.add_recv(1, 1, 8);
            s.finish_base_recv();
        });
        p.arrivals(Round::ZERO, &scan);
        p.halt(Round::ZERO, NodeId::new(1), Some(true));
        let dot = p.dot_graph();
        assert!(dot.starts_with("digraph provenance {"));
        assert!(dot.contains("v0 -> v1"));
        assert!(dot.contains("v2 -> v1"));
        assert_eq!(dot, p.dot_graph());
        let jsonl = p.jsonl_graph();
        assert!(jsonl.starts_with("{\"n\":3,\"rounds\":1}\n"));
        assert!(jsonl.contains("\"receiver\":1"));
        assert_eq!(jsonl, p.jsonl_graph());
    }

    #[test]
    fn dot_graph_scales_to_large_n_without_quadratic_allocation() {
        // Regression: the exporter used to allocate an `n × n` edge
        // matrix (1 GiB at this size) before writing a single byte.
        // The sparse-plane sizes send a handful of point-to-point
        // messages per node, so the aggregation must scale with the
        // edges that exist, not with n².
        let n = 16_384;
        let mut p = probe_for(n);
        let mut scan = ArrivalScan::new();
        scan.reset(n);
        for r in [7usize, 100, 9_999, 16_383] {
            scan.mark_extra(r, 3);
            scan.add_recv(r, 1, 8);
        }
        scan.set_corrupted(&vec![false; n]);
        p.arrivals(Round::ZERO, &scan);
        let dot = p.dot_graph();
        assert!(dot.contains("v3 -> v7 [label=\"1\"];"));
        assert!(dot.contains("v3 -> v16383 [label=\"1\"];"));
        assert_eq!(dot.matches(" -> ").count(), 4);
        assert_eq!(dot, p.dot_graph());
    }

    #[test]
    fn flows_land_between_deliver_and_receive() {
        let mut p = probe_for(2);
        let mut scan = ArrivalScan::new();
        scan.reset(2);
        scan.mark_base(0, 8);
        scan.finish_base_recv();
        scan.set_corrupted(&[true, false]);
        p.arrivals(Round::ZERO, &scan);

        let mut log = EventLog::new();
        log.push(EventKind::TrialStart {
            n: 2,
            t: 1,
            seed: 0,
        });
        log.push(EventKind::RoundStart { round: Round::ZERO });
        for phase in RoundPhase::ALL {
            log.push(EventKind::PhaseEnd {
                round: Round::ZERO,
                phase,
            });
        }
        let json = chrome_trace_with_flows(&log, &p);
        assert!(json.contains("\"ph\":\"s\""));
        assert!(json.contains("\"ph\":\"f\""));
        assert!(json.contains("adv v0 r0"));
        assert!(json.ends_with("]\n"));
        assert_eq!(json, chrome_trace_with_flows(&log, &p));
    }
}
