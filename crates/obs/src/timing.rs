//! The **timing channel**: wall-clock building blocks.
//!
//! This file is one of the two registered wall-clock files (see
//! aba-lint's `wall-clock-in-sim` rule scoping — `TIMING_PATHS` in
//! `crates/lint/src/rules.rs`). Everything in it is explicitly
//! non-deterministic: numbers read here vary run to run and machine to
//! machine, and must never flow into the deterministic channel or any
//! pinned artifact. Profiling output goes to separate files
//! (`*.timing.csv`, `*.profile.json`, `*.collapsed.txt`).
//!
//! Zero cost when disabled: nothing here is global or ambient. Callers
//! construct a [`WallClock`]/[`Stopwatch`] only when profiling is
//! requested, so a run without a profile directory performs no clock
//! reads at all.

use std::time::Instant;

/// A monotonic clock anchored at its creation, reporting microseconds
/// since the anchor — the timestamp base for profile trace exports.
#[derive(Debug, Clone, Copy)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// Anchors a new clock at "now".
    #[allow(clippy::disallowed_methods)] // timing channel: the one sanctioned wall-clock read
    pub fn new() -> Self {
        WallClock {
            origin: Instant::now(),
        }
    }

    /// Microseconds elapsed since the anchor.
    #[allow(clippy::disallowed_methods)] // timing channel
    pub fn now_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }

    /// Nanoseconds elapsed since the anchor.
    #[allow(clippy::disallowed_methods)] // timing channel
    pub fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

/// A one-shot span timer.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing.
    #[allow(clippy::disallowed_methods)] // timing channel
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Nanoseconds since [`Stopwatch::start`].
    #[allow(clippy::disallowed_methods)] // timing channel
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Microseconds since [`Stopwatch::start`].
    #[allow(clippy::disallowed_methods)] // timing channel
    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }
}

/// Latency percentiles over a batch of nanosecond samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: usize,
    /// Minimum, ns.
    pub min_ns: u64,
    /// Median, ns.
    pub p50_ns: u64,
    /// 90th percentile, ns.
    pub p90_ns: u64,
    /// 99th percentile, ns.
    pub p99_ns: u64,
    /// Maximum, ns.
    pub max_ns: u64,
    /// Arithmetic mean, ns.
    pub mean_ns: u64,
}

impl LatencySummary {
    /// CSV header matching [`LatencySummary::csv_row`].
    pub fn csv_header() -> &'static str {
        "label,count,min_ns,p50_ns,p90_ns,p99_ns,max_ns,mean_ns"
    }

    /// One CSV row, prefixed with `label`.
    pub fn csv_row(&self, label: &str) -> String {
        format!(
            "{label},{},{},{},{},{},{},{}",
            self.count,
            self.min_ns,
            self.p50_ns,
            self.p90_ns,
            self.p99_ns,
            self.max_ns,
            self.mean_ns
        )
    }
}

/// Nearest-rank percentile of an ascending-sorted slice; `q` in `[0,1]`.
/// Returns 0 on an empty slice.
pub fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Sorts `samples` in place and summarizes them; `None` when empty.
pub fn summarize_latencies(samples: &mut [u64]) -> Option<LatencySummary> {
    if samples.is_empty() {
        return None;
    }
    samples.sort_unstable();
    let count = samples.len();
    let sum: u128 = samples.iter().map(|&v| u128::from(v)).sum();
    Some(LatencySummary {
        count,
        min_ns: samples[0],
        p50_ns: percentile(samples, 0.50),
        p90_ns: percentile(samples, 0.90),
        p99_ns: percentile(samples, 0.99),
        max_ns: samples[count - 1],
        mean_ns: (sum / count as u128) as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.50), 50);
        assert_eq!(percentile(&v, 0.90), 90);
        assert_eq!(percentile(&v, 0.99), 99);
        assert_eq!(percentile(&v, 1.0), 100);
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[7], 0.5), 7);
    }

    #[test]
    fn summary_orders_and_averages() {
        let mut samples = vec![30, 10, 20];
        let s = summarize_latencies(&mut samples).unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.min_ns, 10);
        assert_eq!(s.max_ns, 30);
        assert_eq!(s.p50_ns, 20);
        assert_eq!(s.mean_ns, 20);
        assert_eq!(summarize_latencies(&mut []), None);
        assert_eq!(s.csv_row("cell_a"), "cell_a,3,10,20,30,30,30,20");
    }

    #[test]
    fn clocks_are_monotone() {
        let clock = WallClock::new();
        let a = clock.now_ns();
        let b = clock.now_ns();
        assert!(b >= a);
        let sw = Stopwatch::start();
        assert!(sw.elapsed_us() <= sw.elapsed_us().max(sw.elapsed_us()));
    }
}
