//! Exporters: Chrome trace-event JSON (Perfetto / `chrome://tracing`)
//! and collapsed-stack text (flamegraph tooling).
//!
//! Both exporters are pure functions of their input. When the input is
//! the deterministic channel ([`EventLog`]), the exported bytes are as
//! reproducible as the log itself — timestamps are logical ticks
//! reported in microseconds, so the "time" axis in Perfetto is event
//! count, not wall clock. When the input is wall-clock [`SpanRecord`]s
//! from the timing channel, the export is explicitly non-deterministic.

use std::fmt::Write as _;

use crate::event::{EventKind, EventLog};

/// One completed wall-clock (or logical) span, ready for export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (e.g. `"trial"`, `"cell n16_t5"`).
    pub name: String,
    /// Category string, shown as a Perfetto filter.
    pub cat: String,
    /// Start timestamp, microseconds.
    pub ts_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
    /// Perfetto track (thread) id — the sweep uses worker index.
    pub tid: u64,
}

/// Escapes a string for inclusion in a JSON string literal.
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Joins pre-rendered trace-event objects into a Chrome trace JSON
/// array (one object per line, for diffability).
pub(crate) fn join_trace(events: Vec<String>) -> String {
    let mut out = String::from("[\n");
    for (i, ev) in events.iter().enumerate() {
        out.push_str(ev);
        if i + 1 < events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Renders wall-clock spans as a Chrome trace (all `"X"` complete
/// events, pid 0, tid from the record).
pub fn chrome_trace_from_spans(spans: &[SpanRecord]) -> String {
    let events = spans
        .iter()
        .map(|s| {
            format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{}}}",
                escape_json(&s.name),
                escape_json(&s.cat),
                s.ts_us,
                s.dur_us,
                s.tid
            )
        })
        .collect();
    join_trace(events)
}

/// Renders the deterministic event log as a Chrome trace on the
/// **logical** timeline: one microsecond per tick. Span levels
/// (campaign/cell/trial/round) become `B`/`E` pairs, phases become `X`
/// complete events spanning from the previous phase boundary, and point
/// events (corruptions, halts, violations, truncation, notes) become
/// `i` instants.
pub fn chrome_trace(log: &EventLog) -> String {
    join_trace(chrome_trace_events(log))
}

/// The individual trace-event objects behind [`chrome_trace`], one
/// pre-rendered JSON object per entry — the provenance exporter splices
/// its flow events onto this list before joining.
pub(crate) fn chrome_trace_events(log: &EventLog) -> Vec<String> {
    let mut events: Vec<String> = Vec::with_capacity(log.len() + 8);
    // Open B spans, as (name) — closed in reverse order at log end if
    // the log stops mid-span.
    let mut open: Vec<String> = Vec::new();
    let mut phase_boundary = 0u64;

    let begin = |events: &mut Vec<String>, open: &mut Vec<String>, name: String, ts: u64| {
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"B\",\"ts\":{ts},\"pid\":0,\"tid\":0}}",
            escape_json(&name)
        ));
        open.push(name);
    };
    let end = |events: &mut Vec<String>, open: &mut Vec<String>, ts: u64| {
        if open.pop().is_some() {
            events.push(format!("{{\"ph\":\"E\",\"ts\":{ts},\"pid\":0,\"tid\":0}}"));
        }
    };
    let instant = |events: &mut Vec<String>, name: String, ts: u64| {
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"event\",\"ph\":\"i\",\"ts\":{ts},\"pid\":0,\"tid\":0,\"s\":\"t\"}}",
            escape_json(&name)
        ));
    };

    for ev in log.events() {
        let ts = ev.tick;
        match &ev.kind {
            EventKind::CampaignStart { name } => {
                begin(&mut events, &mut open, format!("campaign {name}"), ts);
            }
            EventKind::CellStart { key } => {
                begin(&mut events, &mut open, format!("cell {key}"), ts);
            }
            EventKind::CellEnd { .. } => end(&mut events, &mut open, ts),
            EventKind::TrialStart { n, t, seed } => {
                begin(
                    &mut events,
                    &mut open,
                    format!("trial n={n} t={t} seed={seed}"),
                    ts,
                );
            }
            EventKind::TrialEnd { .. } => end(&mut events, &mut open, ts),
            EventKind::RoundStart { round } => {
                begin(
                    &mut events,
                    &mut open,
                    format!("round {}", round.index()),
                    ts,
                );
                phase_boundary = ts;
            }
            EventKind::PhaseEnd { phase, .. } => {
                events.push(format!(
                    "{{\"name\":\"{}\",\"cat\":\"phase\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":0}}",
                    phase.name(),
                    phase_boundary,
                    ts.saturating_sub(phase_boundary).max(1)
                ));
                phase_boundary = ts;
            }
            EventKind::RoundEnd { .. } => end(&mut events, &mut open, ts),
            EventKind::Corruption { node, total, .. } => {
                instant(&mut events, format!("corrupt {node} (total {total})"), ts);
            }
            EventKind::Halt { node, output, .. } => {
                let out = match output {
                    Some(b) => b.to_string(),
                    None => "-".to_string(),
                };
                instant(&mut events, format!("halt {node} -> {out}"), ts);
            }
            EventKind::Violation { oracle, .. } => {
                instant(&mut events, format!("violation {oracle}"), ts);
            }
            EventKind::Truncated { dropped_rounds } => {
                instant(
                    &mut events,
                    format!("per-round history truncated ({dropped_rounds} dropped)"),
                    ts,
                );
            }
            EventKind::Note { text } => instant(&mut events, format!("note: {text}"), ts),
        }
    }
    let final_ts = log.len() as u64;
    while !open.is_empty() {
        end(&mut events, &mut open, final_ts);
    }
    events
}

/// Renders `(stack, value)` pairs as collapsed-stack text, one
/// `stack value` line each — the input format of flamegraph tooling.
pub fn collapsed_stacks(lines: &[(String, u64)]) -> String {
    let mut out = String::new();
    for (stack, value) in lines {
        let _ = writeln!(out, "{stack} {value}");
    }
    out
}

/// Folds the deterministic event log into collapsed stacks weighted by
/// logical ticks: each phase contributes `cell;trial;<phase>` (or
/// `trial;<phase>` outside a campaign) with the tick span it covered.
/// Stacks are emitted sorted, so the output is deterministic.
pub fn collapsed_from_log(log: &EventLog) -> String {
    use std::collections::BTreeMap;
    let mut agg: BTreeMap<String, u64> = BTreeMap::new();
    let mut cell: Option<String> = None;
    let mut phase_boundary = 0u64;
    for ev in log.events() {
        match &ev.kind {
            EventKind::CellStart { key } => cell = Some(key.clone()),
            EventKind::CellEnd { .. } => cell = None,
            EventKind::RoundStart { .. } => phase_boundary = ev.tick,
            EventKind::PhaseEnd { phase, .. } => {
                let ticks = ev.tick.saturating_sub(phase_boundary).max(1);
                phase_boundary = ev.tick;
                let stack = match &cell {
                    Some(key) => format!("{key};trial;{}", phase.name()),
                    None => format!("trial;{}", phase.name()),
                };
                *agg.entry(stack).or_insert(0) += ticks;
            }
            _ => {}
        }
    }
    let lines: Vec<(String, u64)> = agg.into_iter().collect();
    collapsed_stacks(&lines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aba_sim::probe::RoundPhase;
    use aba_sim::Round;

    fn sample_log() -> EventLog {
        let mut log = EventLog::new();
        log.push(EventKind::TrialStart {
            n: 4,
            t: 1,
            seed: 7,
        });
        log.push(EventKind::RoundStart { round: Round::ZERO });
        for phase in RoundPhase::ALL {
            log.push(EventKind::PhaseEnd {
                round: Round::ZERO,
                phase,
            });
        }
        log.push(EventKind::RoundEnd {
            round: Round::ZERO,
            messages: 12,
            bits: 120,
            delivered: 12,
            dropped: 0,
            delayed: 0,
            corruptions: 0,
        });
        log.push(EventKind::TrialEnd {
            rounds: 1,
            all_halted: true,
        });
        log
    }

    #[test]
    fn chrome_trace_is_balanced_json_array() {
        let json = chrome_trace(&sample_log());
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with("]\n"));
        assert_eq!(json.matches("\"ph\":\"B\"").count(), 2); // trial, round
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 2);
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 4); // four phases
                                                             // Deterministic: same log, same bytes.
        assert_eq!(json, chrome_trace(&sample_log()));
    }

    #[test]
    fn unbalanced_log_is_closed_at_final_tick() {
        let mut log = EventLog::new();
        log.push(EventKind::CampaignStart {
            name: "c".to_string(),
        });
        let json = chrome_trace(&log);
        assert_eq!(json.matches("\"ph\":\"B\"").count(), 1);
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 1);
    }

    #[test]
    fn escaping_handles_quotes_and_controls() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn collapsed_from_log_aggregates_phases() {
        let text = collapsed_from_log(&sample_log());
        assert!(text.contains("trial;emit "));
        assert!(text.contains("trial;receive "));
        assert_eq!(text.lines().count(), 4);
        assert_eq!(text, collapsed_from_log(&sample_log()));
    }

    #[test]
    fn spans_render_as_complete_events() {
        let spans = vec![SpanRecord {
            name: "cell a".to_string(),
            cat: "sweep".to_string(),
            ts_us: 5,
            dur_us: 100,
            tid: 2,
        }];
        let json = chrome_trace_from_spans(&spans);
        assert!(json.contains("\"name\":\"cell a\""));
        assert!(json.contains("\"dur\":100"));
        assert!(json.contains("\"tid\":2"));
    }
}
