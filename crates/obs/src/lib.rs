//! # aba-obs — two-channel observability for the simulation stack
//!
//! The paper's claims are quantitative (round complexity, message
//! complexity `O(min{n·t²·log n, n²·t/log n})`, the CONGEST `O(log n)`
//! bits-per-edge bound), so seeing *where* rounds, bits, and wall-clock
//! go is part of reproducing it. This crate provides that visibility as
//! two strictly separated channels:
//!
//! * **Channel 1 — deterministic** ([`event`], [`metrics`], [`probe`]):
//!   a structured [`EventLog`] on *logical* time (campaign → cell →
//!   trial → round → phase spans plus typed corruption / halt /
//!   violation / truncation events) and a [`MetricsRegistry`] of
//!   counters, high-water gauges, and fixed-boundary histograms. Every
//!   merge is commutative and associative and every render iterates in
//!   sorted order, so serialized output is **bit-identical across sweep
//!   worker counts and under trace replay** — it is part of the
//!   workspace's reproducibility surface, pinned by tests.
//!
//! * **Channel 2 — timing** ([`timing`]): wall-clock profiling
//!   (per-phase spans, queue-depth/steal counters, per-cell latency
//!   percentiles). Explicitly non-deterministic, confined to files
//!   registered with aba-lint's `wall-clock-in-sim` rule scoping, and
//!   written to separate `*.timing.csv` / `*.profile.json` files that
//!   are never compared byte-wise. Zero cost when disabled: no globals,
//!   no ambient clocks — a run without profiling performs no clock
//!   reads.
//!
//! Instrumentation enters the engine through the
//! [`Probe`](aba_sim::probe::Probe) seam ([`EventProbe`] here;
//! `NoProbe` inlines away), and exits through the [`export`] module:
//! Chrome trace-event JSON (open in [Perfetto](https://ui.perfetto.dev)
//! or `chrome://tracing`) and collapsed-stack text for flamegraph
//! tooling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod export;
pub mod log;
pub mod metrics;
pub mod probe;
pub mod provenance;
pub mod timing;

pub use event::{EventKind, EventLog, ObsEvent};
pub use export::{
    chrome_trace, chrome_trace_from_spans, collapsed_from_log, collapsed_stacks, SpanRecord,
};
pub use metrics::{Histogram, MetricsRegistry, POW2_BOUNDS};
pub use probe::EventProbe;
pub use provenance::{chrome_trace_with_flows, ConeStats, ProvenanceProbe, RoundEdges};
pub use timing::{percentile, summarize_latencies, LatencySummary, Stopwatch, WallClock};
