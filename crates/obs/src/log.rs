//! A minimal verbosity-gated stderr logger for the harness shell.
//!
//! This replaces the raw `eprintln!` progress lines that used to live
//! in the sweep executor and experiment driver. It is *shell* plumbing,
//! not simulation state: the level is a process-wide atomic set once by
//! the CLI (`--quiet`/`--verbose`), and messages go to stderr so they
//! never contaminate artifact files. At the default level the output is
//! byte-identical to the old `eprintln!` lines; `--quiet` silences
//! progress (CI) while warnings still print.

use std::sync::atomic::{AtomicU8, Ordering};

/// How chatty the process is on stderr.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verbosity {
    /// Warnings only — for CI logs.
    Quiet = 0,
    /// Progress lines (the default; matches the pre-obs output).
    Normal = 1,
    /// Additional diagnostics.
    Verbose = 2,
}

static LEVEL: AtomicU8 = AtomicU8::new(Verbosity::Normal as u8);

/// Sets the process verbosity (typically once, from CLI flags).
pub fn set_verbosity(v: Verbosity) {
    LEVEL.store(v as u8, Ordering::Relaxed);
}

/// The current verbosity.
pub fn verbosity() -> Verbosity {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Verbosity::Quiet,
        1 => Verbosity::Normal,
        _ => Verbosity::Verbose,
    }
}

/// Prints `msg` to stderr unconditionally — warnings (lost
/// checkpoints, unwritable artifacts) matter even under `--quiet`.
pub fn warn(msg: &str) {
    eprintln!("{msg}");
}

/// Prints `msg` to stderr at [`Verbosity::Normal`] and above —
/// progress lines.
pub fn info(msg: &str) {
    if verbosity() >= Verbosity::Normal {
        eprintln!("{msg}");
    }
}

/// Prints `msg` to stderr only at [`Verbosity::Verbose`].
pub fn debug(msg: &str) {
    if verbosity() >= Verbosity::Verbose {
        eprintln!("{msg}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order() {
        assert!(Verbosity::Quiet < Verbosity::Normal);
        assert!(Verbosity::Normal < Verbosity::Verbose);
    }

    #[test]
    fn set_and_get_roundtrip() {
        let prev = verbosity();
        set_verbosity(Verbosity::Quiet);
        assert_eq!(verbosity(), Verbosity::Quiet);
        set_verbosity(Verbosity::Verbose);
        assert_eq!(verbosity(), Verbosity::Verbose);
        set_verbosity(prev);
    }
}
