//! Algorithms 1 and 2: the one-round coin-flipping protocols.
//!
//! Algorithm 1 (all nodes designated):
//!
//! ```text
//! 1: Xv := Uniform({-1, 1})
//! 2: Broadcast Xv to all neighbors
//! 3: if Σ_{u∈N(v)} Xu ≥ 0 then Return 1
//! 4: else Return 0
//! ```
//!
//! Algorithm 2 is identical except only a designated node set `Vd` flips
//! and is tallied; all `n` nodes output the sign of the designated sum.
//! Flips from nodes outside `Vd` are ignored by honest receivers (the
//! paper: "messages from byzantine nodes not in the committee are ignored
//! by all honest nodes").

use crate::committee::CommitteePlan;
use crate::msg::CoinMsg;
use aba_sim::{Emission, Inbox, NodeId, Protocol, Round};
use rand::{Rng, RngCore};

/// Which nodes are designated to flip (and be tallied).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Designated {
    /// Algorithm 1: every node flips.
    All,
    /// Algorithm 2: only the members of one committee of a plan flip.
    Committee {
        /// The committee partition.
        plan: CommitteePlan,
        /// Which committee is designated.
        index: usize,
    },
    /// Algorithm 2 with an arbitrary explicit designated set (IDs must be
    /// sorted; used by tests and by adversarial experiments).
    Set(Vec<NodeId>),
}

impl Designated {
    /// Whether `node` is designated.
    pub fn contains(&self, node: NodeId) -> bool {
        match self {
            Designated::All => true,
            Designated::Committee { plan, index } => plan.is_member(node, *index),
            Designated::Set(ids) => ids.binary_search(&node).is_ok(),
        }
    }

    /// Number of designated nodes in an `n`-node network.
    pub fn len(&self, n: usize) -> usize {
        match self {
            Designated::All => n,
            Designated::Committee { plan, index } => plan.size_of(*index),
            Designated::Set(ids) => ids.len(),
        }
    }

    /// True if no node is designated (degenerate; the sum is then 0 and
    /// everyone outputs 1).
    pub fn is_empty(&self, n: usize) -> bool {
        self.len(n) == 0
    }
}

/// One node of the single-round coin-flip protocol.
///
/// After the round completes, [`Protocol::output`] is `Some(bit)` — the
/// node's common-coin output.
#[derive(Debug, Clone)]
pub struct CoinFlipNode {
    id: NodeId,
    n: usize,
    designated: Designated,
    /// The node's own flip, if it was designated (exposed for analysis).
    flip: Option<i8>,
    /// The tallied sum over designated senders (exposed for analysis).
    sum: Option<i64>,
    out: Option<bool>,
    halted: bool,
}

impl CoinFlipNode {
    /// Creates node `id` of `n` running Algorithm 1 or 2 depending on
    /// `designated`.
    pub fn new(id: NodeId, n: usize, designated: Designated) -> Self {
        CoinFlipNode {
            id,
            n,
            designated,
            flip: None,
            sum: None,
            out: None,
            halted: false,
        }
    }

    /// Convenience: a full Algorithm 1 network.
    pub fn network(n: usize) -> Vec<CoinFlipNode> {
        (0..n as u32)
            .map(|i| CoinFlipNode::new(NodeId::new(i), n, Designated::All))
            .collect()
    }

    /// Convenience: an Algorithm 2 network where committee `index` of
    /// `plan` is designated.
    pub fn network_with_committee(
        n: usize,
        plan: &CommitteePlan,
        index: usize,
    ) -> Vec<CoinFlipNode> {
        (0..n as u32)
            .map(|i| {
                CoinFlipNode::new(
                    NodeId::new(i),
                    n,
                    Designated::Committee {
                        plan: plan.clone(),
                        index,
                    },
                )
            })
            .collect()
    }

    /// This node's ±1 flip, if it was designated and has flipped.
    pub fn flip(&self) -> Option<i8> {
        self.flip
    }

    /// The designated-sum this node tallied (after the round).
    pub fn sum(&self) -> Option<i64> {
        self.sum
    }

    /// The node ID.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Network size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The designated (flipping) node set this node tallies.
    pub fn designated(&self) -> &Designated {
        &self.designated
    }
}

impl Protocol for CoinFlipNode {
    type Msg = CoinMsg;

    fn emit(&mut self, _round: Round, rng: &mut dyn RngCore) -> Emission<CoinMsg> {
        if self.designated.contains(self.id) {
            let positive: bool = rng.gen();
            self.flip = Some(if positive { 1 } else { -1 });
            Emission::Broadcast(CoinMsg::from_sign(positive))
        } else {
            Emission::Silent
        }
    }

    fn receive(&mut self, _round: Round, inbox: Inbox<'_, CoinMsg>, _rng: &mut dyn RngCore) {
        // Tally only designated senders; clamp Byzantine garbage to ±1.
        let sum: i64 = inbox
            .iter()
            .filter(|(sender, _)| self.designated.contains(*sender))
            .map(|(_, m)| m.clamped())
            .sum();
        self.sum = Some(sum);
        self.out = Some(sum >= 0);
        self.halted = true;
    }

    fn output(&self) -> Option<bool> {
        self.out
    }

    fn halted(&self) -> bool {
        self.halted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aba_sim::adversary::Benign;
    use aba_sim::{SimConfig, Simulation};

    #[test]
    fn all_honest_coin_is_common() {
        for seed in 0..20 {
            let cfg = SimConfig::new(33, 0).with_seed(seed);
            let report = Simulation::new(cfg, CoinFlipNode::network(33), Benign).run();
            assert!(report.all_halted);
            assert_eq!(report.rounds, 1);
            let first = report.outputs[0];
            assert!(report.outputs.iter().all(|o| *o == first), "seed {seed}");
        }
    }

    #[test]
    fn coin_is_not_constant_over_seeds() {
        #[allow(clippy::disallowed_methods)]
        // aba-lint: allow(hash-nondeterminism) — distinctness count only; iteration order never observed
        let mut seen = std::collections::HashSet::new();
        for seed in 0..50 {
            let cfg = SimConfig::new(9, 0).with_seed(seed);
            let report = Simulation::new(cfg, CoinFlipNode::network(9), Benign).run();
            seen.insert(report.outputs[0].unwrap());
        }
        assert_eq!(seen.len(), 2, "both coin values must occur");
    }

    #[test]
    fn committee_coin_only_counts_members() {
        let plan = CommitteePlan::with_committee_count(12, 4); // size-3 committees
        let cfg = SimConfig::new(12, 0).with_seed(7);
        let nodes = CoinFlipNode::network_with_committee(12, &plan, 1);
        let report = Simulation::new(cfg, nodes, Benign).run();
        assert!(report.all_halted);
        // Only 3 designated senders broadcast: 3 * 11 = 33 messages.
        assert_eq!(report.metrics.total_messages, 33);
        let first = report.outputs[0];
        assert!(report.outputs.iter().all(|o| *o == first));
    }

    #[test]
    fn sum_matches_flips_of_members() {
        use aba_sim::InfoModel;
        let plan = CommitteePlan::with_committee_count(8, 2);
        let nodes = CoinFlipNode::network_with_committee(8, &plan, 0);
        let cfg = SimConfig::new(8, 0)
            .with_seed(3)
            .with_info_model(InfoModel::NonRushing);
        let mut sim = Simulation::new(cfg, nodes, Benign);
        sim.step();
        let flips: i64 = sim.nodes()[0..4]
            .iter()
            .map(|nd| nd.flip().expect("designated flipped") as i64)
            .sum();
        for nd in sim.nodes() {
            assert_eq!(nd.sum(), Some(flips));
            assert_eq!(nd.output(), Some(flips >= 0));
        }
        for nd in &sim.nodes()[4..] {
            assert_eq!(nd.flip(), None, "non-members never flip");
        }
    }

    #[test]
    fn explicit_set_designation() {
        let set = Designated::Set(vec![NodeId::new(1), NodeId::new(4)]);
        assert!(set.contains(NodeId::new(1)));
        assert!(!set.contains(NodeId::new(2)));
        assert_eq!(set.len(10), 2);
        assert!(!set.is_empty(10));
        assert!(Designated::Set(vec![]).is_empty(10));
        assert_eq!(Designated::All.len(10), 10);
    }

    #[test]
    fn ties_resolve_to_one() {
        // Two designated nodes: if they flip opposite, sum = 0 -> output 1
        // ("if Σ ≥ 0 then Return 1").
        let set = Designated::Set(vec![NodeId::new(0), NodeId::new(1)]);
        for seed in 0..40 {
            let nodes: Vec<_> = (0..4u32)
                .map(|i| CoinFlipNode::new(NodeId::new(i), 4, set.clone()))
                .collect();
            let cfg = SimConfig::new(4, 0).with_seed(seed);
            let report = Simulation::new(cfg, nodes, Benign).run();
            let outs: Vec<bool> = report.outputs.iter().map(|o| o.unwrap()).collect();
            assert!(outs.windows(2).all(|w| w[0] == w[1]));
        }
    }
}
