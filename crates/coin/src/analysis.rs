//! Anti-concentration analysis backing Theorem 3.
//!
//! The paper's proof shows, for `g ≥ n − √n/2` honest nodes each flipping
//! ±1 with sum `X`:
//!
//! ```text
//! Pr[X > √n/2] = Pr[X² > θ·E[X²]]            (θ = n/(4g))
//!             ≥ (1−θ)²·E[X²]²/E[X⁴]          (Paley–Zygmund)
//!             = (1−θ)²·g²/(3g²−2g) ≥ (1−θ)²/3 ≥ 1/12.
//! ```
//!
//! This module provides that analytic chain plus *exact* binomial tail
//! probabilities, so the experiments can compare three layers: the
//! paper's bound (pessimistic), the exact distribution, and the measured
//! frequency.

/// Natural log of the gamma function (Lanczos approximation, g=7, n=9
/// coefficients; |error| < 1e-13 on the positive reals we use).
fn ln_gamma(x: f64) -> f64 {
    #[allow(clippy::excessive_precision)] // published Lanczos reference values
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return pi.ln() - (pi * x).sin().ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEFFS[0];
    let t = x + 7.5;
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// `ln C(n, k)` via `ln_gamma`.
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// Exact `Pr[S > k]` where `S` is the sum of `g` i.i.d. uniform ±1
/// variables (so `S = 2B − g` with `B ~ Bin(g, 1/2)`).
///
/// Works for any integer threshold `k` (negative thresholds give
/// probabilities above 1/2). Computed by summing `C(g, j)/2^g` in
/// log-space; accurate to ~1e-12 for `g` up to a few hundred thousand.
pub fn prob_sum_greater(g: u64, k: i64) -> f64 {
    if g == 0 {
        return if k < 0 { 1.0 } else { 0.0 };
    }
    // S > k  <=>  2B - g > k  <=>  B > (g + k)/2  <=>  B >= floor((g+k)/2) + 1.
    let gk = g as i64 + k;
    let j_min: i64 = if gk < 0 { 0 } else { gk.div_euclid(2) + 1 };
    if j_min <= 0 {
        return 1.0;
    }
    let j_min = j_min as u64;
    if j_min > g {
        return 0.0;
    }
    let ln2 = std::f64::consts::LN_2;
    let mut total = 0.0_f64;
    // Sum from the largest term down for numerical stability.
    for j in j_min..=g {
        let ln_p = ln_choose(g, j) - g as f64 * ln2;
        total += ln_p.exp();
    }
    total.min(1.0)
}

/// Exact `Pr[|S| > k]` for the same `S` (two-sided anti-concentration).
/// For `k ≥ 0` this is `2·Pr[S > k]` by symmetry.
pub fn prob_abs_sum_greater(g: u64, k: u64) -> f64 {
    (2.0 * prob_sum_greater(g, k as i64)).min(1.0)
}

/// `E[|S|]` for the sum of `g` i.i.d. ±1 variables: exact formula
/// `E|S| = g·2^{1−g}·C(g−1, ⌊(g−1)/2⌋)`, asymptotically `√(2g/π)`.
pub fn expected_abs_sum(g: u64) -> f64 {
    if g == 0 {
        return 0.0;
    }
    let ln2 = std::f64::consts::LN_2;
    let ln = (g as f64).ln() + (1.0 - g as f64) * ln2 + ln_choose(g - 1, (g - 1) / 2);
    ln.exp()
}

/// The Paley–Zygmund step of Theorem 3: given `g` honest flippers in an
/// `n`-node network, a lower bound on `Pr[X > √n/2]` (and by symmetry on
/// `Pr[X < −√n/2]`).
///
/// Returns `None` when the bound's precondition `θ = n/(4g) < 1` fails
/// (i.e. `g ≤ n/4`, where the paper's argument does not apply).
pub fn paley_zygmund_one_side(n: u64, g: u64) -> Option<f64> {
    if g == 0 {
        return None;
    }
    let theta = n as f64 / (4.0 * g as f64);
    if theta >= 1.0 {
        return None;
    }
    let g = g as f64;
    // (1−θ)² · g² / (3g² − 2g); the paper then relaxes to (1−θ)²/3.
    Some((1.0 - theta).powi(2) * g * g / (3.0 * g * g - 2.0 * g))
}

/// Theorem 3's headline constant: with at most `√n/2` Byzantine nodes
/// (so `g ≥ n − √n/2` honest), each side of the coin lands decisively
/// with probability at least this value; the paper rounds it to `1/12`.
pub fn theorem3_bound(n: u64) -> Option<f64> {
    let byz = ((n as f64).sqrt() / 2.0).floor() as u64;
    let g = n.saturating_sub(byz);
    paley_zygmund_one_side(n, g)
}

/// Normal-approximation tail `Pr[S > k] ≈ 1 − Φ(k/√g)`, for sanity
/// checks against [`prob_sum_greater`] at large `g`.
pub fn normal_tail(g: u64, k: f64) -> f64 {
    if g == 0 {
        return 0.0;
    }
    let z = k / (g as f64).sqrt();
    0.5 * erfc(z / std::f64::consts::SQRT_2)
}

/// Complementary error function (Abramowitz–Stegun 7.1.26 rational
/// approximation; |error| ≤ 1.5e-7 — ample for sanity checks).
fn erfc(x: f64) -> f64 {
    let sign_negative = x < 0.0;
    let x_abs = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x_abs);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    let val = poly * (-x_abs * x_abs).exp();
    if sign_negative {
        2.0 - val
    } else {
        val
    }
}

/// Exact probability that the one-round coin over `g` flippers
/// **survives** (stays common against) the optimal rushing denial attack
/// with corruption budget `t`.
///
/// The attack denies iff [`corruptions_to_deny`] is within budget. The
/// `sum ≥ 0 → 1` tie rule makes the two directions asymmetric: from a
/// positive sum the adversary must reach `−1` (cost `⌈(S+1)/2⌉`), but
/// from a negative sum reaching `0` already flips the output (cost
/// `⌈|S|/2⌉`). The coin therefore survives iff `S ≥ 2t` or `S ≤ −2t−1`:
///
/// ```
/// let p = aba_coin::analysis::prob_coin_survives(64, 2);
/// assert!((p - 0.6201).abs() < 1e-3);
/// ```
pub fn prob_coin_survives(g: u64, t: u64) -> f64 {
    if t == 0 {
        return 1.0;
    }
    // Pr[S ≥ 2t] + Pr[S ≤ −(2t+1)] = Pr[S > 2t−1] + Pr[S > 2t] (symmetry).
    (prob_sum_greater(g, 2 * t as i64 - 1) + prob_sum_greater(g, 2 * t as i64)).min(1.0)
}

/// Minimum *fresh* corruptions a rushing adversary needs to deny a
/// committee coin, given the honest flip-sum `s` and `free` already-
/// controlled committee members (see `aba-attacks::coin_killer` for the
/// attack itself): it must be able to drive the tallied sum across the
/// 0/−1 boundary for at least one receiver, which takes
/// `m = ceil((|s̃|+1−free)/2)` corruptions of majority-side flippers,
/// where `|s̃|` accounts for sums already below the boundary.
pub fn corruptions_to_deny(honest_sum: i64, free_controlled: u64) -> u64 {
    // The tally the adversary cannot touch is `honest_sum`; each fresh
    // corruption of a majority-side flipper moves the reachable window
    // floor down by 2 (removes +1, can send −1); each free controlled
    // member moves it by 1 (can send −1 instead of +1... it was never in
    // the honest sum, so exactly 1).
    //
    // Output 1 is taken when sum ≥ 0, output 0 when sum < 0. To deny the
    // coin the adversary needs both a receiver with sum ≥ 0 and one with
    // sum ≤ −1 (or to flip everyone across the natural side; same cost).
    let s = honest_sum;
    if s >= 0 {
        // Needs floor reachable ≤ −1: s − 2m − free ≤ −1.
        let need = s + 1 - free_controlled as i64;
        if need <= 0 {
            0
        } else {
            (need as u64).div_ceil(2)
        }
    } else {
        // Natural output is 0; needs ceiling reachable ≥ 0: s + 2m + free ≥ 0.
        let need = -s - free_controlled as i64;
        if need <= 0 {
            0
        } else {
            (need as u64).div_ceil(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        assert_close(ln_gamma(1.0), 0.0, 1e-10);
        assert_close(ln_gamma(5.0), (24.0_f64).ln(), 1e-10);
        assert_close(ln_gamma(11.0), (3_628_800.0_f64).ln(), 1e-9);
        assert_close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-10);
    }

    #[test]
    fn ln_choose_small_cases() {
        assert_close(ln_choose(5, 2), (10.0_f64).ln(), 1e-10);
        assert_close(ln_choose(10, 5), (252.0_f64).ln(), 1e-9);
        assert_eq!(ln_choose(3, 5), f64::NEG_INFINITY);
        assert_close(ln_choose(7, 0), 0.0, 1e-12);
    }

    #[test]
    fn sum_tail_small_exact() {
        // g=3: S ∈ {−3,−1,1,3} with probs 1/8, 3/8, 3/8, 1/8.
        assert_close(prob_sum_greater(3, 0), 0.5, 1e-12);
        assert_close(prob_sum_greater(3, 1), 0.125, 1e-12);
        assert_close(prob_sum_greater(3, 2), 0.125, 1e-12);
        assert_close(prob_sum_greater(3, 3), 0.0, 1e-12);
        // S is odd for g=3: S > -1 means S ∈ {1,3} (prob 1/2) while
        // S > -2 means S ∈ {-1,1,3} (prob 7/8).
        assert_close(prob_sum_greater(3, -1), 0.5, 1e-12);
        assert_close(prob_sum_greater(3, -2), 0.875, 1e-12);
        assert_close(prob_sum_greater(3, -4), 1.0, 1e-12);
        // g=2: S ∈ {−2, 0, 2} with probs 1/4, 1/2, 1/4.
        assert_close(prob_sum_greater(2, 0), 0.25, 1e-12);
        assert_close(prob_sum_greater(2, -1), 0.75, 1e-12);
    }

    #[test]
    fn sum_tail_degenerate() {
        assert_eq!(prob_sum_greater(0, 0), 0.0);
        assert_eq!(prob_sum_greater(0, -1), 1.0);
        // One flip: Pr[S > 0] = 1/2.
        assert_close(prob_sum_greater(1, 0), 0.5, 1e-12);
    }

    #[test]
    fn abs_tail_is_twice_one_side() {
        assert_close(prob_abs_sum_greater(3, 0), 1.0, 1e-12);
        assert_close(prob_abs_sum_greater(3, 2), 0.25, 1e-12);
        assert_close(prob_abs_sum_greater(4, 0), 0.625, 1e-12); // 1 - Pr[S=0] = 1 - 6/16
    }

    #[test]
    fn expected_abs_sum_exact_small() {
        assert_close(expected_abs_sum(1), 1.0, 1e-10);
        assert_close(expected_abs_sum(2), 1.0, 1e-10); // |S| ∈ {0,2}: 0.5*0+0.5*2
        assert_close(expected_abs_sum(3), 1.5, 1e-10); // 3/8*3*... = (3*1/8*2*(3)+...) check: |S|=3 w.p. 2/8, |S|=1 w.p. 6/8 -> 0.75+0.75=1.5
        assert_close(expected_abs_sum(0), 0.0, 1e-12);
    }

    #[test]
    fn expected_abs_sum_matches_asymptotic() {
        let g = 10_000u64;
        let asym = (2.0 * g as f64 / std::f64::consts::PI).sqrt();
        let exact = expected_abs_sum(g);
        assert!((exact - asym).abs() / asym < 0.01, "{exact} vs {asym}");
    }

    #[test]
    fn paley_zygmund_matches_paper_constant() {
        // For g ≥ n/2 (always true when byz ≤ √n/2 and n ≥ 2), the bound
        // is ≥ 1/12 per the paper.
        for n in [16u64, 64, 256, 1024, 65_536] {
            let b = theorem3_bound(n).expect("precondition holds");
            assert!(b >= 1.0 / 12.0, "n={n}: bound {b} < 1/12");
            assert!(b < 0.34, "PZ bound can't exceed 1/3 here");
        }
    }

    #[test]
    fn paley_zygmund_precondition() {
        assert!(paley_zygmund_one_side(100, 25).is_none()); // θ = 1
        assert!(paley_zygmund_one_side(100, 24).is_none()); // θ > 1
        assert!(paley_zygmund_one_side(100, 26).is_some());
        assert!(paley_zygmund_one_side(100, 0).is_none());
    }

    #[test]
    fn exact_tail_dominates_pz_bound() {
        // The PZ bound must lower-bound the exact probability.
        for n in [64u64, 256, 1024] {
            let byz = ((n as f64).sqrt() / 2.0).floor() as u64;
            let g = n - byz;
            let k = ((n as f64).sqrt() / 2.0) as i64;
            let exact = prob_sum_greater(g, k);
            let bound = paley_zygmund_one_side(n, g).unwrap();
            assert!(exact >= bound, "n={n}: exact {exact} < PZ bound {bound}");
        }
    }

    #[test]
    fn normal_approx_agrees_with_exact_for_large_g() {
        let g = 40_000u64;
        for k in [0i64, 50, 100, 200] {
            let exact = prob_sum_greater(g, k);
            let approx = normal_tail(g, k as f64);
            assert!(
                (exact - approx).abs() < 0.01,
                "g={g} k={k}: {exact} vs {approx}"
            );
        }
    }

    #[test]
    fn erfc_reference_points() {
        assert_close(erfc(0.0), 1.0, 1e-7);
        assert_close(erfc(1.0), 0.157_299_2, 1e-6);
        assert_close(erfc(-1.0), 2.0 - 0.157_299_2, 1e-6);
    }

    #[test]
    fn corruptions_to_deny_basics() {
        // Sum 0 (natural output 1): one corruption of a +1 flipper gives
        // reachable floor 0-2 = -2 ≤ -1... but with sum 0 there may be no
        // +1 flipper only when g=0; formula: need = 1 -> ceil(1/2) = 1.
        assert_eq!(corruptions_to_deny(0, 0), 1);
        assert_eq!(corruptions_to_deny(5, 0), 3); // move s+1 = 6, 2 per corruption
        assert_eq!(corruptions_to_deny(-5, 0), 3); // move |s| = 5 upward, 2 per corruption
        assert_eq!(corruptions_to_deny(5, 2), 2);
        assert_eq!(corruptions_to_deny(5, 6), 0);
        assert_eq!(corruptions_to_deny(-1, 1), 0);
    }

    #[test]
    fn deny_cost_grows_linearly_in_sum() {
        for s in 0..50i64 {
            let c = corruptions_to_deny(s, 0);
            assert_eq!(c, ((s + 1) as u64).div_ceil(2));
        }
    }

    #[test]
    fn survival_probability_exact_small() {
        // g=4, t=1: survive iff S ≥ 2 or S ≤ −3, i.e. S ∈ {2,4} or {−4}.
        // Pr = (4+1)/16 + 1/16 = 6/16.
        assert_close(prob_coin_survives(4, 1), 6.0 / 16.0, 1e-12);
        assert_close(prob_coin_survives(4, 0), 1.0, 1e-12);
        // Budget covers everything: never survives.
        assert_close(prob_coin_survives(4, 3), 0.0, 1e-12);
    }

    #[test]
    fn survival_matches_denial_condition() {
        // Cross-check against corruptions_to_deny by enumeration (g=10).
        let g = 10u64;
        for t in 1..6u64 {
            let mut surviving = 0u64;
            for ones in 0..=g {
                let s = 2 * ones as i64 - g as i64;
                if corruptions_to_deny(s, 0) > t {
                    // weight by C(g, ones)
                    surviving += (ln_choose(g, ones).exp()).round() as u64;
                }
            }
            let direct = surviving as f64 / 2f64.powi(g as i32);
            assert_close(prob_coin_survives(g, t), direct, 1e-9);
        }
    }
}
