//! # aba-coin — common-coin protocols and their analysis
//!
//! Implements Section 3.1 of Dufoulon & Pandurangan (PODC 2025):
//!
//! * [`CoinFlipNode`] — **Algorithm 1** (every node flips ±1, broadcasts,
//!   outputs the sign of the sum) and **Algorithm 2** (only a designated
//!   committee flips; everyone outputs the sign of the committee sum);
//!   the two differ only in the designated set, so one node type covers
//!   both.
//! * [`CommitteePlan`] — the ID-range committee partition used by
//!   Algorithm 3 (`nodes with IDs {1..s}` form committee 1, and so on).
//! * [`analysis`] — the Paley–Zygmund machinery of Theorem 3: the paper's
//!   analytic lower bound on `Pr[|X| > √n/2]` and exact/approximate
//!   binomial anti-concentration probabilities to compare measurements
//!   against.
//!
//! A *common coin* (Definition 2) is a protocol where, with probability
//! at least a constant `δ`, all honest nodes output the same bit, and
//! conditioned on that the bit is bounded away from both 0 and 1. The
//! experiments in `aba-harness` estimate both constants empirically under
//! optimal adaptive rushing attacks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod committee;
pub mod flip;
pub mod msg;

pub use committee::CommitteePlan;
pub use flip::{CoinFlipNode, Designated};
pub use msg::CoinMsg;

/// Common imports.
pub mod prelude {
    pub use crate::analysis;
    pub use crate::committee::CommitteePlan;
    pub use crate::flip::{CoinFlipNode, Designated};
    pub use crate::msg::CoinMsg;
}
