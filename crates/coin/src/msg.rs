//! Wire format of the standalone coin-flip protocols.

use aba_sim::Message;

/// A single ±1 coin contribution (Algorithm 1 line 2 / Algorithm 2
/// line 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CoinMsg {
    /// The contribution; honest nodes send exactly `+1` or `-1`. The
    /// receiver clamps anything else (Byzantine garbage) into `±1` by
    /// sign, treating `0` as `+1`, so malformed values cannot give the
    /// adversary extra leverage beyond choosing a sign.
    pub value: i8,
}

impl CoinMsg {
    /// A `+1` contribution.
    pub const PLUS: CoinMsg = CoinMsg { value: 1 };
    /// A `-1` contribution.
    pub const MINUS: CoinMsg = CoinMsg { value: -1 };

    /// Creates a contribution from a sign.
    pub fn from_sign(positive: bool) -> Self {
        if positive {
            Self::PLUS
        } else {
            Self::MINUS
        }
    }

    /// The contribution this message adds to a tally: strictly `+1` or
    /// `-1` regardless of what is on the wire.
    pub fn clamped(&self) -> i64 {
        if self.value >= 0 {
            1
        } else {
            -1
        }
    }
}

impl Message for CoinMsg {
    fn bit_size(&self) -> usize {
        // One sign bit plus a 2-bit message-type tag a real encoding
        // would carry.
        3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_have_expected_signs() {
        assert_eq!(CoinMsg::PLUS.clamped(), 1);
        assert_eq!(CoinMsg::MINUS.clamped(), -1);
        assert_eq!(CoinMsg::from_sign(true), CoinMsg::PLUS);
        assert_eq!(CoinMsg::from_sign(false), CoinMsg::MINUS);
    }

    #[test]
    fn garbage_is_clamped() {
        assert_eq!(CoinMsg { value: 77 }.clamped(), 1);
        assert_eq!(CoinMsg { value: -77 }.clamped(), -1);
        assert_eq!(CoinMsg { value: 0 }.clamped(), 1);
    }

    #[test]
    fn bit_size_is_constant_and_tiny() {
        assert_eq!(CoinMsg::PLUS.bit_size(), 3);
        assert_eq!(CoinMsg { value: -5 }.bit_size(), 3);
    }
}
