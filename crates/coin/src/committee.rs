//! ID-range committee partitioning (Section 3.2).
//!
//! Algorithm 3 groups the `n` nodes into `c` committees of uniform size
//! `s = n/c` **by ID**: nodes with IDs in `{1..s}` form the first
//! committee, `{s+1..2s}` the second, and so on; the last committee may
//! be short (the paper ignores this; we keep it and treat it as a valid
//! — just smaller — Algorithm 2 committee).

use aba_sim::NodeId;

/// A partition of `0..n` into contiguous ID ranges of size `s` (last one
/// possibly shorter).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitteePlan {
    n: usize,
    size: usize,
    count: usize,
}

impl CommitteePlan {
    /// Builds the plan that splits `n` nodes into (at most) `c`
    /// committees, i.e. committees of size `s = ceil(n/c)`.
    ///
    /// `c` is clamped to `1..=n`, so the plan always has at least one
    /// committee and committees always have at least one member.
    pub fn with_committee_count(n: usize, c: usize) -> Self {
        assert!(n > 0, "empty network");
        let c = c.clamp(1, n);
        let size = n.div_ceil(c);
        let count = n.div_ceil(size);
        CommitteePlan { n, size, count }
    }

    /// Builds the plan with committees of a target `size`
    /// (`s` clamped to `1..=n`); used by the Chor–Coan configuration
    /// where `s = Θ(log n)` regardless of `t`.
    pub fn with_committee_size(n: usize, size: usize) -> Self {
        assert!(n > 0, "empty network");
        let size = size.clamp(1, n);
        let count = n.div_ceil(size);
        CommitteePlan { n, size, count }
    }

    /// Network size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Nominal committee size `s` (the last committee may be smaller).
    pub fn committee_size(&self) -> usize {
        self.size
    }

    /// Number of (non-empty) committees.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The committee a node belongs to (`0`-based).
    pub fn committee_of(&self, node: NodeId) -> usize {
        debug_assert!(node.index() < self.n);
        node.index() / self.size
    }

    /// Whether `node` belongs to committee `idx`.
    pub fn is_member(&self, node: NodeId, idx: usize) -> bool {
        self.committee_of(node) == idx
    }

    /// The ID range of committee `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= count()`.
    pub fn members(&self, idx: usize) -> impl Iterator<Item = NodeId> + Clone {
        assert!(idx < self.count, "committee {idx} out of range");
        let lo = idx * self.size;
        let hi = ((idx + 1) * self.size).min(self.n);
        (lo..hi).map(|i| NodeId::new(i as u32))
    }

    /// The raw ID range of committee `idx` — committees are contiguous
    /// by construction, which is what lets packed-plane tallies filter
    /// committee senders with a word mask instead of a membership scan.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= count()`.
    pub fn id_range(&self, idx: usize) -> std::ops::Range<u32> {
        assert!(idx < self.count, "committee {idx} out of range");
        let lo = idx * self.size;
        let hi = ((idx + 1) * self.size).min(self.n);
        lo as u32..hi as u32
    }

    /// Size of committee `idx` (equals `committee_size()` except possibly
    /// for the last).
    pub fn size_of(&self, idx: usize) -> usize {
        assert!(idx < self.count, "committee {idx} out of range");
        let lo = idx * self.size;
        let hi = ((idx + 1) * self.size).min(self.n);
        hi - lo
    }

    /// The committee used in (1-based) phase `p`, wrapping around for the
    /// Las Vegas variant (Section 3.2: "keep iterating through the
    /// committees, starting over once the c-th committee is reached").
    pub fn committee_for_phase(&self, phase_1based: u64) -> usize {
        debug_assert!(phase_1based >= 1);
        ((phase_1based - 1) % self.count as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_partition() {
        let p = CommitteePlan::with_committee_count(12, 3);
        assert_eq!(p.count(), 3);
        assert_eq!(p.committee_size(), 4);
        assert_eq!(
            p.members(0).map(|v| v.index()).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert_eq!(
            p.members(2).map(|v| v.index()).collect::<Vec<_>>(),
            vec![8, 9, 10, 11]
        );
        assert_eq!(p.size_of(0), 4);
        assert_eq!(p.size_of(2), 4);
    }

    #[test]
    fn ragged_last_committee() {
        let p = CommitteePlan::with_committee_count(10, 3);
        assert_eq!(p.committee_size(), 4);
        assert_eq!(p.count(), 3);
        assert_eq!(p.size_of(2), 2, "last committee is short");
        assert_eq!(
            p.members(2).map(|v| v.index()).collect::<Vec<_>>(),
            vec![8, 9]
        );
    }

    #[test]
    fn ragged_sizes_never_produce_empty_committee() {
        // n=10, c=4 -> s=3 -> committees {0..3},{3..6},{6..9},{9..10}.
        let p = CommitteePlan::with_committee_count(10, 4);
        assert_eq!(p.count(), 4);
        for i in 0..p.count() {
            assert!(p.size_of(i) >= 1);
        }
        // n=10, c=6 -> s=2 -> exactly 5 committees, not 6.
        let p = CommitteePlan::with_committee_count(10, 6);
        assert_eq!(p.count(), 5);
        for i in 0..p.count() {
            assert_eq!(p.size_of(i), 2);
        }
    }

    #[test]
    fn clamping_extremes() {
        let p = CommitteePlan::with_committee_count(5, 0);
        assert_eq!(p.count(), 1);
        assert_eq!(p.committee_size(), 5);
        let p = CommitteePlan::with_committee_count(5, 100);
        assert_eq!(p.count(), 5);
        assert_eq!(p.committee_size(), 1);
        let p = CommitteePlan::with_committee_size(5, 0);
        assert_eq!(p.committee_size(), 1);
        let p = CommitteePlan::with_committee_size(5, 99);
        assert_eq!(p.committee_size(), 5);
        assert_eq!(p.count(), 1);
    }

    #[test]
    fn membership_is_a_partition() {
        let p = CommitteePlan::with_committee_count(23, 5);
        let mut seen = vec![false; 23];
        for c in 0..p.count() {
            for m in p.members(c) {
                assert!(!seen[m.index()], "node {m} in two committees");
                seen[m.index()] = true;
                assert_eq!(p.committee_of(m), c);
                assert!(p.is_member(m, c));
            }
        }
        assert!(seen.into_iter().all(|s| s), "every node in some committee");
    }

    #[test]
    fn id_range_matches_members() {
        for (n, c) in [(12, 3), (10, 3), (10, 4), (23, 5), (5, 100)] {
            let p = CommitteePlan::with_committee_count(n, c);
            for idx in 0..p.count() {
                let r = p.id_range(idx);
                let ids: Vec<u32> = p.members(idx).map(|m| m.raw()).collect();
                assert_eq!((r.start..r.end).collect::<Vec<_>>(), ids, "n={n} c={c}");
            }
        }
    }

    #[test]
    fn phase_schedule_wraps() {
        let p = CommitteePlan::with_committee_count(9, 3);
        assert_eq!(p.committee_for_phase(1), 0);
        assert_eq!(p.committee_for_phase(3), 2);
        assert_eq!(p.committee_for_phase(4), 0);
        assert_eq!(p.committee_for_phase(7), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn members_bounds_checked() {
        let p = CommitteePlan::with_committee_count(4, 2);
        let _ = p.members(2);
    }
}
