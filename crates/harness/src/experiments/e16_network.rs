//! E16 — agreement under weakened synchrony (the `aba-net` subsystem).
//!
//! The paper's guarantees are proved in the lock-step synchronous model.
//! This experiment measures how the paper's protocol and two baselines
//! (Chor–Coan, Phase-King) degrade when that assumption is weakened:
//! lossy links (drop probability sweep) and bounded-delay partial
//! synchrony (delay-bound sweep, random and adversarial schedulers).
//! Reported per cell: agreement rate, termination rate, and the round
//! blow-up relative to the same protocol on the synchronous network.

use super::{agreement_rate, termination_rate, ExpParams};
use crate::facade::ScenarioBuilder;
use crate::report::Report;
use crate::scenario::{AttackSpec, NetworkSpec, ProtocolSpec};
use aba_analysis::{Series, Table};
use aba_net::DelayScheduler;

const PROTOCOLS: [(&str, ProtocolSpec); 3] = [
    ("paper", ProtocolSpec::PaperLasVegas { alpha: 2.0 }),
    ("chor-coan", ProtocolSpec::ChorCoan { beta: 1.0 }),
    ("phase-king", ProtocolSpec::PhaseKing),
];

/// Runs E16.
pub fn run(params: &ExpParams) -> Report {
    let mut report = Report::new("E16", "Agreement under weakened synchrony (aba-net)");
    let (n, t) = if params.quick { (16, 5) } else { (32, 10) };
    let trials = if params.quick { 6 } else { 24 };
    let cap = (24 * n) as u64;

    let run_cell = |proto: ProtocolSpec, net: NetworkSpec| {
        ScenarioBuilder::new(n, t)
            .protocol(proto)
            .adversary(AttackSpec::FullAttack)
            .network(net)
            .seed(params.seed)
            .max_rounds(cap)
            .trials(trials)
            .run_batch()
    };

    // Per-protocol synchronous baselines — reused verbatim as the
    // p_drop = 0 sweep rows (runs are deterministic, so re-running the
    // cell would reproduce these batches exactly).
    let baseline_batches: Vec<_> = PROTOCOLS
        .iter()
        .map(|(_, p)| run_cell(*p, NetworkSpec::Synchronous))
        .collect();
    let baseline: Vec<f64> = baseline_batches.iter().map(|b| b.mean_rounds()).collect();

    // Sweep 1: drop probability.
    let p_drops: &[f64] = if params.quick {
        &[0.0, 0.1, 0.3]
    } else {
        &[0.0, 0.02, 0.05, 0.1, 0.2, 0.3]
    };
    let mut loss_table = Table::new(
        "Lossy links: drop probability sweep (full attack)",
        &[
            "p_drop",
            "protocol",
            "agree%",
            "term%",
            "mean rounds",
            "blow-up",
            "delivery%",
        ],
    );
    let mut loss_series: Vec<Series> = PROTOCOLS
        .iter()
        .map(|(name, _)| Series::new(format!("loss/{name}")))
        .collect();
    for &p_drop in p_drops {
        for (i, (name, proto)) in PROTOCOLS.iter().enumerate() {
            let batch = if p_drop == 0.0 {
                baseline_batches[i].clone()
            } else {
                run_cell(*proto, NetworkSpec::LossyLinks { p_drop })
            };
            let agree = agreement_rate(&batch.results);
            loss_series[i].push(p_drop, agree * 100.0);
            loss_table.push_row(vec![
                p_drop.into(),
                (*name).into(),
                (agree * 100.0).into(),
                (termination_rate(&batch.results) * 100.0).into(),
                batch.mean_rounds().into(),
                (batch.mean_rounds() / baseline[i]).into(),
                (batch.delivery_rate() * 100.0).into(),
            ]);
        }
    }
    report.tables.push(loss_table);
    report.series.extend(loss_series);

    // Sweep 2: delay bound, random and adversarial schedulers.
    let delays: &[u64] = if params.quick { &[1, 3] } else { &[1, 2, 4, 8] };
    let mut delay_table = Table::new(
        "Bounded delay: delay-bound sweep (full attack)",
        &[
            "max_delay",
            "scheduler",
            "protocol",
            "agree%",
            "term%",
            "mean rounds",
            "blow-up",
        ],
    );
    for &max_delay in delays {
        for scheduler in [DelayScheduler::Random, DelayScheduler::DelayHonest] {
            let sched_name = match scheduler {
                DelayScheduler::Random => "random",
                DelayScheduler::DelayHonest => "adversarial",
            };
            for (i, (name, proto)) in PROTOCOLS.iter().enumerate() {
                let batch = run_cell(
                    *proto,
                    NetworkSpec::BoundedDelay {
                        max_delay,
                        scheduler,
                    },
                );
                delay_table.push_row(vec![
                    (max_delay as usize).into(),
                    sched_name.into(),
                    (*name).into(),
                    (agreement_rate(&batch.results) * 100.0).into(),
                    (termination_rate(&batch.results) * 100.0).into(),
                    batch.mean_rounds().into(),
                    (batch.mean_rounds() / baseline[i]).into(),
                ]);
            }
        }
    }
    report.tables.push(delay_table);

    report.note(
        "The paper's guarantees assume lock-step synchrony; this experiment measures \
         degradation outside the model. Observed shape: at p_drop = 0 every protocol matches \
         its synchronous baseline (blow-up 1.0, delivery 100%). Under loss, the committee \
         protocols keep agreement (they only ever decide on supermajority evidence) but \
         termination collapses — lost votes starve the committee quorums, so rounds blow up \
         toward the cap — while Phase-King's fixed schedule ends on time. Under bounded \
         delay the asymmetry sharpens: the round-tagged committee protocols treat late \
         messages as missing (they arrive in a later protocol step), so even a 1-round \
         delay bound stalls termination, whereas Phase-King terminates on schedule but \
         loses agreement — fastest under the adversarial scheduler, which holds exactly \
         the honest traffic to the bound while expediting Byzantine messages."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_e16_shapes_and_baseline_sanity() {
        let r = run(&ExpParams {
            quick: true,
            seed: 16,
        });
        assert_eq!(r.tables.len(), 2);
        // 3 p_drop values × 3 protocols.
        assert_eq!(r.tables[0].rows.len(), 9);
        // 2 delays × 2 schedulers × 3 protocols.
        assert_eq!(r.tables[1].rows.len(), 12);
        assert_eq!(r.series.len(), 3);
        // The p_drop = 0 rows are the synchronous baseline: blow-up 1.0
        // and full delivery.
        for row in &r.tables[0].rows[..3] {
            if let aba_analysis::table::Cell::Float(blowup) = &row[5] {
                assert!((blowup - 1.0).abs() < 1e-9, "baseline blow-up {blowup}");
            } else {
                panic!("expected float blow-up cell");
            }
            if let aba_analysis::table::Cell::Float(delivery) = &row[6] {
                assert!((delivery - 100.0).abs() < 1e-9);
            } else {
                panic!("expected float delivery cell");
            }
        }
    }
}
