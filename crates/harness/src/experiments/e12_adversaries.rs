//! E12 — Adversary ablation matrix (Section 1.1 / Table 4).
//!
//! The paper's model hierarchy made measurable: static < adaptive crash <
//! adaptive Byzantine (non-rushing) < adaptive Byzantine (rushing). Each
//! strategy plays against the Las Vegas paper protocol at fixed `(n, t)`;
//! the table shows how many rounds each information/adaptivity level
//! actually buys the adversary.

use super::{agreement_rate, mean_rounds, ExpParams};
use crate::facade::ScenarioBuilder;
use crate::report::Report;
use crate::scenario::{AttackSpec, ProtocolSpec};
use aba_analysis::Table;
use aba_sim::InfoModel;

/// Runs E12.
pub fn run(params: &ExpParams) -> Report {
    let mut report = Report::new("E12", "Adversary ablation matrix");
    let (n, t, trials) = if params.quick {
        (32, 10, 6)
    } else {
        (128, 42, 20)
    };

    let attacks = [
        AttackSpec::Benign,
        AttackSpec::StaticSilent,
        AttackSpec::StaticMirror,
        AttackSpec::Crash { per_round: 1 },
        AttackSpec::SplitVote,
        AttackSpec::FullAttackFrugal,
        AttackSpec::FullAttack,
    ];

    let mut table = Table::new(
        "Rounds bought by each adversary class",
        &[
            "attack",
            "info model",
            "mean rounds",
            "agree%",
            "corruptions used (mean)",
        ],
    );

    for attack in attacks {
        for info in [InfoModel::NonRushing, InfoModel::Rushing] {
            let results = ScenarioBuilder::new(n, t)
                .protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
                .adversary(attack)
                .info_model(info)
                .seed(params.seed)
                .max_rounds((16 * n) as u64)
                .trials(trials)
                .run_batch()
                .results;
            let used =
                results.iter().map(|r| r.corruptions as f64).sum::<f64>() / results.len() as f64;
            table.push_row(vec![
                attack.name().into(),
                (if info.is_rushing() {
                    "rushing"
                } else {
                    "non-rushing"
                })
                .into(),
                mean_rounds(&results).into(),
                (agreement_rate(&results) * 100.0).into(),
                used.into(),
            ]);
        }
    }

    report.tables.push(table);
    report.note(
        "Paper context (Section 1): the adaptive rushing adversary is the strongest model; \
         static and crash adversaries barely slow the protocol. PASS iff mean rounds increase \
         down the adversary hierarchy and the rushing column dominates non-rushing for the \
         adaptive attacks, while agree% stays 100 everywhere."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_e12_has_matrix_rows() {
        let r = run(&ExpParams {
            quick: true,
            seed: 12,
        });
        assert_eq!(r.tables[0].rows.len(), 14);
    }
}
