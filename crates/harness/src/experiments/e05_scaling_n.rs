//! E5 — Scaling at `t = n^{3/4}` (Section 1.2 / Figure 4).
//!
//! Claim (the paper's worked example): at `t = n^{3/4}` the paper's
//! protocol takes `Õ(√n)` rounds while Chor–Coan needs `Õ(n^{3/4})` —
//! asymptotically separated curves. We sweep `n` with `t = ⌊n^{3/4}⌋`
//! and plot both measured round counts next to both theory shapes.

use super::{mean_rounds, ExpParams};
use crate::facade::ScenarioBuilder;
use crate::report::Report;
use crate::scenario::{AttackSpec, ProtocolSpec};
use aba_analysis::{fit_loglog, theory, Series, Table};

/// Runs E5.
pub fn run(params: &ExpParams) -> Report {
    let mut report = Report::new("E5", "Scaling at t = n^0.75 (Section 1.2)");
    let (ns, trials): (&[usize], usize) = if params.quick {
        (&[128, 256], 3)
    } else {
        (&[128, 256, 512, 1024, 2048], 8)
    };

    let mut paper_series = Series::new("paper measured");
    let mut cc_series = Series::new("chor-coan measured");
    let mut paper_bound = Series::new("paper bound");
    let mut cc_bound = Series::new("cc bound");
    let mut table = Table::new(
        "Rounds at t = n^0.75",
        &["n", "t", "paper", "chor-coan", "paper bound", "cc bound"],
    );

    for &n in ns {
        let t = ((n as f64).powf(0.75) as usize).min((n - 1) / 3);
        let max_rounds = (8 * n) as u64;
        let paper = mean_rounds(
            &ScenarioBuilder::new(n, t)
                .protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
                .adversary(AttackSpec::FullAttack)
                .seed(params.seed)
                .max_rounds(max_rounds)
                .trials(trials)
                .run_batch()
                .results,
        );
        let cc = mean_rounds(
            &ScenarioBuilder::new(n, t)
                .protocol(ProtocolSpec::ChorCoan { beta: 1.0 })
                .adversary(AttackSpec::FullAttack)
                .seed(params.seed)
                .max_rounds(max_rounds)
                .trials(trials)
                .run_batch()
                .results,
        );
        paper_series.push(n as f64, paper);
        cc_series.push(n as f64, cc);
        paper_bound.push(n as f64, theory::paper_bound(n, t));
        cc_bound.push(n as f64, theory::chor_coan_bound(n, t));
        table.push_row(vec![
            n.into(),
            t.into(),
            paper.into(),
            cc.into(),
            theory::paper_bound(n, t).into(),
            theory::chor_coan_bound(n, t).into(),
        ]);
    }

    if let Some(fit) = fit_loglog(&paper_series.points) {
        report.note(format!(
            "paper protocol: rounds ~ n^{:.2} (r²={:.3}); theory predicts an exponent well \
             below Chor-Coan's",
            fit.slope, fit.r_squared
        ));
    }
    if let Some(fit) = fit_loglog(&cc_series.points) {
        report.note(format!(
            "chor-coan: rounds ~ n^{:.2} (r²={:.3})",
            fit.slope, fit.r_squared
        ));
    }
    report.note(
        "Paper claim: at t = n^0.75 the new protocol is polynomially faster — asymptotically. \
         Honest caveat: with base-2 logs the separation n^0.5·log n < n^0.75/log n only opens \
         at n^0.25 > log²n (n ≳ 2^48); at simulable n the example point sits in the parity \
         regime where the paper's own bound says the curves match. PASS therefore iff the \
         paper protocol sits at or below Chor-Coan at every n and both follow the bound's \
         shape; the asymptotic separation is validated analytically in aba-analysis::theory \
         (test `paper_example_point`)."
            .to_string(),
    );
    report.series.push(paper_series);
    report.series.push(cc_series);
    report.series.push(paper_bound);
    report.series.push(cc_bound);
    report.tables.push(table);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_e5_produces_four_series() {
        let r = run(&ExpParams {
            quick: true,
            seed: 4,
        });
        assert_eq!(r.series.len(), 4);
        assert_eq!(r.tables[0].rows.len(), 2);
    }
}
