//! E13 — Sampling-majority convergence threshold (Section 1.3, related
//! work, reference &#91;3&#93; of the paper).
//!
//! The paper notes that the sampling-majority protocol of Augustine,
//! Pandurangan & Robinson converges in polylog rounds when
//! `t = O(√n/polylog n)`, and that its analysis (like Theorem 3) is an
//! anti-concentration argument. We measure the fraction of honest nodes
//! agreeing after `Θ(log²n)` iterations under the poisoning attack, as
//! the budget sweeps through `√n` — the threshold should be visible as a
//! cliff, mirroring E2's coin cliff.

use super::ExpParams;
use crate::report::Report;
use aba_agreement::SamplingMajorityNode;
use aba_analysis::{Series, Table};
use aba_attacks::SamplingPoison;
use aba_sim::{RunReport, SimConfig, Simulation};

fn agreement_fraction(report: &RunReport) -> f64 {
    let outs: Vec<bool> = report
        .outputs
        .iter()
        .zip(&report.honest)
        .filter(|(_, h)| **h)
        .filter_map(|(o, _)| *o)
        .collect();
    if outs.is_empty() {
        return 1.0;
    }
    let ones = outs.iter().filter(|b| **b).count();
    ones.max(outs.len() - ones) as f64 / outs.len() as f64
}

/// Runs E13.
pub fn run(params: &ExpParams) -> Report {
    let mut report = Report::new(
        "E13",
        "Sampling-majority convergence threshold (related work [3])",
    );
    let (n, trials) = if params.quick { (64, 6) } else { (576, 20) };
    let sqrt_n = (n as f64).sqrt();
    let iters = SamplingMajorityNode::recommended_iterations(n);

    let mut series = Series::new("mean agreement fraction");
    let mut table = Table::new(
        "Almost-everywhere agreement vs Byzantine budget",
        &["t", "t/sqrt(n)", "agreement fraction", "full agreement %"],
    );

    let budgets: Vec<usize> = (0..=8)
        .map(|i| (i as f64 * sqrt_n / 2.0) as usize)
        .filter(|t| 3 * t < n)
        .collect();
    for t in budgets {
        // Trials are independent; run them on all cores.
        let mut fractions: Vec<f64> = vec![0.0; trials];
        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(2)
            .min(trials.max(1));
        let chunk = trials.div_ceil(workers);
        crossbeam::scope(|scope| {
            for (w, slot_chunk) in fractions.chunks_mut(chunk).enumerate() {
                let base_seed = params.seed.wrapping_add((w * chunk) as u64);
                scope.spawn(move |_| {
                    for (j, slot) in slot_chunk.iter_mut().enumerate() {
                        let inputs: Vec<bool> = (0..n).map(|k| k % 2 == 0).collect();
                        let nodes = SamplingMajorityNode::network(n, iters, &inputs);
                        let cfg = SimConfig::new(n, t)
                            .with_seed(base_seed.wrapping_add(j as u64))
                            .with_max_rounds(4 * iters + 8);
                        let r = Simulation::new(cfg, nodes, SamplingPoison::eager()).run();
                        *slot = agreement_fraction(&r);
                    }
                });
            }
        })
        .expect("worker panicked");
        let full = fractions.iter().filter(|f| **f >= 1.0 - 1e-12).count();
        let mean = fractions.iter().sum::<f64>() / fractions.len() as f64;
        series.push(t as f64 / sqrt_n, mean);
        table.push_row(vec![
            t.into(),
            (t as f64 / sqrt_n).into(),
            mean.into(),
            (full as f64 * 100.0 / trials as f64).into(),
        ]);
    }

    report.series.push(series);
    report.tables.push(table);
    report.note(format!(
        "n = {n}, {iters} iterations (Θ(log²n)); the poisoning adversary replies with the \
         honest minority value to every query."
    ));
    report.note(
        "Claim ([3], §1.3): convergence tolerates O(√n/polylog n) Byzantine nodes. PASS iff \
         the agreement fraction stays ≈1 for t well below √n and degrades beyond it — the \
         same √n cliff as the committee coin (E2), as both analyses are anti-concentration \
         arguments."
            .to_string(),
    );
    report.note(
        "Contrast with Algorithm 3: sampling uses O(n) messages/round but only achieves \
         almost-everywhere agreement and only below t ≈ √n; the paper's protocol pays O(n²) \
         messages/round for everywhere-agreement at any t < n/3."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_e13_shows_threshold_shape() {
        let r = run(&ExpParams {
            quick: true,
            seed: 13,
        });
        let pts = &r.series[0].points;
        assert!(pts.len() >= 3);
        // Fault-free converges fully.
        assert!(pts[0].1 >= 0.95, "t=0 fraction {}", pts[0].1);
    }
}
