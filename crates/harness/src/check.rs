//! Scenario-level wiring for the `aba-check` subsystem: which lemma
//! oracles a [`Scenario`] arms, the public check/replay entry points,
//! and the failure shrinker.
//!
//! The mapping from scenario to oracles is deliberately conservative —
//! an armed oracle firing must always mean "a claimed guarantee was
//! violated in this run", never "this protocol doesn't make that
//! claim":
//!
//! * **Agreement/validity** arm for the full-agreement protocols
//!   (committee family and Phase-King). The common coin may be
//!   legitimately uncommon, and sampling majority and King–Saia only
//!   promise *almost-everywhere* agreement, so all three stay dormant
//!   there. The whp
//!   paper variant *does* arm them: a low-probability agreement failure
//!   is exactly the event worth flagging with its round.
//! * **Early termination** arms for the paper-family protocols under
//!   [`AttackSpec::FullAttackCapped`] with `q < t` on the synchronous
//!   network (the model the bound is stated for), with the
//!   `min{q²·log n/n, q/log n}` bound of Theorem 2 scaled by the same
//!   generous constants the integration tests use.
//! * **CONGEST** arms everywhere, with a per-edge budget of
//!   `8·(⌈log₂ n⌉ + 2)` bits — every protocol in this workspace is
//!   designed to the `O(log n)` CONGEST discipline.
//! * **Budget monotonicity** arms everywhere (it checks the engine's
//!   own accounting, not a protocol claim).

use crate::runner::{self, CheckDrive, ReplayOutcome, Replayed, TrialResult};
use crate::scenario::{AttackSpec, InputSpec, ProtocolSpec, Scenario};
use aba_check::{shrink_greedy, LemmaSuite, OracleReport};

/// Result of one oracle-checked trial.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckedTrial {
    /// The ordinary trial result (bit-identical to an unchecked run —
    /// oracles observe, they never influence).
    pub result: TrialResult,
    /// What the armed lemma oracles concluded.
    pub oracle: OracleReport,
}

impl CheckedTrial {
    /// Whether no armed oracle fired.
    pub fn is_clean(&self) -> bool {
        self.oracle.is_clean()
    }
}

/// Whether the protocol claims *full* agreement/validity (as opposed to
/// probabilistic commonality or almost-everywhere agreement).
fn full_agreement(p: ProtocolSpec) -> bool {
    !matches!(
        p,
        ProtocolSpec::CommonCoin
            | ProtocolSpec::SamplingMajority { .. }
            | ProtocolSpec::KingSaia { .. }
    )
}

/// Whether the protocol is one of the paper's own variants (the ones
/// Theorem 2's early-termination clause speaks about).
fn paper_family(p: ProtocolSpec) -> bool {
    matches!(
        p,
        ProtocolSpec::Paper { .. }
            | ProtocolSpec::PaperLasVegas { .. }
            | ProtocolSpec::PaperLiteralCoin { .. }
    )
}

/// The CONGEST per-edge-per-round bit budget for an `n`-node network.
pub fn congest_budget_bits(n: usize) -> usize {
    8 * ((n.max(2) as f64).log2().ceil() as usize + 2)
}

/// The early-termination round allowance for corruption cap `q`:
/// Theorem 2's `min{q²·log n/n, q/log n}` shape with the generous
/// constants of the `early_termination` integration tests, widened for
/// per-run (rather than mean) tails.
pub fn early_termination_allowance(n: usize, q: usize) -> u64 {
    let bound = aba_analysis::theory::early_termination_bound(n, q);
    (16.0 * bound + 40.0).ceil() as u64
}

/// Builds the scenario's armed oracle suite (see the module docs for
/// the arming rules).
pub(crate) fn lemma_suite_for(s: &Scenario) -> LemmaSuite {
    let mut suite = LemmaSuite::new()
        .budget_monotonicity()
        .congest(congest_budget_bits(s.n));
    if full_agreement(s.protocol) {
        suite = suite.agreement();
        if let InputSpec::AllSame(b) = s.inputs {
            suite = suite.validity(b);
        }
    }
    // Early termination is a *liveness bound* stated for the paper's
    // synchronous model: under lossy/delayed networks a stalled run is
    // a network effect, not a lemma violation, so the oracle only arms
    // on the synchronous network.
    if paper_family(s.protocol) && matches!(s.network, crate::scenario::NetworkSpec::Synchronous) {
        if let AttackSpec::FullAttackCapped { q } = s.attack {
            if q < s.t {
                suite = suite.early_termination(q, early_termination_allowance(s.n, q));
            }
        }
    }
    suite
}

/// Runs one scenario with its lemma oracles attached — the by-reference
/// hook external orchestrators (the `aba-sweep` executor) schedule
/// checked trials through, mirroring [`crate::run_scenario`].
///
/// # Panics
///
/// Same preconditions as [`crate::run_scenario`].
pub fn check_scenario(s: &Scenario) -> CheckedTrial {
    if s.plane == crate::scenario::PlaneSpec::Sparse {
        if let Some(checked) = runner::drive_scenario_sparse(&CheckDrive, s) {
            return checked;
        }
    }
    runner::drive_scenario(&CheckDrive, s)
}

/// Records one scenario's run as a trace, re-drives the engine from the
/// trace, and returns both trial results. A faithful trace makes them
/// equal field for field — pinned differentially for every network
/// model by `tests/trace_replay.rs`.
///
/// # Panics
///
/// Same preconditions as [`crate::run_scenario`].
pub fn replay_scenario(s: &Scenario) -> ReplayOutcome {
    runner::drive_scenario(&Replayed, s)
}

/// A self-contained failure reproduction: the violating scenario as it
/// ran, and the greedily shrunken scenario that still violates.
#[derive(Debug, Clone, PartialEq)]
pub struct Repro {
    /// The scenario the violation was observed in.
    pub original: Scenario,
    /// The oracle report of the original scenario.
    pub original_oracle: OracleReport,
    /// The minimal failing scenario the shrinker reached.
    pub shrunk: Scenario,
    /// The oracle report of the shrunken scenario.
    pub shrunk_oracle: OracleReport,
    /// Shrink candidates evaluated.
    pub evaluated: usize,
    /// Shrink steps accepted.
    pub accepted: usize,
}

/// Clamps a scenario to network size `n2`, scaling `t` (and a capped
/// attack's `q`) to keep every protocol precondition (`n ≥ 3t + 1`)
/// intact.
fn resized(s: &Scenario, n2: usize) -> Scenario {
    let mut out = s.clone();
    out.n = n2;
    out.t = s.t.min(n2.saturating_sub(1) / 3);
    if let AttackSpec::FullAttackCapped { q } = out.attack {
        out.attack = AttackSpec::FullAttackCapped { q: q.min(out.t) };
    }
    if let AttackSpec::Crash { per_round } = out.attack {
        out.attack = AttackSpec::Crash {
            per_round: per_round.min(out.t.max(1)),
        };
    }
    out
}

/// Greedily shrinks a violating scenario along `n`, the trial seed, and
/// the round prefix, re-running the oracles on every candidate. Returns
/// `None` when the scenario is clean (nothing to shrink).
///
/// Shrinking is deterministic: candidates and the re-check are pure
/// functions of the scenario, so repro artifacts derived from this are
/// byte-identical across runs and worker counts.
///
/// # Panics
///
/// Same preconditions as [`crate::run_scenario`].
pub fn shrink_violation(s: &Scenario) -> Option<Repro> {
    let original = check_scenario(s);
    if original.is_clean() {
        return None;
    }
    // Keep well clear of tiny-committee edge cases: n never shrinks
    // below 8 (or the starting n, if already smaller).
    let min_n = 8.min(s.n);
    let candidates = |c: &Scenario| {
        let mut out = Vec::new();
        for n2 in [c.n / 2, c.n.saturating_sub(1)] {
            if n2 >= min_n && n2 < c.n {
                out.push(resized(c, n2));
            }
        }
        for seed in [0, c.seed / 2] {
            if seed < c.seed {
                let mut v = c.clone();
                v.seed = seed;
                out.push(v);
            }
        }
        out
    };
    // A candidate only counts when the *original* oracle kind still
    // fires — a smaller scenario that trips some other checker is a
    // different bug, not a smaller reproduction of this one.
    let kind = original.oracle.first().expect("violations retained").oracle;
    let still_fails = |c: &CheckedTrial| c.oracle.violations.iter().any(|v| v.oracle == kind);
    let (mut shrunk, stats) = shrink_greedy(
        s.clone(),
        candidates,
        |c| still_fails(&check_scenario(c)),
        24,
    );
    let mut evaluated = stats.evaluated;
    let mut accepted = stats.accepted;
    // Round-prefix shrink: truncate the run right after the first
    // same-kind violation (re-checked — a bound-shaped oracle may need
    // the full run to fire).
    let mut shrunk_checked = check_scenario(&shrunk);
    if let Some(first) = shrunk_checked
        .oracle
        .violations
        .iter()
        .find(|v| v.oracle == kind)
    {
        let prefix = first.round + 1;
        if prefix < shrunk.max_rounds {
            let mut candidate = shrunk.clone();
            candidate.max_rounds = prefix;
            let rechecked = check_scenario(&candidate);
            evaluated += 1;
            if still_fails(&rechecked) {
                shrunk = candidate;
                shrunk_checked = rechecked;
                accepted += 1;
            }
        }
    }
    Some(Repro {
        original: s.clone(),
        original_oracle: original.oracle,
        shrunk,
        shrunk_oracle: shrunk_checked.oracle,
        evaluated,
        accepted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::NetworkSpec;

    #[test]
    fn clean_scenarios_check_clean_and_do_not_shrink() {
        let s = Scenario::new(16, 5)
            .with_protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
            .with_attack(AttackSpec::Benign)
            .with_inputs(InputSpec::AllSame(true));
        let checked = check_scenario(&s);
        assert!(checked.is_clean(), "{:?}", checked.oracle.violations);
        assert!(checked.result.correct());
        assert_eq!(shrink_violation(&s), None);
    }

    #[test]
    fn checked_result_matches_unchecked_run() {
        // Oracles observe; they must never perturb the trial itself.
        let s = Scenario::new(16, 5)
            .with_attack(AttackSpec::FullAttack)
            .with_network(NetworkSpec::LossyLinks { p_drop: 0.1 })
            .with_max_rounds(400)
            .with_seed(9);
        assert_eq!(check_scenario(&s).result, crate::runner::run_scenario(&s));
    }

    #[test]
    fn resizing_keeps_preconditions() {
        let s = Scenario::new(64, 21).with_attack(AttackSpec::FullAttackCapped { q: 20 });
        let r = resized(&s, 16);
        assert_eq!(r.n, 16);
        assert_eq!(r.t, 5);
        assert_eq!(r.attack, AttackSpec::FullAttackCapped { q: 5 });
        assert!(r.n > 3 * r.t);
    }

    #[test]
    fn sparse_checked_trials_match_dense_and_stay_clean() {
        // The lemma oracles attach directly to the sparse plane; the
        // checked result (CongestEdgeBound armed) must match the dense
        // run field for field and stay violation-free.
        for proto in [
            ProtocolSpec::SamplingMajority { iters: 6 },
            ProtocolSpec::KingSaia { iters: 4 },
        ] {
            let dense = Scenario::new(24, 7)
                .with_protocol(proto)
                .with_attack(AttackSpec::SamplingPoison)
                .with_seed(5);
            let sparse = dense.clone().with_plane(crate::scenario::PlaneSpec::Sparse);
            let d = check_scenario(&dense);
            let sp = check_scenario(&sparse);
            assert_eq!(d.result, sp.result, "{}", proto.name());
            assert_eq!(d.oracle, sp.oracle, "{}", proto.name());
            assert!(
                sp.is_clean(),
                "{}: {:?}",
                proto.name(),
                sp.oracle.violations
            );
        }
    }

    #[test]
    fn suite_arming_rules() {
        // Paper + capped attack with q < t arms early termination; the
        // coin and sampling protocols never arm agreement.
        let capped = Scenario::new(31, 10)
            .with_protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
            .with_attack(AttackSpec::FullAttackCapped { q: 3 });
        let checked = check_scenario(&capped);
        assert!(checked.is_clean(), "{:?}", checked.oracle.violations);
        let coin = Scenario::new(36, 9)
            .with_protocol(ProtocolSpec::CommonCoin)
            .with_attack(AttackSpec::CoinKiller);
        // The coin killer reliably defeats commonality at this (n, t) —
        // the trial records it, but no oracle may fire (the coin's
        // failure probability is a *claimed* outcome, not a violation).
        let checked = check_scenario(&coin);
        assert!(checked.is_clean(), "{:?}", checked.oracle.violations);
    }
}
