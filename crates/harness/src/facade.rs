//! The blessed run API: [`ScenarioBuilder`] composes protocol ×
//! adversary × parameters and executes trials; [`BatchReport`]
//! aggregates them.
//!
//! Every example, integration test, and experiment in this workspace
//! constructs runs through this facade — there is exactly one way to run
//! an experiment. The builder is re-exported at the root of the
//! `adaptive-ba` crate:
//!
//! ```
//! use aba_harness::{AttackSpec, ProtocolSpec, ScenarioBuilder};
//!
//! let report = ScenarioBuilder::new(16, 5)
//!     .protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
//!     .adversary(AttackSpec::FullAttack)
//!     .seed(42)
//!     .trials(8)
//!     .run_batch();
//! assert_eq!(report.agreement_rate(), 1.0);
//! ```

use crate::check::CheckedTrial;
use crate::runner::{self, TrialResult};
use crate::scenario::{AttackSpec, InputSpec, NetworkSpec, PlaneSpec, ProtocolSpec, Scenario};
use aba_agreement::CommitteeBa;
use aba_sim::adversary::Adversary;
use aba_sim::InfoModel;

/// Builder-style facade over the whole experiment stack.
///
/// Defaults mirror [`Scenario::new`]: the paper's whp protocol (α = 2),
/// the adaptive rushing full attack, split inputs, rushing information
/// model, seed 0, a 20 000-round cap, and a single trial.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioBuilder {
    scenario: Scenario,
    trials: usize,
}

impl ScenarioBuilder {
    /// Starts a scenario for `n` nodes with corruption budget `t`.
    pub fn new(n: usize, t: usize) -> Self {
        ScenarioBuilder {
            scenario: Scenario::new(n, t),
            trials: 1,
        }
    }

    /// Wraps an existing declarative [`Scenario`].
    pub fn from_scenario(scenario: Scenario) -> Self {
        ScenarioBuilder {
            scenario,
            trials: 1,
        }
    }

    /// Selects the protocol under test.
    #[must_use]
    pub fn protocol(mut self, p: ProtocolSpec) -> Self {
        self.scenario.protocol = p;
        self
    }

    /// Selects the adversary.
    #[must_use]
    pub fn adversary(mut self, a: AttackSpec) -> Self {
        self.scenario.attack = a;
        self
    }

    /// Selects the input assignment.
    #[must_use]
    pub fn inputs(mut self, i: InputSpec) -> Self {
        self.scenario.inputs = i;
        self
    }

    /// Selects the information model (rushing vs non-rushing).
    #[must_use]
    pub fn info_model(mut self, m: InfoModel) -> Self {
        self.scenario.info = m;
        self
    }

    /// Selects the network conditions (synchronous by default).
    #[must_use]
    pub fn network(mut self, net: NetworkSpec) -> Self {
        self.scenario.network = net;
        self
    }

    /// Sets the master seed of the first trial (trial `i` runs at
    /// `seed + i`).
    #[must_use]
    pub fn seed(mut self, s: u64) -> Self {
        self.scenario.seed = s;
        self
    }

    /// Sets the hard round cap; runs hitting it count as non-terminating.
    #[must_use]
    pub fn max_rounds(mut self, r: u64) -> Self {
        self.scenario.max_rounds = r;
        self
    }

    /// Sets the number of trials executed by [`ScenarioBuilder::run_batch`].
    #[must_use]
    pub fn trials(mut self, k: usize) -> Self {
        self.trials = k;
        self
    }

    /// Selects the message plane. [`PlaneSpec::Packed`] routes
    /// committee-family runs through the bit-packed binary plane;
    /// protocols without a packed codec silently stay dense so the
    /// switch is always safe to set campaign-wide.
    #[must_use]
    pub fn plane(mut self, p: PlaneSpec) -> Self {
        self.scenario.plane = p;
        self
    }

    /// Sets the in-round worker count (default 1 = serial). Results are
    /// byte-identical at any thread count; this only trades wall-clock
    /// for cores on large `n`.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.scenario.threads = threads;
        self
    }

    /// The underlying declarative scenario.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Runs a single trial at the configured seed.
    ///
    /// # Panics
    ///
    /// Panics if `(n, t)` violates the selected protocol's precondition
    /// (`n ≥ 3t + 1` for the agreement protocols).
    pub fn run(&self) -> TrialResult {
        runner::run_scenario(&self.scenario)
    }

    /// Runs a single trial with the scenario's lemma oracles attached
    /// (agreement at decision, validity, early termination under a
    /// capped adversary, the CONGEST edge bound, and corruption-budget
    /// accounting — see `aba-check`). The trial result is bit-identical
    /// to [`ScenarioBuilder::run`]; the oracle report carries every
    /// violation with the round it first became observable.
    ///
    /// # Panics
    ///
    /// Same preconditions as [`ScenarioBuilder::run`].
    pub fn check(&self) -> CheckedTrial {
        crate::check::check_scenario(&self.scenario)
    }

    /// Runs a single trial with the deterministic observability channel
    /// attached on top of [`ScenarioBuilder::check`]: the result and
    /// oracle report are identical, plus the trial's structured event
    /// log and metrics registry (see `aba-obs`).
    ///
    /// # Panics
    ///
    /// Same preconditions as [`ScenarioBuilder::run`].
    pub fn observe(&self) -> crate::observe::ObservedTrial {
        crate::observe::observe_scenario(&self.scenario)
    }

    /// Runs a single trial with the causal provenance layer attached on
    /// top of [`ScenarioBuilder::observe`]: the result, oracle report,
    /// event log, and metrics are identical, plus each node's decision
    /// cone, the per-node communication profile, the causal-graph
    /// exporters, and — when honest deciders disagree — the violation
    /// blame set (see `aba-obs::provenance` and `aba-check::blame`).
    ///
    /// # Panics
    ///
    /// Same preconditions as [`ScenarioBuilder::run`].
    pub fn provenance(&self) -> crate::provenance::ProvenancedTrial {
        crate::provenance::provenance_scenario(&self.scenario)
    }

    /// Runs the configured number of trials with oracles attached, in
    /// parallel (seeds `seed..seed + trials`), in seed order.
    ///
    /// # Panics
    ///
    /// Same preconditions as [`ScenarioBuilder::run`].
    pub fn check_batch(&self) -> Vec<CheckedTrial> {
        runner::run_many_with(&self.scenario, self.trials, crate::check::check_scenario)
    }

    /// Runs the configured number of trials in parallel (seeds
    /// `seed..seed + trials`) and aggregates them.
    ///
    /// # Panics
    ///
    /// Same preconditions as [`ScenarioBuilder::run`].
    pub fn run_batch(&self) -> BatchReport {
        BatchReport {
            results: runner::run_many(&self.scenario, self.trials),
            scenario: self.scenario.clone(),
        }
    }

    /// Runs a single trial of the configured committee-family protocol
    /// against a caller-supplied adversary — the escape hatch for custom
    /// attack research (see `examples/custom_adversary.rs`).
    ///
    /// # Panics
    ///
    /// Panics if the configured protocol is not committee-based: custom
    /// adversaries are typed against [`CommitteeBa`].
    pub fn run_with<A>(&self, adversary: A) -> TrialResult
    where
        A: Adversary<CommitteeBa>,
    {
        runner::run_committee_custom(&self.scenario, adversary)
    }

    /// Runs the configured number of trials against caller-supplied
    /// adversaries, one fresh instance per trial from `make` (called with
    /// the trial's seed).
    ///
    /// # Panics
    ///
    /// Same preconditions as [`ScenarioBuilder::run_with`].
    pub fn run_batch_with<A, F>(&self, make: F) -> BatchReport
    where
        A: Adversary<CommitteeBa>,
        F: Fn(u64) -> A + Sync,
    {
        let results = runner::run_many_with(&self.scenario, self.trials, |s| {
            runner::run_committee_custom(s, make(s.seed))
        });
        BatchReport {
            results,
            scenario: self.scenario.clone(),
        }
    }
}

/// Runs one fully-specified scenario to completion — the by-reference
/// runner hook for external orchestrators (the `aba-sweep` campaign
/// executor schedules individual `(cell, trial)` tasks through this,
/// reusing the same monomorphized protocol × adversary × network
/// dispatch as [`ScenarioBuilder::run`] without cloning the scenario).
///
/// # Panics
///
/// Panics if the scenario's `(n, t)` violates a protocol precondition
/// (`n ≥ 3t + 1` for the agreement protocols).
pub fn run_scenario(s: &Scenario) -> TrialResult {
    runner::run_scenario(s)
}

/// Aggregated outcome of a batch of trials.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// The base scenario (trial `i` ran at `scenario.seed + i`).
    pub scenario: Scenario,
    /// Per-trial results, in seed order.
    pub results: Vec<TrialResult>,
}

impl BatchReport {
    /// Number of trials.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    fn rate(&self, pred: impl Fn(&TrialResult) -> bool) -> f64 {
        if self.results.is_empty() {
            return f64::NAN;
        }
        self.results.iter().filter(|r| pred(r)).count() as f64 / self.results.len() as f64
    }

    fn mean(&self, f: impl Fn(&TrialResult) -> f64) -> f64 {
        if self.results.is_empty() {
            return f64::NAN;
        }
        self.results.iter().map(f).sum::<f64>() / self.results.len() as f64
    }

    /// Fraction of trials where all honest outputs agreed.
    pub fn agreement_rate(&self) -> f64 {
        self.rate(|r| r.agreement)
    }

    /// Fraction of trials that terminated before the round cap.
    pub fn termination_rate(&self) -> f64 {
        self.rate(|r| r.terminated)
    }

    /// Fraction of trials satisfying Definition 1 outright.
    pub fn correct_rate(&self) -> f64 {
        self.rate(TrialResult::correct)
    }

    /// Whether every trial satisfied Definition 1.
    pub fn all_correct(&self) -> bool {
        self.results.iter().all(TrialResult::correct)
    }

    /// Mean rounds to termination (censored trials count at the cap).
    pub fn mean_rounds(&self) -> f64 {
        self.mean(|r| r.rounds as f64)
    }

    /// Worst-case rounds over the batch.
    pub fn max_rounds(&self) -> u64 {
        self.results.iter().map(|r| r.rounds).max().unwrap_or(0)
    }

    /// Nearest-rank percentile of rounds-to-termination over the batch
    /// (`p` in `(0, 100]`; e.g. `rounds_percentile(50.0)` is the median,
    /// `rounds_percentile(95.0)` the p95). Censored trials count at the
    /// round cap. Returns 0 for an empty batch.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p ≤ 100`.
    pub fn rounds_percentile(&self, p: f64) -> u64 {
        assert!(p > 0.0 && p <= 100.0, "percentile must be in (0, 100]");
        if self.results.is_empty() {
            return 0;
        }
        let mut rounds: Vec<u64> = self.results.iter().map(|r| r.rounds).collect();
        rounds.sort_unstable();
        aba_analysis::percentile_nearest_rank(&rounds, p)
    }

    /// Merges another batch of the same scenario axes into this one.
    ///
    /// The operation is **associative and order-invariant**: trials are
    /// interleaved by their per-trial seed (a stable sort), so any merge
    /// tree over the same set of partial batches yields the same report.
    /// This is the facade-level counterpart of `aba-sweep`'s mergeable
    /// cell accumulators — use it to aggregate a batch incrementally
    /// (e.g. growing a batch until an interval is tight) without
    /// re-running earlier trials. The base scenario keeps the smallest
    /// seed seen, preserving the "trial `i` ran at `seed + i`" reading
    /// for contiguous seed ranges.
    ///
    /// # Panics
    ///
    /// Panics if the two reports disagree on any scenario axis other
    /// than the seed, or if their seed ranges overlap — merging
    /// different cells (or the same trial twice, which would silently
    /// double-weight it) is a bug, not data.
    pub fn merge(&mut self, other: &BatchReport) {
        let mut a = self.scenario.clone();
        let mut b = other.scenario.clone();
        a.seed = 0;
        b.seed = 0;
        assert_eq!(a, b, "merged batches must share every non-seed axis");
        if other.results.is_empty() {
            return;
        }
        // Build and validate the merged list before touching self, so a
        // rejected merge leaves the report untouched.
        let mut merged: Vec<TrialResult> = self
            .results
            .iter()
            .chain(other.results.iter())
            .cloned()
            .collect();
        merged.sort_by_key(|r| r.seed);
        if let Some(w) = merged.windows(2).find(|w| w[0].seed == w[1].seed) {
            panic!(
                "merged batches overlap: trial seed {} appears twice",
                w[0].seed
            );
        }
        if self.results.is_empty() {
            self.scenario.seed = other.scenario.seed;
        } else {
            self.scenario.seed = self.scenario.seed.min(other.scenario.seed);
        }
        self.results = merged;
    }

    /// Mean messages the network dropped per trial.
    pub fn mean_dropped(&self) -> f64 {
        self.mean(|r| r.dropped as f64)
    }

    /// Mean delay events per trial.
    pub fn mean_delayed(&self) -> f64 {
        self.mean(|r| r.delayed as f64)
    }

    /// Fraction of emitted messages the network actually delivered
    /// (1.0 under the synchronous network; `NaN` on an empty batch).
    pub fn delivery_rate(&self) -> f64 {
        if self.results.is_empty() {
            return f64::NAN;
        }
        let emitted: usize = self.results.iter().map(|r| r.messages).sum();
        if emitted == 0 {
            return 1.0;
        }
        let delivered: usize = self.results.iter().map(|r| r.delivered).sum();
        delivered as f64 / emitted as f64
    }

    /// Mean corruptions the adversary actually performed.
    pub fn mean_corruptions(&self) -> f64 {
        self.mean(|r| r.corruptions as f64)
    }

    /// Mean point-to-point messages per round.
    pub fn mean_messages_per_round(&self) -> f64 {
        self.mean(|r| r.messages as f64 / (r.rounds.max(1)) as f64)
    }

    /// Mean honest-majority agreement fraction (the almost-everywhere
    /// metric). Summed in `total_cmp` value order so the mean is
    /// bit-identical however the batch was assembled or merged.
    pub fn mean_agree_fraction(&self) -> f64 {
        let fracs: Vec<f64> = self.results.iter().map(|r| r.agree_fraction).collect();
        aba_analysis::stats::mean_value_ordered(&fracs)
    }

    /// Among agreeing trials, the fraction that decided `b` (`NaN` if no
    /// trial agreed) — e.g. the conditional coin bias of Definition 2.
    pub fn decision_rate(&self, b: bool) -> f64 {
        let agreed: Vec<_> = self.results.iter().filter(|r| r.agreement).collect();
        if agreed.is_empty() {
            return f64::NAN;
        }
        agreed.iter().filter(|r| r.decision == Some(b)).count() as f64 / agreed.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_round_trips_every_axis() {
        let b = ScenarioBuilder::new(64, 10)
            .protocol(ProtocolSpec::ChorCoan { beta: 1.0 })
            .adversary(AttackSpec::Benign)
            .inputs(InputSpec::AllSame(true))
            .info_model(InfoModel::NonRushing)
            .network(NetworkSpec::LossyLinks { p_drop: 0.1 })
            .seed(42)
            .max_rounds(99)
            .trials(3);
        let s = b.scenario();
        assert_eq!((s.n, s.t, s.seed, s.max_rounds), (64, 10, 42, 99));
        assert_eq!(s.protocol.name(), "chor-coan");
        assert_eq!(s.attack.name(), "benign");
        assert_eq!(s.network.name(), "lossy");
        assert!(!s.info.is_rushing());
    }

    #[test]
    fn rounds_percentile_nearest_rank() {
        // Deterministic protocol: every trial of Phase-King at the same
        // (n, t) under benign conditions takes the same rounds, so the
        // percentile must equal that constant at every p.
        let report = ScenarioBuilder::new(10, 3)
            .protocol(ProtocolSpec::PhaseKing)
            .adversary(AttackSpec::Benign)
            .inputs(InputSpec::AllSame(true))
            .trials(4)
            .run_batch();
        let median = report.rounds_percentile(50.0);
        assert_eq!(median, report.rounds_percentile(95.0));
        assert_eq!(median, report.max_rounds());
        // Hand-checked nearest-rank on a synthetic batch.
        let mut synth = report.clone();
        for (i, r) in synth.results.iter_mut().enumerate() {
            r.rounds = (i as u64 + 1) * 10; // 10, 20, 30, 40
        }
        assert_eq!(synth.rounds_percentile(25.0), 10);
        assert_eq!(synth.rounds_percentile(50.0), 20);
        assert_eq!(synth.rounds_percentile(75.0), 30);
        assert_eq!(synth.rounds_percentile(76.0), 40);
        assert_eq!(synth.rounds_percentile(100.0), 40);
    }

    #[test]
    fn merge_of_split_halves_equals_one_shot() {
        let base = ScenarioBuilder::new(16, 5)
            .protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
            .adversary(AttackSpec::SplitVote)
            .seed(100);
        let whole = base.clone().trials(8).run_batch();
        let first = base.clone().trials(4).run_batch();
        let second = base.clone().seed(104).trials(4).run_batch();
        // Merge in either order: both equal the one-shot batch.
        let mut ab = first.clone();
        ab.merge(&second);
        assert_eq!(ab, whole);
        let mut ba = second.clone();
        ba.merge(&first);
        assert_eq!(ba, whole);
    }

    #[test]
    fn merge_is_associative_even_interleaved() {
        let base = ScenarioBuilder::new(16, 5)
            .protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
            .adversary(AttackSpec::SplitVote);
        // Three non-contiguous single-trial batches at seeds 5, 1, 3.
        let parts: Vec<BatchReport> = [5u64, 1, 3]
            .iter()
            .map(|s| base.clone().seed(*s).trials(1).run_batch())
            .collect();
        let mut left = parts[0].clone();
        left.merge(&parts[1]);
        left.merge(&parts[2]);
        let mut right = parts[2].clone();
        let mut bc = parts[1].clone();
        bc.merge(&parts[0]);
        right.merge(&bc);
        assert_eq!(left, right);
        let seeds: Vec<u64> = left.results.iter().map(|r| r.seed).collect();
        assert_eq!(seeds, vec![1, 3, 5], "trials interleave by seed");
        assert_eq!(left.scenario.seed, 1, "base seed is the minimum");
    }

    #[test]
    fn mean_agree_fraction_is_bitwise_order_invariant() {
        // The mean sums in total_cmp value order, so reordering the
        // result list must not move even the last bit.
        let report = ScenarioBuilder::new(16, 5)
            .protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
            .adversary(AttackSpec::SplitVote)
            .trials(8)
            .run_batch();
        let canonical = report.mean_agree_fraction();
        let mut reversed = report.clone();
        reversed.results.reverse();
        assert_eq!(
            canonical.to_bits(),
            reversed.mean_agree_fraction().to_bits()
        );
        let mut rotated = report.clone();
        for _ in 1..report.len() {
            rotated.results.rotate_left(1);
            assert_eq!(canonical.to_bits(), rotated.mean_agree_fraction().to_bits());
        }
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let base = ScenarioBuilder::new(16, 5).adversary(AttackSpec::Benign);
        let full = base.clone().trials(2).run_batch();
        let empty = base.clone().seed(900).trials(0).run_batch();
        let mut merged = full.clone();
        merged.merge(&empty);
        assert_eq!(merged, full);
        let mut from_empty = empty.clone();
        from_empty.merge(&full);
        assert_eq!(from_empty.results, full.results);
        assert_eq!(from_empty.scenario.seed, full.scenario.seed);
    }

    #[test]
    #[should_panic(expected = "appears twice")]
    fn merge_rejects_overlapping_seed_ranges() {
        // Growing a batch by re-running a superset range would silently
        // double-weight the shared trials; the merge must refuse.
        let base = ScenarioBuilder::new(16, 5).adversary(AttackSpec::Benign);
        let mut four = base.clone().seed(100).trials(4).run_batch();
        let eight = base.clone().seed(100).trials(8).run_batch();
        four.merge(&eight);
    }

    #[test]
    #[should_panic(expected = "non-seed axis")]
    fn merge_rejects_mismatched_axes() {
        let a = ScenarioBuilder::new(16, 5).trials(1).run_batch();
        let b = ScenarioBuilder::new(16, 5)
            .adversary(AttackSpec::Benign)
            .trials(1)
            .run_batch();
        let mut a = a;
        a.merge(&b);
    }

    #[test]
    fn empty_batch_percentile_is_zero() {
        let report = ScenarioBuilder::new(7, 2).trials(0).run_batch();
        assert_eq!(report.rounds_percentile(50.0), 0);
        assert!(report.delivery_rate().is_nan());
    }

    #[test]
    fn synchronous_network_delivers_everything() {
        let report = ScenarioBuilder::new(16, 5)
            .protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
            .adversary(AttackSpec::FullAttack)
            .trials(3)
            .run_batch();
        assert_eq!(report.delivery_rate(), 1.0);
        assert_eq!(report.mean_dropped(), 0.0);
        assert_eq!(report.mean_delayed(), 0.0);
        for r in &report.results {
            assert_eq!(r.network, "sync");
            assert_eq!(r.delivered, r.messages);
        }
    }

    #[test]
    fn lossy_network_loses_traffic_but_stays_deterministic() {
        let b = ScenarioBuilder::new(16, 5)
            .protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
            .adversary(AttackSpec::FullAttack)
            .network(NetworkSpec::LossyLinks { p_drop: 0.1 })
            .max_rounds(500)
            .trials(3);
        let a = b.run_batch();
        let c = b.run_batch();
        assert_eq!(a.results, c.results, "same seeds, same drops");
        assert!(a.delivery_rate() < 1.0);
        assert!(a.mean_dropped() > 0.0);
        for r in &a.results {
            assert_eq!(r.network, "lossy");
            assert_eq!(r.delivered + r.dropped, r.messages);
        }
    }

    #[test]
    fn single_run_and_batch_agree_on_first_seed() {
        let b = ScenarioBuilder::new(16, 5)
            .protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
            .adversary(AttackSpec::SplitVote)
            .seed(9)
            .trials(3);
        let single = b.run();
        let batch = b.run_batch();
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.results[0], single);
    }

    #[test]
    fn batch_aggregates() {
        let report = ScenarioBuilder::new(16, 5)
            .protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
            .adversary(AttackSpec::Benign)
            .inputs(InputSpec::AllSame(true))
            .trials(4)
            .run_batch();
        assert_eq!(report.len(), 4);
        assert!(report.all_correct());
        assert_eq!(report.agreement_rate(), 1.0);
        assert_eq!(report.termination_rate(), 1.0);
        assert_eq!(report.correct_rate(), 1.0);
        assert_eq!(report.decision_rate(true), 1.0);
        assert_eq!(report.mean_agree_fraction(), 1.0);
        assert!(report.mean_rounds() >= 1.0);
        assert!(report.max_rounds() as f64 >= report.mean_rounds());
        assert!(report.mean_messages_per_round() > 0.0);
    }

    #[test]
    fn empty_batch_rates_are_nan() {
        let report = ScenarioBuilder::new(7, 2).trials(0).run_batch();
        assert!(report.is_empty());
        assert!(report.agreement_rate().is_nan());
        assert!(report.mean_rounds().is_nan());
        assert!(report.decision_rate(true).is_nan());
        assert_eq!(report.max_rounds(), 0);
    }

    #[test]
    fn common_coin_protocol_reports_commonality() {
        // Fault-free Algorithm 1 always yields a common coin.
        let report = ScenarioBuilder::new(32, 0)
            .protocol(ProtocolSpec::CommonCoin)
            .adversary(AttackSpec::Benign)
            .trials(6)
            .run_batch();
        assert_eq!(report.agreement_rate(), 1.0);
        for r in &report.results {
            assert!(r.terminated);
            assert_eq!(r.validity, None, "the coin has no validity notion");
            assert!(r.decision.is_some());
        }
    }

    #[test]
    fn sampling_majority_protocol_runs() {
        let r = ScenarioBuilder::new(64, 4)
            .protocol(ProtocolSpec::SamplingMajority { iters: 0 })
            .adversary(AttackSpec::SamplingPoison)
            .max_rounds(4_000)
            .run();
        assert!(r.terminated);
        assert!((0.5..=1.0).contains(&r.agree_fraction), "{r:?}");
    }

    #[test]
    fn mismatched_attack_degrades_visibly() {
        // Coin-specific attack against a committee protocol and vice
        // versa must dispatch to the strongest applicable adversary —
        // and the substitution must be recorded in the result.
        let r = ScenarioBuilder::new(16, 5)
            .protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
            .adversary(AttackSpec::CoinKiller)
            .run();
        assert!(r.terminated && r.agreement);
        assert_ne!(r.adversary, AttackSpec::CoinKiller.name());
        assert!(r.downgraded, "the substitution is flagged");
        let r = ScenarioBuilder::new(36, 3)
            .protocol(ProtocolSpec::CommonCoin)
            .adversary(AttackSpec::FullAttack)
            .run();
        assert!(r.terminated);
        assert_ne!(r.adversary, AttackSpec::FullAttack.name());
        assert!(r.downgraded);
        // A matched pair records the adversary it asked for.
        let r = ScenarioBuilder::new(16, 5)
            .protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
            .adversary(AttackSpec::Benign)
            .run();
        assert_eq!(r.adversary, "benign");
        assert!(!r.downgraded);
    }

    #[test]
    fn check_attaches_oracles_without_perturbing_the_trial() {
        let b = ScenarioBuilder::new(16, 5)
            .protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
            .adversary(AttackSpec::FullAttack)
            .seed(4)
            .trials(2);
        let checked = b.check();
        assert!(checked.is_clean(), "{:?}", checked.oracle.violations);
        assert_eq!(checked.result, b.run());
        let batch = b.check_batch();
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0], checked);
        let plain = b.run_batch();
        for (c, p) in batch.iter().zip(&plain.results) {
            assert_eq!(&c.result, p);
        }
    }

    #[test]
    fn custom_adversary_escape_hatch() {
        use aba_adversary::Benign;
        let b = ScenarioBuilder::new(16, 5)
            .protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
            .inputs(InputSpec::AllSame(true))
            .trials(2);
        let single = b.run_with(Benign);
        assert!(single.correct());
        let batch = b.run_batch_with(|_seed| Benign);
        assert_eq!(batch.len(), 2);
        assert!(batch.all_correct());
    }

    #[test]
    #[should_panic(expected = "committee-family")]
    fn custom_adversary_rejects_non_committee_protocol() {
        let _ = ScenarioBuilder::new(16, 5)
            .protocol(ProtocolSpec::PhaseKing)
            .run_with(aba_adversary::Benign);
    }
}
