//! # aba-harness — experiment definitions and the parallel trial runner
//!
//! Turns the protocols, adversaries, and analysis tools of the workspace
//! into the reproducible experiment suite documented in EXPERIMENTS.md.
//! Each experiment E1–E15 regenerates one table or figure validating a
//! quantitative claim of the paper. Run them with the `aba-experiments`
//! binary:
//!
//! ```text
//! aba-experiments --exp all --quick --out results/
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;
pub mod runner;
pub mod scenario;

pub use report::Report;
pub use runner::{run_many, run_scenario, TrialResult};
pub use scenario::{AttackSpec, InputSpec, ProtocolSpec, Scenario};
