//! # aba-harness — the ScenarioBuilder facade and the trial runner
//!
//! This crate owns the **one blessed way to run an experiment**: the
//! [`ScenarioBuilder`] facade, which composes protocol × adversary ×
//! parameters declaratively and executes trials on all cores. On top of
//! it sit the campaign orchestration subsystem (`aba-sweep`) and the
//! reproducible experiments E1–E16 documented in EXPERIMENTS.md at the
//! repository root (run them with `aba-experiments`, which lives in
//! `aba-sweep`). External orchestrators schedule individual trials
//! through the [`run_scenario`] hook, reusing the same monomorphized
//! dispatch as the facade.
//!
//! ## Running a scenario
//!
//! ```
//! use aba_harness::{AttackSpec, ProtocolSpec, ScenarioBuilder};
//!
//! let result = ScenarioBuilder::new(16, 5)
//!     .protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
//!     .adversary(AttackSpec::FullAttack)
//!     .seed(7)
//!     .run();
//! assert!(result.correct());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod facade;
pub mod observe;
pub mod provenance;
pub mod report;
pub(crate) mod runner;
pub mod scenario;

pub use check::{check_scenario, replay_scenario, shrink_violation, CheckedTrial, Repro};
pub use facade::{run_scenario, BatchReport, ScenarioBuilder};
pub use observe::{observe_replay, observe_scenario, ObservedReplay, ObservedTrial};
pub use provenance::{provenance_replay, provenance_scenario, ProvenancedReplay, ProvenancedTrial};
pub use report::Report;
pub use runner::{ReplayOutcome, TrialResult};
pub use scenario::{AttackSpec, InputSpec, NetworkSpec, PlaneSpec, ProtocolSpec, Scenario};

// Re-export the oracle report types so facade users need only this
// crate to inspect check results.
pub use aba_check::{BlameReport, OracleReport, Violation};

// `NetworkSpec::BoundedDelay` carries an `aba-net` scheduler; re-export
// it so facade users need only this crate.
pub use aba_net::DelayScheduler;
