//! Declarative description of one simulation trial.
//!
//! A [`Scenario`] fully determines a run: protocol, adversary, input
//! assignment, sizes, seed, and information model. The runner
//! monomorphizes over the concrete protocol/adversary combination at
//! dispatch time so the simulation loop stays static-dispatch fast.

use aba_net::DelayScheduler;
use aba_sim::InfoModel;

/// Which agreement protocol to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProtocolSpec {
    /// The paper's Algorithm 3, whp mode (exactly `c` phases).
    Paper {
        /// Committee-count constant α.
        alpha: f64,
    },
    /// The paper's Las Vegas variant (Section 3.2).
    PaperLasVegas {
        /// Committee-count constant α.
        alpha: f64,
    },
    /// Same as `PaperLasVegas` but with the literal 3-round phases.
    PaperLiteralCoin {
        /// Committee-count constant α.
        alpha: f64,
    },
    /// Chor–Coan baseline: `Θ(log n)`-size committees, Las Vegas.
    ChorCoan {
        /// Committee-size constant β (size = ⌈β·log₂ n⌉).
        beta: f64,
    },
    /// Rabin's trusted-dealer protocol.
    RabinDealer,
    /// Ben-Or-style private-coin baseline (no shared coin at all).
    BenOrPrivate,
    /// Deterministic Phase-King baseline.
    PhaseKing,
    /// One-shot common coin (Algorithm 1: the whole network flips).
    ///
    /// `agreement` in the [`crate::TrialResult`] means the coin was
    /// *common*; `decision` is the coin value; validity is vacuous.
    CommonCoin,
    /// Sampling-majority dynamic (almost-everywhere agreement baseline,
    /// Section 1.3). `iters = 0` uses the recommended `Θ(log² n)` count.
    SamplingMajority {
        /// Sampling iterations (0 = recommended for `n`).
        iters: u64,
    },
    /// King–Saia-style sampled-committee agreement (*Breaking the O(n²)
    /// Bit Barrier*): public `Θ(log² n)` committee on the pinned
    /// committee RNG stream, sub-quadratic on the wire. `iters = 0`
    /// uses the recommended `Θ(log n)` count.
    KingSaia {
        /// Protocol iterations (0 = recommended for `n`).
        iters: u64,
    },
}

impl ProtocolSpec {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            ProtocolSpec::Paper { .. } => "paper",
            ProtocolSpec::PaperLasVegas { .. } => "paper-lv",
            ProtocolSpec::PaperLiteralCoin { .. } => "paper-literal",
            ProtocolSpec::ChorCoan { .. } => "chor-coan",
            ProtocolSpec::RabinDealer => "rabin-dealer",
            ProtocolSpec::BenOrPrivate => "ben-or-private",
            ProtocolSpec::PhaseKing => "phase-king",
            ProtocolSpec::CommonCoin => "common-coin",
            ProtocolSpec::SamplingMajority { .. } => "sampling-majority",
            ProtocolSpec::KingSaia { .. } => "king-saia",
        }
    }
}

/// Which adversary to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttackSpec {
    /// No corruptions at all.
    Benign,
    /// Static silent adversary corrupting the `t` lowest IDs at round 0.
    StaticSilent,
    /// Static equivocating replayer.
    StaticMirror,
    /// Adaptive crash faults, `per_round` crashes per round.
    Crash {
        /// Crashes per round.
        per_round: usize,
    },
    /// The pure coin-splitting adversary.
    SplitVote,
    /// The combined adaptive rushing attack (greedy budget).
    FullAttack,
    /// The combined attack with the frugal budget policy.
    FullAttackFrugal,
    /// The combined attack capped at `q` corruptions (early-termination
    /// experiments).
    FullAttackCapped {
        /// Corruption cap `q ≤ t`.
        q: usize,
    },
    /// The optimal coin-denial adversary (Algorithm 1/2-aware). Only
    /// meaningful against [`super::ProtocolSpec::CommonCoin`]; other
    /// protocols degrade it to their strongest applicable attack.
    CoinKiller,
    /// The sampling-majority poisoner. Only meaningful against
    /// [`super::ProtocolSpec::SamplingMajority`]; other protocols degrade
    /// it to their strongest applicable attack.
    SamplingPoison,
}

impl AttackSpec {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            AttackSpec::Benign => "benign",
            AttackSpec::StaticSilent => "static-silent",
            AttackSpec::StaticMirror => "static-mirror",
            AttackSpec::Crash { .. } => "crash",
            AttackSpec::SplitVote => "split-vote",
            AttackSpec::FullAttack => "full-attack",
            AttackSpec::FullAttackFrugal => "full-frugal",
            AttackSpec::FullAttackCapped { .. } => "full-capped",
            AttackSpec::CoinKiller => "coin-killer",
            AttackSpec::SamplingPoison => "sampling-poison",
        }
    }
}

/// Input assignment across the `n` nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputSpec {
    /// Every node starts with `b` (validity experiments).
    AllSame(bool),
    /// Even IDs start 1, odd IDs start 0 (the adversary's favourite).
    Split,
    /// Node `i` starts with bit `i` of a seeded pseudorandom pattern.
    Random,
}

impl InputSpec {
    /// Materializes the assignment.
    pub fn materialize(&self, n: usize, seed: u64) -> Vec<bool> {
        match self {
            InputSpec::AllSame(b) => vec![*b; n],
            InputSpec::Split => (0..n).map(|i| i % 2 == 0).collect(),
            InputSpec::Random => {
                let mut state = seed ^ 0xC0FF_EE00_D15E_A5E5;
                (0..n)
                    .map(|_| aba_sim::rng::splitmix64(&mut state) & 1 == 1)
                    .collect()
            }
        }
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            InputSpec::AllSame(true) => "all-1",
            InputSpec::AllSame(false) => "all-0",
            InputSpec::Split => "split",
            InputSpec::Random => "random",
        }
    }
}

/// Which network conditions the messages travel under.
///
/// Declarative counterpart of the `aba-net` models; the runner
/// instantiates the concrete model (seeded from the scenario's master
/// seed on the dedicated network RNG stream) at dispatch time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NetworkSpec {
    /// Lock-step synchrony: every message delivered in its emission
    /// round (the paper's model; the default).
    Synchronous,
    /// Each directed message is independently dropped with probability
    /// `p_drop`.
    LossyLinks {
        /// Per-message drop probability in `[0, 1]`.
        p_drop: f64,
    },
    /// Bounded-delay partial synchrony: every message arrives within
    /// `max_delay` rounds of emission.
    BoundedDelay {
        /// The delay bound (0 degenerates to synchrony).
        max_delay: u64,
        /// Who picks each message's delay within the bound.
        scheduler: DelayScheduler,
    },
    /// A striped partition (node `i` in group `i % groups`) that heals
    /// at `heal_round`.
    Partition {
        /// Number of groups (≥ 1).
        groups: usize,
        /// First round at which cross-group traffic flows again.
        heal_round: u64,
    },
}

impl NetworkSpec {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            NetworkSpec::Synchronous => "sync",
            NetworkSpec::LossyLinks { .. } => "lossy",
            NetworkSpec::BoundedDelay {
                scheduler: DelayScheduler::Random,
                ..
            } => "bounded-delay",
            NetworkSpec::BoundedDelay {
                scheduler: DelayScheduler::DelayHonest,
                ..
            } => "bounded-delay-adv",
            NetworkSpec::Partition { .. } => "partition",
        }
    }
}

/// Which message plane a run stores its rounds on.
///
/// Purely an execution-strategy knob: both planes reproduce the same
/// observable semantics, so `TrialResult`s are identical either way —
/// the packed plane is just faster at large `n` for binary protocols.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlaneSpec {
    /// The dense broadcast-base + deviation-cell mailbox (the default;
    /// works for every protocol).
    #[default]
    Dense,
    /// The bit-packed binary plane (u64 bitset rows, word-parallel
    /// tallies). Only the committee-BA family runs on it; the runner's
    /// packed entry point reports other protocols as unsupported.
    Packed,
    /// The sparse adjacency plane (per-sender receiver lists, never an
    /// `n × n` allocation). The sampled / sub-quadratic protocol family
    /// runs on it; other protocols fall back to the dense plane.
    Sparse,
}

impl PlaneSpec {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            PlaneSpec::Dense => "dense",
            PlaneSpec::Packed => "packed",
            PlaneSpec::Sparse => "sparse",
        }
    }
}

/// A fully specified trial.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Network size.
    pub n: usize,
    /// Fault budget `t` (protocol parameter and adversary budget).
    pub t: usize,
    /// Protocol under test.
    pub protocol: ProtocolSpec,
    /// Adversary.
    pub attack: AttackSpec,
    /// Input assignment.
    pub inputs: InputSpec,
    /// Information model.
    pub info: InfoModel,
    /// Network conditions.
    pub network: NetworkSpec,
    /// Master seed.
    pub seed: u64,
    /// Round cap (runs hitting it count as non-terminating).
    pub max_rounds: u64,
    /// In-round worker threads for the per-node protocol step (1 =
    /// serial). Results are byte-identical at any thread count.
    pub threads: usize,
    /// Message plane to run on (execution strategy only; results are
    /// identical across planes).
    pub plane: PlaneSpec,
}

impl Scenario {
    /// A scenario with sensible defaults: paper protocol (α = 2), full
    /// attack, split inputs, rushing, synchronous network, 20 000-round
    /// cap.
    pub fn new(n: usize, t: usize) -> Self {
        Scenario {
            n,
            t,
            protocol: ProtocolSpec::Paper { alpha: 2.0 },
            attack: AttackSpec::FullAttack,
            inputs: InputSpec::Split,
            info: InfoModel::Rushing,
            network: NetworkSpec::Synchronous,
            seed: 0,
            max_rounds: 20_000,
            threads: 1,
            plane: PlaneSpec::Dense,
        }
    }

    /// Sets the protocol.
    #[must_use]
    pub fn with_protocol(mut self, p: ProtocolSpec) -> Self {
        self.protocol = p;
        self
    }

    /// Sets the adversary.
    #[must_use]
    pub fn with_attack(mut self, a: AttackSpec) -> Self {
        self.attack = a;
        self
    }

    /// Sets the inputs.
    #[must_use]
    pub fn with_inputs(mut self, i: InputSpec) -> Self {
        self.inputs = i;
        self
    }

    /// Sets the info model.
    #[must_use]
    pub fn with_info(mut self, m: InfoModel) -> Self {
        self.info = m;
        self
    }

    /// Sets the network conditions.
    #[must_use]
    pub fn with_network(mut self, net: NetworkSpec) -> Self {
        self.network = net;
        self
    }

    /// Sets the seed.
    #[must_use]
    pub fn with_seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Sets the round cap.
    #[must_use]
    pub fn with_max_rounds(mut self, r: u64) -> Self {
        self.max_rounds = r;
        self
    }

    /// Sets the in-round worker thread count (clamped to ≥ 1 at run
    /// time; 0 is treated as 1).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the message plane.
    #[must_use]
    pub fn with_plane(mut self, plane: PlaneSpec) -> Self {
        self.plane = plane;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inputs_materialize() {
        assert_eq!(InputSpec::AllSame(true).materialize(3, 0), vec![true; 3]);
        let split = InputSpec::Split.materialize(4, 0);
        assert_eq!(split, vec![true, false, true, false]);
        let r1 = InputSpec::Random.materialize(64, 7);
        let r2 = InputSpec::Random.materialize(64, 7);
        assert_eq!(r1, r2, "deterministic in seed");
        let r3 = InputSpec::Random.materialize(64, 8);
        assert_ne!(r1, r3, "varies with seed");
        assert!(r1.iter().any(|b| *b) && r1.iter().any(|b| !*b));
    }

    #[test]
    fn names_are_short_and_stable() {
        assert_eq!(ProtocolSpec::Paper { alpha: 2.0 }.name(), "paper");
        assert_eq!(ProtocolSpec::KingSaia { iters: 0 }.name(), "king-saia");
        assert_eq!(AttackSpec::FullAttack.name(), "full-attack");
        assert_eq!(InputSpec::Split.name(), "split");
        assert_eq!(InputSpec::AllSame(false).name(), "all-0");
        assert_eq!(NetworkSpec::Synchronous.name(), "sync");
        assert_eq!(NetworkSpec::LossyLinks { p_drop: 0.1 }.name(), "lossy");
        assert_eq!(
            NetworkSpec::BoundedDelay {
                max_delay: 2,
                scheduler: DelayScheduler::Random
            }
            .name(),
            "bounded-delay"
        );
        assert_eq!(
            NetworkSpec::BoundedDelay {
                max_delay: 2,
                scheduler: DelayScheduler::DelayHonest
            }
            .name(),
            "bounded-delay-adv"
        );
        assert_eq!(
            NetworkSpec::Partition {
                groups: 2,
                heal_round: 5
            }
            .name(),
            "partition"
        );
    }

    #[test]
    fn builder_chain() {
        let s = Scenario::new(64, 10)
            .with_protocol(ProtocolSpec::ChorCoan { beta: 1.0 })
            .with_attack(AttackSpec::Benign)
            .with_inputs(InputSpec::AllSame(true))
            .with_info(InfoModel::NonRushing)
            .with_network(NetworkSpec::LossyLinks { p_drop: 0.2 })
            .with_seed(42)
            .with_max_rounds(99);
        assert_eq!(s.n, 64);
        assert_eq!(s.seed, 42);
        assert_eq!(s.max_rounds, 99);
        assert_eq!(s.protocol.name(), "chor-coan");
        assert_eq!(s.network.name(), "lossy");
    }

    #[test]
    fn default_network_is_synchronous() {
        assert_eq!(Scenario::new(7, 2).network, NetworkSpec::Synchronous);
    }

    #[test]
    fn plane_and_threads_default_dense_and_serial() {
        let s = Scenario::new(8, 2);
        assert_eq!(s.threads, 1);
        assert_eq!(s.plane, PlaneSpec::Dense);
        let s = s.with_threads(4).with_plane(PlaneSpec::Packed);
        assert_eq!(s.threads, 4);
        assert_eq!(s.plane.name(), "packed");
        assert_eq!(PlaneSpec::Sparse.name(), "sparse");
        assert_eq!(PlaneSpec::default().name(), "dense");
    }
}
