//! Scenario-level entry points for causal provenance tracing: run a
//! trial with the [`ProvenanceProbe`] (and
//! the full deterministic channel) attached, getting back each node's
//! decision cone, the per-node communication profile, and — when honest
//! deciders disagree — the violation blame set; or run the live-vs-
//! replay differential over all of it.
//!
//! Everything here lives on **logical time**: the provenance artifacts
//! ([`ProvenanceProbe::summary`](aba_obs::ProvenanceProbe::summary),
//! the DOT/line-JSON causal graphs, the flow-annotated Chrome trace)
//! are pure functions of the scenario — byte-identical across
//! processes, worker counts, thread counts, and (as
//! [`provenance_replay`] pins) between a live run and its trace replay.

use crate::runner::{self, ProvenanceDrive, ProvenancedReplayDrive, TrialResult};
use crate::scenario::Scenario;
use aba_check::{BlameReport, OracleReport};
use aba_obs::{chrome_trace_with_flows, EventLog, MetricsRegistry, ProvenanceProbe};

/// Result of one provenance-traced, oracle-checked trial.
#[derive(Debug, Clone, PartialEq)]
pub struct ProvenancedTrial {
    /// The ordinary trial result (bit-identical to an uninstrumented
    /// run — probes and oracles observe, they never influence).
    pub result: TrialResult,
    /// What the armed lemma oracles concluded.
    pub oracle: OracleReport,
    /// The deterministic event log (with one `violation` event per
    /// retained oracle violation appended).
    pub events: EventLog,
    /// The deterministic metrics registry, including the `prov.*`
    /// per-node traffic and cone histograms.
    pub metrics: MetricsRegistry,
    /// The provenance layer: decision cones, influence sets, per-node
    /// traffic, per-round arrival relations, and the exporters.
    pub provenance: ProvenanceProbe,
    /// Blame for an honest-decider disagreement (empty when all honest
    /// deciders agreed — the common case).
    pub blame: BlameReport,
}

impl ProvenancedTrial {
    /// Whether no armed oracle fired.
    pub fn is_clean(&self) -> bool {
        self.oracle.is_clean()
    }

    /// Deterministic text artifact: the per-node provenance summary,
    /// followed by the blame line when a disagreement was traced.
    pub fn summary(&self) -> String {
        let mut out = self.provenance.summary();
        if !self.blame.is_empty() {
            out.push_str("blame ");
            out.push_str(&self.blame.render());
            out.push('\n');
        }
        out
    }

    /// The causal graph in DOT form (see
    /// [`ProvenanceProbe::dot_graph`](aba_obs::ProvenanceProbe::dot_graph)).
    pub fn dot_graph(&self) -> String {
        self.provenance.dot_graph()
    }

    /// The causal graph as line-JSON (see
    /// [`ProvenanceProbe::jsonl_graph`](aba_obs::ProvenanceProbe::jsonl_graph)).
    pub fn jsonl_graph(&self) -> String {
        self.provenance.jsonl_graph()
    }

    /// The trial's Chrome trace with adversary-influence flow events
    /// spliced in (see [`chrome_trace_with_flows`]).
    pub fn chrome_trace(&self) -> String {
        chrome_trace_with_flows(&self.events, &self.provenance)
    }
}

/// Both sides of a record/replay differential with the provenance layer
/// captured on each (see [`provenance_replay`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ProvenancedReplay {
    /// The live run's trial result.
    pub live: TrialResult,
    /// The replayed run's trial result.
    pub replayed: TrialResult,
    /// Event log captured during the live run (oracle-less, so it is
    /// comparable to the replay's).
    pub live_events: EventLog,
    /// Event log captured during the replay.
    pub replayed_events: EventLog,
    /// Provenance captured during the live run.
    pub live_provenance: ProvenanceProbe,
    /// Provenance captured during the replay.
    pub replayed_provenance: ProvenanceProbe,
}

impl ProvenancedReplay {
    /// Whether the replay reproduced the live trial result bit for bit.
    pub fn is_faithful(&self) -> bool {
        self.live == self.replayed
    }

    /// Whether every provenance artifact matched byte for byte: the
    /// per-node summaries, both causal-graph exports, and the
    /// flow-annotated Chrome traces.
    pub fn artifacts_match(&self) -> bool {
        let (a, b) = (&self.live_provenance, &self.replayed_provenance);
        a.summary() == b.summary()
            && a.dot_graph() == b.dot_graph()
            && a.jsonl_graph() == b.jsonl_graph()
            && chrome_trace_with_flows(&self.live_events, a)
                == chrome_trace_with_flows(&self.replayed_events, b)
    }
}

/// Runs one scenario with the causal provenance layer (plus the
/// deterministic channel and the scenario's lemma oracles) attached —
/// the provenance sibling of [`crate::observe_scenario`].
///
/// # Panics
///
/// Same preconditions as [`crate::run_scenario`].
pub fn provenance_scenario(s: &Scenario) -> ProvenancedTrial {
    runner::drive_scenario(&ProvenanceDrive, s)
}

/// Records one scenario's run with the provenance probe attached,
/// re-drives it from the trace with a fresh probe, and returns both
/// provenance layers — the differential pinning that decision cones and
/// causal graphs are functions of engine behaviour, not of how the run
/// was driven.
///
/// # Panics
///
/// Same preconditions as [`crate::run_scenario`].
pub fn provenance_replay(s: &Scenario) -> ProvenancedReplay {
    runner::drive_scenario(&ProvenancedReplayDrive, s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::AttackSpec;
    use aba_sim::NodeId;

    #[test]
    fn provenanced_trial_matches_plain_run() {
        let s = Scenario::new(16, 5).with_attack(AttackSpec::FullAttack);
        let plain = runner::run_scenario(&s);
        let traced = provenance_scenario(&s);
        assert_eq!(plain, traced.result, "probes must not perturb the run");
        // Every node ends with a frozen cone, and a halted node's cone
        // includes itself.
        for i in 0..16 {
            let stats = traced.provenance.explain(NodeId::new(i)).expect("frozen");
            assert!(stats.width >= 1);
            assert!(traced.provenance.in_cone(NodeId::new(i), NodeId::new(i)));
        }
        // Per-node metrics landed in the registry.
        assert_eq!(traced.metrics.counter("prov.trials"), 1);
        assert!(traced.summary().contains("node v0 "));
    }

    #[test]
    fn provenance_is_deterministic() {
        let s = Scenario::new(16, 5).with_attack(AttackSpec::SplitVote);
        let a = provenance_scenario(&s);
        let b = provenance_scenario(&s);
        assert_eq!(a.summary(), b.summary());
        assert_eq!(a.dot_graph(), b.dot_graph());
        assert_eq!(a.jsonl_graph(), b.jsonl_graph());
        assert_eq!(a.chrome_trace(), b.chrome_trace());
    }

    #[test]
    fn replay_reproduces_provenance_artifacts() {
        let s = Scenario::new(16, 5).with_attack(AttackSpec::FullAttack);
        let r = provenance_replay(&s);
        assert!(r.is_faithful());
        assert!(r.artifacts_match());
    }

    #[test]
    fn clean_run_has_empty_blame() {
        let s = Scenario::new(16, 5).with_attack(AttackSpec::Benign);
        let traced = provenance_scenario(&s);
        assert!(traced.is_clean());
        assert!(traced.blame.is_empty());
        assert!(!traced.summary().contains("blame "));
    }
}
