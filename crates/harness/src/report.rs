//! Experiment report: a bundle of tables, series, and notes that gets
//! rendered to stdout (markdown) and to disk (markdown + CSV + JSON).

use aba_analysis::{Series, Table};
use std::io::Write as _;
use std::path::Path;

/// One experiment's rendered output.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Experiment identifier (e.g. "E3").
    pub id: String,
    /// Human title.
    pub title: String,
    /// Result tables.
    pub tables: Vec<Table>,
    /// Figure series (grouped by figure: label prefix "fig/curve").
    pub series: Vec<Series>,
    /// Free-form observations, including the paper-vs-measured verdicts.
    pub notes: Vec<String>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        Report {
            id: id.into(),
            title: title.into(),
            ..Default::default()
        }
    }

    /// Appends a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Renders everything as one markdown document.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("## {} — {}\n\n", self.id, self.title);
        for t in &self.tables {
            out.push_str(&t.to_markdown());
            out.push('\n');
        }
        if !self.series.is_empty() {
            out.push_str(&aba_analysis::table::series_to_markdown(
                &format!("{} series", self.id),
                "x",
                &self.series,
            ));
            out.push('\n');
            // ASCII rendering of the figure: log–log when the data spans
            // a decade in strictly positive x, linear otherwise.
            let xs: Vec<f64> = self
                .series
                .iter()
                .flat_map(|s| s.points.iter().map(|p| p.0))
                .collect();
            let positive = xs.iter().all(|x| *x > 0.0)
                && self
                    .series
                    .iter()
                    .flat_map(|s| s.points.iter().map(|p| p.1))
                    .all(|y| y > 0.0);
            let spans_decade = match (
                xs.iter().cloned().reduce(f64::min),
                xs.iter().cloned().reduce(f64::max),
            ) {
                (Some(lo), Some(hi)) => lo > 0.0 && hi / lo >= 10.0,
                _ => false,
            };
            let opts = if positive && spans_decade {
                aba_analysis::PlotOptions::loglog()
            } else {
                aba_analysis::PlotOptions::default()
            };
            out.push_str("```text\n");
            out.push_str(&aba_analysis::render_plot(&self.series, &opts));
            out.push_str("```\n\n");
        }
        for n in &self.notes {
            out.push_str(&format!("> {n}\n"));
        }
        out.push('\n');
        out
    }

    /// Writes markdown, CSV (one file per table), and a JSON dump under
    /// `dir`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let md_path = dir.join(format!("{}.md", self.id));
        std::fs::write(&md_path, self.to_markdown())?;
        for (i, t) in self.tables.iter().enumerate() {
            let csv_path = dir.join(format!("{}_table{}.csv", self.id, i));
            std::fs::write(&csv_path, t.to_csv())?;
        }
        let json_path = dir.join(format!("{}.json", self.id));
        let mut f = std::fs::File::create(json_path)?;
        f.write_all(self.to_json().as_bytes())?;
        Ok(())
    }

    /// Renders the report as a JSON document (hand-rolled: this workspace
    /// builds without network access, so no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"id\": {},\n", json_str(&self.id)));
        out.push_str(&format!("  \"title\": {},\n", json_str(&self.title)));
        out.push_str("  \"tables\": [");
        for (i, t) in self.tables.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"title\": {}, ", json_str(&t.title)));
            out.push_str(&format!(
                "\"columns\": [{}], ",
                t.columns
                    .iter()
                    .map(|c| json_str(c))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
            out.push_str("\"rows\": [");
            for (j, row) in t.rows.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "[{}]",
                    row.iter().map(json_cell).collect::<Vec<_>>().join(", ")
                ));
            }
            out.push_str("]}");
        }
        out.push_str("\n  ],\n  \"series\": [");
        for (i, s) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"label\": {}, ", json_str(&s.label)));
            out.push_str("\"points\": [");
            for (j, (x, y)) in s.points.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("[{}, {}]", json_num(*x), json_num(*y)));
            }
            out.push_str("]}");
        }
        out.push_str("\n  ],\n  \"notes\": [");
        for (i, n) in self.notes.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_str(n));
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Escapes a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders an f64 as a JSON number (JSON has no NaN/Infinity: use null).
fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Renders one table cell as a JSON value.
fn json_cell(c: &aba_analysis::table::Cell) -> String {
    use aba_analysis::table::Cell;
    match c {
        Cell::Text(s) => json_str(s),
        Cell::Int(i) => i.to_string(),
        Cell::Float(x) => json_num(*x),
        Cell::Empty => "null".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aba_analysis::table::Cell;

    #[test]
    fn markdown_rendering() {
        let mut r = Report::new("E0", "smoke");
        let mut t = Table::new("tbl", &["a"]);
        t.push_row(vec![Cell::Int(1)]);
        r.tables.push(t);
        r.series
            .push(Series::from_points("curve", vec![(1.0, 2.0)]));
        r.note("looks right");
        let md = r.to_markdown();
        assert!(md.contains("## E0 — smoke"));
        assert!(md.contains("### tbl"));
        assert!(md.contains("> looks right"));
        assert!(md.contains("curve"));
    }

    #[test]
    fn writes_files() {
        let dir = std::env::temp_dir().join("aba_report_test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut r = Report::new("E9", "files");
        let mut t = Table::new("tbl", &["x"]);
        t.push_row(vec![Cell::Float(1.5)]);
        r.tables.push(t);
        r.write_to(&dir).unwrap();
        assert!(dir.join("E9.md").exists());
        assert!(dir.join("E9_table0.csv").exists());
        assert!(dir.join("E9.json").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
