//! Experiment report: a bundle of tables, series, and notes that gets
//! rendered to stdout (markdown) and to disk (markdown + CSV + JSON).

use aba_analysis::{Series, Table};
use serde::{Deserialize, Serialize};
use std::io::Write as _;
use std::path::Path;

/// One experiment's rendered output.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct Report {
    /// Experiment identifier (e.g. "E3").
    pub id: String,
    /// Human title.
    pub title: String,
    /// Result tables.
    pub tables: Vec<Table>,
    /// Figure series (grouped by figure: label prefix "fig/curve").
    pub series: Vec<Series>,
    /// Free-form observations, including the paper-vs-measured verdicts.
    pub notes: Vec<String>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        Report {
            id: id.into(),
            title: title.into(),
            ..Default::default()
        }
    }

    /// Appends a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Renders everything as one markdown document.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("## {} — {}\n\n", self.id, self.title);
        for t in &self.tables {
            out.push_str(&t.to_markdown());
            out.push('\n');
        }
        if !self.series.is_empty() {
            out.push_str(&aba_analysis::table::series_to_markdown(
                &format!("{} series", self.id),
                "x",
                &self.series,
            ));
            out.push('\n');
            // ASCII rendering of the figure: log–log when the data spans
            // a decade in strictly positive x, linear otherwise.
            let xs: Vec<f64> = self
                .series
                .iter()
                .flat_map(|s| s.points.iter().map(|p| p.0))
                .collect();
            let positive = xs.iter().all(|x| *x > 0.0)
                && self
                    .series
                    .iter()
                    .flat_map(|s| s.points.iter().map(|p| p.1))
                    .all(|y| y > 0.0);
            let spans_decade = match (
                xs.iter().cloned().reduce(f64::min),
                xs.iter().cloned().reduce(f64::max),
            ) {
                (Some(lo), Some(hi)) => lo > 0.0 && hi / lo >= 10.0,
                _ => false,
            };
            let opts = if positive && spans_decade {
                aba_analysis::PlotOptions::loglog()
            } else {
                aba_analysis::PlotOptions::default()
            };
            out.push_str("```text\n");
            out.push_str(&aba_analysis::render_plot(&self.series, &opts));
            out.push_str("```\n\n");
        }
        for n in &self.notes {
            out.push_str(&format!("> {n}\n"));
        }
        out.push('\n');
        out
    }

    /// Writes markdown, CSV (one file per table), and a JSON dump under
    /// `dir`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let md_path = dir.join(format!("{}.md", self.id));
        std::fs::write(&md_path, self.to_markdown())?;
        for (i, t) in self.tables.iter().enumerate() {
            let csv_path = dir.join(format!("{}_table{}.csv", self.id, i));
            std::fs::write(&csv_path, t.to_csv())?;
        }
        let json_path = dir.join(format!("{}.json", self.id));
        let mut f = std::fs::File::create(json_path)?;
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        f.write_all(json.as_bytes())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aba_analysis::table::Cell;

    #[test]
    fn markdown_rendering() {
        let mut r = Report::new("E0", "smoke");
        let mut t = Table::new("tbl", &["a"]);
        t.push_row(vec![Cell::Int(1)]);
        r.tables.push(t);
        r.series.push(Series::from_points("curve", vec![(1.0, 2.0)]));
        r.note("looks right");
        let md = r.to_markdown();
        assert!(md.contains("## E0 — smoke"));
        assert!(md.contains("### tbl"));
        assert!(md.contains("> looks right"));
        assert!(md.contains("curve"));
    }

    #[test]
    fn writes_files() {
        let dir = std::env::temp_dir().join("aba_report_test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut r = Report::new("E9", "files");
        let mut t = Table::new("tbl", &["x"]);
        t.push_row(vec![Cell::Float(1.5)]);
        r.tables.push(t);
        r.write_to(&dir).unwrap();
        assert!(dir.join("E9.md").exists());
        assert!(dir.join("E9_table0.csv").exists());
        assert!(dir.join("E9.json").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
