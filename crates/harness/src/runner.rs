//! Trial execution: scenario dispatch and the parallel batch runner.
//!
//! This module is the *engine room* of the [`crate::ScenarioBuilder`]
//! facade: it monomorphizes the declarative [`Scenario`] into a concrete
//! protocol/adversary pair and runs it. It is crate-private on purpose —
//! downstream code composes runs exclusively through the facade.
//!
//! Execution is factored through the [`Drive`] strategy so the one
//! attack-dispatch table serves three run modes: [`Plain`] (just the
//! [`TrialResult`]), [`CheckDrive`] (the lemma oracles from `aba-check`
//! attached via the engine's oracle seam), and [`Replayed`] (record the
//! run, re-drive it from the trace, return both results — the
//! differential that pins trace fidelity).

use crate::check::{lemma_suite_for, CheckedTrial};
use crate::scenario::{AttackSpec, NetworkSpec, PlaneSpec, ProtocolSpec, Scenario};
use aba_adversary::{AdaptiveCrash, Benign, BudgetCapped, StaticBehavior, StaticByzantine};
use aba_agreement::{
    BaConfig, BaMsg, CoinRoundMode, CommitteeBa, KingSaiaNode, PhaseKingBa, SamplingMajorityNode,
};
use aba_attacks::{
    AdaptiveFullAttack, BudgetPolicy, CoinKiller, NonRushingPolicy, SamplingPoison, SplitVote,
};
use aba_check::TraceRecorder;
use aba_coin::CoinFlipNode;
use aba_net::{BoundedDelay, LossyLinks, NetDelivery, Partition, Synchronous};
use aba_obs::{EventKind, EventProbe, ProvenanceProbe};
use aba_sim::adversary::Adversary;
use aba_sim::oracle::{NoOracle, Oracle};
use aba_sim::probe::{NoProbe, Probe};
use aba_sim::protocol::Protocol;
use aba_sim::{
    PackedMailbox, PackedSimulation, RunReport, SimConfig, Simulation, SparseMailbox,
    SparseSimulation, Verdict,
};

/// Result of one trial, flattened for aggregation.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialResult {
    /// Master seed the trial ran at (trial `i` of a batch runs at
    /// `base seed + i`; merge operations order trials by this field).
    pub seed: u64,
    /// Rounds until every honest node halted (or the cap).
    pub rounds: u64,
    /// Whether every honest node terminated before the cap.
    pub terminated: bool,
    /// Whether all honest outputs agreed.
    pub agreement: bool,
    /// Validity verdict (None when inputs were mixed).
    pub validity: Option<bool>,
    /// The common decision, if agreement held.
    pub decision: Option<bool>,
    /// Corruptions the adversary actually performed.
    pub corruptions: usize,
    /// Total point-to-point messages.
    pub messages: usize,
    /// Total bits on the wire.
    pub bits: usize,
    /// Max bits over any edge in any round (CONGEST check).
    pub max_edge_bits: usize,
    /// Fraction of honest outputs sharing the majority value (1.0 under
    /// full agreement; the almost-everywhere metric for
    /// [`ProtocolSpec::SamplingMajority`]).
    pub agree_fraction: f64,
    /// Messages the network actually handed to receivers (equals
    /// `messages` under [`NetworkSpec::Synchronous`]).
    pub delivered: usize,
    /// Messages the network dropped.
    pub dropped: usize,
    /// Delay events (a message counts once when first held back and
    /// once per further deferral on a busy link).
    pub delayed: usize,
    /// Name of the adversary strategy that actually ran. Protocol-
    /// mismatched attack specs degrade to the strongest applicable
    /// strategy; this field records the substitution so results are
    /// never silently misattributed.
    pub adversary: &'static str,
    /// True when the requested [`AttackSpec`] did not apply to the
    /// protocol and the dispatcher substituted the strongest applicable
    /// strategy (named in `adversary`). Always check this flag before
    /// attributing a result to the attack that was *asked for*.
    pub downgraded: bool,
    /// Name of the network model the trial ran under.
    pub network: &'static str,
}

/// Majority fraction among the honest outputs (1.0 when none exist).
fn majority_fraction(report: &RunReport) -> f64 {
    let outs = report.honest_outputs();
    if outs.is_empty() {
        return 1.0;
    }
    let ones = outs.iter().filter(|b| **b).count();
    ones.max(outs.len() - ones) as f64 / outs.len() as f64
}

impl TrialResult {
    /// The fields shared by every kind of run; the agreement/validity/
    /// decision triple is left at its vacuous default for the caller.
    fn base(
        report: &RunReport,
        seed: u64,
        adversary: &'static str,
        network: &'static str,
        downgraded: bool,
    ) -> TrialResult {
        TrialResult {
            seed,
            rounds: report.rounds,
            terminated: report.all_halted,
            agreement: true,
            validity: None,
            decision: None,
            corruptions: report.corruptions_used,
            messages: report.metrics.total_messages,
            bits: report.metrics.total_bits,
            max_edge_bits: report.metrics.max_edge_bits,
            agree_fraction: majority_fraction(report),
            delivered: report.metrics.total_delivered,
            dropped: report.metrics.total_dropped,
            delayed: report.metrics.total_delayed,
            adversary,
            downgraded,
            network,
        }
    }

    fn from_run(
        report: &RunReport,
        seed: u64,
        inputs: &[bool],
        adversary: &'static str,
        network: &'static str,
        downgraded: bool,
    ) -> TrialResult {
        let verdict = Verdict::evaluate(inputs, &report.outputs, &report.honest);
        TrialResult {
            agreement: verdict.agreement,
            validity: verdict.validity,
            decision: verdict.decision,
            ..Self::base(report, seed, adversary, network, downgraded)
        }
    }

    /// For input-less protocols (the common coin): agreement means the
    /// coin was common; validity is vacuous.
    fn from_coin_run(
        report: &RunReport,
        seed: u64,
        adversary: &'static str,
        network: &'static str,
        downgraded: bool,
    ) -> TrialResult {
        let agreement = report.honest_outputs_agree();
        TrialResult {
            agreement,
            decision: if agreement {
                report.honest_outputs().first().copied()
            } else {
                None
            },
            ..Self::base(report, seed, adversary, network, downgraded)
        }
    }

    /// Definition 1 satisfied (termination + agreement + validity where
    /// applicable).
    pub fn correct(&self) -> bool {
        self.terminated && self.agreement && self.validity.unwrap_or(true)
    }
}

/// Both sides of a record/replay differential (see
/// [`crate::check::replay_scenario`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayOutcome {
    /// The live run, with the trace recorder attached.
    pub live: TrialResult,
    /// The same run re-driven from the recorded trace (no network
    /// model, no adversary strategy — scripts only).
    pub replayed: TrialResult,
}

impl ReplayOutcome {
    /// Whether the replay reproduced the live run bit for bit.
    pub fn is_faithful(&self) -> bool {
        self.live == self.replayed
    }
}

fn sim_config(s: &Scenario) -> SimConfig {
    SimConfig::new(s.n, s.t)
        .with_seed(s.seed)
        .with_info_model(s.info)
        .with_max_rounds(s.max_rounds)
        .with_threads(s.threads)
}

/// How the honest outcome of a run is evaluated into a [`TrialResult`].
#[derive(Clone, Copy)]
pub(crate) enum Eval<'a> {
    /// Agreement/validity against the materialized inputs.
    Inputs(&'a [bool]),
    /// Coin semantics: agreement = commonality, validity vacuous.
    Coin,
}

impl Eval<'_> {
    fn trial(
        &self,
        s: &Scenario,
        report: &RunReport,
        adversary: &'static str,
        downgraded: bool,
    ) -> TrialResult {
        match self {
            Eval::Inputs(inputs) => TrialResult::from_run(
                report,
                s.seed,
                inputs,
                adversary,
                s.network.name(),
                downgraded,
            ),
            Eval::Coin => {
                TrialResult::from_coin_run(report, s.seed, adversary, s.network.name(), downgraded)
            }
        }
    }
}

/// Runs the simulation under the scenario's network conditions with an
/// oracle attached, monomorphizing the engine over the concrete delivery
/// stage so every protocol × adversary × network × oracle combination
/// stays static-dispatch.
///
/// The model is seeded from the scenario's master seed on the dedicated
/// network RNG stream, so the same seed reproduces the same drops and
/// delays — and switching models never perturbs node or adversary
/// randomness.
fn simulate_oracle<P, A, O>(s: &Scenario, nodes: Vec<P>, adversary: A, oracle: O) -> (RunReport, O)
where
    P: Protocol + Send,
    P::Msg: Send + Sync,
    A: Adversary<P>,
    O: Oracle<P::Msg>,
{
    let (report, oracle, NoProbe) = simulate_full(s, nodes, adversary, oracle, NoProbe);
    (report, oracle)
}

/// The fully-instrumented variant of [`simulate_oracle`]: same network
/// dispatch, with a probe attached through the engine's third seam.
/// Probes observe only, so the report and oracle are bit-identical to
/// the probe-less run.
fn simulate_full<P, A, O, B>(
    s: &Scenario,
    nodes: Vec<P>,
    adversary: A,
    oracle: O,
    probe: B,
) -> (RunReport, O, B)
where
    P: Protocol + Send,
    P::Msg: Send + Sync,
    A: Adversary<P>,
    O: Oracle<P::Msg>,
    B: Probe,
{
    let cfg = sim_config(s);
    match s.network {
        NetworkSpec::Synchronous => Simulation::with_instruments(
            cfg,
            nodes,
            adversary,
            NetDelivery::new(Synchronous, s.seed),
            oracle,
            probe,
        )
        .run_instrumented(),
        NetworkSpec::LossyLinks { p_drop } => Simulation::with_instruments(
            cfg,
            nodes,
            adversary,
            NetDelivery::new(LossyLinks::new(p_drop), s.seed),
            oracle,
            probe,
        )
        .run_instrumented(),
        NetworkSpec::BoundedDelay {
            max_delay,
            scheduler,
        } => Simulation::with_instruments(
            cfg,
            nodes,
            adversary,
            NetDelivery::new(BoundedDelay::new(max_delay, scheduler), s.seed),
            oracle,
            probe,
        )
        .run_instrumented(),
        NetworkSpec::Partition { groups, heal_round } => Simulation::with_instruments(
            cfg,
            nodes,
            adversary,
            NetDelivery::new(Partition::striped(s.n, groups, heal_round), s.seed),
            oracle,
            probe,
        )
        .run_instrumented(),
    }
}

/// Packed-plane counterpart of [`simulate_full`] for the committee
/// family: the same network dispatch with `L = PackedMailbox<BaMsg>`.
/// The oracle and probe seams stay on the dense plane — the packed plane
/// is a performance surface, pinned against dense `TrialResult`s by the
/// differential suites rather than instrumented in place.
fn simulate_packed<A>(s: &Scenario, nodes: Vec<CommitteeBa>, adversary: A) -> RunReport
where
    A: Adversary<CommitteeBa, PackedMailbox<BaMsg>>,
{
    let cfg = sim_config(s);
    match s.network {
        NetworkSpec::Synchronous => {
            PackedSimulation::with_instruments(
                cfg,
                nodes,
                adversary,
                NetDelivery::new(Synchronous, s.seed),
                NoOracle,
                NoProbe,
            )
            .run_instrumented()
            .0
        }
        NetworkSpec::LossyLinks { p_drop } => {
            PackedSimulation::with_instruments(
                cfg,
                nodes,
                adversary,
                NetDelivery::new(LossyLinks::new(p_drop), s.seed),
                NoOracle,
                NoProbe,
            )
            .run_instrumented()
            .0
        }
        NetworkSpec::BoundedDelay {
            max_delay,
            scheduler,
        } => {
            PackedSimulation::with_instruments(
                cfg,
                nodes,
                adversary,
                NetDelivery::new(BoundedDelay::new(max_delay, scheduler), s.seed),
                NoOracle,
                NoProbe,
            )
            .run_instrumented()
            .0
        }
        NetworkSpec::Partition { groups, heal_round } => {
            PackedSimulation::with_instruments(
                cfg,
                nodes,
                adversary,
                NetDelivery::new(Partition::striped(s.n, groups, heal_round), s.seed),
                NoOracle,
                NoProbe,
            )
            .run_instrumented()
            .0
        }
    }
}

/// Packed-plane counterpart of [`run_committee`], [`Plain`]-drive only.
fn run_committee_packed<A>(
    s: &Scenario,
    cfg: &BaConfig,
    adversary: A,
    downgraded: bool,
) -> TrialResult
where
    A: Adversary<CommitteeBa, PackedMailbox<BaMsg>>,
{
    let inputs = s.inputs.materialize(s.n, s.seed);
    let name = adversary.name();
    let report = simulate_packed(s, CommitteeBa::network(cfg, &inputs), adversary);
    Eval::Inputs(&inputs).trial(s, &report, name, downgraded)
}

/// Runs a committee-family scenario on the bit-packed plane, or `None`
/// when the scenario's protocol has no packed codec (the coin, sampling,
/// and Phase-King families stay dense). The attack table mirrors
/// [`dispatch_committee`] entry for entry so a plane switch never
/// changes which adversary runs.
pub(crate) fn run_scenario_packed(s: &Scenario) -> Option<TrialResult> {
    let cfg = &committee_config(s)?;
    Some(match s.attack {
        AttackSpec::Benign => run_committee_packed(s, cfg, Benign, false),
        AttackSpec::StaticSilent => run_committee_packed(
            s,
            cfg,
            StaticByzantine::first_t(s.t, StaticBehavior::Silence),
            false,
        ),
        AttackSpec::StaticMirror => run_committee_packed(
            s,
            cfg,
            StaticByzantine::first_t(s.t, StaticBehavior::MirrorRandom),
            false,
        ),
        AttackSpec::Crash { per_round } => {
            run_committee_packed(s, cfg, AdaptiveCrash::steady(per_round), false)
        }
        AttackSpec::SplitVote => run_committee_packed(s, cfg, SplitVote::new(), false),
        AttackSpec::FullAttack => {
            run_committee_packed(s, cfg, AdaptiveFullAttack::new(BudgetPolicy::Greedy), false)
        }
        AttackSpec::FullAttackFrugal => {
            run_committee_packed(s, cfg, AdaptiveFullAttack::new(BudgetPolicy::Frugal), false)
        }
        AttackSpec::FullAttackCapped { q } => run_committee_packed(
            s,
            cfg,
            BudgetCapped::new(AdaptiveFullAttack::new(BudgetPolicy::Greedy), q),
            false,
        ),
        AttackSpec::CoinKiller | AttackSpec::SamplingPoison => {
            run_committee_packed(s, cfg, AdaptiveFullAttack::new(BudgetPolicy::Greedy), true)
        }
    })
}

/// Sparse-plane counterpart of [`simulate_oracle`], generic over the
/// protocol so the sampled family (sampling-majority and King–Saia)
/// shares one network dispatch. Unlike the packed plane, the oracle
/// seam stays live here — the lemma checkers are generic over the
/// message plane — so armed campaigns (CongestEdgeBound especially) run
/// directly on the sparse plane at scale. The probe seam stays
/// dense-side.
fn simulate_sparse<P, A, O>(s: &Scenario, nodes: Vec<P>, adversary: A, oracle: O) -> (RunReport, O)
where
    P: Protocol + Send,
    P::Msg: Send + Sync,
    A: Adversary<P, SparseMailbox<P::Msg>>,
    O: Oracle<P::Msg, SparseMailbox<P::Msg>>,
{
    let cfg = sim_config(s);
    let (report, oracle, NoProbe) = match s.network {
        NetworkSpec::Synchronous => SparseSimulation::with_instruments(
            cfg,
            nodes,
            adversary,
            NetDelivery::new(Synchronous, s.seed),
            oracle,
            NoProbe,
        )
        .run_instrumented(),
        NetworkSpec::LossyLinks { p_drop } => SparseSimulation::with_instruments(
            cfg,
            nodes,
            adversary,
            NetDelivery::new(LossyLinks::new(p_drop), s.seed),
            oracle,
            NoProbe,
        )
        .run_instrumented(),
        NetworkSpec::BoundedDelay {
            max_delay,
            scheduler,
        } => SparseSimulation::with_instruments(
            cfg,
            nodes,
            adversary,
            NetDelivery::new(BoundedDelay::new(max_delay, scheduler), s.seed),
            oracle,
            NoProbe,
        )
        .run_instrumented(),
        NetworkSpec::Partition { groups, heal_round } => SparseSimulation::with_instruments(
            cfg,
            nodes,
            adversary,
            NetDelivery::new(Partition::striped(s.n, groups, heal_round), s.seed),
            oracle,
            NoProbe,
        )
        .run_instrumented(),
    };
    (report, oracle)
}

/// Execution strategy over the sparse-plane dispatch — the sparse twin
/// of [`Drive`], needed because sparse adversaries are typed against
/// `SparseMailbox` rather than the default plane. Implemented for
/// [`Plain`] and [`CheckDrive`].
pub(crate) trait DriveSparse {
    /// What one driven sparse trial produces.
    type Out;

    /// Executes one fully-dispatched sparse combination.
    fn drive_sparse<P, A>(
        &self,
        s: &Scenario,
        nodes: Vec<P>,
        inputs: &[bool],
        adversary: A,
        downgraded: bool,
    ) -> Self::Out
    where
        P: Protocol + Send,
        P::Msg: Send + Sync,
        A: Adversary<P, SparseMailbox<P::Msg>>;
}

impl DriveSparse for Plain {
    type Out = TrialResult;

    fn drive_sparse<P, A>(
        &self,
        s: &Scenario,
        nodes: Vec<P>,
        inputs: &[bool],
        adversary: A,
        downgraded: bool,
    ) -> TrialResult
    where
        P: Protocol + Send,
        P::Msg: Send + Sync,
        A: Adversary<P, SparseMailbox<P::Msg>>,
    {
        let name = adversary.name();
        let (report, _) = simulate_sparse(s, nodes, adversary, NoOracle);
        Eval::Inputs(inputs).trial(s, &report, name, downgraded)
    }
}

impl DriveSparse for CheckDrive {
    type Out = CheckedTrial;

    fn drive_sparse<P, A>(
        &self,
        s: &Scenario,
        nodes: Vec<P>,
        inputs: &[bool],
        adversary: A,
        downgraded: bool,
    ) -> CheckedTrial
    where
        P: Protocol + Send,
        P::Msg: Send + Sync,
        A: Adversary<P, SparseMailbox<P::Msg>>,
    {
        let name = adversary.name();
        let suite = lemma_suite_for(s);
        let (report, suite) = simulate_sparse(s, nodes, adversary, suite);
        CheckedTrial {
            result: Eval::Inputs(inputs).trial(s, &report, name, downgraded),
            oracle: suite.report(),
        }
    }
}

/// Sparse-plane sampling-majority dispatch. Mirrors
/// [`dispatch_sampling`] entry for entry ([`SamplingPoison`] is generic
/// over the plane), so a plane switch never changes which adversary runs.
fn dispatch_sampling_sparse<D: DriveSparse>(d: &D, s: &Scenario, iters: u64) -> D::Out {
    let iters = if iters == 0 {
        SamplingMajorityNode::recommended_iterations(s.n)
    } else {
        iters
    };
    let inputs = s.inputs.materialize(s.n, s.seed);
    let nodes = || SamplingMajorityNode::network(s.n, iters, &inputs);
    match s.attack {
        AttackSpec::Benign => d.drive_sparse(s, nodes(), &inputs, Benign, false),
        AttackSpec::StaticSilent => d.drive_sparse(
            s,
            nodes(),
            &inputs,
            StaticByzantine::first_t(s.t, StaticBehavior::Silence),
            false,
        ),
        AttackSpec::StaticMirror => d.drive_sparse(
            s,
            nodes(),
            &inputs,
            StaticByzantine::first_t(s.t, StaticBehavior::MirrorRandom),
            false,
        ),
        AttackSpec::Crash { per_round } => {
            d.drive_sparse(s, nodes(), &inputs, AdaptiveCrash::steady(per_round), false)
        }
        AttackSpec::FullAttackCapped { q } => d.drive_sparse(
            s,
            nodes(),
            &inputs,
            BudgetCapped::new(SamplingPoison::eager(), q),
            true,
        ),
        AttackSpec::SamplingPoison => {
            d.drive_sparse(s, nodes(), &inputs, SamplingPoison::eager(), false)
        }
        AttackSpec::SplitVote
        | AttackSpec::FullAttack
        | AttackSpec::FullAttackFrugal
        | AttackSpec::CoinKiller => {
            d.drive_sparse(s, nodes(), &inputs, SamplingPoison::eager(), true)
        }
    }
}

/// Sparse-plane King–Saia dispatch. Mirrors [`dispatch_king_saia`] entry
/// for entry.
fn dispatch_king_saia_sparse<D: DriveSparse>(d: &D, s: &Scenario, iters: u64) -> D::Out {
    let iters = king_saia_iters(s, iters);
    let inputs = s.inputs.materialize(s.n, s.seed);
    let nodes = || KingSaiaNode::network(s.n, iters, &inputs, s.seed);
    match s.attack {
        AttackSpec::Benign => d.drive_sparse(s, nodes(), &inputs, Benign, false),
        AttackSpec::StaticSilent => d.drive_sparse(
            s,
            nodes(),
            &inputs,
            StaticByzantine::first_t(s.t, StaticBehavior::Silence),
            false,
        ),
        AttackSpec::StaticMirror => d.drive_sparse(
            s,
            nodes(),
            &inputs,
            StaticByzantine::first_t(s.t, StaticBehavior::MirrorRandom),
            false,
        ),
        AttackSpec::Crash { per_round } => {
            d.drive_sparse(s, nodes(), &inputs, AdaptiveCrash::steady(per_round), false)
        }
        AttackSpec::FullAttackCapped { q } => d.drive_sparse(
            s,
            nodes(),
            &inputs,
            BudgetCapped::new(AdaptiveCrash::steady(1), q),
            true,
        ),
        AttackSpec::SplitVote
        | AttackSpec::FullAttack
        | AttackSpec::FullAttackFrugal
        | AttackSpec::CoinKiller
        | AttackSpec::SamplingPoison => {
            d.drive_sparse(s, nodes(), &inputs, AdaptiveCrash::steady(1), true)
        }
    }
}

/// Drives a sampled-family scenario on the sparse adjacency plane, or
/// `None` when the scenario's protocol is not in the sampled family (the
/// committee, coin, and Phase-King families stay dense).
pub(crate) fn drive_scenario_sparse<D: DriveSparse>(d: &D, s: &Scenario) -> Option<D::Out> {
    match s.protocol {
        ProtocolSpec::SamplingMajority { iters } => Some(dispatch_sampling_sparse(d, s, iters)),
        ProtocolSpec::KingSaia { iters } => Some(dispatch_king_saia_sparse(d, s, iters)),
        _ => None,
    }
}

/// Runs a sampled-family scenario on the sparse plane ([`Plain`] drive).
pub(crate) fn run_scenario_sparse(s: &Scenario) -> Option<TrialResult> {
    drive_scenario_sparse(&Plain, s)
}

/// An execution strategy over the monomorphized protocol × adversary ×
/// network dispatch. `make_nodes` rebuilds the protocol network from
/// scratch (replay drives the engine twice).
pub(crate) trait Drive {
    /// What one driven trial produces.
    type Out;

    /// Executes one fully-dispatched combination.
    fn drive<P, A>(
        &self,
        s: &Scenario,
        make_nodes: &dyn Fn() -> Vec<P>,
        adversary: A,
        eval: Eval<'_>,
        downgraded: bool,
    ) -> Self::Out
    where
        P: Protocol + Send,
        P::Msg: Send + Sync,
        A: Adversary<P>;
}

/// The default strategy: run once, no oracle.
pub(crate) struct Plain;

impl Drive for Plain {
    type Out = TrialResult;

    fn drive<P, A>(
        &self,
        s: &Scenario,
        make_nodes: &dyn Fn() -> Vec<P>,
        adversary: A,
        eval: Eval<'_>,
        downgraded: bool,
    ) -> TrialResult
    where
        P: Protocol + Send,
        P::Msg: Send + Sync,
        A: Adversary<P>,
    {
        let name = adversary.name();
        let (report, _) = simulate_oracle(s, make_nodes(), adversary, NoOracle);
        eval.trial(s, &report, name, downgraded)
    }
}

/// Run once with the scenario's lemma oracles attached.
pub(crate) struct CheckDrive;

impl Drive for CheckDrive {
    type Out = CheckedTrial;

    fn drive<P, A>(
        &self,
        s: &Scenario,
        make_nodes: &dyn Fn() -> Vec<P>,
        adversary: A,
        eval: Eval<'_>,
        downgraded: bool,
    ) -> CheckedTrial
    where
        P: Protocol + Send,
        P::Msg: Send + Sync,
        A: Adversary<P>,
    {
        let name = adversary.name();
        let suite = lemma_suite_for(s);
        let (report, suite) = simulate_oracle(s, make_nodes(), adversary, suite);
        CheckedTrial {
            result: eval.trial(s, &report, name, downgraded),
            oracle: suite.report(),
        }
    }
}

/// Record the live run, then re-drive the engine from the trace with
/// the recorded adversary actions and arrivals standing in for the
/// strategy and the network model.
pub(crate) struct Replayed;

impl Drive for Replayed {
    type Out = ReplayOutcome;

    fn drive<P, A>(
        &self,
        s: &Scenario,
        make_nodes: &dyn Fn() -> Vec<P>,
        adversary: A,
        eval: Eval<'_>,
        downgraded: bool,
    ) -> ReplayOutcome
    where
        P: Protocol + Send,
        P::Msg: Send + Sync,
        A: Adversary<P>,
    {
        let name = adversary.name();
        let (live_report, recorder) =
            simulate_oracle(s, make_nodes(), adversary, TraceRecorder::new());
        let (replay_adv, replay_delivery) = recorder.into_recording().into_replay(name);
        let replay_report =
            Simulation::with_network(sim_config(s), make_nodes(), replay_adv, replay_delivery)
                .run();
        ReplayOutcome {
            live: eval.trial(s, &live_report, name, downgraded),
            replayed: eval.trial(s, &replay_report, name, downgraded),
        }
    }
}

/// Run once with both the lemma oracles *and* the deterministic-channel
/// [`EventProbe`] attached; oracle violations are appended to the event
/// log so the log carries the full story of the trial.
pub(crate) struct ObserveDrive;

impl Drive for ObserveDrive {
    type Out = crate::observe::ObservedTrial;

    fn drive<P, A>(
        &self,
        s: &Scenario,
        make_nodes: &dyn Fn() -> Vec<P>,
        adversary: A,
        eval: Eval<'_>,
        downgraded: bool,
    ) -> crate::observe::ObservedTrial
    where
        P: Protocol + Send,
        P::Msg: Send + Sync,
        A: Adversary<P>,
    {
        let name = adversary.name();
        let suite = lemma_suite_for(s);
        let (report, suite, mut probe) =
            simulate_full(s, make_nodes(), adversary, suite, EventProbe::new());
        let oracle = suite.report();
        for v in &oracle.violations {
            probe.push(EventKind::Violation {
                round: v.round,
                oracle: v.oracle.to_string(),
                detail: v.detail.clone(),
            });
        }
        let (events, metrics) = probe.into_parts();
        crate::observe::ObservedTrial {
            result: eval.trial(s, &report, name, downgraded),
            oracle,
            events,
            metrics,
        }
    }
}

/// Run once with the lemma oracles, the deterministic-channel
/// [`EventProbe`], *and* the causal [`ProvenanceProbe`] attached; when
/// the run's honest deciders disagree, the blame set is computed from
/// the provenance influence relation.
pub(crate) struct ProvenanceDrive;

impl Drive for ProvenanceDrive {
    type Out = crate::provenance::ProvenancedTrial;

    fn drive<P, A>(
        &self,
        s: &Scenario,
        make_nodes: &dyn Fn() -> Vec<P>,
        adversary: A,
        eval: Eval<'_>,
        downgraded: bool,
    ) -> crate::provenance::ProvenancedTrial
    where
        P: Protocol + Send,
        P::Msg: Send + Sync,
        A: Adversary<P>,
    {
        let name = adversary.name();
        let suite = lemma_suite_for(s);
        let (report, suite, probes) = simulate_full(
            s,
            make_nodes(),
            adversary,
            suite,
            (EventProbe::new(), ProvenanceProbe::new()),
        );
        let (mut event_probe, provenance) = probes;
        let oracle = suite.report();
        for v in &oracle.violations {
            event_probe.push(EventKind::Violation {
                round: v.round,
                oracle: v.oracle.to_string(),
                detail: v.detail.clone(),
            });
        }
        let blame = aba_check::blame_disagreement(&report, |d, c| provenance.influenced(d, c));
        let (events, mut metrics) = event_probe.into_parts();
        // One registry for the trial: fold the probe's prov.* metrics
        // into the deterministic channel (merge is order-invariant).
        metrics.merge(provenance.metrics());
        crate::provenance::ProvenancedTrial {
            result: eval.trial(s, &report, name, downgraded),
            oracle,
            events,
            metrics,
            provenance,
            blame,
        }
    }
}

/// Record the live run with the provenance probe attached, re-drive it
/// from the trace with a fresh one, and return both provenance layers —
/// the differential pinning "live vs replay provenance artifacts are
/// byte-identical".
pub(crate) struct ProvenancedReplayDrive;

impl Drive for ProvenancedReplayDrive {
    type Out = crate::provenance::ProvenancedReplay;

    fn drive<P, A>(
        &self,
        s: &Scenario,
        make_nodes: &dyn Fn() -> Vec<P>,
        adversary: A,
        eval: Eval<'_>,
        downgraded: bool,
    ) -> crate::provenance::ProvenancedReplay
    where
        P: Protocol + Send,
        P::Msg: Send + Sync,
        A: Adversary<P>,
    {
        let name = adversary.name();
        let (live_report, recorder, live_probes) = simulate_full(
            s,
            make_nodes(),
            adversary,
            TraceRecorder::new(),
            (EventProbe::new(), ProvenanceProbe::new()),
        );
        let (replay_adv, replay_delivery) = recorder.into_recording().into_replay(name);
        let (replay_report, NoOracle, replay_probes) = Simulation::with_instruments(
            sim_config(s),
            make_nodes(),
            replay_adv,
            replay_delivery,
            NoOracle,
            (EventProbe::new(), ProvenanceProbe::new()),
        )
        .run_instrumented();
        let (live_event_probe, live_provenance) = live_probes;
        let (replay_event_probe, replayed_provenance) = replay_probes;
        let (live_events, _) = live_event_probe.into_parts();
        let (replayed_events, _) = replay_event_probe.into_parts();
        crate::provenance::ProvenancedReplay {
            live: eval.trial(s, &live_report, name, downgraded),
            replayed: eval.trial(s, &replay_report, name, downgraded),
            live_events,
            replayed_events,
            live_provenance,
            replayed_provenance,
        }
    }
}

/// Record the live run with the probe attached, re-drive it from the
/// trace with a fresh probe, and return both observability channels —
/// the differential that pins "live vs replay event logs are
/// byte-identical". Neither side gets oracle-violation events appended
/// (the replay runs oracle-less), keeping the two logs comparable.
pub(crate) struct ObservedReplayDrive;

impl Drive for ObservedReplayDrive {
    type Out = crate::observe::ObservedReplay;

    fn drive<P, A>(
        &self,
        s: &Scenario,
        make_nodes: &dyn Fn() -> Vec<P>,
        adversary: A,
        eval: Eval<'_>,
        downgraded: bool,
    ) -> crate::observe::ObservedReplay
    where
        P: Protocol + Send,
        P::Msg: Send + Sync,
        A: Adversary<P>,
    {
        let name = adversary.name();
        let (live_report, recorder, live_probe) = simulate_full(
            s,
            make_nodes(),
            adversary,
            TraceRecorder::new(),
            EventProbe::new(),
        );
        let (replay_adv, replay_delivery) = recorder.into_recording().into_replay(name);
        let (replay_report, NoOracle, replay_probe) = Simulation::with_instruments(
            sim_config(s),
            make_nodes(),
            replay_adv,
            replay_delivery,
            NoOracle,
            EventProbe::new(),
        )
        .run_instrumented();
        let (live_events, live_metrics) = live_probe.into_parts();
        let (replayed_events, replayed_metrics) = replay_probe.into_parts();
        crate::observe::ObservedReplay {
            live: eval.trial(s, &live_report, name, downgraded),
            replayed: eval.trial(s, &replay_report, name, downgraded),
            live_events,
            replayed_events,
            live_metrics,
            replayed_metrics,
        }
    }
}

fn run_committee<D, A>(
    d: &D,
    s: &Scenario,
    cfg: &BaConfig,
    adversary: A,
    downgraded: bool,
) -> D::Out
where
    D: Drive,
    A: Adversary<CommitteeBa>,
{
    let inputs = s.inputs.materialize(s.n, s.seed);
    d.drive(
        s,
        &|| CommitteeBa::network(cfg, &inputs),
        adversary,
        Eval::Inputs(&inputs),
        downgraded,
    )
}

fn run_phase_king<D, A>(d: &D, s: &Scenario, adversary: A, downgraded: bool) -> D::Out
where
    D: Drive,
    A: Adversary<PhaseKingBa>,
{
    let inputs = s.inputs.materialize(s.n, s.seed);
    d.drive(
        s,
        &|| PhaseKingBa::network(s.n, s.t, &inputs),
        adversary,
        Eval::Inputs(&inputs),
        downgraded,
    )
}

fn run_coin<D, A>(d: &D, s: &Scenario, adversary: A, downgraded: bool) -> D::Out
where
    D: Drive,
    A: Adversary<CoinFlipNode>,
{
    d.drive(
        s,
        &|| CoinFlipNode::network(s.n),
        adversary,
        Eval::Coin,
        downgraded,
    )
}

fn run_sampling<D, A>(d: &D, s: &Scenario, iters: u64, adversary: A, downgraded: bool) -> D::Out
where
    D: Drive,
    A: Adversary<SamplingMajorityNode>,
{
    let iters = if iters == 0 {
        SamplingMajorityNode::recommended_iterations(s.n)
    } else {
        iters
    };
    let inputs = s.inputs.materialize(s.n, s.seed);
    d.drive(
        s,
        &|| SamplingMajorityNode::network(s.n, iters, &inputs),
        adversary,
        Eval::Inputs(&inputs),
        downgraded,
    )
}

/// Resolves a King–Saia iteration count (0 = recommended for `n`).
fn king_saia_iters(s: &Scenario, iters: u64) -> u64 {
    if iters == 0 {
        KingSaiaNode::recommended_iterations(s.n)
    } else {
        iters
    }
}

fn run_king_saia<D, A>(d: &D, s: &Scenario, iters: u64, adversary: A, downgraded: bool) -> D::Out
where
    D: Drive,
    A: Adversary<KingSaiaNode>,
{
    let iters = king_saia_iters(s, iters);
    let inputs = s.inputs.materialize(s.n, s.seed);
    d.drive(
        s,
        &|| KingSaiaNode::network(s.n, iters, &inputs, s.seed),
        adversary,
        Eval::Inputs(&inputs),
        downgraded,
    )
}

/// Dispatches the one-shot coin over the attack axis. Protocol-specific
/// attacks that don't understand the coin degrade to [`CoinKiller`], the
/// strongest coin-aware adversary (recorded via `downgraded`).
fn dispatch_coin<D: Drive>(d: &D, s: &Scenario) -> D::Out {
    let killer = || CoinKiller::new(NonRushingPolicy::Guaranteed);
    match s.attack {
        AttackSpec::Benign => run_coin(d, s, Benign, false),
        AttackSpec::StaticSilent => run_coin(
            d,
            s,
            StaticByzantine::first_t(s.t, StaticBehavior::Silence),
            false,
        ),
        AttackSpec::StaticMirror => run_coin(
            d,
            s,
            StaticByzantine::first_t(s.t, StaticBehavior::MirrorRandom),
            false,
        ),
        AttackSpec::Crash { per_round } => run_coin(d, s, AdaptiveCrash::steady(per_round), false),
        // The capped *combined* attack doesn't exist for the coin; the
        // capped coin killer stands in — a substitution, so flagged.
        AttackSpec::FullAttackCapped { q } => run_coin(d, s, BudgetCapped::new(killer(), q), true),
        AttackSpec::CoinKiller => run_coin(d, s, killer(), false),
        AttackSpec::SplitVote
        | AttackSpec::FullAttack
        | AttackSpec::FullAttackFrugal
        | AttackSpec::SamplingPoison => run_coin(d, s, killer(), true),
    }
}

/// Dispatches the sampling-majority dynamic over the attack axis.
/// Protocol-specific attacks that don't understand it degrade to
/// [`SamplingPoison`], the strongest sampling-aware adversary.
fn dispatch_sampling<D: Drive>(d: &D, s: &Scenario, iters: u64) -> D::Out {
    match s.attack {
        AttackSpec::Benign => run_sampling(d, s, iters, Benign, false),
        AttackSpec::StaticSilent => run_sampling(
            d,
            s,
            iters,
            StaticByzantine::first_t(s.t, StaticBehavior::Silence),
            false,
        ),
        AttackSpec::StaticMirror => run_sampling(
            d,
            s,
            iters,
            StaticByzantine::first_t(s.t, StaticBehavior::MirrorRandom),
            false,
        ),
        AttackSpec::Crash { per_round } => {
            run_sampling(d, s, iters, AdaptiveCrash::steady(per_round), false)
        }
        // As with the coin: the capped combined attack degrades to the
        // capped poisoner, and the substitution is flagged.
        AttackSpec::FullAttackCapped { q } => run_sampling(
            d,
            s,
            iters,
            BudgetCapped::new(SamplingPoison::eager(), q),
            true,
        ),
        AttackSpec::SamplingPoison => run_sampling(d, s, iters, SamplingPoison::eager(), false),
        AttackSpec::SplitVote
        | AttackSpec::FullAttack
        | AttackSpec::FullAttackFrugal
        | AttackSpec::CoinKiller => run_sampling(d, s, iters, SamplingPoison::eager(), true),
    }
}

/// Dispatches the King–Saia sampled-committee protocol over the attack
/// axis. As with Phase-King, the BA-state-aware attacks don't speak its
/// message type; they degrade to adaptive crash, the strongest generic
/// adversary, and the substitution is recorded via `downgraded`.
fn dispatch_king_saia<D: Drive>(d: &D, s: &Scenario, iters: u64) -> D::Out {
    match s.attack {
        AttackSpec::Benign => run_king_saia(d, s, iters, Benign, false),
        AttackSpec::StaticSilent => run_king_saia(
            d,
            s,
            iters,
            StaticByzantine::first_t(s.t, StaticBehavior::Silence),
            false,
        ),
        AttackSpec::StaticMirror => run_king_saia(
            d,
            s,
            iters,
            StaticByzantine::first_t(s.t, StaticBehavior::MirrorRandom),
            false,
        ),
        AttackSpec::Crash { per_round } => {
            run_king_saia(d, s, iters, AdaptiveCrash::steady(per_round), false)
        }
        // The capped combined attack degrades to capped adaptive crash;
        // the substitution is flagged.
        AttackSpec::FullAttackCapped { q } => run_king_saia(
            d,
            s,
            iters,
            BudgetCapped::new(AdaptiveCrash::steady(1), q),
            true,
        ),
        AttackSpec::SplitVote
        | AttackSpec::FullAttack
        | AttackSpec::FullAttackFrugal
        | AttackSpec::CoinKiller
        | AttackSpec::SamplingPoison => run_king_saia(d, s, iters, AdaptiveCrash::steady(1), true),
    }
}

/// Dispatches a committee-protocol scenario over the attack axis.
fn dispatch_committee<D: Drive>(d: &D, s: &Scenario, cfg: BaConfig) -> D::Out {
    let cfg = &cfg;
    match s.attack {
        AttackSpec::Benign => run_committee(d, s, cfg, Benign, false),
        AttackSpec::StaticSilent => run_committee(
            d,
            s,
            cfg,
            StaticByzantine::first_t(s.t, StaticBehavior::Silence),
            false,
        ),
        AttackSpec::StaticMirror => run_committee(
            d,
            s,
            cfg,
            StaticByzantine::first_t(s.t, StaticBehavior::MirrorRandom),
            false,
        ),
        AttackSpec::Crash { per_round } => {
            run_committee(d, s, cfg, AdaptiveCrash::steady(per_round), false)
        }
        AttackSpec::SplitVote => run_committee(d, s, cfg, SplitVote::new(), false),
        AttackSpec::FullAttack => run_committee(
            d,
            s,
            cfg,
            AdaptiveFullAttack::new(BudgetPolicy::Greedy),
            false,
        ),
        AttackSpec::FullAttackFrugal => run_committee(
            d,
            s,
            cfg,
            AdaptiveFullAttack::new(BudgetPolicy::Frugal),
            false,
        ),
        AttackSpec::FullAttackCapped { q } => run_committee(
            d,
            s,
            cfg,
            BudgetCapped::new(AdaptiveFullAttack::new(BudgetPolicy::Greedy), q),
            false,
        ),
        // Protocol-mismatched attacks degrade to the strongest
        // committee-aware adversary — recorded via `downgraded`.
        AttackSpec::CoinKiller | AttackSpec::SamplingPoison => run_committee(
            d,
            s,
            cfg,
            AdaptiveFullAttack::new(BudgetPolicy::Greedy),
            true,
        ),
    }
}

/// Dispatches the deterministic Phase-King baseline over the attack
/// axis.
fn dispatch_phase_king<D: Drive>(d: &D, s: &Scenario) -> D::Out {
    match s.attack {
        AttackSpec::Benign => run_phase_king(d, s, Benign, false),
        AttackSpec::StaticSilent => run_phase_king(
            d,
            s,
            StaticByzantine::first_t(s.t, StaticBehavior::Silence),
            false,
        ),
        AttackSpec::StaticMirror => run_phase_king(
            d,
            s,
            StaticByzantine::first_t(s.t, StaticBehavior::MirrorRandom),
            false,
        ),
        AttackSpec::Crash { per_round } => {
            run_phase_king(d, s, AdaptiveCrash::steady(per_round), false)
        }
        // The BA-state-aware attacks don't apply to Phase-King's message
        // type; they degrade to adaptive crash, the strongest generic
        // adversary. The substitution used to be silent — it is now
        // recorded on the result (`downgraded` + the `adversary` name),
        // so a sweep can never misattribute Phase-King numbers to an
        // attack that never ran.
        AttackSpec::SplitVote
        | AttackSpec::FullAttack
        | AttackSpec::FullAttackFrugal
        | AttackSpec::FullAttackCapped { .. }
        | AttackSpec::CoinKiller
        | AttackSpec::SamplingPoison => run_phase_king(d, s, AdaptiveCrash::steady(1), true),
    }
}

/// The committee-family protocol configuration of a scenario, or `None`
/// for the non-committee protocols.
pub(crate) fn committee_config(s: &Scenario) -> Option<BaConfig> {
    let cfg = match s.protocol {
        ProtocolSpec::Paper { alpha } => BaConfig::paper(s.n, s.t, alpha).expect("valid (n, t)"),
        ProtocolSpec::PaperLasVegas { alpha } => {
            BaConfig::paper_las_vegas(s.n, s.t, alpha).expect("valid (n, t)")
        }
        ProtocolSpec::PaperLiteralCoin { alpha } => BaConfig::paper_las_vegas(s.n, s.t, alpha)
            .expect("valid (n, t)")
            .with_coin_round(CoinRoundMode::Literal),
        ProtocolSpec::ChorCoan { beta } => {
            BaConfig::chor_coan(s.n, s.t, beta).expect("valid (n, t)")
        }
        ProtocolSpec::RabinDealer => {
            BaConfig::rabin_dealer(s.n, s.t, s.seed ^ 0xDEA1).expect("valid (n, t)")
        }
        ProtocolSpec::BenOrPrivate => BaConfig::ben_or_private(s.n, s.t).expect("valid (n, t)"),
        ProtocolSpec::PhaseKing
        | ProtocolSpec::CommonCoin
        | ProtocolSpec::SamplingMajority { .. }
        | ProtocolSpec::KingSaia { .. } => return None,
    };
    Some(cfg)
}

/// Runs a scenario's committee-family protocol against a caller-supplied
/// adversary — the facade's escape hatch for custom attack research.
///
/// # Panics
///
/// Panics if the scenario's protocol is not committee-based (the custom
/// adversary is typed against [`CommitteeBa`]).
pub(crate) fn run_committee_custom<A>(s: &Scenario, adversary: A) -> TrialResult
where
    A: Adversary<CommitteeBa>,
{
    let cfg = committee_config(s).unwrap_or_else(|| {
        panic!(
            "custom adversaries run against committee-family protocols; {} is not one",
            s.protocol.name()
        )
    });
    run_committee(&Plain, s, &cfg, adversary, false)
}

/// Drives one scenario to completion under the given strategy.
///
/// # Panics
///
/// Panics if the scenario's `(n, t)` violates a protocol precondition
/// (`n ≥ 3t + 1`); scenario construction is programmer-controlled.
pub(crate) fn drive_scenario<D: Drive>(d: &D, s: &Scenario) -> D::Out {
    if let Some(cfg) = committee_config(s) {
        return dispatch_committee(d, s, cfg);
    }
    match s.protocol {
        ProtocolSpec::CommonCoin => dispatch_coin(d, s),
        ProtocolSpec::SamplingMajority { iters } => dispatch_sampling(d, s, iters),
        ProtocolSpec::KingSaia { iters } => dispatch_king_saia(d, s, iters),
        ProtocolSpec::PhaseKing => dispatch_phase_king(d, s),
        _ => unreachable!("committee-family protocols are handled above"),
    }
}

/// Runs one scenario to completion.
///
/// # Panics
///
/// Same preconditions as [`drive_scenario`].
pub(crate) fn run_scenario(s: &Scenario) -> TrialResult {
    if s.plane == PlaneSpec::Packed {
        if let Some(r) = run_scenario_packed(s) {
            return r;
        }
    }
    if s.plane == PlaneSpec::Sparse {
        if let Some(r) = run_scenario_sparse(s) {
            return r;
        }
    }
    drive_scenario(&Plain, s)
}

/// Runs `trials` seed-shifted copies of a base scenario in parallel,
/// evaluating each with `run`, and returns results in seed order.
///
/// Scheduling is work-stealing: workers claim trials one at a time from
/// a shared atomic index, so a single slow trial (a long Las Vegas tail,
/// a round-cap run under an adverse network) occupies one core instead
/// of idling everything behind a statically-assigned chunk.
pub(crate) fn run_many_with<R, F>(base: &Scenario, trials: usize, run: F) -> Vec<R>
where
    R: Send,
    F: Fn(&Scenario) -> R + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};

    if trials == 0 {
        return Vec::new();
    }
    let scenarios: Vec<Scenario> = (0..trials as u64)
        .map(|i| {
            let mut s = base.clone();
            s.seed = base.seed.wrapping_add(i);
            s
        })
        .collect();
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(scenarios.len());
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<R>> = (0..scenarios.len()).map(|_| None).collect();
    let run = &run;
    let next = &next;
    let scenarios = &scenarios;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(scenario) = scenarios.get(i) else {
                            break;
                        };
                        local.push((i, run(scenario)));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            for (i, result) in handle.join().expect("worker thread panicked") {
                results[i] = Some(result);
            }
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("all slots filled"))
        .collect()
}

/// Runs `trials` seeds of a base scenario in parallel and returns results
/// in seed order.
pub(crate) fn run_many(base: &Scenario, trials: usize) -> Vec<TrialResult> {
    run_many_with(base, trials, run_scenario)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::InputSpec;

    #[test]
    fn every_protocol_runs_benign() {
        for proto in [
            ProtocolSpec::Paper { alpha: 2.0 },
            ProtocolSpec::PaperLasVegas { alpha: 2.0 },
            ProtocolSpec::PaperLiteralCoin { alpha: 2.0 },
            ProtocolSpec::ChorCoan { beta: 1.0 },
            ProtocolSpec::RabinDealer,
            ProtocolSpec::BenOrPrivate,
            ProtocolSpec::PhaseKing,
            ProtocolSpec::KingSaia { iters: 0 },
        ] {
            let s = Scenario::new(16, 5)
                .with_protocol(proto)
                .with_attack(AttackSpec::Benign)
                .with_inputs(InputSpec::AllSame(true));
            let r = run_scenario(&s);
            assert!(r.correct(), "{} failed: {r:?}", proto.name());
            assert_eq!(r.decision, Some(true));
            assert!(!r.downgraded, "{}: benign never downgrades", proto.name());
        }
    }

    #[test]
    fn every_attack_runs_on_paper_protocol() {
        for attack in [
            AttackSpec::Benign,
            AttackSpec::StaticSilent,
            AttackSpec::StaticMirror,
            AttackSpec::Crash { per_round: 1 },
            AttackSpec::SplitVote,
            AttackSpec::FullAttack,
            AttackSpec::FullAttackFrugal,
            AttackSpec::FullAttackCapped { q: 2 },
        ] {
            let s = Scenario::new(16, 5)
                .with_protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
                .with_attack(attack);
            let r = run_scenario(&s);
            assert!(r.terminated, "{} never terminated", attack.name());
            assert!(r.agreement, "{} broke agreement: {r:?}", attack.name());
            assert!(!r.downgraded, "{} applies as-is", attack.name());
        }
    }

    #[test]
    fn capped_attack_respects_q() {
        let s = Scenario::new(31, 10)
            .with_protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
            .with_attack(AttackSpec::FullAttackCapped { q: 3 });
        let r = run_scenario(&s);
        assert!(r.corruptions <= 3, "corruptions {} > q", r.corruptions);
    }

    #[test]
    fn run_many_is_deterministic_and_ordered() {
        let s = Scenario::new(16, 5).with_attack(AttackSpec::SplitVote);
        let a = run_many(&s, 8);
        let b = run_many(&s, 8);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        // Different seeds should produce at least two distinct round
        // counts across 8 trials of a randomized protocol.
        // aba-lint: allow(hash-nondeterminism) — distinctness count only; iteration order never observed
        let distinct: std::collections::HashSet<u64> = a.iter().map(|r| r.rounds).collect();
        assert!(!distinct.is_empty());
    }

    #[test]
    fn congest_bound_holds_in_trials() {
        let s = Scenario::new(32, 10).with_attack(AttackSpec::FullAttack);
        let r = run_scenario(&s);
        // O(log n) bits per edge per round with a generous constant.
        let budget = 8.0 * (32f64).log2();
        assert!(
            (r.max_edge_bits as f64) <= budget,
            "edge bits {} exceed {budget}",
            r.max_edge_bits
        );
    }

    #[test]
    fn sparse_plane_reproduces_dense_trials() {
        // Plane choice is an execution strategy, never a semantics
        // change: for the whole sampled family, every attack spec must
        // yield the identical TrialResult on both planes.
        for proto in [
            ProtocolSpec::SamplingMajority { iters: 6 },
            ProtocolSpec::KingSaia { iters: 4 },
        ] {
            for attack in [
                AttackSpec::Benign,
                AttackSpec::StaticSilent,
                AttackSpec::StaticMirror,
                AttackSpec::Crash { per_round: 1 },
                AttackSpec::FullAttackCapped { q: 2 },
                AttackSpec::SamplingPoison,
                AttackSpec::FullAttack,
            ] {
                let dense = Scenario::new(24, 7)
                    .with_protocol(proto)
                    .with_attack(attack)
                    .with_inputs(InputSpec::Random);
                let sparse = dense.clone().with_plane(PlaneSpec::Sparse);
                assert_eq!(
                    run_scenario(&dense),
                    run_scenario(&sparse),
                    "{} under {} diverged across planes",
                    proto.name(),
                    attack.name()
                );
            }
        }
    }

    #[test]
    fn sparse_plane_falls_back_to_dense_outside_the_sampled_family() {
        let s = Scenario::new(16, 5)
            .with_attack(AttackSpec::FullAttack)
            .with_plane(PlaneSpec::Sparse);
        assert_eq!(
            run_scenario(&s),
            run_scenario(&s.clone().with_plane(PlaneSpec::Dense))
        );
    }

    #[test]
    fn king_saia_downgrade_is_recorded() {
        for attack in [
            AttackSpec::SplitVote,
            AttackSpec::FullAttack,
            AttackSpec::CoinKiller,
            AttackSpec::SamplingPoison,
        ] {
            let s = Scenario::new(16, 5)
                .with_protocol(ProtocolSpec::KingSaia { iters: 4 })
                .with_attack(attack);
            let r = run_scenario(&s);
            assert!(r.downgraded, "{} must be flagged", attack.name());
            assert_eq!(r.adversary, "crash-steady", "{}", attack.name());
        }
    }

    #[test]
    fn phase_king_downgrade_is_recorded() {
        // Regression for the silent Phase-King fallback: every
        // BA-state-aware attack spec degrades to adaptive crash, and the
        // substitution must be visible on the result.
        for attack in [
            AttackSpec::SplitVote,
            AttackSpec::FullAttack,
            AttackSpec::FullAttackFrugal,
            AttackSpec::FullAttackCapped { q: 2 },
            AttackSpec::CoinKiller,
            AttackSpec::SamplingPoison,
        ] {
            let s = Scenario::new(16, 5)
                .with_protocol(ProtocolSpec::PhaseKing)
                .with_attack(attack);
            let r = run_scenario(&s);
            assert!(r.downgraded, "{} must be flagged", attack.name());
            assert_eq!(r.adversary, "crash-steady", "{}", attack.name());
            assert_ne!(r.adversary, attack.name());
        }
        // Applicable specs are not flagged.
        for attack in [
            AttackSpec::Benign,
            AttackSpec::StaticSilent,
            AttackSpec::StaticMirror,
            AttackSpec::Crash { per_round: 1 },
        ] {
            let s = Scenario::new(16, 5)
                .with_protocol(ProtocolSpec::PhaseKing)
                .with_attack(attack);
            let r = run_scenario(&s);
            assert!(!r.downgraded, "{} applies to Phase-King", attack.name());
        }
    }
}
