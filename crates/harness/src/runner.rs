//! Trial execution: scenario dispatch and the parallel batch runner.
//!
//! This module is the *engine room* of the [`crate::ScenarioBuilder`]
//! facade: it monomorphizes the declarative [`Scenario`] into a concrete
//! protocol/adversary pair and runs it. It is crate-private on purpose —
//! downstream code composes runs exclusively through the facade.

use crate::scenario::{AttackSpec, NetworkSpec, ProtocolSpec, Scenario};
use aba_adversary::{AdaptiveCrash, Benign, BudgetCapped, StaticBehavior, StaticByzantine};
use aba_agreement::{BaConfig, CoinRoundMode, CommitteeBa, PhaseKingBa, SamplingMajorityNode};
use aba_attacks::{
    AdaptiveFullAttack, BudgetPolicy, CoinKiller, NonRushingPolicy, SamplingPoison, SplitVote,
};
use aba_coin::CoinFlipNode;
use aba_net::{BoundedDelay, LossyLinks, NetDelivery, Partition, Synchronous};
use aba_sim::adversary::Adversary;
use aba_sim::protocol::Protocol;
use aba_sim::{RunReport, SimConfig, Simulation, Verdict};

/// Result of one trial, flattened for aggregation.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialResult {
    /// Master seed the trial ran at (trial `i` of a batch runs at
    /// `base seed + i`; merge operations order trials by this field).
    pub seed: u64,
    /// Rounds until every honest node halted (or the cap).
    pub rounds: u64,
    /// Whether every honest node terminated before the cap.
    pub terminated: bool,
    /// Whether all honest outputs agreed.
    pub agreement: bool,
    /// Validity verdict (None when inputs were mixed).
    pub validity: Option<bool>,
    /// The common decision, if agreement held.
    pub decision: Option<bool>,
    /// Corruptions the adversary actually performed.
    pub corruptions: usize,
    /// Total point-to-point messages.
    pub messages: usize,
    /// Total bits on the wire.
    pub bits: usize,
    /// Max bits over any edge in any round (CONGEST check).
    pub max_edge_bits: usize,
    /// Fraction of honest outputs sharing the majority value (1.0 under
    /// full agreement; the almost-everywhere metric for
    /// [`ProtocolSpec::SamplingMajority`]).
    pub agree_fraction: f64,
    /// Messages the network actually handed to receivers (equals
    /// `messages` under [`NetworkSpec::Synchronous`]).
    pub delivered: usize,
    /// Messages the network dropped.
    pub dropped: usize,
    /// Delay events (a message counts once when first held back and
    /// once per further deferral on a busy link).
    pub delayed: usize,
    /// Name of the adversary strategy that actually ran. Protocol-
    /// mismatched attack specs degrade to the strongest applicable
    /// strategy; this field records the substitution so results are
    /// never silently misattributed.
    pub adversary: &'static str,
    /// Name of the network model the trial ran under.
    pub network: &'static str,
}

/// Majority fraction among the honest outputs (1.0 when none exist).
fn majority_fraction(report: &RunReport) -> f64 {
    let outs = report.honest_outputs();
    if outs.is_empty() {
        return 1.0;
    }
    let ones = outs.iter().filter(|b| **b).count();
    ones.max(outs.len() - ones) as f64 / outs.len() as f64
}

impl TrialResult {
    /// The fields shared by every kind of run; the agreement/validity/
    /// decision triple is left at its vacuous default for the caller.
    fn base(
        report: &RunReport,
        seed: u64,
        adversary: &'static str,
        network: &'static str,
    ) -> TrialResult {
        TrialResult {
            seed,
            rounds: report.rounds,
            terminated: report.all_halted,
            agreement: true,
            validity: None,
            decision: None,
            corruptions: report.corruptions_used,
            messages: report.metrics.total_messages,
            bits: report.metrics.total_bits,
            max_edge_bits: report.metrics.max_edge_bits,
            agree_fraction: majority_fraction(report),
            delivered: report.metrics.total_delivered,
            dropped: report.metrics.total_dropped,
            delayed: report.metrics.total_delayed,
            adversary,
            network,
        }
    }

    fn from_run(
        report: &RunReport,
        seed: u64,
        inputs: &[bool],
        adversary: &'static str,
        network: &'static str,
    ) -> TrialResult {
        let verdict = Verdict::evaluate(inputs, &report.outputs, &report.honest);
        TrialResult {
            agreement: verdict.agreement,
            validity: verdict.validity,
            decision: verdict.decision,
            ..Self::base(report, seed, adversary, network)
        }
    }

    /// For input-less protocols (the common coin): agreement means the
    /// coin was common; validity is vacuous.
    fn from_coin_run(
        report: &RunReport,
        seed: u64,
        adversary: &'static str,
        network: &'static str,
    ) -> TrialResult {
        let agreement = report.honest_outputs_agree();
        TrialResult {
            agreement,
            decision: if agreement {
                report.honest_outputs().first().copied()
            } else {
                None
            },
            ..Self::base(report, seed, adversary, network)
        }
    }

    /// Definition 1 satisfied (termination + agreement + validity where
    /// applicable).
    pub fn correct(&self) -> bool {
        self.terminated && self.agreement && self.validity.unwrap_or(true)
    }
}

fn sim_config(s: &Scenario) -> SimConfig {
    SimConfig::new(s.n, s.t)
        .with_seed(s.seed)
        .with_info_model(s.info)
        .with_max_rounds(s.max_rounds)
}

/// Runs the simulation under the scenario's network conditions,
/// monomorphizing the engine over the concrete delivery stage so every
/// protocol × adversary × network combination stays static-dispatch.
///
/// The model is seeded from the scenario's master seed on the dedicated
/// network RNG stream, so the same seed reproduces the same drops and
/// delays — and switching models never perturbs node or adversary
/// randomness.
fn simulate<P, A>(s: &Scenario, nodes: Vec<P>, adversary: A) -> RunReport
where
    P: Protocol,
    A: Adversary<P>,
{
    let cfg = sim_config(s);
    match s.network {
        NetworkSpec::Synchronous => {
            Simulation::with_network(cfg, nodes, adversary, NetDelivery::new(Synchronous, s.seed))
                .run()
        }
        NetworkSpec::LossyLinks { p_drop } => Simulation::with_network(
            cfg,
            nodes,
            adversary,
            NetDelivery::new(LossyLinks::new(p_drop), s.seed),
        )
        .run(),
        NetworkSpec::BoundedDelay {
            max_delay,
            scheduler,
        } => Simulation::with_network(
            cfg,
            nodes,
            adversary,
            NetDelivery::new(BoundedDelay::new(max_delay, scheduler), s.seed),
        )
        .run(),
        NetworkSpec::Partition { groups, heal_round } => Simulation::with_network(
            cfg,
            nodes,
            adversary,
            NetDelivery::new(Partition::striped(s.n, groups, heal_round), s.seed),
        )
        .run(),
    }
}

fn run_committee<A>(s: &Scenario, cfg: BaConfig, adversary: A) -> TrialResult
where
    A: Adversary<CommitteeBa>,
{
    let name = adversary.name();
    let inputs = s.inputs.materialize(s.n, s.seed);
    let nodes = CommitteeBa::network(&cfg, &inputs);
    let report = simulate(s, nodes, adversary);
    TrialResult::from_run(&report, s.seed, &inputs, name, s.network.name())
}

fn run_phase_king<A>(s: &Scenario, adversary: A) -> TrialResult
where
    A: Adversary<PhaseKingBa>,
{
    let name = adversary.name();
    let inputs = s.inputs.materialize(s.n, s.seed);
    let nodes = PhaseKingBa::network(s.n, s.t, &inputs);
    let report = simulate(s, nodes, adversary);
    TrialResult::from_run(&report, s.seed, &inputs, name, s.network.name())
}

fn run_coin<A>(s: &Scenario, adversary: A) -> TrialResult
where
    A: Adversary<CoinFlipNode>,
{
    let name = adversary.name();
    let nodes = CoinFlipNode::network(s.n);
    let report = simulate(s, nodes, adversary);
    TrialResult::from_coin_run(&report, s.seed, name, s.network.name())
}

fn run_sampling<A>(s: &Scenario, iters: u64, adversary: A) -> TrialResult
where
    A: Adversary<SamplingMajorityNode>,
{
    let name = adversary.name();
    let iters = if iters == 0 {
        SamplingMajorityNode::recommended_iterations(s.n)
    } else {
        iters
    };
    let inputs = s.inputs.materialize(s.n, s.seed);
    let nodes = SamplingMajorityNode::network(s.n, iters, &inputs);
    let report = simulate(s, nodes, adversary);
    TrialResult::from_run(&report, s.seed, &inputs, name, s.network.name())
}

/// Dispatches the one-shot coin over the attack axis. Protocol-specific
/// attacks that don't understand the coin degrade to [`CoinKiller`], the
/// strongest coin-aware adversary.
fn dispatch_coin(s: &Scenario) -> TrialResult {
    let killer = || CoinKiller::new(NonRushingPolicy::Guaranteed);
    match s.attack {
        AttackSpec::Benign => run_coin(s, Benign),
        AttackSpec::StaticSilent => {
            run_coin(s, StaticByzantine::first_t(s.t, StaticBehavior::Silence))
        }
        AttackSpec::StaticMirror => run_coin(
            s,
            StaticByzantine::first_t(s.t, StaticBehavior::MirrorRandom),
        ),
        AttackSpec::Crash { per_round } => run_coin(s, AdaptiveCrash::steady(per_round)),
        AttackSpec::FullAttackCapped { q } => run_coin(s, BudgetCapped::new(killer(), q)),
        AttackSpec::CoinKiller
        | AttackSpec::SplitVote
        | AttackSpec::FullAttack
        | AttackSpec::FullAttackFrugal
        | AttackSpec::SamplingPoison => run_coin(s, killer()),
    }
}

/// Dispatches the sampling-majority dynamic over the attack axis.
/// Protocol-specific attacks that don't understand it degrade to
/// [`SamplingPoison`], the strongest sampling-aware adversary.
fn dispatch_sampling(s: &Scenario, iters: u64) -> TrialResult {
    match s.attack {
        AttackSpec::Benign => run_sampling(s, iters, Benign),
        AttackSpec::StaticSilent => run_sampling(
            s,
            iters,
            StaticByzantine::first_t(s.t, StaticBehavior::Silence),
        ),
        AttackSpec::StaticMirror => run_sampling(
            s,
            iters,
            StaticByzantine::first_t(s.t, StaticBehavior::MirrorRandom),
        ),
        AttackSpec::Crash { per_round } => run_sampling(s, iters, AdaptiveCrash::steady(per_round)),
        AttackSpec::FullAttackCapped { q } => {
            run_sampling(s, iters, BudgetCapped::new(SamplingPoison::eager(), q))
        }
        AttackSpec::SamplingPoison
        | AttackSpec::SplitVote
        | AttackSpec::FullAttack
        | AttackSpec::FullAttackFrugal
        | AttackSpec::CoinKiller => run_sampling(s, iters, SamplingPoison::eager()),
    }
}

/// Dispatches a committee-protocol scenario over the attack axis.
fn dispatch_committee(s: &Scenario, cfg: BaConfig) -> TrialResult {
    match s.attack {
        AttackSpec::Benign => run_committee(s, cfg, Benign),
        AttackSpec::StaticSilent => run_committee(
            s,
            cfg,
            StaticByzantine::first_t(s.t, StaticBehavior::Silence),
        ),
        AttackSpec::StaticMirror => run_committee(
            s,
            cfg,
            StaticByzantine::first_t(s.t, StaticBehavior::MirrorRandom),
        ),
        AttackSpec::Crash { per_round } => run_committee(s, cfg, AdaptiveCrash::steady(per_round)),
        AttackSpec::SplitVote => run_committee(s, cfg, SplitVote::new()),
        AttackSpec::FullAttack => {
            run_committee(s, cfg, AdaptiveFullAttack::new(BudgetPolicy::Greedy))
        }
        AttackSpec::FullAttackFrugal => {
            run_committee(s, cfg, AdaptiveFullAttack::new(BudgetPolicy::Frugal))
        }
        AttackSpec::FullAttackCapped { q } => run_committee(
            s,
            cfg,
            BudgetCapped::new(AdaptiveFullAttack::new(BudgetPolicy::Greedy), q),
        ),
        // Protocol-mismatched attacks degrade to the strongest
        // committee-aware adversary.
        AttackSpec::CoinKiller | AttackSpec::SamplingPoison => {
            run_committee(s, cfg, AdaptiveFullAttack::new(BudgetPolicy::Greedy))
        }
    }
}

/// The committee-family protocol configuration of a scenario, or `None`
/// for the non-committee protocols.
pub(crate) fn committee_config(s: &Scenario) -> Option<BaConfig> {
    let cfg = match s.protocol {
        ProtocolSpec::Paper { alpha } => BaConfig::paper(s.n, s.t, alpha).expect("valid (n, t)"),
        ProtocolSpec::PaperLasVegas { alpha } => {
            BaConfig::paper_las_vegas(s.n, s.t, alpha).expect("valid (n, t)")
        }
        ProtocolSpec::PaperLiteralCoin { alpha } => BaConfig::paper_las_vegas(s.n, s.t, alpha)
            .expect("valid (n, t)")
            .with_coin_round(CoinRoundMode::Literal),
        ProtocolSpec::ChorCoan { beta } => {
            BaConfig::chor_coan(s.n, s.t, beta).expect("valid (n, t)")
        }
        ProtocolSpec::RabinDealer => {
            BaConfig::rabin_dealer(s.n, s.t, s.seed ^ 0xDEA1).expect("valid (n, t)")
        }
        ProtocolSpec::BenOrPrivate => BaConfig::ben_or_private(s.n, s.t).expect("valid (n, t)"),
        ProtocolSpec::PhaseKing
        | ProtocolSpec::CommonCoin
        | ProtocolSpec::SamplingMajority { .. } => return None,
    };
    Some(cfg)
}

/// Runs a scenario's committee-family protocol against a caller-supplied
/// adversary — the facade's escape hatch for custom attack research.
///
/// # Panics
///
/// Panics if the scenario's protocol is not committee-based (the custom
/// adversary is typed against [`CommitteeBa`]).
pub(crate) fn run_committee_custom<A>(s: &Scenario, adversary: A) -> TrialResult
where
    A: Adversary<CommitteeBa>,
{
    let cfg = committee_config(s).unwrap_or_else(|| {
        panic!(
            "custom adversaries run against committee-family protocols; {} is not one",
            s.protocol.name()
        )
    });
    run_committee(s, cfg, adversary)
}

/// Runs one scenario to completion.
///
/// # Panics
///
/// Panics if the scenario's `(n, t)` violates a protocol precondition
/// (`n ≥ 3t + 1`); scenario construction is programmer-controlled.
pub(crate) fn run_scenario(s: &Scenario) -> TrialResult {
    if let Some(cfg) = committee_config(s) {
        return dispatch_committee(s, cfg);
    }
    match s.protocol {
        ProtocolSpec::CommonCoin => dispatch_coin(s),
        ProtocolSpec::SamplingMajority { iters } => dispatch_sampling(s, iters),
        ProtocolSpec::PhaseKing => match s.attack {
            AttackSpec::Benign => run_phase_king(s, Benign),
            AttackSpec::StaticSilent => {
                run_phase_king(s, StaticByzantine::first_t(s.t, StaticBehavior::Silence))
            }
            AttackSpec::StaticMirror => run_phase_king(
                s,
                StaticByzantine::first_t(s.t, StaticBehavior::MirrorRandom),
            ),
            AttackSpec::Crash { per_round } => run_phase_king(s, AdaptiveCrash::steady(per_round)),
            // The BA-state-aware attacks don't apply to Phase-King's
            // message type; fall back to adaptive crash, the strongest
            // generic adversary (Phase-King is deterministic, so its
            // round count is attack-independent anyway).
            _ => run_phase_king(s, AdaptiveCrash::steady(1)),
        },
        _ => unreachable!("committee-family protocols are handled above"),
    }
}

/// Runs `trials` seed-shifted copies of a base scenario in parallel,
/// evaluating each with `run`, and returns results in seed order.
///
/// Scheduling is work-stealing: workers claim trials one at a time from
/// a shared atomic index, so a single slow trial (a long Las Vegas tail,
/// a round-cap run under an adverse network) occupies one core instead
/// of idling everything behind a statically-assigned chunk.
pub(crate) fn run_many_with<F>(base: &Scenario, trials: usize, run: F) -> Vec<TrialResult>
where
    F: Fn(&Scenario) -> TrialResult + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};

    if trials == 0 {
        return Vec::new();
    }
    let scenarios: Vec<Scenario> = (0..trials as u64)
        .map(|i| {
            let mut s = base.clone();
            s.seed = base.seed.wrapping_add(i);
            s
        })
        .collect();
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(scenarios.len());
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<TrialResult>> = vec![None; scenarios.len()];
    let run = &run;
    let next = &next;
    let scenarios = &scenarios;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(scenario) = scenarios.get(i) else {
                            break;
                        };
                        local.push((i, run(scenario)));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            for (i, result) in handle.join().expect("worker thread panicked") {
                results[i] = Some(result);
            }
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("all slots filled"))
        .collect()
}

/// Runs `trials` seeds of a base scenario in parallel and returns results
/// in seed order.
pub(crate) fn run_many(base: &Scenario, trials: usize) -> Vec<TrialResult> {
    run_many_with(base, trials, run_scenario)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::InputSpec;

    #[test]
    fn every_protocol_runs_benign() {
        for proto in [
            ProtocolSpec::Paper { alpha: 2.0 },
            ProtocolSpec::PaperLasVegas { alpha: 2.0 },
            ProtocolSpec::PaperLiteralCoin { alpha: 2.0 },
            ProtocolSpec::ChorCoan { beta: 1.0 },
            ProtocolSpec::RabinDealer,
            ProtocolSpec::BenOrPrivate,
            ProtocolSpec::PhaseKing,
        ] {
            let s = Scenario::new(16, 5)
                .with_protocol(proto)
                .with_attack(AttackSpec::Benign)
                .with_inputs(InputSpec::AllSame(true));
            let r = run_scenario(&s);
            assert!(r.correct(), "{} failed: {r:?}", proto.name());
            assert_eq!(r.decision, Some(true));
        }
    }

    #[test]
    fn every_attack_runs_on_paper_protocol() {
        for attack in [
            AttackSpec::Benign,
            AttackSpec::StaticSilent,
            AttackSpec::StaticMirror,
            AttackSpec::Crash { per_round: 1 },
            AttackSpec::SplitVote,
            AttackSpec::FullAttack,
            AttackSpec::FullAttackFrugal,
            AttackSpec::FullAttackCapped { q: 2 },
        ] {
            let s = Scenario::new(16, 5)
                .with_protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
                .with_attack(attack);
            let r = run_scenario(&s);
            assert!(r.terminated, "{} never terminated", attack.name());
            assert!(r.agreement, "{} broke agreement: {r:?}", attack.name());
        }
    }

    #[test]
    fn capped_attack_respects_q() {
        let s = Scenario::new(31, 10)
            .with_protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
            .with_attack(AttackSpec::FullAttackCapped { q: 3 });
        let r = run_scenario(&s);
        assert!(r.corruptions <= 3, "corruptions {} > q", r.corruptions);
    }

    #[test]
    fn run_many_is_deterministic_and_ordered() {
        let s = Scenario::new(16, 5).with_attack(AttackSpec::SplitVote);
        let a = run_many(&s, 8);
        let b = run_many(&s, 8);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        // Different seeds should produce at least two distinct round
        // counts across 8 trials of a randomized protocol.
        let distinct: std::collections::HashSet<u64> = a.iter().map(|r| r.rounds).collect();
        assert!(!distinct.is_empty());
    }

    #[test]
    fn congest_bound_holds_in_trials() {
        let s = Scenario::new(32, 10).with_attack(AttackSpec::FullAttack);
        let r = run_scenario(&s);
        // O(log n) bits per edge per round with a generous constant.
        let budget = 8.0 * (32f64).log2();
        assert!(
            (r.max_edge_bits as f64) <= budget,
            "edge bits {} exceed {budget}",
            r.max_edge_bits
        );
    }
}
