//! Trial execution: scenario dispatch and the parallel batch runner.

use crate::scenario::{AttackSpec, ProtocolSpec, Scenario};
use aba_adversary::{AdaptiveCrash, Benign, BudgetCapped, StaticBehavior, StaticByzantine};
use aba_agreement::{BaConfig, CoinRoundMode, CommitteeBa, PhaseKingBa};
use aba_attacks::{AdaptiveFullAttack, BudgetPolicy, SplitVote};
use aba_sim::adversary::Adversary;
use aba_sim::{RunReport, SimConfig, Simulation, Verdict};
use serde::{Deserialize, Serialize};

/// Result of one trial, flattened for aggregation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialResult {
    /// Rounds until every honest node halted (or the cap).
    pub rounds: u64,
    /// Whether every honest node terminated before the cap.
    pub terminated: bool,
    /// Whether all honest outputs agreed.
    pub agreement: bool,
    /// Validity verdict (None when inputs were mixed).
    pub validity: Option<bool>,
    /// The common decision, if agreement held.
    pub decision: Option<bool>,
    /// Corruptions the adversary actually performed.
    pub corruptions: usize,
    /// Total point-to-point messages.
    pub messages: usize,
    /// Total bits on the wire.
    pub bits: usize,
    /// Max bits over any edge in any round (CONGEST check).
    pub max_edge_bits: usize,
}

impl TrialResult {
    fn from_run(report: &RunReport, inputs: &[bool]) -> TrialResult {
        let verdict = Verdict::evaluate(inputs, &report.outputs, &report.honest);
        TrialResult {
            rounds: report.rounds,
            terminated: report.all_halted,
            agreement: verdict.agreement,
            validity: verdict.validity,
            decision: verdict.decision,
            corruptions: report.corruptions_used,
            messages: report.metrics.total_messages,
            bits: report.metrics.total_bits,
            max_edge_bits: report.metrics.max_edge_bits,
        }
    }

    /// Definition 1 satisfied (termination + agreement + validity where
    /// applicable).
    pub fn correct(&self) -> bool {
        self.terminated && self.agreement && self.validity.unwrap_or(true)
    }
}

fn sim_config(s: &Scenario) -> SimConfig {
    SimConfig::new(s.n, s.t)
        .with_seed(s.seed)
        .with_info_model(s.info)
        .with_max_rounds(s.max_rounds)
}

fn run_committee<A>(s: &Scenario, cfg: BaConfig, adversary: A) -> TrialResult
where
    A: Adversary<CommitteeBa>,
{
    let inputs = s.inputs.materialize(s.n, s.seed);
    let nodes = CommitteeBa::network(&cfg, &inputs);
    let report = Simulation::new(sim_config(s), nodes, adversary).run();
    TrialResult::from_run(&report, &inputs)
}

fn run_phase_king<A>(s: &Scenario, adversary: A) -> TrialResult
where
    A: Adversary<PhaseKingBa>,
{
    let inputs = s.inputs.materialize(s.n, s.seed);
    let nodes = PhaseKingBa::network(s.n, s.t, &inputs);
    let report = Simulation::new(sim_config(s), nodes, adversary).run();
    TrialResult::from_run(&report, &inputs)
}

/// Dispatches a committee-protocol scenario over the attack axis.
fn dispatch_committee(s: &Scenario, cfg: BaConfig) -> TrialResult {
    match s.attack {
        AttackSpec::Benign => run_committee(s, cfg, Benign),
        AttackSpec::StaticSilent => {
            run_committee(s, cfg, StaticByzantine::first_t(s.t, StaticBehavior::Silence))
        }
        AttackSpec::StaticMirror => run_committee(
            s,
            cfg,
            StaticByzantine::first_t(s.t, StaticBehavior::MirrorRandom),
        ),
        AttackSpec::Crash { per_round } => run_committee(s, cfg, AdaptiveCrash::steady(per_round)),
        AttackSpec::SplitVote => run_committee(s, cfg, SplitVote::new()),
        AttackSpec::FullAttack => {
            run_committee(s, cfg, AdaptiveFullAttack::new(BudgetPolicy::Greedy))
        }
        AttackSpec::FullAttackFrugal => {
            run_committee(s, cfg, AdaptiveFullAttack::new(BudgetPolicy::Frugal))
        }
        AttackSpec::FullAttackCapped { q } => run_committee(
            s,
            cfg,
            BudgetCapped::new(AdaptiveFullAttack::new(BudgetPolicy::Greedy), q),
        ),
    }
}

/// Runs one scenario to completion.
///
/// # Panics
///
/// Panics if the scenario's `(n, t)` violates a protocol precondition
/// (`n ≥ 3t + 1`); scenario construction is programmer-controlled.
pub fn run_scenario(s: &Scenario) -> TrialResult {
    match s.protocol {
        ProtocolSpec::Paper { alpha } => {
            let cfg = BaConfig::paper(s.n, s.t, alpha).expect("valid (n, t)");
            dispatch_committee(s, cfg)
        }
        ProtocolSpec::PaperLasVegas { alpha } => {
            let cfg = BaConfig::paper_las_vegas(s.n, s.t, alpha).expect("valid (n, t)");
            dispatch_committee(s, cfg)
        }
        ProtocolSpec::PaperLiteralCoin { alpha } => {
            let cfg = BaConfig::paper_las_vegas(s.n, s.t, alpha)
                .expect("valid (n, t)")
                .with_coin_round(CoinRoundMode::Literal);
            dispatch_committee(s, cfg)
        }
        ProtocolSpec::ChorCoan { beta } => {
            let cfg = BaConfig::chor_coan(s.n, s.t, beta).expect("valid (n, t)");
            dispatch_committee(s, cfg)
        }
        ProtocolSpec::RabinDealer => {
            // The dealer seed is derived from the scenario seed so trials
            // differ but stay reproducible.
            let cfg = BaConfig::rabin_dealer(s.n, s.t, s.seed ^ 0xDEA1).expect("valid (n, t)");
            dispatch_committee(s, cfg)
        }
        ProtocolSpec::BenOrPrivate => {
            let cfg = BaConfig::ben_or_private(s.n, s.t).expect("valid (n, t)");
            dispatch_committee(s, cfg)
        }
        ProtocolSpec::PhaseKing => match s.attack {
            AttackSpec::Benign => run_phase_king(s, Benign),
            AttackSpec::StaticSilent => {
                run_phase_king(s, StaticByzantine::first_t(s.t, StaticBehavior::Silence))
            }
            AttackSpec::StaticMirror => run_phase_king(
                s,
                StaticByzantine::first_t(s.t, StaticBehavior::MirrorRandom),
            ),
            AttackSpec::Crash { per_round } => {
                run_phase_king(s, AdaptiveCrash::steady(per_round))
            }
            // The BA-state-aware attacks don't apply to Phase-King's
            // message type; fall back to adaptive crash, the strongest
            // generic adversary (Phase-King is deterministic, so its
            // round count is attack-independent anyway).
            _ => run_phase_king(s, AdaptiveCrash::steady(1)),
        },
    }
}

/// Runs `trials` seeds of a base scenario in parallel (scoped threads;
/// one chunk per available core) and returns results in seed order.
pub fn run_many(base: &Scenario, trials: usize) -> Vec<TrialResult> {
    let scenarios: Vec<Scenario> = (0..trials as u64)
        .map(|i| {
            let mut s = base.clone();
            s.seed = base.seed.wrapping_add(i);
            s
        })
        .collect();
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(scenarios.len().max(1));
    let mut results: Vec<Option<TrialResult>> = vec![None; scenarios.len()];
    let chunk = scenarios.len().div_ceil(workers);
    crossbeam::scope(|scope| {
        for (slot_chunk, scen_chunk) in results.chunks_mut(chunk).zip(scenarios.chunks(chunk)) {
            scope.spawn(move |_| {
                for (slot, scenario) in slot_chunk.iter_mut().zip(scen_chunk) {
                    *slot = Some(run_scenario(scenario));
                }
            });
        }
    })
    .expect("worker thread panicked");
    results.into_iter().map(|r| r.expect("all slots filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::InputSpec;

    #[test]
    fn every_protocol_runs_benign() {
        for proto in [
            ProtocolSpec::Paper { alpha: 2.0 },
            ProtocolSpec::PaperLasVegas { alpha: 2.0 },
            ProtocolSpec::PaperLiteralCoin { alpha: 2.0 },
            ProtocolSpec::ChorCoan { beta: 1.0 },
            ProtocolSpec::RabinDealer,
            ProtocolSpec::BenOrPrivate,
            ProtocolSpec::PhaseKing,
        ] {
            let s = Scenario::new(16, 5)
                .with_protocol(proto)
                .with_attack(AttackSpec::Benign)
                .with_inputs(InputSpec::AllSame(true));
            let r = run_scenario(&s);
            assert!(r.correct(), "{} failed: {r:?}", proto.name());
            assert_eq!(r.decision, Some(true));
        }
    }

    #[test]
    fn every_attack_runs_on_paper_protocol() {
        for attack in [
            AttackSpec::Benign,
            AttackSpec::StaticSilent,
            AttackSpec::StaticMirror,
            AttackSpec::Crash { per_round: 1 },
            AttackSpec::SplitVote,
            AttackSpec::FullAttack,
            AttackSpec::FullAttackFrugal,
            AttackSpec::FullAttackCapped { q: 2 },
        ] {
            let s = Scenario::new(16, 5)
                .with_protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
                .with_attack(attack);
            let r = run_scenario(&s);
            assert!(r.terminated, "{} never terminated", attack.name());
            assert!(r.agreement, "{} broke agreement: {r:?}", attack.name());
        }
    }

    #[test]
    fn capped_attack_respects_q() {
        let s = Scenario::new(31, 10)
            .with_protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
            .with_attack(AttackSpec::FullAttackCapped { q: 3 });
        let r = run_scenario(&s);
        assert!(r.corruptions <= 3, "corruptions {} > q", r.corruptions);
    }

    #[test]
    fn run_many_is_deterministic_and_ordered() {
        let s = Scenario::new(16, 5).with_attack(AttackSpec::SplitVote);
        let a = run_many(&s, 8);
        let b = run_many(&s, 8);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        // Different seeds should produce at least two distinct round
        // counts across 8 trials of a randomized protocol.
        let distinct: std::collections::HashSet<u64> = a.iter().map(|r| r.rounds).collect();
        assert!(!distinct.is_empty());
    }

    #[test]
    fn congest_bound_holds_in_trials() {
        let s = Scenario::new(32, 10).with_attack(AttackSpec::FullAttack);
        let r = run_scenario(&s);
        // O(log n) bits per edge per round with a generous constant.
        let budget = 8.0 * (32f64).log2();
        assert!(
            (r.max_edge_bits as f64) <= budget,
            "edge bits {} exceed {budget}",
            r.max_edge_bits
        );
    }
}
