//! Scenario-level entry points for the `aba-obs` deterministic channel:
//! run a trial with the [`EventProbe`](aba_obs::EventProbe) attached and
//! get back the event log and metrics registry alongside the ordinary
//! result, or run the record/replay differential with probes on both
//! sides.
//!
//! Everything returned here lives on **logical time**: the event log and
//! registry are pure functions of the scenario, so
//! [`observe_scenario`]'s output is part of the reproducibility surface
//! — byte-identical across processes, worker counts, and (as
//! [`observe_replay`] pins) between a live run and its trace replay.

use crate::runner::{self, ObserveDrive, ObservedReplayDrive, TrialResult};
use crate::scenario::Scenario;
use aba_check::OracleReport;
use aba_obs::{EventLog, MetricsRegistry};

/// Result of one probe-instrumented, oracle-checked trial.
#[derive(Debug, Clone, PartialEq)]
pub struct ObservedTrial {
    /// The ordinary trial result (bit-identical to an uninstrumented
    /// run — probes and oracles observe, they never influence).
    pub result: TrialResult,
    /// What the armed lemma oracles concluded.
    pub oracle: OracleReport,
    /// The deterministic event log (trial → round → phase spans, typed
    /// corruption/halt events, plus one `violation` event per retained
    /// oracle violation).
    pub events: EventLog,
    /// The deterministic metrics registry.
    pub metrics: MetricsRegistry,
}

impl ObservedTrial {
    /// Whether no armed oracle fired.
    pub fn is_clean(&self) -> bool {
        self.oracle.is_clean()
    }
}

/// Both sides of a record/replay differential with the deterministic
/// channel captured on each (see [`observe_replay`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ObservedReplay {
    /// The live run's trial result.
    pub live: TrialResult,
    /// The replayed run's trial result.
    pub replayed: TrialResult,
    /// Event log captured during the live run.
    pub live_events: EventLog,
    /// Event log captured during the replay.
    pub replayed_events: EventLog,
    /// Metrics registry from the live run.
    pub live_metrics: MetricsRegistry,
    /// Metrics registry from the replay.
    pub replayed_metrics: MetricsRegistry,
}

impl ObservedReplay {
    /// Whether the replay reproduced the live trial result bit for bit.
    pub fn is_faithful(&self) -> bool {
        self.live == self.replayed
    }

    /// Whether the deterministic channel matched byte for byte: equal
    /// rendered event logs and equal rendered registries.
    pub fn channels_match(&self) -> bool {
        self.live_events.render() == self.replayed_events.render()
            && self.live_metrics.render() == self.replayed_metrics.render()
    }
}

/// Runs one scenario with the deterministic observability channel (and
/// the scenario's lemma oracles) attached — the instrumented sibling of
/// [`crate::check_scenario`].
///
/// # Panics
///
/// Same preconditions as [`crate::run_scenario`].
pub fn observe_scenario(s: &Scenario) -> ObservedTrial {
    runner::drive_scenario(&ObserveDrive, s)
}

/// Records one scenario's run with a probe attached, re-drives it from
/// the trace with a fresh probe, and returns both channels — the
/// differential pinning that the event log is a function of engine
/// behaviour, not of how the run was driven.
///
/// # Panics
///
/// Same preconditions as [`crate::run_scenario`].
pub fn observe_replay(s: &Scenario) -> ObservedReplay {
    runner::drive_scenario(&ObservedReplayDrive, s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::AttackSpec;

    #[test]
    fn observed_trial_matches_plain_run() {
        let s = Scenario::new(16, 5).with_attack(AttackSpec::FullAttack);
        let plain = runner::run_scenario(&s);
        let observed = observe_scenario(&s);
        assert_eq!(plain, observed.result, "probe must not perturb the run");
        assert!(!observed.events.is_empty());
        assert!(observed.events.render().contains("trial-start n=16 t=5"));
        assert_eq!(
            observed.metrics.counter("sim.rounds"),
            plain.rounds,
            "registry round counter mirrors the report"
        );
    }

    #[test]
    fn observe_is_deterministic() {
        let s = Scenario::new(16, 5).with_attack(AttackSpec::SplitVote);
        let a = observe_scenario(&s);
        let b = observe_scenario(&s);
        assert_eq!(a.events.render(), b.events.render());
        assert_eq!(a.metrics.render(), b.metrics.render());
    }

    #[test]
    fn replay_reproduces_the_deterministic_channel() {
        let s = Scenario::new(16, 5).with_attack(AttackSpec::FullAttack);
        let r = observe_replay(&s);
        assert!(r.is_faithful());
        assert!(r.channels_match());
    }
}
