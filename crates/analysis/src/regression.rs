//! Least-squares fitting, used to extract complexity exponents from
//! measured data.
//!
//! The paper proves `R(n,t) = O(t² log n / n)` for small `t`: on a
//! log–log plot of rounds versus `t` at fixed `n`, the measured points
//! should fall on a line of slope ≈ 2 (and the Chor–Coan baseline on
//! slope ≈ 1). [`fit_loglog`] measures that slope and the goodness of
//! fit, giving the experiments a quantitative pass/fail criterion rather
//! than an eyeballed plot.

/// Result of a simple linear least-squares fit `y = intercept + slope·x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination (1 = perfect line).
    pub r_squared: f64,
    /// Points used.
    pub count: usize,
}

/// Ordinary least squares on `(x, y)` pairs.
///
/// Returns `None` with fewer than two points or zero x-variance.
pub fn fit_linear(points: &[(f64, f64)]) -> Option<LinearFit> {
    let n = points.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mean_x = points.iter().map(|p| p.0).sum::<f64>() / nf;
    let mean_y = points.iter().map(|p| p.1).sum::<f64>() / nf;
    let sxx: f64 = points.iter().map(|p| (p.0 - mean_x).powi(2)).sum();
    let sxy: f64 = points.iter().map(|p| (p.0 - mean_x) * (p.1 - mean_y)).sum();
    let syy: f64 = points.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let r_squared = if syy == 0.0 {
        1.0 // constant y is fit perfectly by slope 0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Some(LinearFit {
        slope,
        intercept,
        r_squared,
        count: n,
    })
}

/// Fits `log y = a + b·log x`; the returned slope `b` is the power-law
/// exponent of `y ∝ x^b`. Points with non-positive coordinates are
/// skipped (they have no logarithm).
pub fn fit_loglog(points: &[(f64, f64)]) -> Option<LinearFit> {
    let logged: Vec<(f64, f64)> = points
        .iter()
        .filter(|(x, y)| *x > 0.0 && *y > 0.0)
        .map(|(x, y)| (x.ln(), y.ln()))
        .collect();
    fit_linear(&logged)
}

/// Convenience: power-law fit returning `(exponent, multiplier)` so that
/// `y ≈ multiplier · x^exponent`.
pub fn fit_power_law(points: &[(f64, f64)]) -> Option<(f64, f64)> {
    fit_loglog(points).map(|f| (f.slope, f.intercept.exp()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let pts: Vec<(f64, f64)> = (1..10).map(|i| (i as f64, 3.0 * i as f64 + 2.0)).collect();
        let f = fit_linear(&pts).unwrap();
        assert!((f.slope - 3.0).abs() < 1e-12);
        assert!((f.intercept - 2.0).abs() < 1e-12);
        assert!((f.r_squared - 1.0).abs() < 1e-12);
        assert_eq!(f.count, 9);
    }

    #[test]
    fn quadratic_power_law_measured() {
        // y = 5 x^2 exactly.
        let pts: Vec<(f64, f64)> = (1..20)
            .map(|i| (i as f64, 5.0 * (i as f64).powi(2)))
            .collect();
        let (exp, mult) = fit_power_law(&pts).unwrap();
        assert!((exp - 2.0).abs() < 1e-10, "exponent {exp}");
        assert!((mult - 5.0).abs() < 1e-9, "multiplier {mult}");
    }

    #[test]
    fn noisy_power_law_within_tolerance() {
        // y = x^1.5 with deterministic ±5% ripple.
        let pts: Vec<(f64, f64)> = (1..40)
            .map(|i| {
                let x = i as f64;
                let ripple = 1.0 + 0.05 * ((i % 7) as f64 - 3.0) / 3.0;
                (x, x.powf(1.5) * ripple)
            })
            .collect();
        let f = fit_loglog(&pts).unwrap();
        assert!((f.slope - 1.5).abs() < 0.05, "slope {}", f.slope);
        assert!(f.r_squared > 0.99);
    }

    #[test]
    fn degenerate_inputs_are_none() {
        assert!(fit_linear(&[]).is_none());
        assert!(fit_linear(&[(1.0, 1.0)]).is_none());
        assert!(fit_linear(&[(2.0, 1.0), (2.0, 5.0)]).is_none());
    }

    #[test]
    fn loglog_skips_nonpositive_points() {
        let pts = [
            (0.0, 1.0),
            (-1.0, 2.0),
            (1.0, 0.0),
            (1.0, 2.0),
            (2.0, 4.0),
            (4.0, 8.0),
        ];
        let f = fit_loglog(&pts).unwrap();
        assert_eq!(f.count, 3);
        assert!((f.slope - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_y_has_r2_one_slope_zero() {
        let pts = [(1.0, 4.0), (2.0, 4.0), (3.0, 4.0)];
        let f = fit_linear(&pts).unwrap();
        assert_eq!(f.slope, 0.0);
        assert_eq!(f.r_squared, 1.0);
    }
}
