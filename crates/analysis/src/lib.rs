//! # aba-analysis — statistics, regression, theory curves, and rendering
//!
//! Everything the experiment harness needs to turn raw trial results into
//! the tables and figures of EXPERIMENTS.md:
//!
//! * [`stats`] — summary statistics (mean, variance, quantiles,
//!   confidence intervals) over trial samples;
//! * [`regression`] — least-squares log–log slope fitting, used to
//!   *measure* the round-complexity exponents the paper proves
//!   (`R ∝ t²` in regime 1, `R ∝ t` for the Chor–Coan baseline);
//! * [`theory`] — the paper's bound curves (Theorem 2 upper bound, the
//!   Chor–Coan bound, the Bar-Joseph–Ben-Or lower bound, the regime
//!   boundary `t = n/log²n`);
//! * [`table`] — markdown/CSV rendering of result tables and series;
//! * [`plot`] — ASCII scatter plots so figures render in terminals and
//!   markdown reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod plot;
pub mod regression;
pub mod stats;
pub mod table;
pub mod theory;

pub use plot::{render as render_plot, PlotOptions};
pub use regression::{fit_linear, fit_loglog, fit_power_law, LinearFit};
pub use stats::{percentile_nearest_rank, Proportion, Summary};
pub use table::{Series, Table};
