//! Summary statistics over experiment samples.

/// Summary of a sample of f64 measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected; 0 for count < 2).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Summary {
    /// Computes a summary; returns `None` for an empty sample.
    pub fn of(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let var = if count > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (count - 1) as f64
        } else {
            0.0
        };
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_unstable_by(f64::total_cmp);
        Some(Summary {
            count,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[count - 1],
            median: quantile_sorted(&sorted, 0.5),
            p95: quantile_sorted(&sorted, 0.95),
            p99: quantile_sorted(&sorted, 0.99),
        })
    }

    /// Computes a summary of integer samples.
    pub fn of_u64(samples: &[u64]) -> Option<Summary> {
        let v: Vec<f64> = samples.iter().map(|&x| x as f64).collect();
        Summary::of(&v)
    }

    /// Half-width of the normal-approximation 95% confidence interval of
    /// the mean (`1.96·σ/√count`).
    pub fn ci95_half_width(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        1.96 * self.std_dev / (self.count as f64).sqrt()
    }
}

/// Sums a float sample in ascending `total_cmp` value order — the
/// workspace convention for any accumulation whose result lands in an
/// artifact. Float addition is not associative, so a sum taken in
/// arrival order depends on worker interleaving and merge order; in
/// value order it is a pure function of the *multiset* of samples and
/// is therefore bit-identical at any worker count. (`total_cmp` rather
/// than `partial_cmp` so NaN payloads also land in a fixed position.)
pub fn sum_value_ordered(xs: &[f64]) -> f64 {
    let mut sorted = xs.to_vec();
    sorted.sort_unstable_by(f64::total_cmp);
    sorted.iter().sum()
}

/// Mean via [`sum_value_ordered`]; `NaN` for an empty sample.
pub fn mean_value_ordered(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    sum_value_ordered(xs) / xs.len() as f64
}

/// Quantile of a pre-sorted sample via linear interpolation between
/// closest ranks (type-7 estimator, the numpy/R default).
///
/// # Panics
///
/// Panics if `sorted` is empty or `q` is outside `[0, 1]`.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile {q} out of [0,1]");
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let h = q * (n - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
    }
}

/// Nearest-rank percentile of a pre-sorted integer sample: the smallest
/// value with at least `⌈p/100 · N⌉` observations at or below it.
///
/// This is the **workspace-wide convention for discrete round counts**
/// (used by `BatchReport::rounds_percentile` in `aba-harness` and the
/// campaign cell summaries in `aba-sweep`): every reported percentile is
/// an observation that actually occurred, never an interpolated value.
/// For continuous measurements summarized by [`Summary`], the type-7
/// interpolating [`quantile_sorted`] remains the convention; the two
/// estimators disagree whenever the rank falls between observations
/// (pinned in this module's tests).
///
/// # Panics
///
/// Panics if `sorted` is empty or `p` is outside `(0, 100]`.
pub fn percentile_nearest_rank(sorted: &[u64], p: f64) -> u64 {
    assert!(!sorted.is_empty(), "percentile of empty sample");
    assert!(p > 0.0 && p <= 100.0, "percentile {p} out of (0, 100]");
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Proportion of `true` in a boolean sample together with a Wilson 95%
/// confidence interval — used for agreement/validity success rates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Proportion {
    /// Number of successes.
    pub successes: usize,
    /// Number of trials.
    pub trials: usize,
    /// Point estimate `successes/trials`.
    pub estimate: f64,
    /// Lower end of the Wilson 95% interval.
    pub wilson_low: f64,
    /// Upper end of the Wilson 95% interval.
    pub wilson_high: f64,
}

/// Center and (unclamped) half-width of the Wilson 95% interval for
/// `successes` out of `n` trials — the one place the formula lives.
fn wilson_parts(p: f64, n: f64) -> (f64, f64) {
    let z = 1.96_f64;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * ((p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt());
    (center, half)
}

impl Proportion {
    /// Computes the proportion; returns `None` when `trials == 0`.
    pub fn of(successes: usize, trials: usize) -> Option<Proportion> {
        if trials == 0 {
            return None;
        }
        let n = trials as f64;
        let p = successes as f64 / n;
        let (center, half) = wilson_parts(p, n);
        Some(Proportion {
            successes,
            trials,
            estimate: p,
            wilson_low: (center - half).max(0.0),
            wilson_high: (center + half).min(1.0),
        })
    }

    /// Computes the proportion of `true` in a slice.
    pub fn of_bools(sample: &[bool]) -> Option<Proportion> {
        Self::of(sample.iter().filter(|b| **b).count(), sample.len())
    }

    /// Half-width of the Wilson 95% interval, *before* clamping the ends
    /// into `[0, 1]` — the monotone-shrinking precision measure used by
    /// sequential stopping rules (`aba-sweep`): it decays as `Θ(1/√n)`
    /// even when the point estimate sits on a boundary, where the clamped
    /// `(wilson_high − wilson_low)/2` would understate the uncertainty.
    pub fn half_width(&self) -> f64 {
        wilson_parts(self.estimate, self.trials as f64).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.count, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.std_dev - (2.5_f64).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn summary_empty_and_singleton() {
        assert!(Summary::of(&[]).is_none());
        let s = Summary::of(&[7.0]).unwrap();
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.p99, 7.0);
    }

    #[test]
    fn summary_of_u64() {
        let s = Summary::of_u64(&[2, 4, 6]).unwrap();
        assert!((s.mean - 4.0).abs() < 1e-12);
    }

    #[test]
    fn value_ordered_sum_is_bitwise_order_invariant() {
        // A scale mix where naive left-to-right summation genuinely
        // depends on order (catastrophic absorption at 1e16).
        let base = [1e16, 1.0, -1e16, 3.5, 0.1, 2.5e-7, -42.0, 7.75];
        let canonical = sum_value_ordered(&base);
        let mut rotated = base.to_vec();
        for _ in 1..base.len() {
            rotated.rotate_left(1);
            assert_eq!(canonical.to_bits(), sum_value_ordered(&rotated).to_bits());
        }
        let mut reversed = base.to_vec();
        reversed.reverse();
        assert_eq!(canonical.to_bits(), sum_value_ordered(&reversed).to_bits());
        // The guard is not vacuous: arrival-order summation differs.
        let naive_fwd: f64 = base.iter().sum();
        let naive_rev: f64 = reversed.iter().sum();
        assert_ne!(naive_fwd.to_bits(), naive_rev.to_bits());
    }

    #[test]
    fn value_ordered_mean_edge_cases() {
        assert!(mean_value_ordered(&[]).is_nan());
        assert_eq!(mean_value_ordered(&[2.0, 4.0]), 3.0);
        assert_eq!(sum_value_ordered(&[]), 0.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let sorted = [0.0, 10.0];
        assert_eq!(quantile_sorted(&sorted, 0.0), 0.0);
        assert_eq!(quantile_sorted(&sorted, 1.0), 10.0);
        assert!((quantile_sorted(&sorted, 0.25) - 2.5).abs() < 1e-12);
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert!((quantile_sorted(&sorted, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn quantiles_are_monotone() {
        let sorted: Vec<f64> = (0..100).map(|i| (i as f64).sqrt()).collect();
        let mut last = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = quantile_sorted(&sorted, i as f64 / 20.0);
            assert!(q >= last);
            last = q;
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_empty_panics() {
        let _ = quantile_sorted(&[], 0.5);
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let small = Summary::of(&[1.0, 2.0, 3.0]).unwrap();
        let many: Vec<f64> = (0..300).map(|i| (i % 3) as f64 + 1.0).collect();
        let big = Summary::of(&many).unwrap();
        assert!(big.ci95_half_width() < small.ci95_half_width());
    }

    #[test]
    fn nearest_rank_percentile_convention() {
        // The convention cases from BatchReport::rounds_percentile.
        let sorted = [10, 20, 30, 40];
        assert_eq!(percentile_nearest_rank(&sorted, 25.0), 10);
        assert_eq!(percentile_nearest_rank(&sorted, 50.0), 20);
        assert_eq!(percentile_nearest_rank(&sorted, 75.0), 30);
        assert_eq!(percentile_nearest_rank(&sorted, 76.0), 40);
        assert_eq!(percentile_nearest_rank(&sorted, 100.0), 40);
        assert_eq!(percentile_nearest_rank(&[7], 50.0), 7);
        // Tiny p clamps to the first observation.
        assert_eq!(percentile_nearest_rank(&sorted, 0.001), 10);
    }

    #[test]
    fn nearest_rank_vs_type7_disagree_between_observations() {
        // Both conventions exist in this crate on purpose; pin where they
        // differ so neither silently drifts toward the other. At p50 on
        // an even-sized sample the type-7 estimator interpolates (25.0)
        // while nearest-rank returns a real observation (20).
        let ints = [10u64, 20, 30, 40];
        let floats = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile_nearest_rank(&ints, 50.0), 20);
        assert!((quantile_sorted(&floats, 0.5) - 25.0).abs() < 1e-12);
        // On odd-sized samples the two agree at the median.
        let ints = [1u64, 2, 3];
        let floats = [1.0, 2.0, 3.0];
        assert_eq!(
            percentile_nearest_rank(&ints, 50.0) as f64,
            quantile_sorted(&floats, 0.5)
        );
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn nearest_rank_empty_panics() {
        let _ = percentile_nearest_rank(&[], 50.0);
    }

    #[test]
    fn wilson_matches_tabulated_values() {
        // Reference values computed independently from the closed-form
        // Wilson score interval at z = 1.96 (agree with published tables,
        // e.g. epitools, to 4 decimals).
        let cases = [
            (8usize, 10usize, 0.490157, 0.943319, 0.226581),
            (0, 10, 0.0, 0.277540, 0.138770),
            (10, 10, 0.722460, 1.0, 0.138770),
            (5, 10, 0.236590, 0.763410, 0.263410),
            (90, 100, 0.825633, 0.944771, 0.059569),
            (45, 60, 0.627677, 0.842236, 0.107280),
            (1, 30, 0.005908, 0.166708, 0.080400),
        ];
        for (s, n, low, high, half) in cases {
            let p = Proportion::of(s, n).unwrap();
            assert!(
                (p.wilson_low - low).abs() < 1e-5,
                "{s}/{n} low {} != {low}",
                p.wilson_low
            );
            assert!(
                (p.wilson_high - high).abs() < 1e-5,
                "{s}/{n} high {} != {high}",
                p.wilson_high
            );
            assert!(
                (p.half_width() - half).abs() < 1e-5,
                "{s}/{n} half {} != {half}",
                p.half_width()
            );
        }
    }

    #[test]
    fn wilson_half_width_shrinks_with_trials() {
        // The stopping rule relies on the unclamped half-width decaying
        // even at boundary estimates (all successes).
        let mut last = f64::INFINITY;
        for n in [4usize, 16, 64, 256] {
            let hw = Proportion::of(n, n).unwrap().half_width();
            assert!(hw < last, "half_width must shrink: {hw} !< {last}");
            last = hw;
        }
    }

    #[test]
    fn proportion_wilson_interval() {
        let p = Proportion::of(90, 100).unwrap();
        assert!((p.estimate - 0.9).abs() < 1e-12);
        assert!(p.wilson_low > 0.8 && p.wilson_low < 0.9);
        assert!(p.wilson_high > 0.9 && p.wilson_high <= 1.0);
        assert!(Proportion::of(0, 0).is_none());
        let all = Proportion::of_bools(&[true, true]).unwrap();
        assert_eq!(all.estimate, 1.0);
        assert!(all.wilson_high <= 1.0);
        let none = Proportion::of_bools(&[false, false, false]).unwrap();
        assert_eq!(none.estimate, 0.0);
        assert!(none.wilson_low >= 0.0);
    }
}
