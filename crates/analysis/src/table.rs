//! Rendering of experiment results as markdown tables, CSV, and aligned
//! text series — the "rows the paper reports" output format of the
//! harness.

use std::fmt::Write as _;

/// A cell value.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// Text.
    Text(String),
    /// Integer.
    Int(i64),
    /// Float, rendered with 3 significant decimals.
    Float(f64),
    /// Empty cell.
    Empty,
}

impl Cell {
    fn render(&self) -> String {
        match self {
            Cell::Text(s) => s.clone(),
            Cell::Int(i) => i.to_string(),
            Cell::Float(x) => {
                if x.is_nan() {
                    "—".to_string()
                } else if x.abs() >= 1000.0 {
                    // aba-lint: allow(float-determinism) — report-table display rounding; raw values live in the JSON artifacts
                    format!("{x:.0}")
                } else {
                    // aba-lint: allow(float-determinism) — report-table display rounding; raw values live in the JSON artifacts
                    format!("{x:.3}")
                }
            }
            Cell::Empty => String::new(),
        }
    }
}

impl From<&str> for Cell {
    fn from(s: &str) -> Self {
        Cell::Text(s.to_string())
    }
}
impl From<String> for Cell {
    fn from(s: String) -> Self {
        Cell::Text(s)
    }
}
impl From<i64> for Cell {
    fn from(v: i64) -> Self {
        Cell::Int(v)
    }
}
impl From<usize> for Cell {
    fn from(v: usize) -> Self {
        Cell::Int(v as i64)
    }
}
impl From<u64> for Cell {
    fn from(v: u64) -> Self {
        Cell::Int(v as i64)
    }
}
impl From<f64> for Cell {
    fn from(v: f64) -> Self {
        Cell::Float(v)
    }
}

/// A result table with named columns.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Table {
    /// Table title.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of cells; ragged rows are padded when rendering.
    pub rows: Vec<Vec<Cell>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, row: Vec<Cell>) -> &mut Self {
        self.rows.push(row);
        self
    }

    /// Renders as a GitHub-flavored markdown table (with title header).
    pub fn to_markdown(&self) -> String {
        let width = self.columns.len();
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let _ = writeln!(out, "| {} |", self.columns.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.columns
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let mut cells: Vec<String> = row.iter().map(Cell::render).collect();
            cells.resize(width, String::new());
            let _ = writeln!(out, "| {} |", cells.join(" | "));
        }
        out
    }

    /// Renders as CSV (RFC-4180-style quoting for cells containing commas
    /// or quotes).
    pub fn to_csv(&self) -> String {
        fn esc(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.columns
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let mut cells: Vec<String> = row.iter().map(|c| esc(&c.render())).collect();
            cells.resize(self.columns.len(), String::new());
            let _ = writeln!(out, "{}", cells.join(","));
        }
        out
    }
}

/// A named (x, y) series — one curve of a figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Curve label.
    pub label: String,
    /// Data points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Creates a series from points.
    pub fn from_points(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) -> &mut Self {
        self.points.push((x, y));
        self
    }
}

/// Renders several series that share an x-axis as one markdown table
/// (x column followed by one column per series; missing x-values are
/// blank). This is the "figure" format of the experiment reports.
pub fn series_to_markdown(title: &str, x_label: &str, series: &[Series]) -> String {
    let mut xs: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.0))
        .collect();
    xs.sort_unstable_by(f64::total_cmp);
    xs.dedup();

    let mut columns: Vec<&str> = vec![x_label];
    columns.extend(series.iter().map(|s| s.label.as_str()));
    let mut table = Table::new(title, &columns);
    for x in xs {
        let mut row: Vec<Cell> = vec![Cell::Float(x)];
        for s in series {
            let y = s
                .points
                .iter()
                .find(|(px, _)| (*px - x).abs() < f64::EPSILON * x.abs().max(1.0))
                .map(|(_, py)| *py);
            row.push(y.map(Cell::Float).unwrap_or(Cell::Empty));
        }
        table.push_row(row);
    }
    table.to_markdown()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering_shapes_up() {
        let mut t = Table::new("Rounds", &["n", "t", "rounds"]);
        t.push_row(vec![64usize.into(), 8usize.into(), 12.5.into()]);
        t.push_row(vec![128usize.into(), "16".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### Rounds"));
        assert!(md.contains("| n | t | rounds |"));
        assert!(md.contains("| 64 | 8 | 12.500 |"));
        assert!(md.contains("| 128 | 16 |  |"), "ragged row padded: {md}");
    }

    #[test]
    fn csv_escapes_special_cells() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["has,comma".into(), "has\"quote".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"has,comma\""));
        assert!(csv.contains("\"has\"\"quote\""));
    }

    #[test]
    fn cell_float_formatting() {
        assert_eq!(Cell::Float(1.23456).render(), "1.235");
        assert_eq!(Cell::Float(12345.6).render(), "12346");
        assert_eq!(Cell::Float(f64::NAN).render(), "—");
        assert_eq!(Cell::Empty.render(), "");
        assert_eq!(Cell::Int(-3).render(), "-3");
    }

    #[test]
    fn series_share_x_axis() {
        let a = Series::from_points("ours", vec![(1.0, 2.0), (2.0, 8.0)]);
        let b = Series::from_points("baseline", vec![(1.0, 3.0), (3.0, 27.0)]);
        let md = series_to_markdown("Fig", "t", &[a, b]);
        assert!(md.contains("| t | ours | baseline |"));
        // x=2 has no baseline value; x=3 has no ours value.
        assert!(md.contains("| 2.000 | 8.000 |  |"));
        assert!(md.contains("| 3.000 |  | 27.000 |"));
    }

    #[test]
    fn series_push_api() {
        let mut s = Series::new("curve");
        s.push(1.0, 1.0).push(2.0, 4.0);
        assert_eq!(s.points.len(), 2);
    }
}
