//! The paper's analytic bound curves.
//!
//! These are *shapes* (asymptotic bounds with the constants set to 1
//! unless noted); experiments plot them next to measured data to check
//! slopes, crossover locations, and ordering — never absolute values.
//! All logarithms are base 2, matching the bit-oriented convention used
//! across the workspace (the paper's asymptotics are base-agnostic).

/// Base-2 logarithm of `n` as used throughout (`n ≥ 2` expected; values
/// below 2 are clamped so the curves stay finite).
pub fn log2n(n: usize) -> f64 {
    (n.max(2) as f64).log2()
}

/// Theorem 2 upper bound shape: `min{t²·log n / n, t / log n}` rounds.
pub fn paper_bound(n: usize, t: usize) -> f64 {
    if t == 0 {
        return 1.0;
    }
    let l = log2n(n);
    let t = t as f64;
    let n = n as f64;
    (t * t * l / n).min(t / l).max(1.0)
}

/// The regime-1 branch `t²·log n / n` alone.
pub fn paper_bound_regime1(n: usize, t: usize) -> f64 {
    let l = log2n(n);
    ((t * t) as f64 * l / n as f64).max(1.0)
}

/// Chor–Coan (1985) bound shape: `t / log n` expected rounds.
pub fn chor_coan_bound(n: usize, t: usize) -> f64 {
    (t as f64 / log2n(n)).max(1.0)
}

/// Bar-Joseph–Ben-Or lower bound shape: `t / √(n·log n)` rounds
/// (Theorem 1). Any correct protocol sits above this curve.
pub fn bjb_lower_bound(n: usize, t: usize) -> f64 {
    (t as f64 / (n as f64 * log2n(n)).sqrt()).max(1.0)
}

/// Deterministic lower bound: `t + 1` rounds (Fischer–Lynch).
pub fn deterministic_bound(t: usize) -> f64 {
    (t + 1) as f64
}

/// The regime boundary `t* = n / log²n`: below it the paper's bound
/// strictly beats Chor–Coan; above it they match asymptotically
/// (Section 1.2).
pub fn regime_boundary(n: usize) -> f64 {
    n as f64 / log2n(n).powi(2)
}

/// Number of committees `c = min{α·⌈t²/n⌉·log n, 3α·t/log n}`
/// (Algorithm 3 line 2), clamped to `[1, n]` so the partition is always
/// well formed (the paper implicitly assumes parameters where this
/// holds).
pub fn committee_count(n: usize, t: usize, alpha: f64) -> usize {
    assert!(n > 0);
    assert!(alpha > 0.0, "alpha must be positive");
    if t == 0 {
        return 1;
    }
    let l = log2n(n);
    let branch1 = alpha * ((t * t).div_ceil(n)) as f64 * l;
    let branch2 = 3.0 * alpha * t as f64 / l;
    let c = branch1.min(branch2).ceil() as usize;
    c.clamp(1, n)
}

/// Committee size `s = n/c` implied by [`committee_count`] (rounded up,
/// matching `CommitteePlan`).
pub fn committee_size(n: usize, t: usize, alpha: f64) -> usize {
    n.div_ceil(committee_count(n, t, alpha))
}

/// Maximum number of phases a rushing adversary can deny by the paper's
/// counting argument: it takes `≥ √s/2` corruptions per denied committee
/// (Lemma 5's contrapositive), so at most `2t/√s` phases die.
pub fn max_denied_phases(n: usize, t: usize, alpha: f64) -> f64 {
    let s = committee_size(n, t, alpha) as f64;
    2.0 * t as f64 / s.sqrt()
}

/// Theorem 2 early-termination bound: `min{q²·log n/n, q/log n}` rounds
/// when only `q < t` nodes are ever corrupted.
pub fn early_termination_bound(n: usize, q: usize) -> f64 {
    paper_bound(n, q)
}

/// Message-complexity shape `min{n·t²·log n, n²·t/log n}` (Section 1.2).
pub fn paper_message_bound(n: usize, t: usize) -> f64 {
    let l = log2n(n);
    let (n, t) = (n as f64, t as f64);
    (n * t * t * l).min(n * n * t / l).max(n * n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_beats_chor_coan_below_boundary() {
        // Strict improvement needs t in the window where branch 1 of the
        // min is both above the 1-round floor and below branch 2:
        // sqrt(n/log n) < t < n/log²n.
        let n = 1 << 16;
        for t in [80usize, 128, 200] {
            assert!((t as f64) < regime_boundary(n));
            assert!(
                paper_bound(n, t) < chor_coan_bound(n, t),
                "t={t} should favor the paper bound"
            );
        }
        // Below the window both bounds clamp to the 1-round floor.
        assert_eq!(paper_bound(n, 4), 1.0);
    }

    #[test]
    fn bounds_match_above_boundary() {
        let n = 1 << 16;
        let t = n / 3 - 1;
        // Above the boundary the min picks the t/log n branch.
        assert_eq!(paper_bound(n, t), chor_coan_bound(n, t));
    }

    #[test]
    fn paper_example_point() {
        // §1.2: t = n^0.75 gives ~n^0.5·log n vs Chor–Coan ~n^0.75/log n.
        // With base-2 logs the separation n^0.5·log n < n^0.75/log n needs
        // n^0.25 > log²n, i.e. asymptotically large n — use n = 2^60
        // (pure f64 curve evaluation, nothing is simulated).
        let n: usize = 1 << 60;
        let t = 1usize << 45; // n^0.75
        let ours = paper_bound(n, t);
        let cc = chor_coan_bound(n, t);
        assert!(ours < cc, "paper bound {ours} must beat CC {cc}");
        let expected = (n as f64).sqrt() * log2n(n);
        assert!((ours / expected - 1.0).abs() < 0.1);
    }

    #[test]
    fn lower_bound_sits_below_everything() {
        for n in [64usize, 1024, 1 << 16] {
            for frac in [8usize, 16, 4] {
                let t = n / frac;
                assert!(bjb_lower_bound(n, t) <= paper_bound(n, t) + 1e-9);
                assert!(bjb_lower_bound(n, t) <= chor_coan_bound(n, t) + 1e-9);
            }
        }
    }

    #[test]
    fn near_optimality_at_sqrt_n() {
        // At t = √n the ratio upper/lower is polylog.
        let n = 1 << 20;
        let t = (n as f64).sqrt() as usize;
        let ratio = paper_bound(n, t) / bjb_lower_bound(n, t);
        let polylog = log2n(n).powi(2);
        assert!(
            ratio <= 2.0 * polylog,
            "ratio {ratio} should be at most ~log²n = {polylog}"
        );
    }

    #[test]
    fn committee_count_regimes() {
        let n = 4096;
        // t=32: branch2 (3t/log n = 8) beats branch1 (⌈t²/n⌉·log n = 12).
        assert_eq!(committee_count(n, 32, 1.0), 8);
        // t=64: branch1 (12) beats branch2 (16).
        assert_eq!(committee_count(n, 64, 1.0), 12);
        // t=0: single committee.
        assert_eq!(committee_count(n, 0, 1.0), 1);
        // Large t: branch 2 (3αt/log n). t=1365: 3·1365/12 ≈ 341 < branch1.
        let c = committee_count(n, 1365, 1.0);
        assert_eq!(c, (3.0_f64 * 1365.0 / 12.0).ceil() as usize);
        // Never exceeds n.
        assert!(committee_count(16, 5, 50.0) <= 16);
        // Always at least 1.
        assert!(committee_count(2, 0, 1.0) >= 1);
    }

    #[test]
    fn committee_size_shrinks_with_t() {
        let n = 4096;
        let s_small = committee_size(n, 16, 2.0);
        let s_big = committee_size(n, 512, 2.0);
        assert!(
            s_small > s_big,
            "bigger t ⇒ more committees ⇒ smaller size ({s_small} vs {s_big})"
        );
    }

    #[test]
    fn denied_phase_margin_is_sublinear_in_committees() {
        // The paper's argument: killable phases << total committees, with
        // a √log n margin in regime 1.
        let n = 1 << 14;
        let alpha = 2.0;
        for t in [64usize, 128, 256] {
            let c = committee_count(n, t, alpha) as f64;
            let denied = max_denied_phases(n, t, alpha);
            assert!(
                denied < c,
                "t={t}: denied {denied} must be < committees {c}"
            );
        }
    }

    #[test]
    fn message_bound_is_at_least_quadratic() {
        assert!(paper_message_bound(100, 10) >= 100.0 * 100.0);
    }

    #[test]
    fn early_termination_matches_paper_bound_shape() {
        assert_eq!(early_termination_bound(1024, 9), paper_bound(1024, 9));
    }

    #[test]
    fn log2n_clamps_tiny_n() {
        assert_eq!(log2n(0), 1.0);
        assert_eq!(log2n(1), 1.0);
        assert_eq!(log2n(2), 1.0);
        assert_eq!(log2n(1024), 10.0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn committee_count_rejects_bad_alpha() {
        let _ = committee_count(16, 4, 0.0);
    }
}
