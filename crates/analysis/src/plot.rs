//! Minimal ASCII scatter/line plotting for terminal reports.
//!
//! Experiment "figures" are series of `(x, y)` points; this module
//! renders them as a monospace grid so the markdown reports and CLI
//! output show the *shape* (cliffs, crossovers, slopes) at a glance,
//! with per-series glyphs and optional log scales.

use crate::table::Series;

/// Plot configuration.
#[derive(Debug, Clone)]
pub struct PlotOptions {
    /// Grid width in characters (excluding axis labels).
    pub width: usize,
    /// Grid height in characters.
    pub height: usize,
    /// Log-scale the x axis.
    pub log_x: bool,
    /// Log-scale the y axis.
    pub log_y: bool,
}

impl Default for PlotOptions {
    fn default() -> Self {
        PlotOptions {
            width: 64,
            height: 20,
            log_x: false,
            log_y: false,
        }
    }
}

impl PlotOptions {
    /// Log–log preset (for power-law figures).
    pub fn loglog() -> Self {
        PlotOptions {
            log_x: true,
            log_y: true,
            ..Default::default()
        }
    }
}

const GLYPHS: &[char] = &['*', 'o', '+', 'x', '#', '@', '%', '&'];

fn transform(v: f64, log: bool) -> Option<f64> {
    if log {
        (v > 0.0).then(|| v.ln())
    } else {
        Some(v)
    }
}

/// Renders the series onto an ASCII grid; returns a multi-line string
/// including a legend and axis ranges. Series get the glyphs
/// `* o + x # @ % &` in order; overlapping points show the
/// latest-drawn series' glyph.
///
/// Points that cannot be placed (non-positive on a log axis, NaN) are
/// skipped. Returns a placeholder string when nothing is plottable.
pub fn render(series: &[Series], opts: &PlotOptions) -> String {
    let mut pts: Vec<(usize, f64, f64)> = Vec::new();
    for (si, s) in series.iter().enumerate() {
        for (x, y) in &s.points {
            if let (Some(tx), Some(ty)) = (transform(*x, opts.log_x), transform(*y, opts.log_y)) {
                if tx.is_finite() && ty.is_finite() {
                    pts.push((si, tx, ty));
                }
            }
        }
    }
    if pts.is_empty() {
        return "(no plottable points)".to_string();
    }

    let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
    for (_, x, y) in &pts {
        min_x = min_x.min(*x);
        max_x = max_x.max(*x);
        min_y = min_y.min(*y);
        max_y = max_y.max(*y);
    }
    // Degenerate ranges become a centered band.
    if (max_x - min_x).abs() < f64::EPSILON {
        min_x -= 1.0;
        max_x += 1.0;
    }
    if (max_y - min_y).abs() < f64::EPSILON {
        min_y -= 1.0;
        max_y += 1.0;
    }

    let w = opts.width.max(8);
    let h = opts.height.max(4);
    let mut grid = vec![vec![' '; w]; h];
    for (si, x, y) in &pts {
        let cx = (((x - min_x) / (max_x - min_x)) * (w - 1) as f64).round() as usize;
        let cy = (((y - min_y) / (max_y - min_y)) * (h - 1) as f64).round() as usize;
        let row = h - 1 - cy; // y grows upward
        grid[row][cx] = GLYPHS[si % GLYPHS.len()];
    }

    let untransform = |v: f64, log: bool| if log { v.exp() } else { v };
    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            // aba-lint: allow(float-determinism) — axis labels on a human-readable plot, not artifact values
            format!("{:>10.3} ", untransform(max_y, opts.log_y))
        } else if i == h - 1 {
            // aba-lint: allow(float-determinism) — axis labels on a human-readable plot, not artifact values
            format!("{:>10.3} ", untransform(min_y, opts.log_y))
        } else {
            " ".repeat(11)
        };
        out.push_str(&label);
        out.push('|');
        out.push_str(&row.iter().collect::<String>());
        out.push('\n');
    }
    out.push_str(&" ".repeat(11));
    out.push('+');
    out.push_str(&"-".repeat(w));
    out.push('\n');
    out.push_str(&format!(
        // aba-lint: allow(float-determinism) — x-axis endpoints of a human-readable plot, not artifact values
        "{:>12.3}{:>width$.3}\n",
        untransform(min_x, opts.log_x),
        untransform(max_x, opts.log_x),
        width = w
    ));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!("  {} {}\n", GLYPHS[si % GLYPHS.len()], s.label));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(label: &str, pts: &[(f64, f64)]) -> Series {
        Series::from_points(label, pts.to_vec())
    }

    #[test]
    fn renders_points_and_legend() {
        let s = series("line", &[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)]);
        let out = render(&[s], &PlotOptions::default());
        assert!(out.contains('*'));
        assert!(out.contains("line"));
        assert!(out.lines().count() > 20);
    }

    #[test]
    fn two_series_get_distinct_glyphs() {
        let a = series("up", &[(0.0, 0.0), (1.0, 1.0)]);
        let b = series("down", &[(0.0, 1.0), (1.0, 0.0)]);
        let out = render(&[a, b], &PlotOptions::default());
        assert!(out.contains('*') && out.contains('o'));
        assert!(out.contains("up") && out.contains("down"));
    }

    #[test]
    fn log_axes_skip_nonpositive() {
        let s = series("pow", &[(0.0, 1.0), (1.0, 10.0), (10.0, 100.0)]);
        let out = render(&[s], &PlotOptions::loglog());
        // x=0 is skipped, the rest plot fine.
        assert!(out.contains('*'));
    }

    #[test]
    fn empty_input_is_placeholder() {
        let s = series("nothing", &[]);
        assert_eq!(
            render(&[s], &PlotOptions::default()),
            "(no plottable points)"
        );
        let neg = series("neg", &[(-1.0, -1.0)]);
        assert_eq!(
            render(&[neg], &PlotOptions::loglog()),
            "(no plottable points)"
        );
    }

    #[test]
    fn degenerate_single_point_renders() {
        let s = series("dot", &[(5.0, 5.0)]);
        let out = render(&[s], &PlotOptions::default());
        assert!(out.contains('*'));
    }

    #[test]
    fn corner_points_are_inside_grid() {
        // Min/max points map to first/last columns without panicking.
        let s = series("corners", &[(0.0, 0.0), (100.0, 1000.0)]);
        let out = render(
            &[s],
            &PlotOptions {
                width: 16,
                height: 6,
                ..Default::default()
            },
        );
        // Count grid rows only (the legend line also contains '*').
        let star_lines: Vec<&str> = out
            .lines()
            .filter(|l| l.contains('|') && l.contains('*'))
            .collect();
        assert_eq!(star_lines.len(), 2);
    }
}
