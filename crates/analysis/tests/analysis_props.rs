//! Property tests for the analysis layer: statistics laws, regression
//! recovery, and theory-curve orderings.

use aba_analysis::stats::{quantile_sorted, Proportion};
use aba_analysis::{fit_linear, fit_loglog, theory, Summary};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Summaries are order-invariant and bounded by min/max.
    #[test]
    fn summary_laws(mut xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let s1 = Summary::of(&xs).unwrap();
        xs.reverse();
        let s2 = Summary::of(&xs).unwrap();
        prop_assert!((s1.mean - s2.mean).abs() < 1e-6);
        prop_assert_eq!(s1.min, s2.min);
        prop_assert_eq!(s1.max, s2.max);
        prop_assert!(s1.min <= s1.median && s1.median <= s1.max);
        prop_assert!(s1.median <= s1.p95 + 1e-12 && s1.p95 <= s1.p99 + 1e-12);
        prop_assert!(s1.min <= s1.mean && s1.mean <= s1.max);
        prop_assert!(s1.std_dev >= 0.0);
    }

    /// Quantiles are monotone in q.
    #[test]
    fn quantiles_monotone(mut xs in proptest::collection::vec(-1e3f64..1e3, 1..100), steps in 2usize..20) {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut last = f64::NEG_INFINITY;
        for i in 0..=steps {
            let q = quantile_sorted(&xs, i as f64 / steps as f64);
            prop_assert!(q >= last - 1e-12);
            last = q;
        }
    }

    /// Wilson intervals contain the point estimate and stay in [0,1].
    #[test]
    fn wilson_contains_estimate(successes in 0usize..500, extra in 0usize..500) {
        let trials = successes + extra;
        prop_assume!(trials > 0);
        let p = Proportion::of(successes, trials).unwrap();
        prop_assert!(p.wilson_low <= p.estimate + 1e-12);
        prop_assert!(p.estimate <= p.wilson_high + 1e-12);
        prop_assert!((0.0..=1.0).contains(&p.wilson_low));
        prop_assert!((0.0..=1.0).contains(&p.wilson_high));
    }

    /// Linear regression recovers exact lines from arbitrary slopes.
    #[test]
    fn linear_fit_recovers(slope in -50f64..50.0, intercept in -50f64..50.0, k in 3usize..40) {
        let pts: Vec<(f64, f64)> = (0..k)
            .map(|i| (i as f64, slope * i as f64 + intercept))
            .collect();
        let fit = fit_linear(&pts).unwrap();
        prop_assert!((fit.slope - slope).abs() < 1e-6, "{} vs {}", fit.slope, slope);
        prop_assert!((fit.intercept - intercept).abs() < 1e-5);
    }

    /// Power-law fits recover exact exponents.
    #[test]
    fn power_fit_recovers(exponent in -3f64..3.0, scale in 0.1f64..100.0, k in 3usize..30) {
        let pts: Vec<(f64, f64)> = (1..=k)
            .map(|i| (i as f64, scale * (i as f64).powf(exponent)))
            .collect();
        let fit = fit_loglog(&pts).unwrap();
        prop_assert!((fit.slope - exponent).abs() < 1e-6);
    }

    /// Theory ordering: lower bound ≤ paper bound ≤ Chor-Coan bound for
    /// every admissible (n, t).
    #[test]
    fn bound_ordering(t in 1usize..5000, extra in 1usize..5000) {
        let n = 3 * t + extra;
        let lb = theory::bjb_lower_bound(n, t);
        let paper = theory::paper_bound(n, t);
        let cc = theory::chor_coan_bound(n, t);
        prop_assert!(lb <= paper + 1e-9, "lb {lb} > paper {paper} (n={n}, t={t})");
        prop_assert!(paper <= cc + 1e-9, "paper {paper} > cc {cc} (n={n}, t={t})");
        // Paper bound is monotone in t.
        let paper_more = theory::paper_bound(n, t + 1);
        prop_assert!(paper_more + 1e-9 >= paper);
    }

    /// Committee size × count covers n.
    #[test]
    fn committee_geometry(t in 0usize..2000, extra in 1usize..2000, alpha in 0.5f64..8.0) {
        let n = 3 * t + extra;
        let c = theory::committee_count(n, t, alpha);
        let s = theory::committee_size(n, t, alpha);
        prop_assert!(c * s >= n, "c={c} s={s} n={n}");
        // The *effective* committee count is ceil(n/s) ≤ c; it tiles n
        // with no empty committee.
        let count = n.div_ceil(s);
        prop_assert!(count <= c);
        prop_assert!(s * (count.saturating_sub(1)) < n, "empty committee: count={count} s={s} n={n}");
    }
}
