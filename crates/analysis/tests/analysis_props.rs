//! Property-style tests for the analysis layer, deterministically
//! sampled: statistics laws, regression recovery, and theory-curve
//! orderings. (No proptest in this offline workspace — cases come from a
//! fixed-seed SplitMix64 stream.)

use aba_analysis::stats::{quantile_sorted, Proportion};
use aba_analysis::{fit_linear, fit_loglog, theory, Summary};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Deterministic case generator over the workspace's rand shim.
struct Cases(SmallRng);

impl Cases {
    fn new(seed: u64) -> Self {
        Cases(SmallRng::seed_from_u64(seed))
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.0.gen_range(0..bound)
    }

    /// Uniform draw from [lo, hi).
    fn float(&mut self, lo: f64, hi: f64) -> f64 {
        self.0.gen_range(lo..hi)
    }

    fn floats(&mut self, len: usize, lo: f64, hi: f64) -> Vec<f64> {
        (0..len).map(|_| self.float(lo, hi)).collect()
    }
}

/// Summaries are order-invariant and bounded by min/max.
#[test]
fn summary_laws() {
    let mut cases = Cases::new(0x5A5A);
    for _ in 0..256 {
        let len = 1 + cases.below(199) as usize;
        let mut xs = cases.floats(len, -1e6, 1e6);
        let s1 = Summary::of(&xs).unwrap();
        xs.reverse();
        let s2 = Summary::of(&xs).unwrap();
        assert!((s1.mean - s2.mean).abs() < 1e-6);
        assert_eq!(s1.min, s2.min);
        assert_eq!(s1.max, s2.max);
        assert!(s1.min <= s1.median && s1.median <= s1.max);
        assert!(s1.median <= s1.p95 + 1e-12 && s1.p95 <= s1.p99 + 1e-12);
        assert!(s1.min <= s1.mean && s1.mean <= s1.max);
        assert!(s1.std_dev >= 0.0);
    }
}

/// Quantiles are monotone in q.
#[test]
fn quantiles_monotone() {
    let mut cases = Cases::new(0x9A9A);
    for _ in 0..256 {
        let len = 1 + cases.below(99) as usize;
        let steps = 2 + cases.below(18) as usize;
        let mut xs = cases.floats(len, -1e3, 1e3);
        xs.sort_unstable_by(f64::total_cmp);
        let mut last = f64::NEG_INFINITY;
        for i in 0..=steps {
            let q = quantile_sorted(&xs, i as f64 / steps as f64);
            assert!(q >= last - 1e-12);
            last = q;
        }
    }
}

/// Wilson intervals contain the point estimate and stay in [0,1].
#[test]
fn wilson_contains_estimate() {
    let mut cases = Cases::new(0x3113);
    for _ in 0..256 {
        let successes = cases.below(500) as usize;
        let extra = cases.below(500) as usize;
        let trials = successes + extra;
        if trials == 0 {
            continue;
        }
        let p = Proportion::of(successes, trials).unwrap();
        assert!(p.wilson_low <= p.estimate + 1e-12);
        assert!(p.estimate <= p.wilson_high + 1e-12);
        assert!((0.0..=1.0).contains(&p.wilson_low));
        assert!((0.0..=1.0).contains(&p.wilson_high));
    }
}

/// Linear regression recovers exact lines from arbitrary slopes.
#[test]
fn linear_fit_recovers() {
    let mut cases = Cases::new(0xF17A);
    for _ in 0..256 {
        let slope = cases.float(-50.0, 50.0);
        let intercept = cases.float(-50.0, 50.0);
        let k = 3 + cases.below(37) as usize;
        let pts: Vec<(f64, f64)> = (0..k)
            .map(|i| (i as f64, slope * i as f64 + intercept))
            .collect();
        let fit = fit_linear(&pts).unwrap();
        assert!((fit.slope - slope).abs() < 1e-6, "{} vs {slope}", fit.slope);
        assert!((fit.intercept - intercept).abs() < 1e-5);
    }
}

/// Power-law fits recover exact exponents.
#[test]
fn power_fit_recovers() {
    let mut cases = Cases::new(0xF17B);
    for _ in 0..256 {
        let exponent = cases.float(-3.0, 3.0);
        let scale = cases.float(0.1, 100.0);
        let k = 3 + cases.below(27) as usize;
        let pts: Vec<(f64, f64)> = (1..=k)
            .map(|i| (i as f64, scale * (i as f64).powf(exponent)))
            .collect();
        let fit = fit_loglog(&pts).unwrap();
        assert!((fit.slope - exponent).abs() < 1e-6);
    }
}

/// Theory ordering: lower bound ≤ paper bound ≤ Chor-Coan bound for
/// every admissible (n, t).
#[test]
fn bound_ordering() {
    let mut cases = Cases::new(0xB0BD);
    for _ in 0..256 {
        let t = 1 + cases.below(4999) as usize;
        let extra = 1 + cases.below(4999) as usize;
        let n = 3 * t + extra;
        let lb = theory::bjb_lower_bound(n, t);
        let paper = theory::paper_bound(n, t);
        let cc = theory::chor_coan_bound(n, t);
        assert!(lb <= paper + 1e-9, "lb {lb} > paper {paper} (n={n}, t={t})");
        assert!(paper <= cc + 1e-9, "paper {paper} > cc {cc} (n={n}, t={t})");
        // Paper bound is monotone in t.
        let paper_more = theory::paper_bound(n, t + 1);
        assert!(paper_more + 1e-9 >= paper);
    }
}

/// Committee size × count covers n.
#[test]
fn committee_geometry() {
    let mut cases = Cases::new(0x6E03);
    for _ in 0..256 {
        let t = cases.below(2000) as usize;
        let extra = 1 + cases.below(1999) as usize;
        let alpha = cases.float(0.5, 8.0);
        let n = 3 * t + extra;
        let c = theory::committee_count(n, t, alpha);
        let s = theory::committee_size(n, t, alpha);
        assert!(c * s >= n, "c={c} s={s} n={n}");
        // The *effective* committee count is ceil(n/s) ≤ c; it tiles n
        // with no empty committee.
        let count = n.div_ceil(s);
        assert!(count <= c);
        assert!(
            s * (count.saturating_sub(1)) < n,
            "empty committee: count={count} s={s} n={n}"
        );
    }
}
