//! Shared round-context extraction for the BA attacks.

use aba_agreement::{BaConfig, BaMsg, BaNodeView, CoinRoundMode};
use aba_sim::adversary::RoundView;
use aba_sim::{MessagePlane, NodeId, Protocol};

/// Everything a BA attack needs to know about the current round, pulled
/// out of the full-information view.
pub(crate) struct BaRoundCtx<'a> {
    pub cfg: &'a BaConfig,
    /// 1-based phase.
    pub phase: u64,
    /// 1-based subround.
    pub sub: u64,
    /// Live (non-corrupted, non-halted) honest node IDs.
    pub live: Vec<NodeId>,
    /// Currently corrupted node IDs (the adversary's puppets).
    pub corrupted: Vec<NodeId>,
    /// The committee designated for this phase.
    pub committee: usize,
}

impl<'a> BaRoundCtx<'a> {
    pub fn capture<P, L>(view: &'a RoundView<'a, P, L>) -> BaRoundCtx<'a>
    where
        P: Protocol<Msg = BaMsg> + BaNodeView,
        L: MessagePlane<BaMsg>,
    {
        let cfg = view.nodes[0].ba_config();
        let (phase, sub) = cfg.schedule(view.round);
        let live: Vec<NodeId> = view.live_honest().collect();
        let corrupted: Vec<NodeId> = view.ledger.corrupted_nodes().collect();
        BaRoundCtx {
            cfg,
            phase,
            sub,
            live,
            corrupted,
            committee: cfg.committee_for_phase(phase),
        }
    }

    /// Whether this subround is the one carrying committee coin flips.
    pub fn is_coin_subround(&self) -> bool {
        match self.cfg.coin_round {
            CoinRoundMode::Piggyback => self.sub == 2,
            CoinRoundMode::Literal => self.sub == 3,
        }
    }

    /// Live honest members of the current committee.
    pub fn live_members(&self) -> Vec<NodeId> {
        self.live
            .iter()
            .copied()
            .filter(|id| self.cfg.plan.is_member(*id, self.committee))
            .collect()
    }

    /// Corrupted members of the current committee (free coin control).
    pub fn free_members(&self) -> Vec<NodeId> {
        self.corrupted
            .iter()
            .copied()
            .filter(|id| self.cfg.plan.is_member(*id, self.committee))
            .collect()
    }

    /// Reads the current committee's honest flips from the rushing
    /// mailbox: returns `(sum, plus_flippers, minus_flippers)`.
    pub fn committee_flips<L: MessagePlane<BaMsg>>(
        &self,
        mailbox: &L,
    ) -> (i64, Vec<NodeId>, Vec<NodeId>) {
        let mut plus = Vec::new();
        let mut minus = Vec::new();
        for m in self.live_members() {
            if let Some(msg) = mailbox.broadcast_of(m) {
                if msg.phase() == self.phase {
                    if let Some(f) = msg.clamped_flip() {
                        if f > 0 {
                            plus.push(m);
                        } else {
                            minus.push(m);
                        }
                    }
                }
            }
        }
        let sum = plus.len() as i64 - minus.len() as i64;
        (sum, plus, minus)
    }
}

/// Counts live honest nodes holding each value; returns `(h0, h1)`.
pub(crate) fn val_counts<P, L>(view: &RoundView<'_, P, L>, live: &[NodeId]) -> (usize, usize)
where
    P: Protocol<Msg = BaMsg> + BaNodeView,
    L: MessagePlane<BaMsg>,
{
    let mut h = [0usize; 2];
    for id in live {
        h[view.nodes[id.index()].ba_val() as usize] += 1;
    }
    (h[0], h[1])
}

/// Live honest nodes with `decided = true`, and their majority value.
pub(crate) fn deciders<P, L>(
    view: &RoundView<'_, P, L>,
    live: &[NodeId],
) -> (Vec<NodeId>, Option<bool>)
where
    P: Protocol<Msg = BaMsg> + BaNodeView,
    L: MessagePlane<BaMsg>,
{
    let d: Vec<NodeId> = live
        .iter()
        .copied()
        .filter(|id| view.nodes[id.index()].ba_decided())
        .collect();
    if d.is_empty() {
        return (d, None);
    }
    let ones = d
        .iter()
        .filter(|id| view.nodes[id.index()].ba_val())
        .count();
    let b = ones * 2 >= d.len();
    (d, Some(b))
}
