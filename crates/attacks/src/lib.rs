//! # aba-attacks — protocol-aware adaptive rushing attacks
//!
//! The adversaries that make the paper's experiments meaningful. Unlike
//! the generic strategies in `aba-adversary`, these read the agreement
//! protocol's full state (via `aba_agreement::BaNodeView` — the
//! full-information model) and the current round's messages (rushing)
//! to play the strongest moves the model allows:
//!
//! * [`CoinKiller`] — denies the committee coin each phase at minimal
//!   corruption cost: after seeing the committee's flips it corrupts just
//!   enough majority-side flippers to equivocate half the network across
//!   the sign boundary (cost `⌈(|S|+1−free)/2⌉`, the quantity Theorem 2's
//!   counting argument charges at `√s/2` per phase);
//! * [`SplitVote`] — round-1 equivocation that keeps honest `val`s split
//!   and pushes chosen victims over the `n−t` / `t+1` thresholds when
//!   profitable;
//! * [`AdaptiveFullAttack`] — the combined best-effort adversary used as
//!   the default opponent in round-complexity experiments; supports
//!   budget policies and both info models (it degrades gracefully when
//!   non-rushing).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coin_killer;
pub(crate) mod ctx;
pub mod full_attack;
pub mod sampling_poison;
pub mod split_vote;

pub use coin_killer::{CoinKiller, NonRushingPolicy};
pub use full_attack::{AdaptiveFullAttack, BudgetPolicy};
pub use sampling_poison::SamplingPoison;
pub use split_vote::SplitVote;

/// Common imports.
pub mod prelude {
    pub use crate::coin_killer::{CoinKiller, NonRushingPolicy};
    pub use crate::full_attack::{AdaptiveFullAttack, BudgetPolicy};
    pub use crate::sampling_poison::SamplingPoison;
    pub use crate::split_vote::SplitVote;
}
