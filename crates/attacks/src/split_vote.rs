//! The pure coin-splitting adversary.
//!
//! Every phase, after seeing the committee's flips (rushing), it corrupts
//! the minimal number of majority-side flippers needed to equivocate the
//! tallied sum across the `≥ 0` boundary, sending `+1`s to one half of
//! the live honest nodes and `−1`s to the other. Honest values therefore
//! stay split roughly 50/50 and no `n − t` / `t + 1` threshold is ever
//! reached, so the protocol keeps coining until the attacker's budget
//! runs out — at a cost of `Θ(√s)` corruptions per denied phase, the
//! exact quantity Theorem 2's counting argument budgets for.
//!
//! Under a non-rushing model it falls back to corrupting a majority of
//! the committee outright (guaranteed denial at `Θ(s)` cost), matching
//! what the weaker Chor–Coan adversary must pay.

use crate::ctx::BaRoundCtx;
use aba_agreement::{BaMsg, BaNodeView, CoinRoundMode, SubRound};
use aba_sim::adversary::{Adversary, AdversaryAction, RoundView};
use aba_sim::{Emission, MessagePlane, NodeId, Protocol};
use rand::RngCore;

/// See module docs.
#[derive(Debug, Clone, Default)]
pub struct SplitVote {
    phases_denied: u64,
    corruptions_spent: usize,
}

impl SplitVote {
    /// Creates the attack.
    pub fn new() -> Self {
        Self::default()
    }

    /// Phases in which this attack performed a denial.
    pub fn phases_denied(&self) -> u64 {
        self.phases_denied
    }

    /// Total corruptions this attack decided to spend.
    pub fn corruptions_spent(&self) -> usize {
        self.corruptions_spent
    }

    /// The flip-carrying message a controlled committee member sends in
    /// piggyback mode (threshold-neutral: `decided = false`).
    fn flip_msg(ctx: &BaRoundCtx<'_>, sign: bool) -> BaMsg {
        match ctx.cfg.coin_round {
            CoinRoundMode::Piggyback => BaMsg::Phase {
                phase: ctx.phase,
                sub: SubRound::Two,
                val: false,
                decided: false,
                flip: Some(if sign { 1 } else { -1 }),
            },
            CoinRoundMode::Literal => BaMsg::Flip {
                phase: ctx.phase,
                value: if sign { 1 } else { -1 },
            },
        }
    }

    /// Builds the equivocating sends: every controlled member sends `+1`
    /// to the first half of `receivers` and `−1` to the rest.
    fn split_sends(
        ctx: &BaRoundCtx<'_>,
        controlled: &[NodeId],
        receivers: &[NodeId],
    ) -> Vec<(NodeId, Emission<BaMsg>)> {
        let half = receivers.len() / 2;
        controlled
            .iter()
            .map(|puppet| {
                let per: Vec<(NodeId, BaMsg)> = receivers
                    .iter()
                    .enumerate()
                    .map(|(i, r)| (*r, Self::flip_msg(ctx, i < half)))
                    .collect();
                (*puppet, Emission::PerRecipient(per))
            })
            .collect()
    }
}

impl<P, L> Adversary<P, L> for SplitVote
where
    P: Protocol<Msg = BaMsg> + BaNodeView,
    L: MessagePlane<BaMsg>,
{
    fn act(
        &mut self,
        view: &RoundView<'_, P, L>,
        _rng: &mut dyn RngCore,
    ) -> AdversaryAction<BaMsg> {
        let ctx = BaRoundCtx::capture(view);
        if !ctx.is_coin_subround() || ctx.live.is_empty() {
            return AdversaryAction::pass();
        }
        let free = ctx.free_members();

        match view.outgoing {
            Some(mailbox) => {
                let (sum, plus, minus) = ctx.committee_flips(mailbox);
                let need = aba_coin::analysis::corruptions_to_deny(sum, free.len() as u64) as usize;
                let majority = if sum >= 0 { &plus } else { &minus };
                if need > view.ledger.remaining() || need > majority.len() {
                    return AdversaryAction::pass();
                }
                let corruptions: Vec<NodeId> = majority[..need].to_vec();
                let controlled: Vec<NodeId> =
                    free.iter().chain(corruptions.iter()).copied().collect();
                if controlled.is_empty() {
                    return AdversaryAction::pass();
                }
                self.phases_denied += 1;
                self.corruptions_spent += need;
                let receivers: Vec<NodeId> = ctx
                    .live
                    .iter()
                    .copied()
                    .filter(|id| !corruptions.contains(id))
                    .collect();
                AdversaryAction {
                    sends: Self::split_sends(&ctx, &controlled, &receivers),
                    corruptions,
                }
            }
            None => {
                // Non-rushing: guaranteed denial requires controlling a
                // strict majority of the committee (then |honest sum| <
                // #controlled, so a blind ± split always crosses zero).
                let members = ctx.live_members();
                let total = members.len() + free.len();
                let need = (total / 2 + 1).saturating_sub(free.len());
                if need > view.ledger.remaining() || need > members.len() {
                    return AdversaryAction::pass();
                }
                let corruptions: Vec<NodeId> = members[..need].to_vec();
                let controlled: Vec<NodeId> =
                    free.iter().chain(corruptions.iter()).copied().collect();
                if controlled.is_empty() {
                    return AdversaryAction::pass();
                }
                self.phases_denied += 1;
                self.corruptions_spent += need;
                let receivers: Vec<NodeId> = ctx
                    .live
                    .iter()
                    .copied()
                    .filter(|id| !corruptions.contains(id))
                    .collect();
                AdversaryAction {
                    sends: Self::split_sends(&ctx, &controlled, &receivers),
                    corruptions,
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "split-vote"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aba_agreement::{BaConfig, CommitteeBa};
    use aba_sim::{SimConfig, Simulation, Verdict};

    fn split_inputs(n: usize) -> Vec<bool> {
        (0..n).map(|i| i % 2 == 0).collect()
    }

    #[test]
    fn split_vote_delays_but_cannot_break_agreement() {
        for seed in 0..8 {
            let cfg = BaConfig::paper_las_vegas(32, 10, 2.0).unwrap();
            let inputs = split_inputs(32);
            let nodes = CommitteeBa::network(&cfg, &inputs);
            let sim_cfg = SimConfig::new(32, 10)
                .with_seed(seed)
                .with_max_rounds(4_000);
            let report = Simulation::new(sim_cfg, nodes, SplitVote::new()).run();
            let verdict = Verdict::evaluate(&inputs, &report.outputs, &report.honest);
            assert!(report.all_halted, "seed {seed}: ran out of rounds");
            assert!(verdict.agreement, "seed {seed}: {verdict:?}");
        }
    }

    #[test]
    fn split_vote_costs_rounds_compared_to_benign() {
        let mut attacked = 0u64;
        let mut benign = 0u64;
        for seed in 0..10 {
            let cfg = BaConfig::paper_las_vegas(32, 10, 2.0).unwrap();
            let inputs = split_inputs(32);
            let sim_cfg = SimConfig::new(32, 10)
                .with_seed(seed)
                .with_max_rounds(4_000);
            let r1 = Simulation::new(
                sim_cfg.clone(),
                CommitteeBa::network(&cfg, &inputs),
                SplitVote::new(),
            )
            .run();
            let r2 = Simulation::new(
                sim_cfg,
                CommitteeBa::network(&cfg, &inputs),
                aba_sim::adversary::Benign,
            )
            .run();
            attacked += r1.rounds;
            benign += r2.rounds;
        }
        assert!(
            attacked > benign,
            "attack must cost rounds: attacked {attacked} vs benign {benign}"
        );
    }

    #[test]
    fn split_vote_respects_budget() {
        let cfg = BaConfig::paper_las_vegas(32, 5, 2.0).unwrap();
        let inputs = split_inputs(32);
        let nodes = CommitteeBa::network(&cfg, &inputs);
        let sim_cfg = SimConfig::new(32, 5).with_seed(3).with_max_rounds(4_000);
        let report = Simulation::new(sim_cfg, nodes, SplitVote::new()).run();
        assert!(report.corruptions_used <= 5);
        assert!(report.all_halted);
    }

    #[test]
    fn validity_survives_split_vote() {
        // All-same inputs: the adversary can't even delay (Lemma 2).
        let cfg = BaConfig::paper(16, 5, 2.0).unwrap();
        let inputs = vec![true; 16];
        let nodes = CommitteeBa::network(&cfg, &inputs);
        let sim_cfg = SimConfig::new(16, 5).with_seed(1);
        let report = Simulation::new(sim_cfg, nodes, SplitVote::new()).run();
        let verdict = Verdict::evaluate(&inputs, &report.outputs, &report.honest);
        assert_eq!(verdict.validity, Some(true));
        assert!(report.rounds <= 4);
    }
}
