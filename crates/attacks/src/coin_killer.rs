//! Optimal adaptive attack on the standalone coin-flip protocols
//! (Algorithms 1 and 2), used by the common-coin experiments (E2, E10).
//!
//! ## Rushing variant
//!
//! The adversary sees every designated node's ±1 flip before delivery.
//! Let `S` be the honest designated sum. To deny a *common* coin it must
//! produce receivers on both sides of the `sum ≥ 0` boundary. Corrupting
//! a majority-side flipper both removes its flip from `S` and yields a
//! puppet that can send either sign per recipient, so each fresh
//! corruption moves the reachable window edge by 2. The minimal cost is
//! `m = ⌈(|S̃| + 1)/2⌉` fresh corruptions (`S̃` the boundary distance) —
//! the `√k`-scale quantity that Theorem 3 shows is typically too large
//! when the budget is `√k/2` (that is exactly why Algorithm 1 works).
//!
//! ## Non-rushing variant
//!
//! Without seeing the current round's flips, the adversary must commit
//! blind. [`NonRushingPolicy::Guaranteed`] corrupts a majority of the
//! designated set — always succeeds, cost `Θ(k)`;
//! [`NonRushingPolicy::Gamble`] corrupts a fixed `k` and splits blind,
//! succeeding only when `|S|` happens to land below `k`. The cost gap
//! between the two variants versus the rushing `Θ(√k)` is experiment
//! E10.

use aba_coin::{CoinFlipNode, CoinMsg};
use aba_sim::adversary::{Adversary, AdversaryAction, CorruptSend, RoundView};
use aba_sim::{Emission, NodeId};
use rand::RngCore;

/// Blind strategy when the adversary cannot see current-round flips.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NonRushingPolicy {
    /// Corrupt `⌈(k+1)/2⌉` designated nodes: denial is certain.
    Guaranteed,
    /// Corrupt exactly this many designated nodes and hope `|S|` is
    /// smaller.
    Gamble {
        /// Number of designated nodes to corrupt blind.
        corruptions: usize,
    },
}

/// Adversary that tries to deny the common coin at minimal cost.
#[derive(Debug, Clone)]
pub struct CoinKiller {
    non_rushing_policy: NonRushingPolicy,
    /// Corruptions spent by the last `act` call (for cost experiments).
    last_cost: usize,
}

impl CoinKiller {
    /// Creates the attack (the policy only matters under a non-rushing
    /// information model).
    pub fn new(non_rushing_policy: NonRushingPolicy) -> Self {
        CoinKiller {
            non_rushing_policy,
            last_cost: 0,
        }
    }

    /// Corruptions spent in the most recent round.
    pub fn last_cost(&self) -> usize {
        self.last_cost
    }

    /// Splits `receivers` into two halves and builds the per-recipient
    /// flip map every controlled designated node sends: `+1` to the first
    /// half, `-1` to the second.
    fn split_sends(
        controlled: &[NodeId],
        receivers: &[NodeId],
    ) -> Vec<(NodeId, CorruptSend<CoinMsg>)> {
        let half = receivers.len() / 2;
        controlled
            .iter()
            .map(|puppet| {
                let per: Vec<(NodeId, CoinMsg)> = receivers
                    .iter()
                    .enumerate()
                    .map(|(i, r)| (*r, CoinMsg::from_sign(i < half)))
                    .collect();
                (*puppet, Emission::PerRecipient(per))
            })
            .collect()
    }
}

impl Adversary<CoinFlipNode> for CoinKiller {
    fn act(
        &mut self,
        view: &RoundView<'_, CoinFlipNode>,
        _rng: &mut dyn RngCore,
    ) -> AdversaryAction<CoinMsg> {
        self.last_cost = 0;
        let n = view.n();
        let designated = view.nodes[0].designated().clone();
        // Only nodes that stay honest after this round's corruptions
        // matter as receivers; the closure below recomputes the list once
        // the corruption set is known.
        let receivers_except = |corruptions: &[NodeId]| -> Vec<NodeId> {
            (0..n as u32)
                .map(NodeId::new)
                .filter(|id| !view.ledger.is_corrupted(*id) && !corruptions.contains(id))
                .collect()
        };

        // Live honest designated nodes and (under rushing) their flips.
        let members: Vec<NodeId> = (0..n as u32)
            .map(NodeId::new)
            .filter(|id| designated.contains(*id) && !view.ledger.is_corrupted(*id))
            .collect();
        let free: Vec<NodeId> = (0..n as u32)
            .map(NodeId::new)
            .filter(|id| designated.contains(*id) && view.ledger.is_corrupted(*id))
            .collect();

        match view.outgoing {
            Some(mailbox) => {
                // Rushing: read the flips.
                let mut plus: Vec<NodeId> = Vec::new();
                let mut minus: Vec<NodeId> = Vec::new();
                for m in &members {
                    if let Some(msg) = mailbox.broadcast_of(*m) {
                        if msg.clamped() > 0 {
                            plus.push(*m);
                        } else {
                            minus.push(*m);
                        }
                    }
                }
                let s = plus.len() as i64 - minus.len() as i64;
                let need = aba_coin::analysis::corruptions_to_deny(s, free.len() as u64) as usize;
                let majority_side = if s >= 0 { &plus } else { &minus };
                if need > view.ledger.remaining() || need > majority_side.len() {
                    // Cannot deny this coin; save the budget.
                    return AdversaryAction::pass();
                }
                let corruptions: Vec<NodeId> = majority_side[..need].to_vec();
                self.last_cost = need;
                let controlled: Vec<NodeId> =
                    free.iter().chain(corruptions.iter()).copied().collect();
                let receivers = receivers_except(&corruptions);
                AdversaryAction {
                    corruptions,
                    sends: Self::split_sends(&controlled, &receivers),
                }
            }
            None => {
                // Non-rushing: commit blind.
                let quota = match self.non_rushing_policy {
                    NonRushingPolicy::Guaranteed => (members.len() + 1).div_ceil(2),
                    NonRushingPolicy::Gamble { corruptions } => corruptions,
                };
                let quota = quota.min(view.ledger.remaining()).min(members.len());
                let corruptions: Vec<NodeId> = members[..quota].to_vec();
                self.last_cost = quota;
                let controlled: Vec<NodeId> =
                    free.iter().chain(corruptions.iter()).copied().collect();
                if controlled.is_empty() {
                    return AdversaryAction::pass();
                }
                let receivers = receivers_except(&corruptions);
                AdversaryAction {
                    corruptions,
                    sends: Self::split_sends(&controlled, &receivers),
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "coin-killer"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aba_coin::{CommitteePlan, Designated};
    use aba_sim::adversary::InfoModel;
    use aba_sim::{SimConfig, Simulation};

    fn outputs_split(outputs: &[Option<bool>], honest: &[bool]) -> bool {
        let honest_outs: Vec<bool> = outputs
            .iter()
            .zip(honest)
            .filter(|(_, h)| **h)
            .filter_map(|(o, _)| *o)
            .collect();
        honest_outs.iter().any(|b| *b) && honest_outs.iter().any(|b| !*b)
    }

    #[test]
    fn rushing_killer_denies_small_coins_with_big_budget() {
        // n = 17 with budget t = 8 > √17: the killer should deny the coin
        // in the vast majority of runs (it fails only when |S| is huge).
        let mut denied = 0;
        for seed in 0..50 {
            let cfg = SimConfig::new(17, 8).with_seed(seed);
            let report = Simulation::new(
                cfg,
                CoinFlipNode::network(17),
                CoinKiller::new(NonRushingPolicy::Guaranteed),
            )
            .run();
            if outputs_split(&report.outputs, &report.honest) {
                denied += 1;
            }
        }
        assert!(denied >= 45, "denied only {denied}/50");
    }

    #[test]
    fn rushing_killer_fails_against_sqrt_budget() {
        // Theorem 3: with budget √n/2 the coin stays common with at least
        // constant probability.
        let n = 64;
        let t = 4; // = √64 / 2
        let mut common = 0;
        for seed in 0..200 {
            let cfg = SimConfig::new(n, t).with_seed(seed);
            let report = Simulation::new(
                cfg,
                CoinFlipNode::network(n),
                CoinKiller::new(NonRushingPolicy::Guaranteed),
            )
            .run();
            if !outputs_split(&report.outputs, &report.honest) {
                common += 1;
            }
        }
        // The analytic floor is 2/12; empirically it is far higher, but
        // assert the conservative bound.
        assert!(common >= 200 / 6, "common only {common}/200");
    }

    #[test]
    fn killer_spends_about_half_s_plus_one() {
        // With unlimited budget, cost must be ⌈(|S|+1)/2⌉ where S is the
        // honest sum — reconstruct S from the trace-free report.
        for seed in 0..20 {
            let n = 33;
            let cfg = SimConfig::new(n, n).with_seed(seed);
            let mut killer = CoinKiller::new(NonRushingPolicy::Guaranteed);
            let nodes = CoinFlipNode::network(n);
            let mut sim = Simulation::new(cfg, nodes, killer.clone());
            // Run manually to keep access to the killer... instead, use
            // corruption count from the report: all corruptions are the
            // killer's cost.
            sim.step();
            let report = sim.into_report();
            let cost = report.corruptions_used;
            assert!(cost <= n.div_ceil(2), "cost {cost} absurdly high");
            assert!(
                outputs_split(&report.outputs, &report.honest),
                "seed {seed}: with unlimited budget the coin must be denied"
            );
            let _ = &mut killer;
        }
    }

    #[test]
    fn non_rushing_guaranteed_corrupts_majority() {
        let n = 21;
        let cfg = SimConfig::new(n, n)
            .with_seed(5)
            .with_info_model(InfoModel::NonRushing);
        let report = Simulation::new(
            cfg,
            CoinFlipNode::network(n),
            CoinKiller::new(NonRushingPolicy::Guaranteed),
        )
        .run();
        assert_eq!(report.corruptions_used, 11);
        assert!(outputs_split(&report.outputs, &report.honest));
    }

    #[test]
    fn non_rushing_gamble_sometimes_fails() {
        let n = 101;
        let mut denied = 0;
        for seed in 0..60 {
            let cfg = SimConfig::new(n, n)
                .with_seed(seed)
                .with_info_model(InfoModel::NonRushing);
            let report = Simulation::new(
                cfg,
                CoinFlipNode::network(n),
                CoinKiller::new(NonRushingPolicy::Gamble { corruptions: 3 }),
            )
            .run();
            if outputs_split(&report.outputs, &report.honest) {
                denied += 1;
            }
        }
        // Pr[|S| < 3] for g=98 honest flips is small (< 0.25); the gamble
        // must fail often.
        assert!(denied < 30, "denied {denied}/60 — gamble too strong");
        assert!(denied >= 1, "gamble should win occasionally");
    }

    #[test]
    fn committee_designation_is_attacked_inside_committee_only() {
        let n = 40;
        let plan = CommitteePlan::with_committee_count(n, 4); // size 10
        let nodes = CoinFlipNode::network_with_committee(n, &plan, 2);
        let cfg = SimConfig::new(n, n).with_seed(9).with_trace(true);
        let report =
            Simulation::new(cfg, nodes, CoinKiller::new(NonRushingPolicy::Guaranteed)).run();
        for (_, node) in report.trace.corruptions() {
            assert!(
                (20..30).contains(&node.index()),
                "corrupted {node} outside committee 2"
            );
        }
        let _ = Designated::All; // silence unused-import lints in some cfgs
    }
}
