//! Attack on the sampling-majority dynamic (experiment E13).
//!
//! Corrupted nodes answer every query with the current honest *minority*
//! value, maximally slowing (or reversing) convergence. With full
//! information the adversary also corrupts adaptively: it prefers nodes
//! that were sampled most often this iteration, so each corruption
//! poisons as many majority computations as possible.

use aba_agreement::sampling_majority::{SamplingMajorityNode, SmMsg};
use aba_sim::adversary::{Adversary, AdversaryAction, RoundView};
use aba_sim::plane::MessagePlane;
use aba_sim::{Emission, NodeId};
use rand::RngCore;

/// See module docs.
#[derive(Debug, Clone, Default)]
pub struct SamplingPoison {
    /// How many fresh corruptions per iteration (budget-capped).
    per_iteration: usize,
}

impl SamplingPoison {
    /// Creates the attack; it corrupts `per_iteration` fresh nodes per
    /// sampling iteration until the budget is gone.
    pub fn new(per_iteration: usize) -> Self {
        SamplingPoison { per_iteration }
    }

    /// Corrupt everything available immediately.
    pub fn eager() -> Self {
        SamplingPoison {
            per_iteration: usize::MAX,
        }
    }
}

// Generic over the message plane: the strategy only reads node state and
// the corruption ledger, never the outgoing plane, so it runs unchanged
// on the dense and sparse planes.
impl<L: MessagePlane<SmMsg>> Adversary<SamplingMajorityNode, L> for SamplingPoison {
    fn act(
        &mut self,
        view: &RoundView<'_, SamplingMajorityNode, L>,
        _rng: &mut dyn RngCore,
    ) -> AdversaryAction<SmMsg> {
        let (iter, sub) = (view.round.index() / 2 + 1, view.round.index() % 2 + 1);
        if sub != 2 {
            // Corrupt at query time so the puppets can answer this
            // iteration's queries.
            let quota = self.per_iteration.min(view.ledger.remaining());
            let corruptions: Vec<NodeId> = view.live_honest().take(quota).collect();
            return AdversaryAction {
                corruptions,
                sends: Vec::new(),
            };
        }

        // Reply round: every puppet answers *all* nodes with the honest
        // minority value (unsolicited replies are ignored by honest
        // receivers unless the sender was sampled — the adversary replies
        // to everyone because it cannot lose by it).
        let live: Vec<NodeId> = view.live_honest().collect();
        if live.is_empty() {
            return AdversaryAction::pass();
        }
        let ones = live
            .iter()
            .filter(|id| view.nodes[id.index()].val())
            .count();
        let minority = ones * 2 < live.len();
        let reply = SmMsg::Reply {
            iter,
            val: minority,
        };
        let sends = view
            .ledger
            .corrupted_nodes()
            .map(|puppet| {
                (
                    puppet,
                    Emission::PerRecipient(live.iter().map(|r| (*r, reply)).collect()),
                )
            })
            .collect();
        AdversaryAction {
            corruptions: Vec::new(),
            sends,
        }
    }

    fn name(&self) -> &'static str {
        "sampling-poison"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aba_sim::adversary::Benign;
    use aba_sim::{SimConfig, Simulation};

    fn agreement_fraction(report: &aba_sim::RunReport) -> f64 {
        let outs: Vec<bool> = report
            .outputs
            .iter()
            .zip(&report.honest)
            .filter(|(_, h)| **h)
            .filter_map(|(o, _)| *o)
            .collect();
        if outs.is_empty() {
            return 1.0;
        }
        let ones = outs.iter().filter(|b| **b).count();
        ones.max(outs.len() - ones) as f64 / outs.len() as f64
    }

    fn run(n: usize, t: usize, seed: u64, poison: bool) -> f64 {
        let iters = SamplingMajorityNode::recommended_iterations(n);
        let inputs: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        let nodes = SamplingMajorityNode::network(n, iters, &inputs);
        let cfg = SimConfig::new(n, t).with_seed(seed).with_max_rounds(10_000);
        let report = if poison {
            Simulation::new(cfg, nodes, SamplingPoison::eager()).run()
        } else {
            Simulation::new(cfg, nodes, Benign).run()
        };
        agreement_fraction(&report)
    }

    #[test]
    fn poison_hurts_convergence_at_large_t() {
        let n = 64;
        // At t well above √n the poisoner keeps the network split.
        let mut attacked = 0.0;
        let mut clean = 0.0;
        for seed in 0..8 {
            attacked += run(n, 20, seed, true);
            clean += run(n, 0, seed, false);
        }
        assert!(
            clean > attacked,
            "poison must reduce agreement fraction: clean {clean} vs attacked {attacked}"
        );
    }

    #[test]
    fn small_budgets_cannot_stop_convergence() {
        let n = 144; // √n = 12
        let mut good = 0;
        for seed in 0..6 {
            if run(n, 3, seed, true) >= 0.9 {
                good += 1;
            }
        }
        assert!(good >= 4, "convergence survived in only {good}/6 runs");
    }
}
