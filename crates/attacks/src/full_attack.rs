//! The combined best-effort adaptive rushing adversary.
//!
//! This is the default opponent in the round-complexity experiments. It
//! layers three moves on top of the coin-splitting of [`crate::SplitVote`]:
//!
//! 1. **Round-1 decider creation** ("sliding"): once it controls
//!    `f ≥ n − t − h_maj` puppets, it pushes a chosen set of `≤ t` honest
//!    victims over the round-1 `n − t` threshold, creating honest
//!    `decided` holders of the majority value `b_i` without new
//!    corruptions.
//! 2. **Round-2 threshold top-up**: with `d ≥ 1` honest deciders it sends
//!    `(b_i, True)` to a victim set `W`, pushing them over `t + 1` into
//!    case 2 — they will hold `b_i` while everyone else falls through to
//!    the coin.
//! 3. **Free-kill lottery**: the assigned value `b_i` is fixed in round 1,
//!    *before* the committee flips exist (the independence at the heart of
//!    Lemma 5). So with probability 1/2 the natural coin sign already
//!    opposes `b_i` and the phase dies with **zero** fresh corruptions
//!    (the adversary's committee puppets just stay silent). Only when the
//!    coin naturally agrees with `b_i` must it pay the
//!    `⌈(|S|+1−free)/2⌉` coin-denial price.
//!
//! The attack demonstrates empirically that no scheduling of these moves
//! beats the paper's bound: the measured kill cost per phase stays
//! `Ω(√s)` on average, exactly what Theorem 2's counting argument
//! charges. Under a non-rushing view it degrades to blind gambles and
//! majority corruption, reproducing the weaker Chor–Coan-era adversary.

use crate::ctx::{deciders, val_counts, BaRoundCtx};
use aba_agreement::{BaMsg, BaNodeView, CoinRoundMode, SubRound};
use aba_sim::adversary::{Adversary, AdversaryAction, RoundView};
use aba_sim::{Emission, MessagePlane, NodeId, Protocol};
use rand::RngCore;

/// How eagerly the attack spends its corruption budget on coin denials.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetPolicy {
    /// Pay any affordable denial price.
    Greedy,
    /// Skip phases whose denial price exceeds `⌈√s⌉ + 1` (wait for a
    /// cheaper committee sum instead — pays off when phases are
    /// plentiful, e.g. the Las Vegas variant).
    Frugal,
}

/// See module docs.
#[derive(Debug, Clone)]
pub struct AdaptiveFullAttack {
    policy: BudgetPolicy,
    /// Victims topped up in round 2 of the current phase (for literal
    /// coin-round mode, where the coin decision happens a subround
    /// later).
    pending_topup: Option<(Vec<NodeId>, bool)>,
    free_kills: u64,
    paid_kills: u64,
    corruptions_spent: usize,
}

impl AdaptiveFullAttack {
    /// Creates the attack with the given budget policy.
    pub fn new(policy: BudgetPolicy) -> Self {
        AdaptiveFullAttack {
            policy,
            pending_topup: None,
            free_kills: 0,
            paid_kills: 0,
            corruptions_spent: 0,
        }
    }

    /// Phases denied without fresh corruptions.
    pub fn free_kills(&self) -> u64 {
        self.free_kills
    }

    /// Phases denied by paying the coin-denial price.
    pub fn paid_kills(&self) -> u64 {
        self.paid_kills
    }

    /// Total fresh corruptions spent.
    pub fn corruptions_spent(&self) -> usize {
        self.corruptions_spent
    }

    fn round1_msg(phase: u64, val: bool) -> BaMsg {
        BaMsg::Phase {
            phase,
            sub: SubRound::One,
            val,
            decided: false,
            flip: None,
        }
    }

    fn round2_msg(phase: u64, val: bool, decided: bool, flip: Option<i8>) -> BaMsg {
        BaMsg::Phase {
            phase,
            sub: SubRound::Two,
            val,
            decided,
            flip,
        }
    }

    /// Round-1 move: create honest deciders when the puppet count allows.
    fn act_round1<P, L>(
        &mut self,
        view: &RoundView<'_, P, L>,
        ctx: &BaRoundCtx<'_>,
    ) -> AdversaryAction<BaMsg>
    where
        P: Protocol<Msg = BaMsg> + BaNodeView,
        L: MessagePlane<BaMsg>,
    {
        self.pending_topup = None;
        let (h0, h1) = val_counts(view, &ctx.live);
        let (maj_val, h_maj) = if h1 >= h0 { (true, h1) } else { (false, h0) };
        let n_t = ctx.cfg.n - ctx.cfg.t;
        let f = ctx.corrupted.len();
        if h_maj >= n_t || ctx.cfg.t == 0 {
            return AdversaryAction::pass(); // phase already lost (Lemma 2)
        }
        if f + h_maj < n_t || f == 0 {
            return AdversaryAction::pass(); // cannot push anyone over n−t
        }
        // Push up to t majority-holding-adjacent victims over n−t. Keep at
        // least one non-victim so the network cannot unify.
        let quota = ctx.cfg.t.min(ctx.live.len().saturating_sub(1));
        if quota == 0 {
            return AdversaryAction::pass();
        }
        let victims: Vec<NodeId> = ctx.live.iter().copied().take(quota).collect();
        let msg = Self::round1_msg(ctx.phase, maj_val);
        let sends = ctx
            .corrupted
            .iter()
            .map(|puppet| {
                let per: Vec<(NodeId, BaMsg)> = victims.iter().map(|v| (*v, msg)).collect();
                (*puppet, Emission::PerRecipient(per))
            })
            .collect();
        AdversaryAction {
            corruptions: Vec::new(),
            sends,
        }
    }

    /// The flip-denial price cap under the current policy.
    fn price_cap(&self, view_remaining: usize, committee_size: usize) -> usize {
        match self.policy {
            BudgetPolicy::Greedy => view_remaining,
            BudgetPolicy::Frugal => {
                view_remaining.min((committee_size as f64).sqrt().ceil() as usize + 1)
            }
        }
    }

    /// Builds sends for: top-up trues to `victims`, coin flips of `sign`
    /// (or a half/half split when `sign` is `None`) to everyone else.
    #[allow(clippy::too_many_arguments)]
    fn compose_round2(
        ctx: &BaRoundCtx<'_>,
        puppets: &[NodeId],
        committee_puppets: &[NodeId],
        victims: &[NodeId],
        b_i: bool,
        receivers: &[NodeId],
        coin: CoinMove,
    ) -> Vec<(NodeId, Emission<BaMsg>)> {
        let half = receivers.len() / 2;
        puppets
            .iter()
            .map(|puppet| {
                let is_member = committee_puppets.contains(puppet);
                let mut per: Vec<(NodeId, BaMsg)> = Vec::with_capacity(receivers.len());
                for (i, r) in receivers.iter().enumerate() {
                    let is_victim = victims.contains(r);
                    let flip = if is_member {
                        match coin {
                            CoinMove::Silent => None,
                            CoinMove::Force(sign) => Some(if sign { 1 } else { -1 }),
                            CoinMove::Split => Some(if i < half { 1 } else { -1 }),
                        }
                    } else {
                        None
                    };
                    // Victims get a True top-up; everyone else a
                    // threshold-neutral message (decided=false).
                    let msg = Self::round2_msg(ctx.phase, b_i, is_victim, flip);
                    if is_victim || flip.is_some() {
                        per.push((*r, msg));
                    }
                }
                (*puppet, Emission::PerRecipient(per))
            })
            .collect()
    }

    /// The coin-denial decision, shared by piggyback round 2 and literal
    /// round 3.
    fn deny_coin<P, L>(
        &mut self,
        view: &RoundView<'_, P, L>,
        ctx: &BaRoundCtx<'_>,
        victims: Vec<NodeId>,
        b_i: Option<bool>,
    ) -> AdversaryAction<BaMsg>
    where
        P: Protocol<Msg = BaMsg> + BaNodeView,
        L: MessagePlane<BaMsg>,
    {
        let free = ctx.free_members();
        let Some(mailbox) = view.outgoing else {
            // Non-rushing: corrupt a committee majority when affordable,
            // else rely on the blind top-up gamble (already placed for
            // piggyback mode by act_round2).
            let members = ctx.live_members();
            let total = members.len() + free.len();
            let need = (total / 2 + 1).saturating_sub(free.len());
            if need > view.ledger.remaining() || need > members.len() {
                return AdversaryAction::pass();
            }
            let corruptions: Vec<NodeId> = members[..need].to_vec();
            self.paid_kills += 1;
            self.corruptions_spent += need;
            let controlled: Vec<NodeId> = free.iter().chain(corruptions.iter()).copied().collect();
            let receivers: Vec<NodeId> = ctx
                .live
                .iter()
                .copied()
                .filter(|id| !corruptions.contains(id))
                .collect();
            let sends = Self::compose_round2(
                ctx,
                &controlled,
                &controlled,
                &victims,
                b_i.unwrap_or(false),
                &receivers,
                CoinMove::Split,
            );
            return AdversaryAction { corruptions, sends };
        };

        let (sum, plus, minus) = ctx.committee_flips(mailbox);
        let sigma_bit = sum >= 0;

        // Free kill: the natural coin already opposes b_i and the top-up
        // keeps a split alive — puppets stay silent on the coin.
        if let Some(b) = b_i {
            if sigma_bit != b && !victims.is_empty() {
                self.free_kills += 1;
                let puppets = &ctx.corrupted;
                if puppets.is_empty() {
                    return AdversaryAction::pass();
                }
                let receivers: Vec<NodeId> = ctx.live.clone();
                let sends = Self::compose_round2(
                    ctx,
                    puppets,
                    &[],
                    &victims,
                    b,
                    &receivers,
                    CoinMove::Silent,
                );
                return AdversaryAction {
                    corruptions: Vec::new(),
                    sends,
                };
            }
        }

        // Pay: corrupt majority-side flippers.
        let need = aba_coin::analysis::corruptions_to_deny(sum, free.len() as u64) as usize;
        let majority = if sum >= 0 { &plus } else { &minus };
        let cap = self.price_cap(view.ledger.remaining(), ctx.cfg.plan.committee_size());
        if need > cap || need > majority.len() {
            return AdversaryAction::pass();
        }
        let corruptions: Vec<NodeId> = majority[..need].to_vec();
        self.paid_kills += 1;
        self.corruptions_spent += need;
        let controlled_members: Vec<NodeId> =
            free.iter().chain(corruptions.iter()).copied().collect();
        let receivers: Vec<NodeId> = ctx
            .live
            .iter()
            .copied()
            .filter(|id| !corruptions.contains(id))
            .collect();
        // With a top-up in place, force the coin to oppose b_i commonly;
        // otherwise split the network.
        let coin = match b_i {
            Some(b) if !victims.is_empty() => CoinMove::Force(!b),
            _ => CoinMove::Split,
        };
        let sends = Self::compose_round2(
            ctx,
            &controlled_members,
            &controlled_members,
            &victims,
            b_i.unwrap_or(false),
            &receivers,
            coin,
        );
        AdversaryAction { corruptions, sends }
    }

    /// Round-2 move (piggyback): pick top-up victims and resolve the coin
    /// in one shot. For literal mode this only places the top-up; the
    /// coin decision happens in round 3.
    fn act_round2<P, L>(
        &mut self,
        view: &RoundView<'_, P, L>,
        ctx: &BaRoundCtx<'_>,
    ) -> AdversaryAction<BaMsg>
    where
        P: Protocol<Msg = BaMsg> + BaNodeView,
        L: MessagePlane<BaMsg>,
    {
        let (d, b_i) = deciders(view, &ctx.live);
        let t = ctx.cfg.t;
        let f = ctx.corrupted.len();
        if d.len() > t {
            // Everyone will reach case 2 at least; phase is lost.
            self.pending_topup = None;
            return AdversaryAction::pass();
        }
        // Top-up is possible when d ≥ 1 and f covers the missing trues.
        let topup_possible = !d.is_empty() && f >= t + 1 - d.len();
        let victims: Vec<NodeId> = if topup_possible {
            ctx.live
                .iter()
                .copied()
                .take(t.min(ctx.live.len().saturating_sub(1)).max(1))
                .collect()
        } else {
            Vec::new()
        };

        match ctx.cfg.coin_round {
            CoinRoundMode::Piggyback => self.deny_coin(view, ctx, victims, b_i),
            CoinRoundMode::Literal => {
                // Place the top-up now; remember it for round 3.
                self.pending_topup = if victims.is_empty() {
                    None
                } else {
                    b_i.map(|b| (victims.clone(), b))
                };
                let Some((victims, b)) = &self.pending_topup else {
                    return AdversaryAction::pass();
                };
                if ctx.corrupted.is_empty() {
                    return AdversaryAction::pass();
                }
                let sends = Self::compose_round2(
                    ctx,
                    &ctx.corrupted,
                    &[],
                    victims,
                    *b,
                    &ctx.live,
                    CoinMove::Silent,
                );
                AdversaryAction {
                    corruptions: Vec::new(),
                    sends,
                }
            }
        }
    }
}

/// What controlled committee members do with their flips.
#[derive(Debug, Clone, Copy)]
enum CoinMove {
    Silent,
    Force(bool),
    Split,
}

impl<P, L> Adversary<P, L> for AdaptiveFullAttack
where
    P: Protocol<Msg = BaMsg> + BaNodeView,
    L: MessagePlane<BaMsg>,
{
    fn act(
        &mut self,
        view: &RoundView<'_, P, L>,
        _rng: &mut dyn RngCore,
    ) -> AdversaryAction<BaMsg> {
        let ctx = BaRoundCtx::capture(view);
        if ctx.live.is_empty() {
            return AdversaryAction::pass();
        }
        match ctx.sub {
            1 => self.act_round1(view, &ctx),
            2 => self.act_round2(view, &ctx),
            3 => {
                let (victims, b_i) = match self.pending_topup.take() {
                    Some((v, b)) => (v, Some(b)),
                    None => (Vec::new(), None),
                };
                self.deny_coin(view, &ctx, victims, b_i)
            }
            _ => AdversaryAction::pass(),
        }
    }

    fn name(&self) -> &'static str {
        "adaptive-full"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aba_agreement::{BaConfig, CommitteeBa};
    use aba_sim::{InfoModel, SimConfig, Simulation, Verdict};

    fn split_inputs(n: usize) -> Vec<bool> {
        (0..n).map(|i| i % 2 == 0).collect()
    }

    fn run_attack(
        n: usize,
        t: usize,
        seed: u64,
        las_vegas: bool,
        info: InfoModel,
    ) -> (aba_sim::RunReport, Verdict) {
        let cfg = if las_vegas {
            BaConfig::paper_las_vegas(n, t, 2.0).unwrap()
        } else {
            BaConfig::paper(n, t, 2.0).unwrap()
        };
        let inputs = split_inputs(n);
        let nodes = CommitteeBa::network(&cfg, &inputs);
        let sim_cfg = SimConfig::new(n, t)
            .with_seed(seed)
            .with_max_rounds(8_000)
            .with_info_model(info);
        let report = Simulation::new(
            sim_cfg,
            nodes,
            AdaptiveFullAttack::new(BudgetPolicy::Greedy),
        )
        .run();
        let verdict = Verdict::evaluate(&inputs, &report.outputs, &report.honest);
        (report, verdict)
    }

    #[test]
    fn cannot_break_agreement_las_vegas() {
        for seed in 0..6 {
            let (report, verdict) = run_attack(32, 10, seed, true, InfoModel::Rushing);
            assert!(report.all_halted, "seed {seed}: never terminated");
            assert!(verdict.agreement, "seed {seed}: {verdict:?}");
        }
    }

    #[test]
    fn attack_is_stronger_than_split_vote() {
        let mut full_rounds = 0u64;
        let mut split_rounds = 0u64;
        for seed in 0..10 {
            let cfg = BaConfig::paper_las_vegas(32, 10, 2.0).unwrap();
            let inputs = split_inputs(32);
            let sim_cfg = SimConfig::new(32, 10)
                .with_seed(seed)
                .with_max_rounds(8_000);
            let r1 = Simulation::new(
                sim_cfg.clone(),
                CommitteeBa::network(&cfg, &inputs),
                AdaptiveFullAttack::new(BudgetPolicy::Greedy),
            )
            .run();
            let r2 = Simulation::new(
                sim_cfg,
                CommitteeBa::network(&cfg, &inputs),
                crate::SplitVote::new(),
            )
            .run();
            full_rounds += r1.rounds;
            split_rounds += r2.rounds;
        }
        assert!(
            full_rounds >= split_rounds,
            "full attack ({full_rounds}) should be at least as strong as split-vote ({split_rounds})"
        );
    }

    #[test]
    fn validity_is_untouchable() {
        for seed in 0..4 {
            let cfg = BaConfig::paper(16, 5, 2.0).unwrap();
            let inputs = vec![false; 16];
            let nodes = CommitteeBa::network(&cfg, &inputs);
            let sim_cfg = SimConfig::new(16, 5).with_seed(seed);
            let report = Simulation::new(
                sim_cfg,
                nodes,
                AdaptiveFullAttack::new(BudgetPolicy::Greedy),
            )
            .run();
            let verdict = Verdict::evaluate(&inputs, &report.outputs, &report.honest);
            assert_eq!(verdict.validity, Some(true), "seed {seed}");
        }
    }

    #[test]
    fn whp_mode_survives_attack_with_high_probability() {
        let mut ok = 0;
        for seed in 0..12 {
            let (_, verdict) = run_attack(32, 8, seed, false, InfoModel::Rushing);
            if verdict.agreement {
                ok += 1;
            }
        }
        assert!(ok >= 10, "agreement in only {ok}/12 runs");
    }

    #[test]
    fn non_rushing_variant_is_weaker() {
        let mut rushing = 0u64;
        let mut nonrushing = 0u64;
        for seed in 0..8 {
            let (r1, _) = run_attack(32, 10, seed, true, InfoModel::Rushing);
            let (r2, _) = run_attack(32, 10, seed, true, InfoModel::NonRushing);
            rushing += r1.rounds;
            nonrushing += r2.rounds;
        }
        assert!(
            rushing >= nonrushing,
            "rushing ({rushing}) must delay at least as long as non-rushing ({nonrushing})"
        );
    }

    #[test]
    fn frugal_policy_spends_less() {
        let mut greedy_spend = 0usize;
        let mut frugal_spend = 0usize;
        for seed in 0..8 {
            let cfg = BaConfig::paper_las_vegas(32, 10, 2.0).unwrap();
            let inputs = split_inputs(32);
            let sim_cfg = SimConfig::new(32, 10)
                .with_seed(seed)
                .with_max_rounds(8_000);
            let g = Simulation::new(
                sim_cfg.clone(),
                CommitteeBa::network(&cfg, &inputs),
                AdaptiveFullAttack::new(BudgetPolicy::Greedy),
            )
            .run();
            let f = Simulation::new(
                sim_cfg,
                CommitteeBa::network(&cfg, &inputs),
                AdaptiveFullAttack::new(BudgetPolicy::Frugal),
            )
            .run();
            greedy_spend += g.corruptions_used;
            frugal_spend += f.corruptions_used;
        }
        assert!(
            frugal_spend <= greedy_spend,
            "frugal ({frugal_spend}) must not outspend greedy ({greedy_spend})"
        );
    }

    #[test]
    fn literal_mode_attack_works() {
        for seed in 0..4 {
            let cfg = BaConfig::paper_las_vegas(32, 10, 2.0)
                .unwrap()
                .with_coin_round(aba_agreement::CoinRoundMode::Literal);
            let inputs = split_inputs(32);
            let nodes = CommitteeBa::network(&cfg, &inputs);
            let sim_cfg = SimConfig::new(32, 10)
                .with_seed(seed)
                .with_max_rounds(9_000);
            let report = Simulation::new(
                sim_cfg,
                nodes,
                AdaptiveFullAttack::new(BudgetPolicy::Greedy),
            )
            .run();
            let verdict = Verdict::evaluate(&inputs, &report.outputs, &report.honest);
            assert!(report.all_halted && verdict.agreement, "seed {seed}");
        }
    }
}
