//! Network-model benchmarks: what each `aba-net` delivery model costs
//! on top of the raw engine round loop.
//!
//! ```text
//! cargo bench -p aba-bench --bench network
//! cargo bench -p aba-bench --bench network -- --json BENCH_results.json
//! ```
//!
//! The `sync` row is the control: its transparent fast path must sit
//! within noise of the `pass-through` (pre-network engine) row. The
//! other models pay for per-message routing and broadcast expansion.

use aba_bench::Group;
use aba_net::{BoundedDelay, DelayScheduler, LossyLinks, NetDelivery, Partition, Synchronous};
use aba_sim::adversary::Benign;
use aba_sim::prelude::*;
use rand::RngCore;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Beat(#[allow(dead_code)] u8);
impl Message for Beat {
    fn bit_size(&self) -> usize {
        8
    }
}
impl PackedMessage for Beat {
    fn pack(&self) -> Option<u32> {
        Some(self.0 as u32)
    }
    fn unpack(code: u32) -> Self {
        Beat(code as u8)
    }
}

/// A node that broadcasts every round and halts after a fixed horizon.
#[derive(Debug)]
struct Chatter {
    rounds: u64,
    seen: usize,
    halted: bool,
}

impl Protocol for Chatter {
    type Msg = Beat;
    fn emit(&mut self, _r: Round, _rng: &mut dyn RngCore) -> Emission<Beat> {
        Emission::Broadcast(Beat(1))
    }
    fn receive(&mut self, r: Round, inbox: Inbox<'_, Beat>, _rng: &mut dyn RngCore) {
        self.seen += inbox.iter().count();
        if r.index() + 1 >= self.rounds {
            self.halted = true;
        }
    }
    fn output(&self) -> Option<bool> {
        self.halted.then_some(self.seen > 0)
    }
    fn halted(&self) -> bool {
        self.halted
    }
}

fn nodes(n: usize, rounds: u64) -> Vec<Chatter> {
    (0..n)
        .map(|_| Chatter {
            rounds,
            seen: 0,
            halted: false,
        })
        .collect()
}

/// A binary-voting chatter that consumes its inbox the way the
/// committee protocols do: one masked threshold tally per round,
/// answered by the packed plane's word-parallel popcount and by a
/// per-message scan on the dense plane. This is the workload the
/// bit-packed plane exists for.
#[derive(Debug)]
struct TallyChatter {
    rounds: u64,
    seen: usize,
    halted: bool,
}

impl Protocol for TallyChatter {
    type Msg = Beat;
    fn emit(&mut self, _r: Round, _rng: &mut dyn RngCore) -> Emission<Beat> {
        Emission::Broadcast(Beat(1))
    }
    fn receive(&mut self, r: Round, inbox: Inbox<'_, Beat>, _rng: &mut dyn RngCore) {
        let ones = inbox
            .packed_match_count(0xFF, 1, None)
            .unwrap_or_else(|| inbox.iter().filter(|(_, m)| m.0 == 1).count());
        self.seen += ones;
        if r.index() + 1 >= self.rounds {
            self.halted = true;
        }
    }
    fn output(&self) -> Option<bool> {
        self.halted.then_some(self.seen > 0)
    }
    fn halted(&self) -> bool {
        self.halted
    }
}

fn tally_nodes(n: usize, rounds: u64) -> Vec<TallyChatter> {
    (0..n)
        .map(|_| TallyChatter {
            rounds,
            seen: 0,
            halted: false,
        })
        .collect()
}

/// A point-to-point chatter with the sampled protocols' traffic shape:
/// each node sends `⌈log₂ n⌉` unicasts per round to a deterministic
/// spread of peers. Broadcast at n = 65 536 would put Θ(n²) messages on
/// the wire per round; this sub-quadratic workload is what the sparse
/// plane routes, at sizes where a dense plane cannot even allocate.
#[derive(Debug)]
struct SparseChatter {
    me: u32,
    n: u32,
    fanout: u32,
    rounds: u64,
    seen: usize,
    halted: bool,
}

impl Protocol for SparseChatter {
    type Msg = Beat;
    fn emit(&mut self, r: Round, _rng: &mut dyn RngCore) -> Emission<Beat> {
        let base = self
            .me
            .wrapping_mul(2_654_435_761)
            .wrapping_add(r.index() as u32);
        let peers = (0..self.fanout)
            .map(|j| (NodeId::new(base.wrapping_add(j * j + 1) % self.n), Beat(1)))
            .collect();
        Emission::PerRecipient(peers)
    }
    fn receive(&mut self, r: Round, inbox: Inbox<'_, Beat>, _rng: &mut dyn RngCore) {
        self.seen += inbox.iter().count();
        if r.index() + 1 >= self.rounds {
            self.halted = true;
        }
    }
    fn output(&self) -> Option<bool> {
        self.halted.then_some(self.seen > 0)
    }
    fn halted(&self) -> bool {
        self.halted
    }
}

fn sparse_nodes(n: usize, rounds: u64) -> Vec<SparseChatter> {
    let fanout = (usize::BITS - (n - 1).leading_zeros()).max(1);
    (0..n as u32)
        .map(|me| SparseChatter {
            me,
            n: n as u32,
            fanout,
            rounds,
            seen: 0,
            halted: false,
        })
        .collect()
}

fn main() {
    let n = 128usize;
    let rounds = 8u64;
    let cfg = || {
        SimConfig::new(n, 0)
            .with_seed(1)
            .with_max_rounds(rounds + 16)
    };

    let group = Group::new("net_models");
    bench_small(&group, n, rounds, cfg);
    bench_large();
    bench_oracle(n, rounds, cfg);
    bench_probe(n, rounds, cfg);
    bench_provenance();

    aba_bench::finish();
}

/// The probe-seam overhead pair: the same engine workload with
/// `NoProbe` (the default fifth generic, which must cost nothing) and
/// with the full `EventProbe` (event log + metrics registry) attached.
/// CI pins `probe/event-probe` at ≤5% over `probe/no-probe` *within
/// this run* (see `check_overhead`), extending the oracle-seam budget
/// to observed runs.
fn bench_probe(n: usize, rounds: u64, cfg: impl Fn() -> SimConfig) {
    use aba_obs::EventProbe;

    let group = Group::new("probe");
    group.bench("no-probe", || {
        let net: NetDelivery<Beat, _> = NetDelivery::new(Synchronous, 1);
        Simulation::with_instruments(cfg(), nodes(n, rounds), Benign, net, NoOracle, NoProbe)
            .run()
            .rounds
    });
    group.bench("event-probe", || {
        let net: NetDelivery<Beat, _> = NetDelivery::new(Synchronous, 1);
        let (report, _, probe) = Simulation::with_instruments(
            cfg(),
            nodes(n, rounds),
            Benign,
            net,
            NoOracle,
            EventProbe::new(),
        )
        .run_instrumented();
        report.rounds + probe.log().len() as u64
    });
}

/// The provenance overhead pair: a dense broadcast workload with
/// `NoProbe` and with the causal-provenance probe (arrival scan +
/// online frontier-bitset closure + per-node traffic tallies) attached.
/// CI pins `provenance/provenance-probe` at ≤5% over
/// `provenance/no-probe` *within this run* (see `check_overhead`).
///
/// The pair runs at experiment scale (`n = 1024`) rather than the small
/// smoke size: the probe's steady-state cost is O(n) per round (the
/// saturation fast path plus the arrival-scan fill), while the engine
/// round itself routes n² messages — the gate pins that asymptotic
/// claim where campaigns actually run, not on a toy run whose rounds
/// are cheaper than any bookkeeping.
fn bench_provenance() {
    use aba_obs::ProvenanceProbe;

    let n = 1024usize;
    let rounds = 32u64;
    let cfg = || {
        SimConfig::new(n, 0)
            .with_seed(1)
            .with_max_rounds(rounds + 16)
    };
    let group = Group::new("provenance");
    group.bench("no-probe", || {
        let net: NetDelivery<Beat, _> = NetDelivery::new(Synchronous, 1);
        Simulation::with_instruments(cfg(), nodes(n, rounds), Benign, net, NoOracle, NoProbe)
            .run()
            .rounds
    });
    // The probe is reused across iterations (its documented contract:
    // `run_start` re-sizes in place, retaining allocations) so the row
    // measures steady-state tracing cost, not first-run page faults on
    // the closure pools — matching a campaign worker that traces many
    // trials in sequence.
    let mut probe = ProvenanceProbe::new();
    group.bench("provenance-probe", move || {
        let net: NetDelivery<Beat, _> = NetDelivery::new(Synchronous, 1);
        let (report, _, p) = Simulation::with_instruments(
            cfg(),
            nodes(n, rounds),
            Benign,
            net,
            NoOracle,
            std::mem::take(&mut probe),
        )
        .run_instrumented();
        probe = p;
        report.rounds + probe.rounds().len() as u64
    });
}

/// The oracle-seam overhead pair: the same engine workload with
/// `NoOracle` (the default fourth generic, which must cost nothing) and
/// with every lemma checker armed. CI's compare gate pins
/// `oracle/lemma-suite` at ≤5% over `oracle/no-oracle` *within this
/// run* (see `check_overhead`), so the bound holds on any hardware.
fn bench_oracle(n: usize, rounds: u64, cfg: impl Fn() -> SimConfig) {
    use aba_check::LemmaSuite;

    let group = Group::new("oracle");
    group.bench("no-oracle", || {
        let net: NetDelivery<Beat, _> = NetDelivery::new(Synchronous, 1);
        Simulation::with_network(cfg(), nodes(n, rounds), Benign, net)
            .run()
            .rounds
    });
    group.bench("lemma-suite", || {
        let suite = LemmaSuite::new()
            .agreement()
            .validity(true)
            .early_termination(0, rounds + 16)
            .congest(64)
            .budget_monotonicity();
        let net: NetDelivery<Beat, _> = NetDelivery::new(Synchronous, 1);
        Simulation::with_oracle(cfg(), nodes(n, rounds), Benign, net, suite)
            .run()
            .rounds
    });
}

fn bench_small(group: &Group, n: usize, rounds: u64, cfg: impl Fn() -> SimConfig) {
    group.bench("pass-through", || {
        Simulation::new(cfg(), nodes(n, rounds), Benign)
            .run()
            .rounds
    });
    group.bench("sync", || {
        let net: NetDelivery<Beat, _> = NetDelivery::new(Synchronous, 1);
        Simulation::with_network(cfg(), nodes(n, rounds), Benign, net)
            .run()
            .rounds
    });
    group.bench("lossy(0.1)", || {
        let net: NetDelivery<Beat, _> = NetDelivery::new(LossyLinks::new(0.1), 1);
        Simulation::with_network(cfg(), nodes(n, rounds), Benign, net)
            .run()
            .rounds
    });
    group.bench("delay(2,random)", || {
        let net: NetDelivery<Beat, _> =
            NetDelivery::new(BoundedDelay::new(2, DelayScheduler::Random), 1);
        Simulation::with_network(cfg(), nodes(n, rounds), Benign, net)
            .run()
            .rounds
    });
    group.bench("delay(2,adv)", || {
        let net: NetDelivery<Beat, _> =
            NetDelivery::new(BoundedDelay::new(2, DelayScheduler::DelayHonest), 1);
        Simulation::with_network(cfg(), nodes(n, rounds), Benign, net)
            .run()
            .rounds
    });
    group.bench("partition(2,heal=4)", || {
        let net: NetDelivery<Beat, _> = NetDelivery::new(Partition::striped(n, 2, 4), 1);
        Simulation::with_network(cfg(), nodes(n, rounds), Benign, net)
            .run()
            .rounds
    });
}

/// Large-`n` sweeps: the non-transparent models route `n²` messages per
/// round, so these rows measure the optimized message plane where it
/// matters (and where the pre-dense HashMap path used to dominate).
fn bench_large() {
    let rounds = 4u64;
    let group = Group::new("net_large");
    for n in [256usize, 512] {
        let cfg = || {
            SimConfig::new(n, 0)
                .with_seed(1)
                .with_max_rounds(rounds + 16)
        };
        group.bench(&format!("sync n={n}"), || {
            let net: NetDelivery<Beat, _> = NetDelivery::new(Synchronous, 1);
            Simulation::with_network(cfg(), nodes(n, rounds), Benign, net)
                .run()
                .rounds
        });
        group.bench(&format!("lossy(0.1) n={n}"), || {
            let net: NetDelivery<Beat, _> = NetDelivery::new(LossyLinks::new(0.1), 1);
            Simulation::with_network(cfg(), nodes(n, rounds), Benign, net)
                .run()
                .rounds
        });
        group.bench(&format!("delay(2,random) n={n}"), || {
            let net: NetDelivery<Beat, _> =
                NetDelivery::new(BoundedDelay::new(2, DelayScheduler::Random), 1);
            Simulation::with_network(cfg(), nodes(n, rounds), Benign, net)
                .run()
                .rounds
        });
    }

    // The bit-packed binary plane on the same sweep, one size up: the
    // `packed *` rows run the popcount-tally workload on
    // `PackedMailbox`, the `dense *` control rows run the identical
    // workload on `RoundMailbox` — so each pair isolates the plane.
    for n in [512usize, 1024, 4096] {
        let cfg = || {
            SimConfig::new(n, 0)
                .with_seed(1)
                .with_max_rounds(rounds + 16)
        };
        group.bench(&format!("packed sync n={n}"), || {
            let net = NetDelivery::new(Synchronous, 1);
            PackedSimulation::with_instruments(
                cfg(),
                tally_nodes(n, rounds),
                Benign,
                net,
                NoOracle,
                NoProbe,
            )
            .run_instrumented()
            .0
            .rounds
        });
        group.bench(&format!("packed lossy(0.1) n={n}"), || {
            let net = NetDelivery::new(LossyLinks::new(0.1), 1);
            PackedSimulation::with_instruments(
                cfg(),
                tally_nodes(n, rounds),
                Benign,
                net,
                NoOracle,
                NoProbe,
            )
            .run_instrumented()
            .0
            .rounds
        });
        group.bench(&format!("packed delay(2,random) n={n}"), || {
            let net = NetDelivery::new(BoundedDelay::new(2, DelayScheduler::Random), 1);
            PackedSimulation::with_instruments(
                cfg(),
                tally_nodes(n, rounds),
                Benign,
                net,
                NoOracle,
                NoProbe,
            )
            .run_instrumented()
            .0
            .rounds
        });
        group.bench(&format!("dense sync n={n}"), || {
            let net: NetDelivery<Beat, _> = NetDelivery::new(Synchronous, 1);
            Simulation::with_network(cfg(), tally_nodes(n, rounds), Benign, net)
                .run()
                .rounds
        });
        group.bench(&format!("dense lossy(0.1) n={n}"), || {
            let net: NetDelivery<Beat, _> = NetDelivery::new(LossyLinks::new(0.1), 1);
            Simulation::with_network(cfg(), tally_nodes(n, rounds), Benign, net)
                .run()
                .rounds
        });
        group.bench(&format!("dense delay(2,random) n={n}"), || {
            let net: NetDelivery<Beat, _> =
                NetDelivery::new(BoundedDelay::new(2, DelayScheduler::Random), 1);
            Simulation::with_network(cfg(), tally_nodes(n, rounds), Benign, net)
                .run()
                .rounds
        });
    }

    // The adjacency-list sparse plane on the sampled protocols' unicast
    // workload (log₂ n sends per node per round), at sizes the dense
    // planes cannot reach without an n × n allocation. The `dense p2p
    // n=4096` control runs the identical workload on `RoundMailbox` —
    // the one size where both planes fit — so the pair isolates the
    // plane swap before the sweep escapes dense range.
    group.bench("dense p2p sync n=4096", || {
        let n = 4096usize;
        let cfg = SimConfig::new(n, 0)
            .with_seed(1)
            .with_max_rounds(rounds + 16);
        let net: NetDelivery<Beat, _> = NetDelivery::new(Synchronous, 1);
        Simulation::with_network(cfg, sparse_nodes(n, rounds), Benign, net)
            .run()
            .rounds
    });
    for n in [4096usize, 16384, 65536] {
        let cfg = move || {
            SimConfig::new(n, 0)
                .with_seed(1)
                .with_max_rounds(rounds + 16)
        };
        group.bench(&format!("sparse p2p sync n={n}"), || {
            let net = NetDelivery::new(Synchronous, 1);
            SparseSimulation::with_instruments(
                cfg(),
                sparse_nodes(n, rounds),
                Benign,
                net,
                NoOracle,
                NoProbe,
            )
            .run_instrumented()
            .0
            .rounds
        });
    }
}
