//! Campaign-executor benches: the wall-clock payoff of campaign-wide
//! work stealing over the sequential per-cell batch loop.
//!
//! Both contenders run the same e16-style grid (3 protocols × 3
//! networks at n = 32, fixed 8 trials per cell). The sequential loop
//! is what every experiment did before `aba-sweep`: one `run_batch`
//! per cell, each an implicit barrier, so the cap-stalled lossy and
//! delayed committee cells serialize the sweep. The campaign executor
//! schedules all 72 (cell, trial) tasks on one work-stealing pool.
//!
//! ```text
//! cargo bench -p aba-bench --bench sweep
//! ```

use aba_bench::Group;
use aba_harness::{AttackSpec, NetworkSpec, ProtocolSpec, ScenarioBuilder};
use aba_net::DelayScheduler;
use aba_sweep::{CampaignSpec, RoundCap, StopRule};

const N: usize = 32;
const T: usize = 10;
const TRIALS: usize = 8;

const PROTOCOLS: [ProtocolSpec; 3] = [
    ProtocolSpec::PaperLasVegas { alpha: 2.0 },
    ProtocolSpec::ChorCoan { beta: 1.0 },
    ProtocolSpec::PhaseKing,
];

const NETWORKS: [NetworkSpec; 3] = [
    NetworkSpec::Synchronous,
    NetworkSpec::LossyLinks { p_drop: 0.1 },
    NetworkSpec::BoundedDelay {
        max_delay: 2,
        scheduler: DelayScheduler::Random,
    },
];

fn main() {
    let group = Group::new("sweep_grid");
    let cap = (24 * N) as u64;

    group.bench("sequential_cells", || {
        let mut total = 0usize;
        for proto in PROTOCOLS {
            for net in NETWORKS {
                let report = ScenarioBuilder::new(N, T)
                    .protocol(proto)
                    .adversary(AttackSpec::FullAttack)
                    .network(net)
                    .max_rounds(cap)
                    .trials(TRIALS)
                    .run_batch();
                total += report.len();
            }
        }
        total
    });

    group.bench("campaign_executor", || {
        CampaignSpec::new("bench-grid")
            .sizes(&[(N, T)])
            .protocols(&PROTOCOLS)
            .attacks(&[AttackSpec::FullAttack])
            .networks(&NETWORKS)
            .round_cap(RoundCap::Fixed(cap))
            .stop(StopRule::fixed(TRIALS))
            .run()
            .total_trials()
    });

    aba_bench::finish();
}
