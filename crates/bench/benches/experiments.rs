//! Experiment-regeneration benches: the wall-clock cost of rebuilding
//! each table/figure of EXPERIMENTS.md in quick mode. One Criterion
//! target per experiment keeps regressions in any layer visible.

use aba_harness::experiments::{self, ExpParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_quick_experiments(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiment_quick");
    group.sample_size(10);
    // The fast experiments get a proper Criterion loop; the slow ones
    // are exercised once per sample with reduced statistics.
    for def in experiments::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(def.id),
            &def.runner,
            |b, runner| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let params = ExpParams { quick: true, seed };
                    runner(&params).tables.len()
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_quick_experiments
}
criterion_main!(benches);
