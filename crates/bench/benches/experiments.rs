//! Experiment-regeneration benches: the wall-clock cost of rebuilding
//! each table/figure of EXPERIMENTS.md in quick mode. One target per
//! experiment keeps regressions in any layer visible.
//!
//! ```text
//! cargo bench -p aba-bench --bench experiments
//! ```

use aba_bench::Group;
use aba_sweep::experiments::{self, ExpParams};

fn main() {
    let group = Group::new("experiment_quick");
    for def in experiments::all() {
        let mut seed = 0u64;
        group.bench(def.id, || {
            seed += 1;
            let params = ExpParams { quick: true, seed };
            (def.runner)(&params).tables.len()
        });
    }

    aba_bench::finish();
}
