//! Attack benches (experiment families E6/E12): what each adversary
//! class costs in simulation time, and the early-termination sweep.

use aba_harness::{run_scenario, AttackSpec, ProtocolSpec, Scenario};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_adversaries(c: &mut Criterion) {
    let mut group = c.benchmark_group("adversary");
    for attack in [
        AttackSpec::Benign,
        AttackSpec::StaticSilent,
        AttackSpec::Crash { per_round: 1 },
        AttackSpec::SplitVote,
        AttackSpec::FullAttack,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(attack.name()),
            &attack,
            |b, &attack| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let s = Scenario::new(64, 21)
                        .with_protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
                        .with_attack(attack)
                        .with_seed(seed)
                        .with_max_rounds(4_000);
                    run_scenario(&s).rounds
                })
            },
        );
    }
    group.finish();
}

fn bench_early_termination(c: &mut Criterion) {
    let mut group = c.benchmark_group("early_termination_q");
    for q in [0usize, 5, 21] {
        group.bench_with_input(BenchmarkId::from_parameter(q), &q, |b, &q| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let s = Scenario::new(64, 21)
                    .with_protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
                    .with_attack(AttackSpec::FullAttackCapped { q })
                    .with_seed(seed)
                    .with_max_rounds(4_000);
                run_scenario(&s).rounds
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_adversaries, bench_early_termination
}
criterion_main!(benches);
