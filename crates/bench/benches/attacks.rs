//! Attack benches (experiment families E6/E12): what each adversary
//! class costs in simulation time, and the early-termination sweep.
//!
//! ```text
//! cargo bench -p aba-bench --bench attacks
//! ```

use aba_bench::Group;
use aba_harness::{AttackSpec, ProtocolSpec, ScenarioBuilder};

fn main() {
    let group = Group::new("adversary");
    for attack in [
        AttackSpec::Benign,
        AttackSpec::StaticSilent,
        AttackSpec::Crash { per_round: 1 },
        AttackSpec::SplitVote,
        AttackSpec::FullAttack,
    ] {
        let mut seed = 0u64;
        group.bench(attack.name(), || {
            seed += 1;
            ScenarioBuilder::new(64, 21)
                .protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
                .adversary(attack)
                .seed(seed)
                .max_rounds(4_000)
                .run()
                .rounds
        });
    }

    let group = Group::new("early_termination_q");
    for q in [0usize, 5, 21] {
        let mut seed = 0u64;
        group.bench(&format!("q={q}"), || {
            seed += 1;
            ScenarioBuilder::new(64, 21)
                .protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
                .adversary(AttackSpec::FullAttackCapped { q })
                .seed(seed)
                .max_rounds(4_000)
                .run()
                .rounds
        });
    }

    aba_bench::finish();
}
