//! Agreement benches (experiment families E1/E3/E5/E8): full protocol
//! runs per protocol and size, fault-free and under the full attack.
//!
//! ```text
//! cargo bench -p aba-bench --bench agreement
//! ```

use aba_bench::Group;
use aba_harness::{AttackSpec, InputSpec, ProtocolSpec, ScenarioBuilder};

fn main() {
    let group = Group::new("protocol_fault_free");
    for proto in [
        ProtocolSpec::Paper { alpha: 2.0 },
        ProtocolSpec::PaperLasVegas { alpha: 2.0 },
        ProtocolSpec::ChorCoan { beta: 1.0 },
        ProtocolSpec::RabinDealer,
        ProtocolSpec::PhaseKing,
    ] {
        let mut seed = 0u64;
        group.bench(proto.name(), || {
            seed += 1;
            ScenarioBuilder::new(64, 21)
                .protocol(proto)
                .adversary(AttackSpec::Benign)
                .inputs(InputSpec::Split)
                .seed(seed)
                .run()
                .rounds
        });
    }

    let group = Group::new("paper_rounds_vs_t");
    for t in [4usize, 16, 42] {
        let mut seed = 0u64;
        group.bench(&format!("t={t}"), || {
            seed += 1;
            ScenarioBuilder::new(128, t)
                .protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
                .adversary(AttackSpec::FullAttack)
                .seed(seed)
                .max_rounds(4_000)
                .run()
                .rounds
        });
    }

    aba_bench::finish();
}
