//! Agreement benches (experiment families E1/E3/E5/E8): full protocol
//! runs per protocol and size, fault-free and under the full attack.

use aba_harness::{run_scenario, AttackSpec, InputSpec, ProtocolSpec, Scenario};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_protocols_fault_free(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_fault_free");
    for proto in [
        ProtocolSpec::Paper { alpha: 2.0 },
        ProtocolSpec::PaperLasVegas { alpha: 2.0 },
        ProtocolSpec::ChorCoan { beta: 1.0 },
        ProtocolSpec::RabinDealer,
        ProtocolSpec::PhaseKing,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(proto.name()),
            &proto,
            |b, &proto| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let s = Scenario::new(64, 21)
                        .with_protocol(proto)
                        .with_attack(AttackSpec::Benign)
                        .with_inputs(InputSpec::Split)
                        .with_seed(seed);
                    run_scenario(&s).rounds
                })
            },
        );
    }
    group.finish();
}

fn bench_paper_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper_rounds_vs_t");
    for t in [4usize, 16, 42] {
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let s = Scenario::new(128, t)
                    .with_protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
                    .with_attack(AttackSpec::FullAttack)
                    .with_seed(seed)
                    .with_max_rounds(4_000);
                run_scenario(&s).rounds
            })
        });
    }
    group.finish();
}

fn bench_las_vegas_vs_whp(c: &mut Criterion) {
    let mut group = c.benchmark_group("variant");
    for (label, proto) in [
        ("whp", ProtocolSpec::Paper { alpha: 2.0 }),
        ("las_vegas", ProtocolSpec::PaperLasVegas { alpha: 2.0 }),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &proto, |b, &proto| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let s = Scenario::new(64, 21)
                    .with_protocol(proto)
                    .with_attack(AttackSpec::FullAttack)
                    .with_seed(seed)
                    .with_max_rounds(4_000);
                run_scenario(&s).rounds
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_protocols_fault_free, bench_paper_scaling, bench_las_vegas_vs_whp
}
criterion_main!(benches);
