//! Coin benches (experiment family E2/E10): one-round common coin with
//! and without the optimal rushing denial attack.
//!
//! ```text
//! cargo bench -p aba-bench --bench coin
//! ```

use aba_bench::Group;
use aba_harness::{AttackSpec, ProtocolSpec, ScenarioBuilder};

fn main() {
    let group = Group::new("coin_benign");
    for n in [64usize, 256, 1024] {
        let mut seed = 0u64;
        group.bench(&format!("n={n}"), || {
            seed += 1;
            ScenarioBuilder::new(n, 0)
                .protocol(ProtocolSpec::CommonCoin)
                .adversary(AttackSpec::Benign)
                .seed(seed)
                .run()
                .decision
        });
    }

    let group = Group::new("coin_attacked");
    for n in [64usize, 256, 1024] {
        let t = ((n as f64).sqrt() / 2.0) as usize;
        let mut seed = 0u64;
        group.bench(&format!("n={n}"), || {
            seed += 1;
            ScenarioBuilder::new(n, t)
                .protocol(ProtocolSpec::CommonCoin)
                .adversary(AttackSpec::CoinKiller)
                .seed(seed)
                .run()
                .corruptions
        });
    }

    let group = Group::new("coin_analysis");
    group.bench("exact_binomial_tail_g65536", || {
        aba_coin::analysis::prob_abs_sum_greater(65_536, 256)
    });

    aba_bench::finish();
}
