//! Coin benches (experiment family E2/E10): one-round common coin with
//! and without the optimal rushing denial attack.

use aba_attacks::{CoinKiller, NonRushingPolicy};
use aba_coin::CoinFlipNode;
use aba_sim::adversary::Benign;
use aba_sim::{SimConfig, Simulation};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_coin_benign(c: &mut Criterion) {
    let mut group = c.benchmark_group("coin_benign");
    for n in [64usize, 256, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let cfg = SimConfig::new(n, 0).with_seed(seed);
                Simulation::new(cfg, CoinFlipNode::network(n), Benign)
                    .run()
                    .outputs[0]
            })
        });
    }
    group.finish();
}

fn bench_coin_under_attack(c: &mut Criterion) {
    let mut group = c.benchmark_group("coin_attacked");
    for n in [64usize, 256, 1024] {
        let t = ((n as f64).sqrt() / 2.0) as usize;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let cfg = SimConfig::new(n, t).with_seed(seed);
                Simulation::new(
                    cfg,
                    CoinFlipNode::network(n),
                    CoinKiller::new(NonRushingPolicy::Guaranteed),
                )
                .run()
                .corruptions_used
            })
        });
    }
    group.finish();
}

fn bench_exact_tail_computation(c: &mut Criterion) {
    c.bench_function("exact_binomial_tail_g65536", |b| {
        b.iter(|| aba_coin::analysis::prob_abs_sum_greater(65_536, 256))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_coin_benign, bench_coin_under_attack, bench_exact_tail_computation
}
criterion_main!(benches);
