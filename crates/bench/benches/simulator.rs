//! Simulator micro-benchmarks: raw engine round throughput — the floor
//! every experiment's wall-clock stands on.
//!
//! ```text
//! cargo bench -p aba-bench --bench simulator
//! ```

use aba_bench::Group;
use aba_sim::adversary::Benign;
use aba_sim::prelude::*;
use rand::RngCore;

#[derive(Debug, Clone, Copy)]
struct Beat(#[allow(dead_code)] u8);
impl Message for Beat {
    fn bit_size(&self) -> usize {
        8
    }
}

/// A node that broadcasts and counts forever.
#[derive(Debug)]
struct Chatter {
    rounds: u64,
    seen: usize,
    halted: bool,
}

impl Protocol for Chatter {
    type Msg = Beat;
    fn emit(&mut self, _r: Round, _rng: &mut dyn RngCore) -> Emission<Beat> {
        Emission::Broadcast(Beat(1))
    }
    fn receive(&mut self, r: Round, inbox: Inbox<'_, Beat>, _rng: &mut dyn RngCore) {
        self.seen += inbox.iter().count();
        if r.index() + 1 >= self.rounds {
            self.halted = true;
        }
    }
    fn output(&self) -> Option<bool> {
        self.halted.then_some(self.seen > 0)
    }
    fn halted(&self) -> bool {
        self.halted
    }
}

fn main() {
    let group = Group::new("engine_rounds");
    for n in [32usize, 128, 512] {
        let rounds = 8u64;
        // Each iteration simulates `rounds` full-broadcast rounds.
        group.bench(&format!("n={n}"), || {
            let nodes: Vec<Chatter> = (0..n)
                .map(|_| Chatter {
                    rounds,
                    seen: 0,
                    halted: false,
                })
                .collect();
            let cfg = SimConfig::new(n, 0).with_seed(1);
            Simulation::new(cfg, nodes, Benign).run().rounds
        });
    }

    // The equivocation/inbox-resolution hot path, exercised every round
    // for every node.
    let group = Group::new("mailbox");
    let n = 256usize;
    let mut mb: RoundMailbox<Beat> = RoundMailbox::new(n);
    for i in 0..n {
        if i % 4 == 0 {
            let per: Vec<(NodeId, Beat)> = (0..n as u32)
                .map(|j| (NodeId::new(j), Beat((j % 2) as u8)))
                .collect();
            mb.set(NodeId::new(i as u32), Emission::PerRecipient(per));
        } else {
            mb.set(NodeId::new(i as u32), Emission::Broadcast(Beat(0)));
        }
    }
    group.bench("per_recipient_resolution", || {
        let mut total = 0usize;
        for r in 0..n as u32 {
            total += mb.inbox(NodeId::new(r)).iter().count();
        }
        total
    });

    aba_bench::finish();
}
