//! # aba-bench — wall-clock benchmarks without external harnesses
//!
//! One bench target per experiment family (see `benches/`), plus
//! simulator micro-benchmarks. The benches measure the wall-clock cost
//! of regenerating (scaled-down versions of) each table/figure so
//! performance regressions in the simulator or protocols show up in CI.
//!
//! This workspace builds with no network access, so instead of Criterion
//! the targets use the tiny adaptive timing harness in this crate: each
//! measurement warms up, then runs enough iterations to fill a sampling
//! window (`ABA_BENCH_MS` milliseconds, default 300; set `ABA_BENCH_MS=0`
//! for a single-iteration smoke run in CI) and reports mean and best
//! iteration times.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use aba_harness::{Scenario, ScenarioBuilder, TrialResult};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Runs a scenario once through the facade and returns the result (thin
/// wrapper so bench targets don't need the harness API surface).
pub fn run_once(scenario: &Scenario) -> TrialResult {
    ScenarioBuilder::from_scenario(scenario.clone()).run()
}

/// A tiny standard scenario used by several micro-benchmarks.
pub fn small_scenario() -> Scenario {
    Scenario::new(32, 10)
}

/// The sampling window per measurement.
fn sample_window() -> Duration {
    let ms = std::env::var("ABA_BENCH_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(300);
    Duration::from_millis(ms)
}

/// One finished measurement, as recorded for `--json` output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchRecord {
    /// Group the measurement belongs to.
    pub group: String,
    /// Measurement label within the group.
    pub label: String,
    /// Mean iteration time in nanoseconds.
    pub mean_ns: u128,
    /// Best iteration time in nanoseconds.
    pub best_ns: u128,
    /// Timed iterations.
    pub iters: u64,
}

/// Every measurement taken in this process, in completion order.
static RECORDS: std::sync::Mutex<Vec<BenchRecord>> = std::sync::Mutex::new(Vec::new());

/// Snapshot of the measurements recorded so far.
pub fn records() -> Vec<BenchRecord> {
    RECORDS.lock().expect("records lock").clone()
}

/// Renders records as a JSON document (hand-rolled: offline workspace,
/// no serde). Group/label strings are benchmark-author-controlled ASCII,
/// but quotes and backslashes are escaped anyway.
fn records_to_json(records: &[BenchRecord]) -> String {
    let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let mut out = String::from("{\n  \"benches\": [");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"group\": \"{}\", \"label\": \"{}\", \"mean_ns\": {}, \"best_ns\": {}, \"iters\": {}}}",
            esc(&r.group),
            esc(&r.label),
            r.mean_ns,
            r.best_ns,
            r.iters
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Finishes a bench target: if `--json <path>` was passed on the command
/// line (e.g. `cargo bench -p aba-bench --bench simulator -- --json
/// BENCH_results.json`), writes every measurement this process took as a
/// machine-readable JSON file, so the perf trajectory can be tracked
/// across commits. Each bench binary writes the whole file; when running
/// several targets, give each its own path. Call it at the end of every
/// bench `main`.
///
/// # Panics
///
/// Panics if `--json` is passed without a path or the file cannot be
/// written — in a benchmark binary, failing loudly beats dropping data.
pub fn finish() {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--json" {
            let path = args.next().expect("--json needs a path");
            let json = records_to_json(&records());
            std::fs::write(&path, json)
                .unwrap_or_else(|e| panic!("cannot write bench JSON to {path}: {e}"));
            eprintln!("wrote bench results to {path}");
            return;
        }
    }
}

/// A named group of measurements, printed as an aligned table.
pub struct Group {
    name: &'static str,
    window: Duration,
}

impl Group {
    /// Starts a group and prints its header; the sampling window comes
    /// from `ABA_BENCH_MS` (default 300 ms, `0` = single pass).
    pub fn new(name: &'static str) -> Self {
        Self::with_window(name, sample_window())
    }

    /// Starts a group with an explicit sampling window (no environment
    /// involved; `Duration::ZERO` = single pass).
    pub fn with_window(name: &'static str, window: Duration) -> Self {
        println!("\n== {name}");
        Group { name, window }
    }

    /// Measures `f` adaptively and prints one result line. The closure's
    /// return value is black-boxed so the work cannot be optimized away.
    pub fn bench<R>(&self, label: &str, mut f: impl FnMut() -> R) {
        // Warm-up: one untimed call (fills caches, triggers lazy init).
        black_box(f());
        let window = self.window;
        let mut iters = 0u64;
        let mut best = Duration::MAX;
        let started = Instant::now();
        loop {
            let t0 = Instant::now();
            black_box(f());
            let dt = t0.elapsed();
            best = best.min(dt);
            iters += 1;
            if started.elapsed() >= window {
                break;
            }
        }
        let mean = started.elapsed() / iters as u32;
        println!(
            "{:<18} {:<22} mean {:>12?}   best {:>12?}   ({} iters)",
            self.name, label, mean, best, iters
        );
        RECORDS.lock().expect("records lock").push(BenchRecord {
            group: self.name.to_string(),
            label: label.to_string(),
            mean_ns: mean.as_nanos(),
            best_ns: best.as_nanos(),
            iters,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helper_runs() {
        let r = run_once(&small_scenario());
        assert!(r.terminated);
    }

    #[test]
    fn bench_harness_smoke() {
        let g = Group::with_window("smoke", Duration::ZERO);
        let mut calls = 0u32;
        g.bench("counter", || {
            calls += 1;
            calls
        });
        // Warm-up + at least one timed iteration.
        assert!(calls >= 2);
        // The measurement was recorded for --json output.
        let recs = records();
        let rec = recs
            .iter()
            .find(|r| r.group == "smoke" && r.label == "counter")
            .expect("measurement recorded");
        assert!(rec.iters >= 1);
    }

    #[test]
    fn json_rendering_is_well_formed() {
        let json = records_to_json(&[
            BenchRecord {
                group: "g".into(),
                label: "a\"b".into(),
                mean_ns: 12,
                best_ns: 10,
                iters: 3,
            },
            BenchRecord {
                group: "g".into(),
                label: "plain".into(),
                mean_ns: 99,
                best_ns: 98,
                iters: 1,
            },
        ]);
        assert!(json.starts_with("{\n  \"benches\": ["));
        assert!(json.contains("\"label\": \"a\\\"b\""));
        assert!(json.contains("\"mean_ns\": 99"));
        assert!(json.trim_end().ends_with('}'));
    }
}
