//! # aba-bench — wall-clock benchmarks without external harnesses
//!
//! One bench target per experiment family (see `benches/`), plus
//! simulator micro-benchmarks. The benches measure the wall-clock cost
//! of regenerating (scaled-down versions of) each table/figure so
//! performance regressions in the simulator or protocols show up in CI.
//!
//! This workspace builds with no network access, so instead of Criterion
//! the targets use the tiny adaptive timing harness in this crate: each
//! measurement warms up, then runs enough iterations to fill a sampling
//! window (`ABA_BENCH_MS` milliseconds, default 300; set `ABA_BENCH_MS=0`
//! for a single-iteration smoke run in CI) and reports mean and best
//! iteration times.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use aba_harness::{Scenario, ScenarioBuilder, TrialResult};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Runs a scenario once through the facade and returns the result (thin
/// wrapper so bench targets don't need the harness API surface).
pub fn run_once(scenario: &Scenario) -> TrialResult {
    ScenarioBuilder::from_scenario(scenario.clone()).run()
}

/// A tiny standard scenario used by several micro-benchmarks.
pub fn small_scenario() -> Scenario {
    Scenario::new(32, 10)
}

/// The sampling window per measurement.
fn sample_window() -> Duration {
    let ms = std::env::var("ABA_BENCH_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(300);
    Duration::from_millis(ms)
}

/// One finished measurement, as recorded for `--json` output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchRecord {
    /// Group the measurement belongs to.
    pub group: String,
    /// Measurement label within the group.
    pub label: String,
    /// Mean iteration time in nanoseconds.
    pub mean_ns: u128,
    /// Best iteration time in nanoseconds.
    pub best_ns: u128,
    /// Timed iterations.
    pub iters: u64,
}

/// Every measurement taken in this process, in completion order.
static RECORDS: std::sync::Mutex<Vec<BenchRecord>> = std::sync::Mutex::new(Vec::new());

/// Snapshot of the measurements recorded so far.
pub fn records() -> Vec<BenchRecord> {
    RECORDS.lock().expect("records lock").clone()
}

/// Machine-environment snapshot written into the JSON header by
/// [`finish`]: logical core count, `rustc --version`, and the current
/// git revision (each `"unknown"`/`0` where unavailable). Comparisons
/// ignore it — [`parse_bench_json`] only reads measurement lines — so
/// it exists to let humans judge whether two `BENCH_*.json` files came
/// from comparable machines.
fn env_meta_json() -> String {
    let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(0);
    let probe = |prog: &str, args: &[&str]| -> String {
        std::process::Command::new(prog)
            .args(args)
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_string())
    };
    let rustc = probe("rustc", &["--version"]);
    let git_rev = probe("git", &["rev-parse", "--short", "HEAD"]);
    format!(
        "\"meta\": {{\"cores\": {cores}, \"rustc\": \"{}\", \"git_rev\": \"{}\"}}",
        esc(&rustc),
        esc(&git_rev)
    )
}

/// Renders records as a JSON document (hand-rolled: offline workspace,
/// no serde). Group/label strings are benchmark-author-controlled ASCII,
/// but quotes and backslashes are escaped anyway. `meta` is an optional
/// pre-rendered `"meta": {...}` header member (see [`env_meta_json`]).
fn records_to_json(records: &[BenchRecord], meta: Option<&str>) -> String {
    let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let mut out = String::from("{\n");
    if let Some(meta) = meta {
        out.push_str("  ");
        out.push_str(meta);
        out.push_str(",\n");
    }
    out.push_str("  \"benches\": [");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"group\": \"{}\", \"label\": \"{}\", \"mean_ns\": {}, \"best_ns\": {}, \"iters\": {}}}",
            esc(&r.group),
            esc(&r.label),
            r.mean_ns,
            r.best_ns,
            r.iters
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Finishes a bench target: if `--json <path>` was passed on the command
/// line (e.g. `cargo bench -p aba-bench --bench simulator -- --json
/// BENCH_results.json`), writes every measurement this process took as a
/// machine-readable JSON file, so the perf trajectory can be tracked
/// across commits. Each bench binary writes the whole file; when running
/// several targets, give each its own path. Call it at the end of every
/// bench `main`.
///
/// # Panics
///
/// Panics if `--json` is passed without a path or the file cannot be
/// written — in a benchmark binary, failing loudly beats dropping data.
pub fn finish() {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--json" {
            let path = args.next().expect("--json needs a path");
            let json = records_to_json(&records(), Some(&env_meta_json()));
            std::fs::write(&path, json)
                .unwrap_or_else(|e| panic!("cannot write bench JSON to {path}: {e}"));
            eprintln!("wrote bench results to {path}");
            return;
        }
    }
}

/// Parses a `BENCH_*.json` document produced by [`finish`] back into
/// records. Hand-rolled like the writer: the format is exactly what
/// [`finish`] emits — one object per line inside the `"benches"` array.
/// The `"meta"` header (environment metadata) is deliberately ignored,
/// so comparisons never depend on where a file was produced.
///
/// # Errors
///
/// Returns a message naming the first malformed line.
pub fn parse_bench_json(doc: &str) -> Result<Vec<BenchRecord>, String> {
    fn str_field(line: &str, key: &str) -> Option<String> {
        let tag = format!("\"{key}\": \"");
        let start = line.find(&tag)? + tag.len();
        let rest = &line[start..];
        // Fields are written with escaped quotes/backslashes; undo both.
        let mut out = String::new();
        let mut chars = rest.chars();
        while let Some(c) = chars.next() {
            match c {
                '"' => return Some(out),
                '\\' => out.push(chars.next()?),
                c => out.push(c),
            }
        }
        None
    }
    fn num_field(line: &str, key: &str) -> Option<u128> {
        let tag = format!("\"{key}\": ");
        let start = line.find(&tag)? + tag.len();
        let digits: String = line[start..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect();
        digits.parse().ok()
    }
    let mut records = Vec::new();
    for line in doc.lines() {
        let line = line.trim().trim_end_matches(',');
        if !line.starts_with('{') || !line.contains("\"group\"") {
            continue;
        }
        let parse = || -> Option<BenchRecord> {
            Some(BenchRecord {
                group: str_field(line, "group")?,
                label: str_field(line, "label")?,
                mean_ns: num_field(line, "mean_ns")?,
                best_ns: num_field(line, "best_ns")?,
                iters: num_field(line, "iters")? as u64,
            })
        };
        records.push(parse().ok_or_else(|| format!("malformed bench record: {line}"))?);
    }
    Ok(records)
}

/// One row of a baseline-vs-fresh comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareRow {
    /// Group of the measurement.
    pub group: String,
    /// Label within the group.
    pub label: String,
    /// Baseline best-iteration nanoseconds.
    pub base_ns: u128,
    /// Fresh best-iteration nanoseconds.
    pub fresh_ns: u128,
    /// `fresh / base − 1`: positive is a slowdown.
    pub delta: f64,
}

/// Outcome of [`compare_benches`].
#[derive(Debug, Clone, Default)]
pub struct CompareReport {
    /// Per-measurement rows, in baseline order.
    pub rows: Vec<CompareRow>,
    /// Labels slower than the warn threshold (but under fail).
    pub warnings: Vec<String>,
    /// Labels slower than the fail threshold.
    pub failures: Vec<String>,
    /// Baseline measurements with no fresh counterpart.
    pub missing: Vec<String>,
}

/// Diffs a fresh bench run against a committed baseline over the pinned
/// `groups` (best-iteration times: the minimum is far less sensitive to
/// scheduler noise than the mean). `warn`/`fail` are fractional
/// slowdowns, e.g. `0.10` and `0.35`.
///
/// `normalize` (as `"group/label"`) selects a control measurement:
/// every time is divided by that row's time *from the same file* before
/// comparing, so the gate checks the relative cost shape rather than
/// absolute nanoseconds — essential when the baseline was captured on
/// different hardware (e.g. a committed dev-machine baseline checked on
/// a CI runner). The control row itself still appears in the report
/// with its raw (unnormalized) delta, but is never flagged.
pub fn compare_benches(
    baseline: &[BenchRecord],
    fresh: &[BenchRecord],
    groups: &[&str],
    warn: f64,
    fail: f64,
    normalize: Option<&str>,
) -> CompareReport {
    let mut report = CompareReport::default();
    let control = |records: &[BenchRecord]| -> Option<f64> {
        let key = normalize?;
        records
            .iter()
            .find(|r| format!("{}/{}", r.group, r.label) == key)
            .map(|r| r.best_ns.max(1) as f64)
    };
    let (base_ctrl, fresh_ctrl) = (control(baseline), control(fresh));
    if normalize.is_some() && (base_ctrl.is_none() || fresh_ctrl.is_none()) {
        report.missing.push(format!(
            "{} (normalization control)",
            normalize.unwrap_or("")
        ));
        return report;
    }
    for base in baseline {
        if !groups.contains(&base.group.as_str()) {
            continue;
        }
        let key = format!("{}/{}", base.group, base.label);
        let Some(now) = fresh
            .iter()
            .find(|r| r.group == base.group && r.label == base.label)
        else {
            report.missing.push(key);
            continue;
        };
        let is_control = normalize == Some(key.as_str());
        let base_t = base.best_ns.max(1) as f64 / base_ctrl.unwrap_or(1.0);
        let fresh_t = now.best_ns.max(1) as f64 / fresh_ctrl.unwrap_or(1.0);
        let delta = if is_control {
            now.best_ns as f64 / base.best_ns.max(1) as f64 - 1.0
        } else {
            fresh_t / base_t - 1.0
        };
        if !is_control {
            if delta > fail {
                report.failures.push(key.clone());
            } else if delta > warn {
                report.warnings.push(key.clone());
            }
        }
        report.rows.push(CompareRow {
            group: base.group.clone(),
            label: base.label.clone(),
            base_ns: base.best_ns,
            fresh_ns: now.best_ns,
            delta,
        });
    }
    report
}

/// Checks an in-run overhead ratio: `probe`'s best-iteration time may
/// exceed `control`'s by at most `max_frac` (e.g. `0.05` = 5%). Both
/// rows come from the *same* records (one bench run), so the check is
/// hardware-independent by construction — this is how CI pins the
/// oracle-enabled engine at ≤5% over `NoOracle`. Keys are
/// `"group/label"`. Returns the measured fractional overhead.
///
/// # Errors
///
/// Returns a message when either row is missing or the overhead
/// exceeds `max_frac`.
pub fn check_overhead(
    records: &[BenchRecord],
    probe: &str,
    control: &str,
    max_frac: f64,
) -> Result<f64, String> {
    let find = |key: &str| {
        records
            .iter()
            .find(|r| format!("{}/{}", r.group, r.label) == key)
            .ok_or_else(|| format!("measurement {key} missing from the run"))
    };
    let probe_ns = find(probe)?.best_ns.max(1) as f64;
    let control_ns = find(control)?.best_ns.max(1) as f64;
    let frac = probe_ns / control_ns - 1.0;
    if frac > max_frac {
        return Err(format!(
            "{probe} is {:.1}% over {control}, budget {:.1}%",
            frac * 100.0,
            max_frac * 100.0
        ));
    }
    Ok(frac)
}

/// A named group of measurements, printed as an aligned table.
pub struct Group {
    name: &'static str,
    window: Duration,
}

impl Group {
    /// Starts a group and prints its header; the sampling window comes
    /// from `ABA_BENCH_MS` (default 300 ms, `0` = single pass).
    pub fn new(name: &'static str) -> Self {
        Self::with_window(name, sample_window())
    }

    /// Starts a group with an explicit sampling window (no environment
    /// involved; `Duration::ZERO` = single pass).
    pub fn with_window(name: &'static str, window: Duration) -> Self {
        println!("\n== {name}");
        Group { name, window }
    }

    /// Measures `f` adaptively and prints one result line. The closure's
    /// return value is black-boxed so the work cannot be optimized away.
    #[allow(clippy::disallowed_methods)] // wall-clock timing is this crate's entire job
    pub fn bench<R>(&self, label: &str, mut f: impl FnMut() -> R) {
        // Warm-up: one untimed call (fills caches, triggers lazy init).
        black_box(f());
        let window = self.window;
        let mut iters = 0u64;
        let mut best = Duration::MAX;
        let started = Instant::now();
        loop {
            let t0 = Instant::now();
            black_box(f());
            let dt = t0.elapsed();
            best = best.min(dt);
            iters += 1;
            if started.elapsed() >= window {
                break;
            }
        }
        let mean = started.elapsed() / iters as u32;
        println!(
            "{:<18} {:<22} mean {:>12?}   best {:>12?}   ({} iters)",
            self.name, label, mean, best, iters
        );
        RECORDS.lock().expect("records lock").push(BenchRecord {
            group: self.name.to_string(),
            label: label.to_string(),
            mean_ns: mean.as_nanos(),
            best_ns: best.as_nanos(),
            iters,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helper_runs() {
        let r = run_once(&small_scenario());
        assert!(r.terminated);
    }

    #[test]
    fn bench_harness_smoke() {
        let g = Group::with_window("smoke", Duration::ZERO);
        let mut calls = 0u32;
        g.bench("counter", || {
            calls += 1;
            calls
        });
        // Warm-up + at least one timed iteration.
        assert!(calls >= 2);
        // The measurement was recorded for --json output.
        let recs = records();
        let rec = recs
            .iter()
            .find(|r| r.group == "smoke" && r.label == "counter")
            .expect("measurement recorded");
        assert!(rec.iters >= 1);
    }

    #[test]
    fn overhead_gate_accepts_and_rejects() {
        let rec = |label: &str, best_ns: u128| BenchRecord {
            group: "oracle".into(),
            label: label.into(),
            mean_ns: 0,
            best_ns,
            iters: 1,
        };
        let records = vec![rec("no-oracle", 1000), rec("lemma-suite", 1040)];
        let frac = check_overhead(&records, "oracle/lemma-suite", "oracle/no-oracle", 0.05)
            .expect("4% fits a 5% budget");
        assert!((frac - 0.04).abs() < 1e-9);
        let records = vec![rec("no-oracle", 1000), rec("lemma-suite", 1100)];
        let err = check_overhead(&records, "oracle/lemma-suite", "oracle/no-oracle", 0.05)
            .expect_err("10% breaks a 5% budget");
        assert!(err.contains("10.0%"), "{err}");
        assert!(
            check_overhead(&records, "oracle/nope", "oracle/no-oracle", 0.05)
                .expect_err("missing row")
                .contains("missing"),
        );
    }

    #[test]
    fn json_roundtrips_through_the_parser() {
        let records = vec![
            BenchRecord {
                group: "net_models".into(),
                label: "lossy(0.1)".into(),
                mean_ns: 1200,
                best_ns: 1000,
                iters: 7,
            },
            BenchRecord {
                group: "net_large".into(),
                label: "a\"b\\c".into(),
                mean_ns: 5,
                best_ns: 4,
                iters: 1,
            },
        ];
        let parsed = parse_bench_json(&records_to_json(&records, None)).expect("parses");
        assert_eq!(parsed, records);
        // The environment header is skipped by the parser: two files
        // from different machines parse to comparable records.
        let meta = "\"meta\": {\"cores\": 4, \"rustc\": \"rustc 1.0.0\", \"git_rev\": \"abc123\"}";
        let parsed = parse_bench_json(&records_to_json(&records, Some(meta))).expect("parses");
        assert_eq!(parsed, records);
    }

    #[test]
    fn env_meta_has_all_fields() {
        let meta = env_meta_json();
        assert!(meta.starts_with("\"meta\": {"));
        for key in ["\"cores\": ", "\"rustc\": \"", "\"git_rev\": \""] {
            assert!(meta.contains(key), "missing {key} in {meta}");
        }
    }

    #[test]
    fn compare_classifies_regressions() {
        let base = vec![
            BenchRecord {
                group: "g".into(),
                label: "ok".into(),
                mean_ns: 0,
                best_ns: 1000,
                iters: 1,
            },
            BenchRecord {
                group: "g".into(),
                label: "warn".into(),
                mean_ns: 0,
                best_ns: 1000,
                iters: 1,
            },
            BenchRecord {
                group: "g".into(),
                label: "fail".into(),
                mean_ns: 0,
                best_ns: 1000,
                iters: 1,
            },
            BenchRecord {
                group: "g".into(),
                label: "gone".into(),
                mean_ns: 0,
                best_ns: 1000,
                iters: 1,
            },
            BenchRecord {
                group: "unpinned".into(),
                label: "ignored".into(),
                mean_ns: 0,
                best_ns: 1,
                iters: 1,
            },
        ];
        let fresh = vec![
            BenchRecord {
                group: "g".into(),
                label: "ok".into(),
                mean_ns: 0,
                best_ns: 1050,
                iters: 1,
            },
            BenchRecord {
                group: "g".into(),
                label: "warn".into(),
                mean_ns: 0,
                best_ns: 1200,
                iters: 1,
            },
            BenchRecord {
                group: "g".into(),
                label: "fail".into(),
                mean_ns: 0,
                best_ns: 2000,
                iters: 1,
            },
        ];
        let report = compare_benches(&base, &fresh, &["g"], 0.10, 0.35, None);
        assert_eq!(report.rows.len(), 3);
        assert_eq!(report.warnings, vec!["g/warn".to_string()]);
        assert_eq!(report.failures, vec!["g/fail".to_string()]);
        assert_eq!(report.missing, vec!["g/gone".to_string()]);
        // Speedups are never flagged.
        assert!(report.rows[0].delta < 0.10);
    }

    #[test]
    fn compare_normalizes_against_a_control_row() {
        let rec = |group: &str, label: &str, best: u128| BenchRecord {
            group: group.into(),
            label: label.into(),
            mean_ns: 0,
            best_ns: best,
            iters: 1,
        };
        // The fresh machine is uniformly 3x slower: every raw time
        // triples, but relative to the control the shape is unchanged
        // except for "worse", which also doubled relative to control.
        let base = vec![
            rec("g", "ctrl", 100),
            rec("g", "same", 500),
            rec("g", "worse", 500),
        ];
        let fresh = vec![
            rec("g", "ctrl", 300),
            rec("g", "same", 1500),
            rec("g", "worse", 3000),
        ];
        let raw = compare_benches(&base, &fresh, &["g"], 0.10, 0.35, None);
        assert_eq!(raw.failures.len(), 3, "absolute mode flags everything");
        let norm = compare_benches(&base, &fresh, &["g"], 0.10, 0.35, Some("g/ctrl"));
        assert_eq!(norm.failures, vec!["g/worse".to_string()]);
        assert!(norm.warnings.is_empty());
        assert!(
            norm.rows
                .iter()
                .find(|r| r.label == "same")
                .unwrap()
                .delta
                .abs()
                < 1e-9
        );
        // A missing control row aborts the comparison loudly.
        let broken = compare_benches(&base, &fresh, &["g"], 0.10, 0.35, Some("g/nope"));
        assert!(broken.rows.is_empty());
        assert_eq!(broken.missing.len(), 1);
    }

    #[test]
    fn json_rendering_is_well_formed() {
        let json = records_to_json(
            &[
                BenchRecord {
                    group: "g".into(),
                    label: "a\"b".into(),
                    mean_ns: 12,
                    best_ns: 10,
                    iters: 3,
                },
                BenchRecord {
                    group: "g".into(),
                    label: "plain".into(),
                    mean_ns: 99,
                    best_ns: 98,
                    iters: 1,
                },
            ],
            None,
        );
        assert!(json.starts_with("{\n  \"benches\": ["));
        assert!(json.contains("\"label\": \"a\\\"b\""));
        assert!(json.contains("\"mean_ns\": 99"));
        assert!(json.trim_end().ends_with('}'));
    }
}
