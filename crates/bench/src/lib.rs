//! # aba-bench — Criterion benchmarks
//!
//! One bench target per experiment family (see `benches/`), plus
//! simulator micro-benchmarks. The benches measure the wall-clock cost of
//! regenerating (scaled-down versions of) each table/figure so
//! performance regressions in the simulator or protocols show up in CI.
//!
//! This library crate only hosts small shared helpers for the bench
//! targets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use aba_harness::{run_scenario, Scenario, TrialResult};

/// Runs a scenario once and returns the result (thin wrapper so bench
/// targets don't need the harness API surface).
pub fn run_once(scenario: &Scenario) -> TrialResult {
    run_scenario(scenario)
}

/// A tiny standard scenario used by several micro-benchmarks.
pub fn small_scenario() -> Scenario {
    Scenario::new(32, 10)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helper_runs() {
        let r = run_once(&small_scenario());
        assert!(r.terminated);
    }
}
