//! # aba-bench — wall-clock benchmarks without external harnesses
//!
//! One bench target per experiment family (see `benches/`), plus
//! simulator micro-benchmarks. The benches measure the wall-clock cost
//! of regenerating (scaled-down versions of) each table/figure so
//! performance regressions in the simulator or protocols show up in CI.
//!
//! This workspace builds with no network access, so instead of Criterion
//! the targets use the tiny adaptive timing harness in this crate: each
//! measurement warms up, then runs enough iterations to fill a sampling
//! window (`ABA_BENCH_MS` milliseconds, default 300; set `ABA_BENCH_MS=0`
//! for a single-iteration smoke run in CI) and reports mean and best
//! iteration times.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use aba_harness::{Scenario, ScenarioBuilder, TrialResult};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Runs a scenario once through the facade and returns the result (thin
/// wrapper so bench targets don't need the harness API surface).
pub fn run_once(scenario: &Scenario) -> TrialResult {
    ScenarioBuilder::from_scenario(scenario.clone()).run()
}

/// A tiny standard scenario used by several micro-benchmarks.
pub fn small_scenario() -> Scenario {
    Scenario::new(32, 10)
}

/// The sampling window per measurement.
fn sample_window() -> Duration {
    let ms = std::env::var("ABA_BENCH_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(300);
    Duration::from_millis(ms)
}

/// A named group of measurements, printed as an aligned table.
pub struct Group {
    name: &'static str,
    window: Duration,
}

impl Group {
    /// Starts a group and prints its header; the sampling window comes
    /// from `ABA_BENCH_MS` (default 300 ms, `0` = single pass).
    pub fn new(name: &'static str) -> Self {
        Self::with_window(name, sample_window())
    }

    /// Starts a group with an explicit sampling window (no environment
    /// involved; `Duration::ZERO` = single pass).
    pub fn with_window(name: &'static str, window: Duration) -> Self {
        println!("\n== {name}");
        Group { name, window }
    }

    /// Measures `f` adaptively and prints one result line. The closure's
    /// return value is black-boxed so the work cannot be optimized away.
    pub fn bench<R>(&self, label: &str, mut f: impl FnMut() -> R) {
        // Warm-up: one untimed call (fills caches, triggers lazy init).
        black_box(f());
        let window = self.window;
        let mut iters = 0u64;
        let mut best = Duration::MAX;
        let started = Instant::now();
        loop {
            let t0 = Instant::now();
            black_box(f());
            let dt = t0.elapsed();
            best = best.min(dt);
            iters += 1;
            if started.elapsed() >= window {
                break;
            }
        }
        let mean = started.elapsed() / iters as u32;
        println!(
            "{:<18} {:<22} mean {:>12?}   best {:>12?}   ({} iters)",
            self.name, label, mean, best, iters
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helper_runs() {
        let r = run_once(&small_scenario());
        assert!(r.terminated);
    }

    #[test]
    fn bench_harness_smoke() {
        let g = Group::with_window("smoke", Duration::ZERO);
        let mut calls = 0u32;
        g.bench("counter", || {
            calls += 1;
            calls
        });
        // Warm-up + at least one timed iteration.
        assert!(calls >= 2);
    }
}
