//! Regression gate: diff a fresh `--json` bench run against the
//! committed baseline.
//!
//! ```text
//! cargo bench -p aba-bench --bench network -- --json BENCH_fresh.json
//! # bench binaries run with CWD = crates/bench, so the file lands there
//! cargo run -p aba-bench --bin compare -- \
//!     --baseline crates/bench/BENCH_baseline.json \
//!     --fresh crates/bench/BENCH_fresh.json
//! ```
//!
//! Compares best-iteration times on the pinned groups (default
//! `net_models` and `net_large`), warns on >10% slowdowns, and exits
//! non-zero on >35% — or when a pinned baseline measurement is missing
//! from the fresh run, so renaming a bench cannot silently disarm the
//! gate. Thresholds and groups are overridable (`--warn 0.2`,
//! `--fail 0.5`, `--groups net_models`).
//!
//! Pass `--normalize <group/label>` (CI uses
//! `net_models/pass-through`) to divide every measurement by that
//! control row from its own file before comparing: the gate then
//! checks the *relative cost shape*, which holds across machines —
//! required whenever the committed baseline and the fresh run come
//! from different hardware.

use aba_bench::{check_overhead, compare_benches, parse_bench_json};
use std::process::ExitCode;

struct Args {
    baseline: String,
    fresh: String,
    groups: Vec<String>,
    warn: f64,
    fail: f64,
    normalize: Option<String>,
    /// `probe:control:max_frac` in-run ratio checks on the fresh file
    /// (e.g. `oracle/lemma-suite:oracle/no-oracle:0.05`). Repeatable.
    overheads: Vec<(String, String, f64)>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        baseline: "crates/bench/BENCH_baseline.json".into(),
        fresh: "crates/bench/BENCH_fresh.json".into(),
        groups: vec!["net_models".into(), "net_large".into()],
        warn: 0.10,
        fail: 0.35,
        normalize: None,
        overheads: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().ok_or(format!("{flag} needs a value"));
        match flag.as_str() {
            "--baseline" => args.baseline = value()?,
            "--fresh" => args.fresh = value()?,
            "--groups" => args.groups = value()?.split(',').map(str::to_string).collect(),
            "--warn" => args.warn = value()?.parse().map_err(|e| format!("--warn: {e}"))?,
            "--fail" => args.fail = value()?.parse().map_err(|e| format!("--fail: {e}"))?,
            "--normalize" => args.normalize = Some(value()?),
            "--overhead" => {
                let spec = value()?;
                let parts: Vec<&str> = spec.split(':').collect();
                let [probe, control, frac] = parts[..] else {
                    return Err(format!(
                        "--overhead wants probe:control:max_frac, got {spec}"
                    ));
                };
                let frac: f64 = frac
                    .parse()
                    .map_err(|e| format!("--overhead max_frac: {e}"))?;
                args.overheads
                    .push((probe.to_string(), control.to_string(), frac));
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let load = |path: &str| -> Result<Vec<aba_bench::BenchRecord>, String> {
        let doc = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        parse_bench_json(&doc)
    };
    let (baseline, fresh) = match (load(&args.baseline), load(&args.fresh)) {
        (Ok(b), Ok(f)) => (b, f),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let groups: Vec<&str> = args.groups.iter().map(String::as_str).collect();
    let report = compare_benches(
        &baseline,
        &fresh,
        &groups,
        args.warn,
        args.fail,
        args.normalize.as_deref(),
    );

    if let Some(ctrl) = &args.normalize {
        println!("(times normalized to the {ctrl} control row of each run)");
    }
    println!(
        "{:<12} {:<24} {:>12} {:>12} {:>8}",
        "group", "label", "baseline", "fresh", "delta"
    );
    for row in &report.rows {
        println!(
            "{:<12} {:<24} {:>10}µs {:>10}µs {:>+7.1}%",
            row.group,
            row.label,
            row.base_ns / 1_000,
            row.fresh_ns / 1_000,
            row.delta * 100.0
        );
    }
    for key in &report.warnings {
        eprintln!(
            "warning: {key} regressed more than {:.0}%",
            args.warn * 100.0
        );
    }
    let mut failed = false;
    for key in &report.missing {
        eprintln!("error: baseline entry {key} missing from the fresh run");
        failed = true;
    }
    if report.rows.is_empty() && report.missing.is_empty() {
        eprintln!("error: no baseline measurements matched the pinned groups");
        failed = true;
    }
    for key in &report.failures {
        eprintln!(
            "error: {key} regressed more than {:.0}% vs the committed baseline",
            args.fail * 100.0
        );
        failed = true;
    }
    for (probe, control, max_frac) in &args.overheads {
        match check_overhead(&fresh, probe, control, *max_frac) {
            Ok(frac) => println!(
                "overhead gate OK: {probe} is {:+.1}% vs {control} (budget {:.0}%)",
                frac * 100.0,
                max_frac * 100.0
            ),
            Err(e) => {
                eprintln!("error: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!(
            "perf gate OK: {} measurements within {:.0}% of baseline",
            report.rows.len(),
            args.fail * 100.0
        );
        ExitCode::SUCCESS
    }
}
