//! # aba-sweep — campaign orchestration over scenario grids
//!
//! The paper's claims are probabilistic (agreement w.h.p., Las Vegas
//! round counts), so every meaningful result in this workspace comes
//! from sweeping scenario grids — protocol × adversary × network ×
//! `(n, t)` — and estimating proportions and tails. This crate turns a
//! declarative [`CampaignSpec`] into finished artifacts:
//!
//! * **Grid**: axes compose into cells via the `aba-harness` scenario
//!   types; each cell's seed derives from its canonical key, so
//!   reordering or extending axes never changes surviving cells'
//!   results ([`spec`]).
//! * **Execution**: one campaign-wide work-stealing pool schedules at
//!   `(cell, trial)` granularity through the harness's monomorphized
//!   dispatch — a slow Las Vegas cell no longer serializes the grid
//!   ([`executor`]).
//! * **Adaptive allocation**: a per-cell sequential stopping rule
//!   (Wilson half-width on agreement, or relative CI on mean rounds)
//!   gives cheap cells a handful of trials and interesting ones the
//!   budget ([`stop`]).
//! * **Artifacts**: streaming mergeable accumulators ([`summary`]),
//!   byte-deterministic CSV/JSON emission ([`artifact`]), and resumable
//!   checkpoints ([`checkpoint`]) — the same spec and seed produce
//!   byte-identical artifacts at any worker count.
//!
//! ```
//! use aba_harness::{AttackSpec, ProtocolSpec};
//! use aba_sweep::{CampaignSpec, StopRule};
//!
//! let result = CampaignSpec::new("demo")
//!     .sizes(&[(16, 5)])
//!     .protocols(&[ProtocolSpec::PaperLasVegas { alpha: 2.0 }])
//!     .attacks(&[AttackSpec::Benign, AttackSpec::FullAttack])
//!     .stop(StopRule::fixed(4))
//!     .run();
//! assert_eq!(result.cells.len(), 2);
//! assert_eq!(result.total_trials(), 8);
//! println!("{}", result.to_csv());
//! ```
//!
//! On top of the campaign engine sit the reproducible experiments
//! E1–E16 ([`experiments`]) and the `aba-experiments` binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod checkpoint;
pub mod executor;
pub mod experiments;
pub mod profiling;
pub mod spec;
pub mod stop;
pub mod summary;

pub use profiling::ExecProfiler;

pub use artifact::CampaignResult;
pub use executor::RunOptions;
pub use spec::{attack_key, info_key, network_key, protocol_key, CampaignSpec, CellSpec, RoundCap};
pub use stop::{StopDecision, StopRule};
pub use summary::{CellAccum, CellSummary};
