//! Campaign artifacts: one CSV row and one JSON object per cell, in
//! grid order.
//!
//! Emission is **byte-deterministic**: cells are written in grid order,
//! integers verbatim, floats with Rust's shortest-roundtrip `{}`
//! formatting. Combined with the executor's worker-count-independent
//! trial allocation, the same spec + seed produces byte-identical
//! artifacts at any parallelism. The JSON document doubles as the
//! resumable checkpoint (see [`crate::checkpoint`]): the raw integer
//! tallies it carries are exactly what [`super::CellSummary`] needs to
//! reproduce every derived value bit for bit.

use crate::summary::CellSummary;
use std::path::{Path, PathBuf};

/// Finished campaign: every cell summary, in grid order.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignResult {
    /// Campaign name (artifact file stem).
    pub name: String,
    /// Campaign master seed.
    pub seed: u64,
    /// Spec fingerprint (seed + stopping rule) for resume validation.
    pub fingerprint: String,
    /// Cell summaries, in grid order.
    pub cells: Vec<CellSummary>,
}

/// The CSV header emitted by [`CampaignResult::to_csv`].
pub const CSV_HEADER: &str = "key,protocol,attack,network,inputs,info,n,t,cell_seed,trials,\
     stopped,agree_rate,wilson_low,wilson_high,term_rate,correct_rate,mean_rounds,p50_rounds,\
     p95_rounds,min_rounds,max_rounds,mean_messages,mean_corruptions,delivery_rate,\
     mean_agree_fraction,oracle_violations";

impl CampaignResult {
    /// Total trials the campaign ran (what adaptive allocation saves).
    pub fn total_trials(&self) -> usize {
        self.cells.iter().map(|c| c.trials).sum()
    }

    /// Looks a cell up by its canonical key.
    pub fn cell(&self, key: &str) -> Option<&CellSummary> {
        self.cells.iter().find(|c| c.key == key)
    }

    /// The first cell matching a predicate (cells are in grid order).
    pub fn find(&self, pred: impl Fn(&CellSummary) -> bool) -> Option<&CellSummary> {
        self.cells.iter().find(|c| pred(c))
    }

    /// Renders the per-cell CSV (header + one row per cell, grid order).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(CSV_HEADER);
        out.push('\n');
        for c in &self.cells {
            let w = c.agreement_wilson();
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                c.key,
                c.protocol,
                c.attack,
                c.network,
                c.inputs,
                c.info,
                c.n,
                c.t,
                c.cell_seed,
                c.trials,
                c.stopped,
                c.agreement_rate(),
                w.wilson_low,
                w.wilson_high,
                c.termination_rate(),
                c.correct_rate(),
                c.mean_rounds(),
                c.p50_rounds,
                c.p95_rounds,
                c.min_rounds,
                c.max_rounds,
                c.mean_messages(),
                c.mean_corruptions(),
                c.delivery_rate(),
                c.mean_agree_fraction(),
                c.oracle_violations,
            ));
        }
        out
    }

    /// Renders the campaign JSON document (hand-rolled: offline
    /// workspace, no serde). One cell object per line inside the
    /// `"cells"` array — the same line-oriented shape `aba-bench` uses,
    /// parseable by [`crate::checkpoint::parse`].
    pub fn to_json(&self) -> String {
        let esc = esc_json;
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"campaign\": \"{}\",\n", esc(&self.name)));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!(
            "  \"fingerprint\": \"{}\",\n",
            esc(&self.fingerprint)
        ));
        out.push_str(&format!("  \"total_trials\": {},\n", self.total_trials()));
        out.push_str("  \"cells\": [");
        for (i, c) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let w = c.agreement_wilson();
            out.push_str(&format!(
                "\n    {{\"key\": \"{}\", \"protocol\": \"{}\", \"attack\": \"{}\", \
                 \"network\": \"{}\", \"inputs\": \"{}\", \"info\": \"{}\", \"n\": {}, \
                 \"t\": {}, \"cell_seed\": {}, \"trials\": {}, \"stopped\": \"{}\", \
                 \"agreements\": {}, \"terminations\": {}, \"corrects\": {}, \
                 \"sum_rounds\": {}, \"min_rounds\": {}, \"max_rounds\": {}, \
                 \"p50_rounds\": {}, \"p95_rounds\": {}, \"sum_messages\": {}, \
                 \"sum_delivered\": {}, \"sum_dropped\": {}, \"sum_delayed\": {}, \
                 \"sum_corruptions\": {}, \"oracle_violations\": {}, \
                 \"sum_agree_fraction\": {}, \
                 \"agree_rate\": {}, \"mean_rounds\": {}, \"wilson_low\": {}, \
                 \"wilson_high\": {}, \"delivery_rate\": {}}}",
                esc(&c.key),
                esc(&c.protocol),
                esc(&c.attack),
                esc(&c.network),
                esc(&c.inputs),
                esc(&c.info),
                c.n,
                c.t,
                c.cell_seed,
                c.trials,
                esc(&c.stopped),
                c.agreements,
                c.terminations,
                c.corrects,
                c.sum_rounds,
                c.min_rounds,
                c.max_rounds,
                c.p50_rounds,
                c.p95_rounds,
                c.sum_messages,
                c.sum_delivered,
                c.sum_dropped,
                c.sum_delayed,
                c.sum_corruptions,
                c.oracle_violations,
                json_f64(c.sum_agree_fraction),
                json_f64(c.agreement_rate()),
                json_f64(c.mean_rounds()),
                json_f64(w.wilson_low),
                json_f64(w.wilson_high),
                json_f64(c.delivery_rate()),
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Writes `{name}.csv` and `{name}.json` under `dir`, returning
    /// their paths. The JSON doubles as a resume checkpoint.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_artifacts(&self, dir: &Path) -> std::io::Result<(PathBuf, PathBuf)> {
        std::fs::create_dir_all(dir)?;
        let csv = dir.join(format!("{}.csv", self.name));
        std::fs::write(&csv, self.to_csv())?;
        let json = dir.join(format!("{}.json", self.name));
        std::fs::write(&json, self.to_json())?;
        Ok((csv, json))
    }
}

/// Renders one scenario as a self-contained JSON object (parameter-
/// carrying axis keys, seed, round cap) — everything needed to rebuild
/// the exact `ScenarioBuilder` call by hand.
fn render_scenario(s: &aba_harness::Scenario) -> String {
    use crate::spec::{attack_key, info_key, network_key, protocol_key};
    format!(
        "{{\"n\": {}, \"t\": {}, \"protocol\": \"{}\", \"attack\": \"{}\", \
         \"network\": \"{}\", \"inputs\": \"{}\", \"info\": \"{}\", \"seed\": {}, \
         \"max_rounds\": {}}}",
        s.n,
        s.t,
        esc_json(&protocol_key(&s.protocol)),
        esc_json(&attack_key(&s.attack)),
        esc_json(&network_key(&s.network)),
        s.inputs.name(),
        info_key(s.info),
        s.seed,
        s.max_rounds,
    )
}

fn render_violation(v: &aba_harness::Violation) -> String {
    format!(
        "{{\"oracle\": \"{}\", \"round\": {}, \"detail\": \"{}\"}}",
        esc_json(v.oracle),
        v.round,
        esc_json(&v.detail)
    )
}

/// Renders a self-contained failure repro artifact: the violating cell,
/// the scenario + seed + first-violation round as observed, and the
/// greedily shrunken scenario that still violates. When a provenance
/// trace of the shrunken scenario is supplied, the artifact also
/// carries the causal layer — the violation blame set and the decision
/// cone of every blamed target. Byte-deterministic given the inputs, so
/// sweep repro artifacts are identical at any worker count.
pub fn render_repro(
    cell_key: &str,
    repro: &aba_harness::Repro,
    shrunk_trace: Option<&aba_harness::ProvenancedTrial>,
) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"cell\": \"{}\",\n", esc_json(cell_key)));
    out.push_str(&format!(
        "  \"violations\": {},\n",
        repro.original_oracle.total
    ));
    if let Some(first) = repro.original_oracle.first() {
        out.push_str(&format!(
            "  \"first_violation\": {},\n",
            render_violation(first)
        ));
    }
    out.push_str(&format!(
        "  \"scenario\": {},\n",
        render_scenario(&repro.original)
    ));
    out.push_str(&format!(
        "  \"shrunk_scenario\": {},\n",
        render_scenario(&repro.shrunk)
    ));
    if let Some(first) = repro.shrunk_oracle.first() {
        out.push_str(&format!(
            "  \"shrunk_first_violation\": {},\n",
            render_violation(first)
        ));
    }
    if let Some(traced) = shrunk_trace {
        out.push_str(&format!("  \"blame\": {},\n", render_blame(traced)));
        out.push_str("  \"target_cones\": [");
        let mut first = true;
        for &target in &traced.blame.targets {
            if let Some(stats) = traced.provenance.explain(target) {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str("\n    ");
                out.push_str(&render_cone(&stats));
            }
        }
        out.push_str(if first { "],\n" } else { "\n  ],\n" });
    }
    out.push_str(&format!(
        "  \"shrink\": {{\"evaluated\": {}, \"accepted\": {}}}\n",
        repro.evaluated, repro.accepted
    ));
    out.push_str("}\n");
    out
}

/// Renders the blame set of a provenance-traced trial: who the minority
/// deciders were and which corrupted senders causally cover them.
fn render_blame(traced: &aba_harness::ProvenancedTrial) -> String {
    fn ids(v: &[aba_sim::NodeId]) -> String {
        let mut s = String::from("[");
        for (i, id) in v.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&id.index().to_string());
        }
        s.push(']');
        s
    }
    format!(
        "{{\"blamed\": {}, \"targets\": {}, \"uncovered\": {}}}",
        ids(&traced.blame.blamed),
        ids(&traced.blame.targets),
        ids(&traced.blame.uncovered)
    )
}

/// Renders one decision cone's statistics (see [`aba_obs::ConeStats`]).
fn render_cone(stats: &aba_obs::ConeStats) -> String {
    let output = match stats.output {
        Some(b) => b.to_string(),
        None => "null".to_string(),
    };
    format!(
        "{{\"node\": {}, \"round\": {}, \"output\": {}, \"decided\": {}, \
         \"width\": {}, \"depth\": {}, \"corrupted_ancestors\": {}, \
         \"influenced_by\": {}, \"influence_fraction\": {}}}",
        stats.node.index(),
        stats.round,
        output,
        stats.decided,
        stats.width,
        stats.depth,
        stats.corrupted_ancestors,
        stats.influenced_by,
        json_f64(stats.influence_fraction()),
    )
}

/// Escapes a string for a JSON literal in the line-oriented artifact.
/// Newlines and other control characters MUST be escaped — the
/// checkpoint parser is line-oriented, so a raw `\n` in a campaign
/// name would split its line and make an otherwise valid checkpoint
/// unparseable.
pub(crate) fn esc_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Shortest-roundtrip decimal for a finite f64 (`null` otherwise —
/// JSON has no NaN/Infinity; campaign sums are always finite).
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(key: &str, trials: usize) -> CellSummary {
        CellSummary {
            key: key.to_string(),
            protocol: "paper-lv(a2)".to_string(),
            attack: "full-attack".to_string(),
            network: "sync".to_string(),
            inputs: "split".to_string(),
            info: "rushing".to_string(),
            n: 16,
            t: 5,
            cell_seed: 99,
            trials,
            stopped: "fixed".to_string(),
            agreements: trials,
            terminations: trials,
            corrects: trials,
            sum_rounds: 10 * trials as u64,
            min_rounds: 10,
            max_rounds: 10,
            p50_rounds: 10,
            p95_rounds: 10,
            sum_messages: 100,
            sum_delivered: 100,
            sum_dropped: 0,
            sum_delayed: 0,
            sum_corruptions: 0,
            sum_agree_fraction: trials as f64,
            oracle_violations: 0,
        }
    }

    #[test]
    fn csv_has_header_and_grid_rows() {
        let r = CampaignResult {
            name: "t".to_string(),
            seed: 0,
            fingerprint: "fp".to_string(),
            cells: vec![summary("a", 4), summary("b", 8)],
        };
        let csv = r.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("key,protocol,"));
        assert!(lines[1].starts_with("a,paper-lv(a2),"));
        assert!(lines[2].starts_with("b,"));
        assert_eq!(r.total_trials(), 12);
        assert!(r.cell("b").is_some());
        assert!(r.cell("c").is_none());
        assert_eq!(r.find(|c| c.trials == 8).unwrap().key, "b");
    }

    #[test]
    fn artifacts_write_to_disk() {
        let dir = std::env::temp_dir().join("aba_sweep_artifact_test");
        let _ = std::fs::remove_dir_all(&dir);
        let r = CampaignResult {
            name: "demo".to_string(),
            seed: 3,
            fingerprint: "fp".to_string(),
            cells: vec![summary("a", 4)],
        };
        let (csv, json) = r.write_artifacts(&dir).unwrap();
        assert!(csv.ends_with("demo.csv") && csv.exists());
        assert!(json.ends_with("demo.json") && json.exists());
        let doc = std::fs::read_to_string(&json).unwrap();
        assert!(doc.contains("\"campaign\": \"demo\""));
        assert!(doc.contains("\"sum_rounds\": 40"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
