//! Streaming, mergeable per-cell accumulation and the finished
//! [`CellSummary`].
//!
//! [`CellAccum`] absorbs trials one at a time ([`CellAccum::push`]) and
//! combines with other accumulators ([`CellAccum::merge`]); summarizing
//! is **order-invariant** — integer tallies commute, the rounds
//! multiset is sorted before percentiles, and the floating-point
//! agreement fractions are summed in `total_cmp` order — so any merge
//! tree over the same trials produces the bit-identical summary. That
//! invariance (together with the stopping rule's prefix discipline) is
//! what makes campaign artifacts byte-identical regardless of worker
//! count.

use crate::spec::{attack_key, info_key, network_key, protocol_key, CellSpec};
use aba_analysis::stats::{percentile_nearest_rank, sum_value_ordered, Proportion};
use aba_harness::TrialResult;

/// Streaming accumulator over one cell's trials.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CellAccum {
    trials: usize,
    agreements: usize,
    terminations: usize,
    corrects: usize,
    rounds: Vec<u64>,
    agree_fractions: Vec<f64>,
    sum_messages: u64,
    sum_delivered: u64,
    sum_dropped: u64,
    sum_delayed: u64,
    sum_corruptions: u64,
    oracle_violations: usize,
}

impl CellAccum {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of trials absorbed so far.
    pub fn len(&self) -> usize {
        self.trials
    }

    /// Whether no trial has been absorbed yet.
    pub fn is_empty(&self) -> bool {
        self.trials == 0
    }

    /// Absorbs one trial (no oracles attached — zero violations).
    pub fn push(&mut self, r: &TrialResult) {
        self.push_checked(r, 0);
    }

    /// Absorbs one oracle-checked trial with its violation count.
    pub fn push_checked(&mut self, r: &TrialResult, violations: usize) {
        self.trials += 1;
        self.agreements += usize::from(r.agreement);
        self.terminations += usize::from(r.terminated);
        self.corrects += usize::from(r.correct());
        self.rounds.push(r.rounds);
        self.agree_fractions.push(r.agree_fraction);
        self.sum_messages += r.messages as u64;
        self.sum_delivered += r.delivered as u64;
        self.sum_dropped += r.dropped as u64;
        self.sum_delayed += r.delayed as u64;
        self.sum_corruptions += r.corruptions as u64;
        self.oracle_violations += violations;
    }

    /// Merges another accumulator into this one (associative; summaries
    /// are invariant under merge order).
    pub fn merge(&mut self, other: &CellAccum) {
        self.trials += other.trials;
        self.agreements += other.agreements;
        self.terminations += other.terminations;
        self.corrects += other.corrects;
        self.rounds.extend_from_slice(&other.rounds);
        self.agree_fractions
            .extend_from_slice(&other.agree_fractions);
        self.sum_messages += other.sum_messages;
        self.sum_delivered += other.sum_delivered;
        self.sum_dropped += other.sum_dropped;
        self.sum_delayed += other.sum_delayed;
        self.sum_corruptions += other.sum_corruptions;
        self.oracle_violations += other.oracle_violations;
    }

    /// Finalizes into a [`CellSummary`] for `cell`, recording which
    /// stopping criterion ended the cell.
    ///
    /// # Panics
    ///
    /// Panics on an empty accumulator — a finalized cell has run at
    /// least `min_trials ≥ 1` trials.
    pub fn summarize(&self, cell: &CellSpec, stopped: &str) -> CellSummary {
        assert!(self.trials > 0, "summarizing an empty cell");
        let mut rounds = self.rounds.clone();
        rounds.sort_unstable();
        let s = &cell.scenario;
        CellSummary {
            key: cell.key.clone(),
            protocol: protocol_key(&s.protocol),
            attack: attack_key(&s.attack),
            network: network_key(&s.network),
            inputs: s.inputs.name().to_string(),
            info: info_key(s.info).to_string(),
            n: s.n,
            t: s.t,
            cell_seed: s.seed,
            trials: self.trials,
            stopped: stopped.to_string(),
            agreements: self.agreements,
            terminations: self.terminations,
            corrects: self.corrects,
            sum_rounds: rounds.iter().sum(),
            min_rounds: rounds[0],
            max_rounds: rounds[rounds.len() - 1],
            p50_rounds: percentile_nearest_rank(&rounds, 50.0),
            p95_rounds: percentile_nearest_rank(&rounds, 95.0),
            sum_messages: self.sum_messages,
            sum_delivered: self.sum_delivered,
            sum_dropped: self.sum_dropped,
            sum_delayed: self.sum_delayed,
            sum_corruptions: self.sum_corruptions,
            sum_agree_fraction: sum_value_ordered(&self.agree_fractions),
            oracle_violations: self.oracle_violations,
        }
    }
}

/// Finished, mergeable-by-construction summary of one campaign cell.
///
/// Stores identity, integer tallies, and a single floating-point sum;
/// every rate and mean is derived on demand, so a summary
/// round-tripped through a checkpoint reproduces derived values (and
/// artifacts) bit for bit.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSummary {
    /// Canonical cell identity (see `CampaignSpec::cells`).
    pub key: String,
    /// Parameter-carrying protocol key.
    pub protocol: String,
    /// Parameter-carrying attack key.
    pub attack: String,
    /// Parameter-carrying network key.
    pub network: String,
    /// Input-assignment name.
    pub inputs: String,
    /// Information-model name.
    pub info: String,
    /// Network size.
    pub n: usize,
    /// Fault budget.
    pub t: usize,
    /// Derived cell seed (trial `i` ran at `cell_seed + i`).
    pub cell_seed: u64,
    /// Trials the stopping rule allocated.
    pub trials: usize,
    /// Which stopping criterion ended the cell.
    pub stopped: String,
    /// Trials with full honest agreement.
    pub agreements: usize,
    /// Trials terminating before the round cap.
    pub terminations: usize,
    /// Trials satisfying Definition 1 outright.
    pub corrects: usize,
    /// Total rounds across trials.
    pub sum_rounds: u64,
    /// Fastest trial.
    pub min_rounds: u64,
    /// Slowest trial.
    pub max_rounds: u64,
    /// Nearest-rank median rounds.
    pub p50_rounds: u64,
    /// Nearest-rank 95th-percentile rounds.
    pub p95_rounds: u64,
    /// Total messages emitted.
    pub sum_messages: u64,
    /// Total messages delivered.
    pub sum_delivered: u64,
    /// Total messages dropped by the network.
    pub sum_dropped: u64,
    /// Total delay events.
    pub sum_delayed: u64,
    /// Total corruptions performed.
    pub sum_corruptions: u64,
    /// Sum of per-trial honest-majority fractions.
    pub sum_agree_fraction: f64,
    /// Total lemma-oracle firings across the cell's trials (0 when the
    /// campaign ran without oracles).
    pub oracle_violations: usize,
}

impl CellSummary {
    /// Fraction of trials with full honest agreement.
    pub fn agreement_rate(&self) -> f64 {
        self.agreements as f64 / self.trials as f64
    }

    /// Fraction of trials terminating before the cap.
    pub fn termination_rate(&self) -> f64 {
        self.terminations as f64 / self.trials as f64
    }

    /// Fraction of trials satisfying Definition 1.
    pub fn correct_rate(&self) -> f64 {
        self.corrects as f64 / self.trials as f64
    }

    /// Mean rounds (censored trials count at the cap).
    pub fn mean_rounds(&self) -> f64 {
        self.sum_rounds as f64 / self.trials as f64
    }

    /// Mean messages per trial.
    pub fn mean_messages(&self) -> f64 {
        self.sum_messages as f64 / self.trials as f64
    }

    /// Mean corruptions per trial.
    pub fn mean_corruptions(&self) -> f64 {
        self.sum_corruptions as f64 / self.trials as f64
    }

    /// Fraction of emitted messages the network delivered (1.0 when
    /// nothing was emitted).
    pub fn delivery_rate(&self) -> f64 {
        if self.sum_messages == 0 {
            return 1.0;
        }
        self.sum_delivered as f64 / self.sum_messages as f64
    }

    /// Mean honest-majority agreement fraction.
    pub fn mean_agree_fraction(&self) -> f64 {
        self.sum_agree_fraction / self.trials as f64
    }

    /// Wilson 95% interval on the agreement probability.
    pub fn agreement_wilson(&self) -> Proportion {
        Proportion::of(self.agreements, self.trials).expect("trials ≥ 1")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aba_harness::{AttackSpec, Scenario};

    fn cell() -> CellSpec {
        CellSpec {
            index: 0,
            key: "test-cell".to_string(),
            scenario: Scenario::new(16, 5).with_attack(AttackSpec::Benign),
        }
    }

    fn trial(seed: u64, rounds: u64, agreement: bool, agree_fraction: f64) -> TrialResult {
        TrialResult {
            seed,
            rounds,
            terminated: true,
            agreement,
            validity: None,
            decision: None,
            corruptions: 2,
            messages: 100,
            bits: 0,
            max_edge_bits: 0,
            agree_fraction,
            delivered: 90,
            dropped: 10,
            delayed: 0,
            adversary: "test",
            downgraded: false,
            network: "sync",
        }
    }

    #[test]
    fn merge_tree_invariance_including_floats() {
        // Fractions chosen so naive left-to-right float summation
        // differs between orders; the accumulator must not care.
        let trials: Vec<TrialResult> = (0..9)
            .map(|i| trial(i, (i * i) % 7 + 1, i % 3 != 0, 1.0 / (i as f64 + 1.0)))
            .collect();
        let mut one_shot = CellAccum::new();
        for t in &trials {
            one_shot.push(t);
        }
        // Merge tree A: ((0..3) ∪ (3..6)) ∪ (6..9); tree B reversed.
        let chunk = |range: std::ops::Range<usize>| {
            let mut a = CellAccum::new();
            for t in &trials[range] {
                a.push(t);
            }
            a
        };
        let mut tree_a = chunk(0..3);
        tree_a.merge(&chunk(3..6));
        tree_a.merge(&chunk(6..9));
        let mut tree_b = chunk(6..9);
        let mut left = chunk(3..6);
        left.merge(&chunk(0..3));
        tree_b.merge(&left);
        let c = cell();
        let s0 = one_shot.summarize(&c, "fixed");
        assert_eq!(tree_a.summarize(&c, "fixed"), s0);
        assert_eq!(tree_b.summarize(&c, "fixed"), s0);
        assert_eq!(s0.trials, 9);
    }

    #[test]
    fn shuffled_push_order_is_bitwise_identical() {
        // Beyond merge-tree invariance: the float fraction sum must be
        // identical to the last bit under any push order.
        let trials: Vec<TrialResult> = (0..12)
            .map(|i| trial(i, i + 1, true, 1.0 / (i as f64 + 1.0)))
            .collect();
        let summarize_in = |order: &[usize]| {
            let mut a = CellAccum::new();
            for &i in order {
                a.push(&trials[i]);
            }
            a.summarize(&cell(), "fixed").sum_agree_fraction
        };
        let forward: Vec<usize> = (0..trials.len()).collect();
        let canonical = summarize_in(&forward);
        let mut reversed = forward.clone();
        reversed.reverse();
        assert_eq!(canonical.to_bits(), summarize_in(&reversed).to_bits());
        // Evens then odds — a worker-interleaving-shaped permutation.
        let interleaved: Vec<usize> = forward
            .iter()
            .filter(|i| *i % 2 == 0)
            .chain(forward.iter().filter(|i| *i % 2 == 1))
            .copied()
            .collect();
        assert_eq!(canonical.to_bits(), summarize_in(&interleaved).to_bits());
    }

    #[test]
    fn summary_derivations() {
        let mut a = CellAccum::new();
        for (i, (rounds, agree)) in [(10u64, true), (20, true), (30, false), (40, true)]
            .iter()
            .enumerate()
        {
            a.push(&trial(i as u64, *rounds, *agree, 1.0));
        }
        let s = a.summarize(&cell(), "agree-ci");
        assert_eq!(s.trials, 4);
        assert_eq!(s.agreements, 3);
        assert_eq!(s.stopped, "agree-ci");
        assert_eq!(s.mean_rounds(), 25.0);
        assert_eq!(s.p50_rounds, 20, "nearest-rank convention");
        assert_eq!(s.p95_rounds, 40);
        assert_eq!(s.min_rounds, 10);
        assert_eq!(s.max_rounds, 40);
        assert_eq!(s.agreement_rate(), 0.75);
        assert_eq!(s.delivery_rate(), 0.9);
        assert_eq!(s.mean_corruptions(), 2.0);
        let w = s.agreement_wilson();
        assert_eq!(w.successes, 3);
        assert_eq!(w.trials, 4);
        assert_eq!(s.protocol, "paper(a2)");
        assert_eq!(s.attack, "benign");
        assert_eq!(s.network, "sync");
    }

    #[test]
    #[should_panic(expected = "empty cell")]
    fn empty_accum_cannot_summarize() {
        let _ = CellAccum::new().summarize(&cell(), "fixed");
    }
}
