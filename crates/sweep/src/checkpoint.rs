//! Resumable checkpoints: parsing the campaign JSON artifact back into
//! cell summaries.
//!
//! The checkpoint *is* the JSON artifact ([`CampaignResult::to_json`](crate::artifact::CampaignResult::to_json)):
//! it carries the raw integer tallies plus the one floating-point sum,
//! which Rust prints in shortest-roundtrip form — so a summary survives
//! a save/load cycle bit for bit, and a resumed campaign emits
//! byte-identical artifacts. The parser is hand-rolled and
//! line-oriented (offline workspace, no serde), in the same style as
//! `aba-bench`'s `parse_bench_json`: one cell object per line.
//!
//! Resume safety: the executor only reuses a checkpointed cell when the
//! campaign [`fingerprint`](crate::CampaignSpec::fingerprint) (master
//! seed + stopping rule) matches and the cell's key and derived seed
//! are unchanged — anything else re-runs from scratch.

use crate::summary::CellSummary;
use std::path::Path;

/// A parsed checkpoint document.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Campaign name recorded at save time.
    pub name: String,
    /// Spec fingerprint recorded at save time.
    pub fingerprint: String,
    /// Finalized cell summaries.
    pub cells: Vec<CellSummary>,
}

/// Extracts a `"key": "value"` string field, undoing the writer's
/// escaping (`crate::artifact::esc_json`).
fn str_field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\": \"");
    let start = line.find(&tag)? + tag.len();
    let mut out = String::new();
    let mut chars = line[start..].chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                c => out.push(c),
            },
            c => out.push(c),
        }
    }
    None
}

/// Extracts a `"key": 123` unsigned integer field.
fn int_field(line: &str, key: &str) -> Option<u64> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag)? + tag.len();
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Extracts a `"key": 1.25` float field (shortest-roundtrip decimal;
/// parsing recovers the exact bits the writer printed).
fn f64_field(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag)? + tag.len();
    let lit: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
        .collect();
    lit.parse().ok()
}

/// Parses a checkpoint document produced by [`CampaignResult::to_json`](crate::artifact::CampaignResult::to_json).
///
/// # Errors
///
/// Returns a message naming the first malformed line.
pub fn parse(doc: &str) -> Result<Checkpoint, String> {
    let mut name = None;
    let mut fingerprint = None;
    let mut cells = Vec::new();
    for line in doc.lines() {
        let line = line.trim().trim_end_matches(',');
        if name.is_none() && line.starts_with("\"campaign\"") {
            name = str_field(&format!("{{{line}}}"), "campaign");
            continue;
        }
        if fingerprint.is_none() && line.starts_with("\"fingerprint\"") {
            fingerprint = str_field(&format!("{{{line}}}"), "fingerprint");
            continue;
        }
        if !line.starts_with('{') || !line.contains("\"key\"") {
            continue;
        }
        let parse_cell = || -> Option<CellSummary> {
            Some(CellSummary {
                key: str_field(line, "key")?,
                protocol: str_field(line, "protocol")?,
                attack: str_field(line, "attack")?,
                network: str_field(line, "network")?,
                inputs: str_field(line, "inputs")?,
                info: str_field(line, "info")?,
                n: int_field(line, "n")? as usize,
                t: int_field(line, "t")? as usize,
                cell_seed: int_field(line, "cell_seed")?,
                trials: int_field(line, "trials")? as usize,
                stopped: str_field(line, "stopped")?,
                agreements: int_field(line, "agreements")? as usize,
                terminations: int_field(line, "terminations")? as usize,
                corrects: int_field(line, "corrects")? as usize,
                sum_rounds: int_field(line, "sum_rounds")?,
                min_rounds: int_field(line, "min_rounds")?,
                max_rounds: int_field(line, "max_rounds")?,
                p50_rounds: int_field(line, "p50_rounds")?,
                p95_rounds: int_field(line, "p95_rounds")?,
                sum_messages: int_field(line, "sum_messages")?,
                sum_delivered: int_field(line, "sum_delivered")?,
                sum_dropped: int_field(line, "sum_dropped")?,
                sum_delayed: int_field(line, "sum_delayed")?,
                sum_corruptions: int_field(line, "sum_corruptions")?,
                sum_agree_fraction: f64_field(line, "sum_agree_fraction")?,
                // Absent in pre-oracle checkpoints: default to 0 (such
                // files only match oracle-free fingerprints anyway).
                oracle_violations: int_field(line, "oracle_violations").unwrap_or(0) as usize,
            })
        };
        cells.push(parse_cell().ok_or_else(|| format!("malformed checkpoint cell: {line}"))?);
    }
    Ok(Checkpoint {
        name: name.ok_or("checkpoint missing \"campaign\" field")?,
        fingerprint: fingerprint.ok_or("checkpoint missing \"fingerprint\" field")?,
        cells,
    })
}

/// Loads and parses a checkpoint file. `Ok(None)` when the file does
/// not exist (a fresh campaign), `Err` when it exists but is
/// unreadable or malformed.
///
/// # Errors
///
/// Returns a message for IO failures and parse failures.
pub fn load(path: &Path) -> Result<Option<Checkpoint>, String> {
    if !path.exists() {
        return Ok(None);
    }
    let doc = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    parse(&doc).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::CampaignResult;

    fn summary(key: &str) -> CellSummary {
        CellSummary {
            key: key.to_string(),
            protocol: "chor-coan(b1.5)".to_string(),
            attack: "crash(2)".to_string(),
            network: "lossy(0.1)".to_string(),
            inputs: "split".to_string(),
            info: "rushing".to_string(),
            n: 31,
            t: 10,
            cell_seed: 0xDEAD_BEEF_u64,
            trials: 17,
            stopped: "rounds-ci".to_string(),
            agreements: 15,
            terminations: 16,
            corrects: 15,
            sum_rounds: 431,
            min_rounds: 8,
            max_rounds: 96,
            p50_rounds: 20,
            p95_rounds: 96,
            sum_messages: 123_456,
            sum_delivered: 120_000,
            sum_dropped: 3_456,
            sum_delayed: 0,
            sum_corruptions: 34,
            // A value with a long mantissa: must survive bit for bit.
            sum_agree_fraction: 16.333333333333332,
            oracle_violations: 3,
        }
    }

    #[test]
    fn checkpoint_roundtrips_bit_for_bit() {
        let result = CampaignResult {
            name: "round\"trip".to_string(),
            seed: 9,
            fingerprint: "seed9|min8|batch8|max64|agree0.1|rounds0.1".to_string(),
            cells: vec![summary("a|b|c"), summary("d|e|f")],
        };
        let parsed = parse(&result.to_json()).expect("parses");
        assert_eq!(parsed.name, result.name);
        assert_eq!(parsed.fingerprint, result.fingerprint);
        assert_eq!(parsed.cells, result.cells);
        assert_eq!(
            parsed.cells[0].sum_agree_fraction.to_bits(),
            result.cells[0].sum_agree_fraction.to_bits(),
            "float sum must round-trip exactly"
        );
    }

    #[test]
    fn control_characters_in_names_round_trip() {
        // The parser is line-oriented: a raw newline in the campaign
        // name must not split its line (it is escaped on write and
        // decoded on parse).
        let result = CampaignResult {
            name: "nightly\nrun\twith \"quotes\" and \\slashes\\".to_string(),
            seed: 1,
            fingerprint: "fp\u{1}".to_string(),
            cells: vec![summary("k\ney")],
        };
        let parsed = parse(&result.to_json()).expect("parses despite control chars");
        assert_eq!(parsed.name, result.name);
        assert_eq!(parsed.fingerprint, result.fingerprint);
        assert_eq!(parsed.cells[0].key, "k\ney");
    }

    #[test]
    fn missing_file_is_a_fresh_start() {
        let path = std::env::temp_dir().join("aba_sweep_no_such_checkpoint.json");
        let _ = std::fs::remove_file(&path);
        assert_eq!(load(&path), Ok(None));
    }

    #[test]
    fn malformed_cell_is_an_error() {
        let doc = "{\n\"campaign\": \"x\",\n\"fingerprint\": \"y\",\n{\"key\": \"broken\"}\n}";
        assert!(parse(doc).unwrap_err().contains("malformed"));
    }

    #[test]
    fn missing_header_is_an_error() {
        assert!(parse("{}").unwrap_err().contains("campaign"));
    }
}
