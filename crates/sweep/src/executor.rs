//! The campaign-wide work-stealing executor.
//!
//! One shared task queue schedules at **(cell, trial)** granularity
//! across the whole grid: workers claim individual trials, so a slow
//! Las Vegas cell occupies at most a few cores while the rest of the
//! grid drains — unlike a per-cell `run_batch` loop, where every cell
//! is a barrier and one heavy tail idles the machine.
//!
//! Determinism contract (pinned by `tests/campaign.rs`): the set of
//! trials each cell runs, every summary, and the emitted artifact
//! bytes are **independent of worker count and completion order**.
//! Three properties compose to give this:
//!
//! 1. trial `i` of a cell always runs at `cell_seed + i`, regardless of
//!    which worker claims it;
//! 2. the stopping rule is consulted only at batch boundaries, on the
//!    complete ordered prefix of the cell's trials;
//! 3. summaries fold trials in index order (and the accumulator is
//!    merge-order invariant besides).

use crate::artifact::CampaignResult;
use crate::checkpoint;
use crate::profiling::ExecProfiler;
use crate::spec::{CampaignSpec, CellSpec};
use crate::stop::StopDecision;
use crate::summary::{CellAccum, CellSummary};
use aba_harness::TrialResult;
use aba_obs::log as obslog;
use aba_obs::{chrome_trace, collapsed_from_log, EventKind, EventLog, MetricsRegistry};
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::{Condvar, Mutex};

/// Execution options for [`CampaignSpec::run_with`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunOptions {
    /// Worker threads (`0` = all available cores).
    pub workers: usize,
    /// Checkpoint file: loaded (if present and compatible) before the
    /// run to skip finalized cells, rewritten after every cell
    /// finalization and at completion. The file is the campaign JSON
    /// artifact itself.
    pub checkpoint: Option<PathBuf>,
    /// Where to write per-cell failure repro artifacts. When the
    /// campaign runs with oracles and a cell records violations, the
    /// finalizing worker shrinks the first violating trial
    /// (`aba_harness::shrink_violation`) and writes a self-contained
    /// repro JSON here through the same atomic temp+rename path as
    /// checkpoints. Artifact bytes are worker-count independent.
    pub repro_dir: Option<PathBuf>,
    /// Where to write the **deterministic** observability artifacts
    /// (`{name}.events.log`, `{name}.metrics.txt`, `{name}.trace.json`,
    /// `{name}.collapsed.txt`). When set, every trial runs with the
    /// `aba-obs` event probe attached; the campaign log splices
    /// per-trial logs in grid/trial order, so all four files are
    /// byte-identical at any worker count (pinned by
    /// `tests/obs_campaign.rs`). Trial results and the ordinary
    /// artifacts are unaffected — probes observe only.
    pub obs_dir: Option<PathBuf>,
    /// Where to write the **deterministic** causal-provenance artifacts
    /// (`{name}.provenance.txt` — per-node decision cones, traffic
    /// profiles, and blame lines for every trial in grid/trial order —
    /// plus `{name}-cell{NNN}.cone.dot` / `.cone.jsonl` causal graphs
    /// for the first violating trial of each violating cell). When set,
    /// every trial runs with the `aba-obs` provenance probe attached
    /// (and, when `obs_dir` is also set, feeds the same run's event log
    /// and metrics into the observability artifacts — the `prov.*`
    /// histograms appear in `{name}.metrics.txt`). All bytes are
    /// worker-count independent (pinned by `tests/provenance_sweep.rs`).
    /// Trial results and the ordinary artifacts are unaffected.
    pub provenance_dir: Option<PathBuf>,
    /// Where to write the **wall-clock** timing artifacts
    /// (`{name}.timing.csv`, `{name}.profile.json`,
    /// `{name}.timing.collapsed.txt` — see [`crate::profiling`]).
    /// Explicitly non-deterministic; never mixed into the
    /// byte-deterministic artifacts. `None` (the default) means no
    /// clocks are read at all.
    pub profile_dir: Option<PathBuf>,
    /// In-round worker threads forwarded into every trial's engine
    /// (`0` = keep each scenario's own setting). Trial results and all
    /// artifacts are byte-identical at any value — this only trades
    /// wall-clock for cores on large `n`. Orthogonal to `workers`,
    /// which parallelizes *across* trials.
    pub threads: usize,
}

/// Per-cell mutable state behind the queue lock.
struct CellRun {
    /// Trial results (with the trial's oracle-violation count), indexed
    /// by trial number; `None` = in flight.
    results: Vec<Option<(TrialResult, usize)>>,
    /// Per-trial deterministic observability capture, parallel to
    /// `results` (populated only when `RunOptions::obs_dir` is set;
    /// retained through finalization for campaign assembly).
    obs: Vec<Option<(EventLog, MetricsRegistry)>>,
    /// Per-trial provenance capture, parallel to `results` (populated
    /// only when `RunOptions::provenance_dir` is set; retained through
    /// finalization for campaign assembly).
    prov: Vec<Option<ProvCapture>>,
    /// Trials scheduled so far (prefix length once the batch drains).
    scheduled: usize,
    /// Scheduled trials not yet recorded.
    outstanding: usize,
    /// Set exactly once, when the stopping rule fires.
    summary: Option<CellSummary>,
}

/// What one provenance-traced trial leaves behind for the campaign
/// artifacts: the per-node summary text (with the blame line when a
/// disagreement was traced), the oracle-violation tally, and — for
/// violating trials only — the rendered causal graphs.
struct ProvCapture {
    summary: String,
    violations: usize,
    /// `(dot, jsonl)` causal-graph exports, rendered at capture time so
    /// the probe itself need not be retained.
    graphs: Option<(String, String)>,
}

/// Queue state shared by all workers.
struct State {
    queue: VecDeque<(usize, usize)>,
    runs: Vec<CellRun>,
    /// Cells not yet finalized; workers exit when this reaches 0.
    open: usize,
    /// Set when a trial panicked: every worker drains out immediately
    /// (the panic itself propagates through the thread scope).
    aborted: bool,
}

/// Atomic file write: creates the parent directory, writes to a sibling
/// temp file and renames it over the target — the file on disk is
/// always either the old content or the new one; a crash mid-write can
/// never leave a torn document. Shared by checkpoints and repro
/// artifacts.
pub(crate) fn atomic_write(path: &std::path::Path, contents: &str) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

/// Best-effort checkpoint write via [`atomic_write`]; reports failures
/// to stderr, never fails the campaign (the in-memory result is
/// authoritative).
fn write_checkpoint(path: &std::path::Path, result: &CampaignResult) {
    if let Err(e) = atomic_write(path, &result.to_json()) {
        obslog::warn(&format!(
            "warning: cannot write campaign checkpoint {}: {e}",
            path.display()
        ));
    }
}

/// Maintains the finalized-cell list and serializes mid-run checkpoint
/// writes *outside* the scheduler lock.
///
/// A finalizing worker clones exactly one `CellSummary` under the
/// scheduler lock and hands it here; the sink keeps the accumulated
/// grid (in grid order), renders the JSON, and performs the file IO
/// under its own lock — so neither the O(cells) snapshot nor the disk
/// write ever stalls trial claiming. Cells only ever fill in, so each
/// write strictly extends the previous one and the file on disk only
/// moves forward.
struct CheckpointSink {
    path: std::path::PathBuf,
    name: String,
    seed: u64,
    fingerprint: String,
    cells: Mutex<Vec<Option<CellSummary>>>,
}

impl CheckpointSink {
    fn record(&self, index: usize, summary: CellSummary) {
        let mut cells = self.cells.lock().expect("checkpoint sink lock");
        cells[index] = Some(summary);
        let snapshot = CampaignResult {
            name: self.name.clone(),
            seed: self.seed,
            fingerprint: self.fingerprint.clone(),
            cells: cells.iter().flatten().cloned().collect(),
        };
        // Write while still holding the sink lock: writes stay ordered,
        // and only other *finalizing* workers ever wait here.
        write_checkpoint(&self.path, &snapshot);
    }
}

/// Unblocks the campaign when a trial panics (see `worker_loop`).
struct AbortOnPanic<'a> {
    state: &'a Mutex<State>,
    idle: &'a Condvar,
    armed: bool,
}

impl Drop for AbortOnPanic<'_> {
    fn drop(&mut self) {
        if self.armed {
            if let Ok(mut st) = self.state.lock() {
                st.aborted = true;
                st.queue.clear();
            }
            self.idle.notify_all();
        }
    }
}

impl CampaignSpec {
    /// Runs the campaign on all cores (no checkpoint).
    ///
    /// # Panics
    ///
    /// Panics on an invalid spec (empty axes, bad stopping schedule,
    /// or a cell violating a protocol precondition such as
    /// `n ≥ 3t + 1`).
    pub fn run(&self) -> CampaignResult {
        self.run_with(&RunOptions::default())
    }

    /// Runs the campaign with explicit worker count and optional
    /// resumable checkpoint.
    ///
    /// Checkpoint reuse is conservative: a stored cell is adopted only
    /// when the campaign fingerprint (master seed + stopping rule), the
    /// cell key, and the derived cell seed all match; otherwise the
    /// cell re-runs. Checkpoint *write* failures are reported to stderr
    /// but never fail the campaign — resumability is best-effort, the
    /// in-memory result is authoritative.
    ///
    /// # Panics
    ///
    /// Same as [`CampaignSpec::run`], plus a malformed (not missing)
    /// checkpoint file.
    pub fn run_with(&self, opts: &RunOptions) -> CampaignResult {
        self.stop.validate();
        let cells = self.cells();
        let fingerprint = self.fingerprint();

        // Adopt compatible finalized cells from the checkpoint.
        let restored: Vec<Option<CellSummary>> = match &opts.checkpoint {
            Some(path) => {
                let stored = checkpoint::load(path)
                    .unwrap_or_else(|e| panic!("unusable checkpoint {}: {e}", path.display()));
                let stored_cells = stored
                    .filter(|c| c.fingerprint == fingerprint)
                    .map(|c| c.cells)
                    .unwrap_or_default();
                cells
                    .iter()
                    .map(|cell| {
                        stored_cells
                            .iter()
                            .find(|s| s.key == cell.key && s.cell_seed == cell.scenario.seed)
                            .cloned()
                    })
                    .collect()
            }
            None => vec![None; cells.len()],
        };

        let mut state = State {
            queue: VecDeque::new(),
            runs: Vec::with_capacity(cells.len()),
            open: 0,
            aborted: false,
        };
        let obs_on = opts.obs_dir.is_some();
        let prov_on = opts.provenance_dir.is_some();
        let first_batch = self.stop.min_trials.min(self.stop.max_trials);
        for (i, restored) in restored.into_iter().enumerate() {
            let done = restored.is_some();
            state.runs.push(CellRun {
                results: if done {
                    Vec::new()
                } else {
                    vec![None; first_batch]
                },
                obs: if done || !obs_on {
                    Vec::new()
                } else {
                    vec![None; first_batch]
                },
                prov: if done || !prov_on {
                    Vec::new()
                } else {
                    (0..first_batch).map(|_| None).collect()
                },
                scheduled: if done { 0 } else { first_batch },
                outstanding: if done { 0 } else { first_batch },
                summary: restored,
            });
            if !done {
                state.open += 1;
                for t in 0..first_batch {
                    state.queue.push_back((i, t));
                }
            }
        }

        // Cap workers at the campaign's *potential* task count (open
        // cells × trial cap), not the initial queue length: adaptive
        // rules with a small min_trials enqueue bigger batches later
        // and must still be able to use the whole machine.
        let potential_tasks = state.open.saturating_mul(self.stop.max_trials);
        let workers = if opts.workers == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4)
        } else {
            opts.workers
        }
        .min(potential_tasks.max(1));

        let any_open = state.open > 0;
        // Pre-seed the sink with checkpoint-restored cells so mid-run
        // snapshots never lose them.
        let sink = opts.checkpoint.as_ref().map(|path| CheckpointSink {
            path: path.clone(),
            name: self.name.clone(),
            seed: self.seed,
            fingerprint: fingerprint.clone(),
            cells: Mutex::new(state.runs.iter().map(|r| r.summary.clone()).collect()),
        });
        // The timing channel is constructed only when asked for: an
        // unprofiled campaign reads no clocks (see crate::profiling).
        let profiler = opts.profile_dir.as_ref().map(|_| ExecProfiler::new());
        let state = Mutex::new(state);
        let idle = Condvar::new();
        if any_open {
            std::thread::scope(|scope| {
                for worker in 0..workers {
                    let state = &state;
                    let idle = &idle;
                    let cells = &cells;
                    let sink = sink.as_ref();
                    let repro_dir = opts.repro_dir.as_deref();
                    let profiler = profiler.as_ref();
                    let threads = opts.threads;
                    scope.spawn(move || {
                        self.worker_loop(
                            cells, state, idle, sink, repro_dir, obs_on, prov_on, profiler, worker,
                            threads,
                        )
                    });
                }
            });
        }

        let runs = state.into_inner().expect("no worker panicked").runs;
        if let Some(dir) = &opts.obs_dir {
            self.write_obs_artifacts(dir, &cells, &runs);
        }
        if let Some(dir) = &opts.provenance_dir {
            self.write_provenance_artifacts(dir, &cells, &runs);
        }
        if let (Some(dir), Some(prof)) = (&opts.profile_dir, &profiler) {
            prof.write_artifacts(dir, &self.name);
        }
        let result = CampaignResult {
            name: self.name.clone(),
            seed: self.seed,
            fingerprint,
            cells: runs
                .into_iter()
                .map(|r| r.summary.expect("all cells finalized"))
                .collect(),
        };
        if let Some(path) = &opts.checkpoint {
            write_checkpoint(path, &result);
        }
        result
    }

    /// Splices the per-trial deterministic captures into one campaign
    /// event log and merged registry — cells in grid order, trials in
    /// index order, checkpoint-adopted cells marked with a `note` — and
    /// writes the four deterministic observability artifacts. Splice
    /// order is a function of the spec alone, so the bytes are
    /// worker-count independent.
    fn write_obs_artifacts(&self, dir: &std::path::Path, cells: &[CellSpec], runs: &[CellRun]) {
        let mut events = EventLog::new();
        let mut registry = MetricsRegistry::new();
        events.push(EventKind::CampaignStart {
            name: self.name.clone(),
        });
        for (cell, run) in cells.iter().zip(runs) {
            events.push(EventKind::CellStart {
                key: cell.key.clone(),
            });
            if run.obs.iter().flatten().next().is_none() {
                events.push(EventKind::Note {
                    text: format!(
                        "cell {} adopted from checkpoint; trials not re-observed",
                        cell.key
                    ),
                });
            }
            for (log, metrics) in run.obs.iter().flatten() {
                events.absorb(log);
                registry.merge(metrics);
            }
            events.push(EventKind::CellEnd {
                key: cell.key.clone(),
            });
        }
        for (suffix, contents) in [
            ("events.log", events.render()),
            ("metrics.txt", registry.render()),
            ("trace.json", chrome_trace(&events)),
            ("collapsed.txt", collapsed_from_log(&events)),
        ] {
            let path = dir.join(format!("{}.{suffix}", self.name));
            if let Err(e) = atomic_write(&path, &contents) {
                obslog::warn(&format!(
                    "warning: cannot write observability artifact {}: {e}",
                    path.display()
                ));
            }
        }
    }

    /// Splices the per-trial provenance summaries into one campaign
    /// text artifact — cells in grid order, trials in index order,
    /// checkpoint-adopted cells marked — and writes the causal-graph
    /// exports of each violating cell's first violating trial. Like the
    /// obs artifacts, the bytes are a function of the spec alone.
    fn write_provenance_artifacts(
        &self,
        dir: &std::path::Path,
        cells: &[CellSpec],
        runs: &[CellRun],
    ) {
        let mut out = String::new();
        for (cell, run) in cells.iter().zip(runs) {
            out.push_str(&format!("== cell {} ==\n", cell.key));
            if run.prov.iter().flatten().next().is_none() {
                out.push_str("(adopted from checkpoint; trials not re-traced)\n");
            }
            for (ti, cap) in run.prov.iter().enumerate() {
                let Some(cap) = cap else { continue };
                out.push_str(&format!("-- trial {ti} --\n"));
                out.push_str(&cap.summary);
            }
        }
        let path = dir.join(format!("{}.provenance.txt", self.name));
        if let Err(e) = atomic_write(&path, &out) {
            obslog::warn(&format!(
                "warning: cannot write provenance artifact {}: {e}",
                path.display()
            ));
        }
        for (cell, run) in cells.iter().zip(runs) {
            // First violating trial in index order — worker-count
            // independent because the prefix is complete.
            let Some((dot, jsonl)) = run
                .prov
                .iter()
                .flatten()
                .find(|c| c.violations > 0)
                .and_then(|c| c.graphs.as_ref())
            else {
                continue;
            };
            for (suffix, contents) in [("cone.dot", dot), ("cone.jsonl", jsonl)] {
                let path = dir.join(format!("{}-cell{:03}.{suffix}", self.name, cell.index));
                if let Err(e) = atomic_write(&path, contents) {
                    obslog::warn(&format!(
                        "warning: cannot write causal graph {}: {e}",
                        path.display()
                    ));
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)] // private fan-out of RunOptions; a param struct would just restate it
    fn worker_loop(
        &self,
        cells: &[CellSpec],
        state: &Mutex<State>,
        idle: &Condvar,
        sink: Option<&CheckpointSink>,
        repro_dir: Option<&std::path::Path>,
        obs_on: bool,
        prov_on: bool,
        profiler: Option<&ExecProfiler>,
        worker: usize,
        threads: usize,
    ) {
        loop {
            // Claim the next (cell, trial) task, or exit when the whole
            // campaign has drained (or a sibling's trial panicked).
            let ((ci, ti), depth) = {
                let mut st = state.lock().expect("state lock");
                loop {
                    if st.aborted {
                        return;
                    }
                    if let Some(task) = st.queue.pop_front() {
                        break (task, st.queue.len());
                    }
                    if st.open == 0 {
                        return;
                    }
                    st = idle.wait(st).expect("state lock");
                }
            };
            if let Some(p) = profiler {
                p.record_claim(worker, depth);
            }

            // Run the trial outside the lock: this is the monomorphized
            // protocol × adversary × network dispatch from aba-harness.
            // The abort guard keeps a panicking trial (e.g. an invalid
            // (n, t) for the cell's protocol) from deadlocking waiting
            // workers: on unwind it raises the abort flag and wakes
            // everyone, so the scope joins and the panic propagates.
            let mut abort = AbortOnPanic {
                state,
                idle,
                armed: true,
            };
            let mut scenario = cells[ci].scenario.clone();
            scenario.seed = scenario.seed.wrapping_add(ti as u64);
            if threads != 0 {
                scenario.threads = threads;
            }
            let timer = profiler.map(|p| p.trial_timer());
            // With observation or provenance on, the trial runs through
            // the probe-instrumented drive; the result and (when armed)
            // the violation tally are bit-identical to the
            // uninstrumented paths, so summaries and the ordinary
            // artifacts don't depend on either.
            let (outcome, observed, prov) = if prov_on {
                let o = aba_harness::provenance_scenario(&scenario);
                let violations = if self.oracles { o.oracle.total } else { 0 };
                let capture = ProvCapture {
                    summary: o.summary(),
                    violations,
                    graphs: (violations > 0).then(|| (o.dot_graph(), o.jsonl_graph())),
                };
                let observed = obs_on.then_some((o.events, o.metrics));
                ((o.result, violations), observed, Some(capture))
            } else if obs_on {
                let o = aba_harness::observe_scenario(&scenario);
                let violations = if self.oracles { o.oracle.total } else { 0 };
                ((o.result, violations), Some((o.events, o.metrics)), None)
            } else if self.oracles {
                let checked = aba_harness::check_scenario(&scenario);
                ((checked.result, checked.oracle.total), None, None)
            } else {
                ((aba_harness::run_scenario(&scenario), 0), None, None)
            };
            abort.armed = false;
            if let (Some(p), Some(t)) = (profiler, timer) {
                p.record_trial(&cells[ci].key, worker, t);
            }

            let mut st = state.lock().expect("state lock");
            if st.aborted {
                return;
            }
            {
                let run = &mut st.runs[ci];
                run.results[ti] = Some(outcome);
                if let Some(obs) = observed {
                    run.obs[ti] = Some(obs);
                }
                if let Some(p) = prov {
                    run.prov[ti] = Some(p);
                }
                run.outstanding -= 1;
                if run.outstanding > 0 {
                    continue;
                }
            }
            // Batch boundary: the prefix 0..scheduled is complete.
            // Consult the stopping rule and either extend the cell or
            // finalize it.
            let decision = {
                let run = &st.runs[ci];
                let prefix: Vec<TrialResult> = run
                    .results
                    .iter()
                    .map(|r| r.clone().expect("prefix complete").0)
                    .collect();
                self.stop.decide(&prefix)
            };
            // A finalized cell clones its one summary under the lock
            // and persists after releasing (see CheckpointSink); a
            // violating cell additionally notes its first violating
            // trial for the repro artifact (the complete ordered prefix
            // makes "first" worker-count independent).
            let mut pending_checkpoint = None;
            let mut pending_repro = None;
            match decision {
                StopDecision::Continue { next_batch } => {
                    let start = {
                        let run = &mut st.runs[ci];
                        let start = run.scheduled;
                        run.scheduled += next_batch;
                        run.outstanding = next_batch;
                        run.results.resize(run.scheduled, None);
                        if obs_on {
                            run.obs.resize(run.scheduled, None);
                        }
                        if prov_on {
                            run.prov.resize_with(run.scheduled, || None);
                        }
                        start
                    };
                    for t in start..start + next_batch {
                        st.queue.push_back((ci, t));
                    }
                }
                StopDecision::Stop { reason } => {
                    let summary = {
                        let run = &st.runs[ci];
                        let mut accum = CellAccum::new();
                        for r in &run.results {
                            let (result, violations) = r.as_ref().expect("prefix complete");
                            accum.push_checked(result, *violations);
                        }
                        accum.summarize(&cells[ci], reason)
                    };
                    if repro_dir.is_some() && summary.oracle_violations > 0 {
                        let run = &st.runs[ci];
                        let first_violating = run
                            .results
                            .iter()
                            .position(|r| r.as_ref().is_some_and(|(_, v)| *v > 0))
                            .expect("a violation was tallied");
                        pending_repro = Some((ci, first_violating));
                    }
                    let run = &mut st.runs[ci];
                    if sink.is_some() {
                        pending_checkpoint = Some((ci, summary.clone()));
                    }
                    run.summary = Some(summary);
                    run.results = Vec::new();
                    st.open -= 1;
                }
            }
            idle.notify_all();
            drop(st);
            if let (Some(sink), Some((index, summary))) = (sink, pending_checkpoint) {
                sink.record(index, summary);
            }
            if let (Some(dir), Some((index, trial))) = (repro_dir, pending_repro) {
                self.write_repro(dir, &cells[index], trial);
            }
        }
    }

    /// Shrinks the cell's first violating trial, traces the shrunken
    /// scenario's provenance (blame set + target decision cones), and
    /// writes the repro artifact (best-effort: IO failures warn, the
    /// campaign proceeds).
    fn write_repro(&self, dir: &std::path::Path, cell: &CellSpec, trial: usize) {
        let mut scenario = cell.scenario.clone();
        scenario.seed = scenario.seed.wrapping_add(trial as u64);
        let Some(repro) = aba_harness::shrink_violation(&scenario) else {
            // The trial tallied violations but a re-check came back
            // clean — would indicate nondeterminism; surface loudly.
            obslog::warn(&format!(
                "warning: cell {} trial {trial} no longer violates on re-check",
                cell.key
            ));
            return;
        };
        // The shrunken scenario is small by construction; one more
        // traced run buys the causal layer for the artifact.
        let traced = aba_harness::provenance_scenario(&repro.shrunk);
        let path = dir.join(format!("{}-cell{:03}.repro.json", self.name, cell.index));
        let doc = crate::artifact::render_repro(&cell.key, &repro, Some(&traced));
        if let Err(e) = atomic_write(&path, &doc) {
            obslog::warn(&format!(
                "warning: cannot write repro artifact {}: {e}",
                path.display()
            ));
        }
    }
}
