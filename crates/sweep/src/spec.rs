//! Declarative description of a whole measurement campaign.
//!
//! A [`CampaignSpec`] composes axes — `(n, t)` sizes, protocols (with
//! their parameters), attacks, networks, input assignments, information
//! models — into a grid of *cells*, each a fully-specified base
//! [`Scenario`]. Cell identity is the canonical [`CellSpec::key`]
//! string; the per-cell seed is derived from that key and the campaign
//! master seed, so **reordering axes, inserting new axis values, or
//! removing cells never changes the seeds (and therefore the results)
//! of the surviving cells**.

use crate::stop::StopRule;
use aba_harness::{AttackSpec, InputSpec, NetworkSpec, PlaneSpec, ProtocolSpec, Scenario};
use aba_sim::InfoModel;

/// Round-cap policy applied uniformly across the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundCap {
    /// The same cap for every cell.
    Fixed(u64),
    /// Cap scales with the cell's network size: `factor · n`.
    PerNode(u64),
}

impl RoundCap {
    /// The cap for a cell of `n` nodes.
    pub fn for_n(&self, n: usize) -> u64 {
        match self {
            RoundCap::Fixed(r) => *r,
            RoundCap::PerNode(f) => f.saturating_mul(n as u64),
        }
    }
}

/// Canonical, parameter-carrying identity of a protocol axis value.
///
/// Unlike [`ProtocolSpec::name`], two different parameterizations of
/// the same protocol map to different keys — the key is what makes a
/// campaign cell's identity (and thus its derived seed) unambiguous.
pub fn protocol_key(p: &ProtocolSpec) -> String {
    match p {
        ProtocolSpec::Paper { alpha } => format!("paper(a{alpha})"),
        ProtocolSpec::PaperLasVegas { alpha } => format!("paper-lv(a{alpha})"),
        ProtocolSpec::PaperLiteralCoin { alpha } => format!("paper-literal(a{alpha})"),
        ProtocolSpec::ChorCoan { beta } => format!("chor-coan(b{beta})"),
        ProtocolSpec::RabinDealer => "rabin-dealer".to_string(),
        ProtocolSpec::BenOrPrivate => "ben-or-private".to_string(),
        ProtocolSpec::PhaseKing => "phase-king".to_string(),
        ProtocolSpec::CommonCoin => "common-coin".to_string(),
        ProtocolSpec::SamplingMajority { iters } => format!("sampling-majority(i{iters})"),
        ProtocolSpec::KingSaia { iters } => format!("king-saia(i{iters})"),
    }
}

/// Canonical, parameter-carrying identity of an attack axis value.
pub fn attack_key(a: &AttackSpec) -> String {
    match a {
        AttackSpec::Crash { per_round } => format!("crash({per_round})"),
        AttackSpec::FullAttackCapped { q } => format!("full-capped({q})"),
        other => other.name().to_string(),
    }
}

/// Canonical, parameter-carrying identity of a network axis value.
pub fn network_key(net: &NetworkSpec) -> String {
    match net {
        NetworkSpec::Synchronous => "sync".to_string(),
        NetworkSpec::LossyLinks { p_drop } => format!("lossy({p_drop})"),
        NetworkSpec::BoundedDelay {
            max_delay,
            scheduler: _,
        } => format!("{}({max_delay})", net.name()),
        // No commas in keys: keys appear verbatim in unquoted CSV cells.
        NetworkSpec::Partition { groups, heal_round } => {
            format!("partition({groups}:heal{heal_round})")
        }
    }
}

/// Canonical identity of an information-model axis value.
pub fn info_key(info: InfoModel) -> &'static str {
    if info.is_rushing() {
        "rushing"
    } else {
        "non-rushing"
    }
}

/// One cell of the campaign grid: a base scenario plus its canonical
/// identity. Trial `i` of the cell runs at `scenario.seed + i`.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSpec {
    /// Position in the grid (artifact row order).
    pub index: usize,
    /// Canonical identity: every axis value, parameters included.
    pub key: String,
    /// The fully-specified base scenario; `seed` is the derived cell
    /// seed.
    pub scenario: Scenario,
}

/// FNV-1a over the key bytes, finalized through SplitMix64 together
/// with the campaign master seed. Depends only on (key, campaign seed):
/// stable under any reordering or extension of the axes.
pub(crate) fn derive_cell_seed(campaign_seed: u64, key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut state = h ^ campaign_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    aba_sim::rng::splitmix64(&mut state)
}

/// A declarative measurement campaign: axes × stopping rule × seed.
///
/// ```
/// use aba_sweep::{CampaignSpec, StopRule};
/// use aba_harness::{AttackSpec, NetworkSpec, ProtocolSpec};
///
/// let result = CampaignSpec::new("demo")
///     .sizes(&[(16, 5)])
///     .protocols(&[ProtocolSpec::PaperLasVegas { alpha: 2.0 }])
///     .attacks(&[AttackSpec::Benign, AttackSpec::SplitVote])
///     .stop(StopRule::fixed(2))
///     .run();
/// assert_eq!(result.cells.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Campaign name (artifact file stem).
    pub name: String,
    /// `(n, t)` pairs.
    pub sizes: Vec<(usize, usize)>,
    /// Protocol axis (parameters included).
    pub protocols: Vec<ProtocolSpec>,
    /// Attack axis.
    pub attacks: Vec<AttackSpec>,
    /// Network axis.
    pub networks: Vec<NetworkSpec>,
    /// Input-assignment axis.
    pub inputs: Vec<InputSpec>,
    /// Information-model axis.
    pub infos: Vec<InfoModel>,
    /// Round-cap policy.
    pub cap: RoundCap,
    /// Campaign master seed (mixed into every cell seed).
    pub seed: u64,
    /// Per-cell sequential stopping rule.
    pub stop: StopRule,
    /// Run every trial with its lemma oracles attached (`aba-check`):
    /// trial results are bit-identical either way, and each cell's
    /// summary gains its `oracle_violations` tally. Part of the spec
    /// (not a run option) because it changes the artifact contents and
    /// therefore checkpoint compatibility.
    pub oracles: bool,
    /// Message plane every cell runs on. Deliberately **not** part of
    /// the cell key or the fingerprint: plane choice is an execution
    /// strategy (results are pinned identical across planes by the
    /// differential suites), so switching planes must never move cell
    /// seeds or invalidate a checkpoint.
    pub plane: PlaneSpec,
}

impl CampaignSpec {
    /// A campaign with the workspace's default single-valued axes: the
    /// paper's Las Vegas protocol, the full attack, the synchronous
    /// network, split inputs, the rushing information model, a
    /// 20 000-round cap, seed 0, and the default adaptive stopping rule.
    /// Axes start empty only where there is no sensible default
    /// (`sizes`).
    pub fn new(name: impl Into<String>) -> Self {
        CampaignSpec {
            name: name.into(),
            sizes: Vec::new(),
            protocols: vec![ProtocolSpec::PaperLasVegas { alpha: 2.0 }],
            attacks: vec![AttackSpec::FullAttack],
            networks: vec![NetworkSpec::Synchronous],
            inputs: vec![InputSpec::Split],
            infos: vec![InfoModel::Rushing],
            cap: RoundCap::Fixed(20_000),
            seed: 0,
            stop: StopRule::default(),
            oracles: false,
            plane: PlaneSpec::Dense,
        }
    }

    /// Sets the `(n, t)` axis.
    #[must_use]
    pub fn sizes(mut self, sizes: &[(usize, usize)]) -> Self {
        self.sizes = sizes.to_vec();
        self
    }

    /// Sets the protocol axis.
    #[must_use]
    pub fn protocols(mut self, ps: &[ProtocolSpec]) -> Self {
        self.protocols = ps.to_vec();
        self
    }

    /// Sets the attack axis.
    #[must_use]
    pub fn attacks(mut self, attacks: &[AttackSpec]) -> Self {
        self.attacks = attacks.to_vec();
        self
    }

    /// Sets the network axis.
    #[must_use]
    pub fn networks(mut self, nets: &[NetworkSpec]) -> Self {
        self.networks = nets.to_vec();
        self
    }

    /// Sets the input-assignment axis.
    #[must_use]
    pub fn inputs(mut self, inputs: &[InputSpec]) -> Self {
        self.inputs = inputs.to_vec();
        self
    }

    /// Sets the information-model axis.
    #[must_use]
    pub fn infos(mut self, infos: &[InfoModel]) -> Self {
        self.infos = infos.to_vec();
        self
    }

    /// Sets the round-cap policy.
    #[must_use]
    pub fn round_cap(mut self, cap: RoundCap) -> Self {
        self.cap = cap;
        self
    }

    /// Sets the campaign master seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the per-cell stopping rule.
    #[must_use]
    pub fn stop(mut self, stop: StopRule) -> Self {
        self.stop = stop;
        self
    }

    /// Enables (or disables) the lemma oracles on every trial.
    #[must_use]
    pub fn oracles(mut self, on: bool) -> Self {
        self.oracles = on;
        self
    }

    /// Sets the message plane every cell runs on (execution strategy
    /// only; cell keys and seeds are unaffected).
    #[must_use]
    pub fn plane(mut self, plane: PlaneSpec) -> Self {
        self.plane = plane;
        self
    }

    /// Expands the axes into the cell grid, in canonical row order
    /// (sizes, then protocols, attacks, networks, inputs, infos —
    /// rightmost axis fastest).
    ///
    /// # Panics
    ///
    /// Panics if any axis is empty or two cells share a key (duplicate
    /// axis values).
    pub fn cells(&self) -> Vec<CellSpec> {
        assert!(!self.sizes.is_empty(), "campaign has no (n, t) sizes");
        assert!(!self.protocols.is_empty(), "campaign has no protocols");
        assert!(!self.attacks.is_empty(), "campaign has no attacks");
        assert!(!self.networks.is_empty(), "campaign has no networks");
        assert!(!self.inputs.is_empty(), "campaign has no inputs");
        assert!(!self.infos.is_empty(), "campaign has no info models");
        let mut cells = Vec::with_capacity(
            self.sizes.len()
                * self.protocols.len()
                * self.attacks.len()
                * self.networks.len()
                * self.inputs.len()
                * self.infos.len(),
        );
        for &(n, t) in &self.sizes {
            for protocol in &self.protocols {
                for attack in &self.attacks {
                    for network in &self.networks {
                        for inputs in &self.inputs {
                            for &info in &self.infos {
                                let cap = self.cap.for_n(n);
                                let key = format!(
                                    "{}|{}|{}|n{n}t{t}|{}|{}|cap{cap}",
                                    protocol_key(protocol),
                                    attack_key(attack),
                                    network_key(network),
                                    inputs.name(),
                                    info_key(info),
                                );
                                let scenario = Scenario::new(n, t)
                                    .with_protocol(*protocol)
                                    .with_attack(*attack)
                                    .with_network(*network)
                                    .with_inputs(*inputs)
                                    .with_info(info)
                                    .with_max_rounds(cap)
                                    .with_plane(self.plane)
                                    .with_seed(derive_cell_seed(self.seed, &key));
                                cells.push(CellSpec {
                                    index: cells.len(),
                                    key,
                                    scenario,
                                });
                            }
                        }
                    }
                }
            }
        }
        let mut keys: Vec<&str> = cells.iter().map(|c| c.key.as_str()).collect();
        keys.sort_unstable();
        if let Some(w) = keys.windows(2).find(|w| w[0] == w[1]) {
            panic!("duplicate campaign cell: {}", w[0]);
        }
        cells
    }

    /// Canonical description of the stopping rule + campaign seed (and
    /// the oracle flag, when enabled — oracle-checked summaries carry an
    /// extra tally, so a mixed resume must re-run), used to decide
    /// whether a checkpoint is resumable under this spec. Oracle-free
    /// campaigns keep the historical fingerprint format.
    pub fn fingerprint(&self) -> String {
        let oracles = if self.oracles { "|oracles" } else { "" };
        format!("seed{}|{}{oracles}", self.seed, self.stop.fingerprint())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aba_net::DelayScheduler;

    #[test]
    fn keys_carry_parameters() {
        assert_eq!(
            protocol_key(&ProtocolSpec::PaperLasVegas { alpha: 2.0 }),
            "paper-lv(a2)"
        );
        assert_eq!(
            protocol_key(&ProtocolSpec::ChorCoan { beta: 1.5 }),
            "chor-coan(b1.5)"
        );
        assert_eq!(attack_key(&AttackSpec::Crash { per_round: 2 }), "crash(2)");
        assert_eq!(attack_key(&AttackSpec::FullAttack), "full-attack");
        assert_eq!(
            network_key(&NetworkSpec::LossyLinks { p_drop: 0.1 }),
            "lossy(0.1)"
        );
        assert_ne!(
            network_key(&NetworkSpec::LossyLinks { p_drop: 0.1 }),
            network_key(&NetworkSpec::LossyLinks { p_drop: 0.3 })
        );
        assert_eq!(
            network_key(&NetworkSpec::BoundedDelay {
                max_delay: 2,
                scheduler: DelayScheduler::DelayHonest
            }),
            "bounded-delay-adv(2)"
        );
        // Keys land in unquoted CSV cells: no commas, ever.
        for key in [
            network_key(&NetworkSpec::Partition {
                groups: 3,
                heal_round: 5,
            }),
            protocol_key(&ProtocolSpec::ChorCoan { beta: 1.25 }),
            attack_key(&AttackSpec::FullAttackCapped { q: 7 }),
        ] {
            assert!(!key.contains(','), "comma in key {key}");
        }
    }

    #[test]
    fn grid_is_the_cartesian_product() {
        let spec = CampaignSpec::new("grid")
            .sizes(&[(16, 5), (31, 10)])
            .protocols(&[
                ProtocolSpec::PaperLasVegas { alpha: 2.0 },
                ProtocolSpec::PhaseKing,
            ])
            .attacks(&[AttackSpec::Benign, AttackSpec::FullAttack])
            .networks(&[
                NetworkSpec::Synchronous,
                NetworkSpec::LossyLinks { p_drop: 0.1 },
            ]);
        let cells = spec.cells();
        assert_eq!(cells.len(), 2 * 2 * 2 * 2);
        let mut keys: Vec<&String> = cells.iter().map(|c| &c.key).collect();
        keys.dedup();
        assert_eq!(keys.len(), cells.len(), "keys are unique");
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
        }
    }

    #[test]
    fn cell_seeds_are_stable_under_reordering() {
        let a = CampaignSpec::new("a")
            .sizes(&[(16, 5)])
            .protocols(&[
                ProtocolSpec::PaperLasVegas { alpha: 2.0 },
                ProtocolSpec::PhaseKing,
            ])
            .attacks(&[AttackSpec::Benign, AttackSpec::SplitVote])
            .seed(7);
        // Same axes, reversed order, one extra attack inserted.
        let b = CampaignSpec::new("b")
            .sizes(&[(16, 5)])
            .protocols(&[
                ProtocolSpec::PhaseKing,
                ProtocolSpec::PaperLasVegas { alpha: 2.0 },
            ])
            .attacks(&[
                AttackSpec::SplitVote,
                AttackSpec::StaticSilent,
                AttackSpec::Benign,
            ])
            .seed(7);
        for cell in a.cells() {
            let twin = b
                .cells()
                .into_iter()
                .find(|c| c.key == cell.key)
                .expect("shared cell present in both grids");
            assert_eq!(twin.scenario, cell.scenario, "seed drifted: {}", cell.key);
        }
        // A different campaign seed moves every cell seed.
        let c = a.clone().seed(8);
        for (x, y) in a.cells().iter().zip(c.cells()) {
            assert_ne!(x.scenario.seed, y.scenario.seed, "{}", x.key);
        }
    }

    #[test]
    fn plane_knob_never_moves_keys_or_seeds() {
        let dense = CampaignSpec::new("p")
            .sizes(&[(16, 5)])
            .protocols(&[ProtocolSpec::SamplingMajority { iters: 8 }])
            .seed(3);
        let sparse = dense.clone().plane(PlaneSpec::Sparse);
        assert_eq!(dense.fingerprint(), sparse.fingerprint());
        for (d, s) in dense.cells().iter().zip(sparse.cells()) {
            assert_eq!(d.key, s.key);
            assert_eq!(d.scenario.seed, s.scenario.seed);
            assert_eq!(s.scenario.plane, PlaneSpec::Sparse);
        }
        assert_eq!(
            protocol_key(&ProtocolSpec::KingSaia { iters: 16 }),
            "king-saia(i16)"
        );
    }

    #[test]
    fn round_cap_policies() {
        assert_eq!(RoundCap::Fixed(100).for_n(64), 100);
        assert_eq!(RoundCap::PerNode(8).for_n(64), 512);
        let spec = CampaignSpec::new("cap")
            .sizes(&[(16, 5)])
            .round_cap(RoundCap::PerNode(24));
        assert_eq!(spec.cells()[0].scenario.max_rounds, 384);
    }

    #[test]
    #[should_panic(expected = "duplicate campaign cell")]
    fn duplicate_axis_values_are_rejected() {
        let _ = CampaignSpec::new("dup")
            .sizes(&[(16, 5)])
            .attacks(&[AttackSpec::Benign, AttackSpec::Benign])
            .cells();
    }

    #[test]
    #[should_panic(expected = "no (n, t) sizes")]
    fn empty_sizes_axis_is_rejected() {
        let _ = CampaignSpec::new("empty").cells();
    }
}
