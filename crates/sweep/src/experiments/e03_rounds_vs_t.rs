//! E3 — Round complexity versus `t` at fixed `n` (Theorem 2 / Figure 2).
//!
//! Claim: the paper's protocol terminates in
//! `O(min{t²·log n/n, t/log n})` rounds against the strongest adaptive
//! rushing adversary, while Chor–Coan needs `O(t/log n)`. We measure
//! rounds-to-termination (Las Vegas mode, early termination active) for
//! both protocols under the combined adaptive attack, plot them against
//! the theory shapes, and fit log–log slopes.
//!
//! Note on accessible scale: at laptop-simulable `n` the `min` sits in
//! its second branch for most `t`, and the rushing adversary's kill
//! price of `Θ(√s)` per phase makes the *measured* curve grow like
//! `t^1.5/√(n·log n)` — between the paper's upper bound (slope → 2 in
//! regime 1) and the BJB lower bound (slope 1). The assertions are
//! therefore: (a) measured ≤ paper bound shape × constant, (b) the
//! paper's protocol dominates Chor–Coan at small `t`, (c) fitted slopes
//! and the full series are reported for inspection.

use super::{log_sweep, mean_rounds, ExpParams};
use aba_analysis::{fit_loglog, theory, Series, Table};
use aba_harness::Report;
use aba_harness::ScenarioBuilder;
use aba_harness::{AttackSpec, ProtocolSpec};

/// Runs E3.
pub fn run(params: &ExpParams) -> Report {
    let mut report = Report::new("E3", "Rounds vs t at fixed n (Theorem 2)");
    let (ns, trials): (&[usize], usize) = if params.quick {
        (&[128], 4)
    } else {
        (&[256, 512, 1024], 12)
    };

    let mut slope_table = Table::new(
        "Fitted log-log slopes of rounds vs t",
        &["n", "protocol", "slope", "r^2", "points"],
    );
    let mut detail = Table::new(
        "Rounds to termination (mean over trials)",
        &[
            "n",
            "t",
            "paper rounds",
            "chor-coan rounds",
            "paper bound",
            "cc bound",
        ],
    );

    for &n in ns {
        let ts = log_sweep(2, n / 4, if params.quick { 4 } else { 7 });
        let mut paper_series = Series::new(format!("n={n} paper"));
        let mut cc_series = Series::new(format!("n={n} chor-coan"));
        let mut bound_series = Series::new(format!("n={n} paper-bound"));

        for &t in &ts {
            let max_rounds = (8 * n) as u64;
            let paper = ScenarioBuilder::new(n, t)
                .protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
                .adversary(AttackSpec::FullAttack)
                .seed(params.seed)
                .max_rounds(max_rounds)
                .trials(trials)
                .run_batch()
                .results;
            let cc = ScenarioBuilder::new(n, t)
                .protocol(ProtocolSpec::ChorCoan { beta: 1.0 })
                .adversary(AttackSpec::FullAttack)
                .seed(params.seed)
                .max_rounds(max_rounds)
                .trials(trials)
                .run_batch()
                .results;
            let pr = mean_rounds(&paper);
            let cr = mean_rounds(&cc);
            paper_series.push(t as f64, pr);
            cc_series.push(t as f64, cr);
            bound_series.push(t as f64, theory::paper_bound(n, t));
            detail.push_row(vec![
                n.into(),
                t.into(),
                pr.into(),
                cr.into(),
                theory::paper_bound(n, t).into(),
                theory::chor_coan_bound(n, t).into(),
            ]);
        }

        // Fit slopes only where the adversary's budget dominates the
        // constant-phase floor (t ≥ √n); below it every curve flattens
        // to the ~3-phase minimum and depresses the fitted exponent.
        let floor = (n as f64).sqrt();
        for (label, series) in [("paper", &paper_series), ("chor-coan", &cc_series)] {
            let upper: Vec<(f64, f64)> = series
                .points
                .iter()
                .copied()
                .filter(|(x, _)| *x >= floor)
                .collect();
            if let Some(fit) = fit_loglog(&upper) {
                slope_table.push_row(vec![
                    n.into(),
                    label.into(),
                    fit.slope.into(),
                    fit.r_squared.into(),
                    fit.count.into(),
                ]);
            }
        }
        report.series.push(paper_series);
        report.series.push(cc_series);
        report.series.push(bound_series);
    }

    report.tables.push(detail);
    report.tables.push(slope_table);
    report.note(
        "Paper claim: rounds = O(min{t^2 log n / n, t / log n}). PASS iff (a) measured \
         paper-protocol rounds divided by the bound column stay within a bounded band across \
         t (same shape), and (b) the paper protocol sits below Chor-Coan at every small t, \
         converging at large t."
            .to_string(),
    );
    report.note(
        "Slope reading (fit restricted to t ≥ √n): the rushing adversary pays ~√s per denied \
         phase, so the measured exponent lands between the BJB lower bound's 1 and the upper \
         bound's 2 — ≈1.2–1.5 at these n. The bound columns coincide because accessible n \
         keep min{·} in its t/log n branch (the t² branch needs n ≫ 2^18; see EXPERIMENTS.md)."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_e3_produces_series_and_fits() {
        let r = run(&ExpParams {
            quick: true,
            seed: 1,
        });
        assert_eq!(r.series.len(), 3);
        assert_eq!(r.tables.len(), 2);
        assert!(!r.tables[1].rows.is_empty(), "slope fits present");
    }
}
