//! E13 — Sampling-majority convergence threshold (Section 1.3, related
//! work, reference &#91;3&#93; of the paper).
//!
//! The paper notes that the sampling-majority protocol of Augustine,
//! Pandurangan & Robinson converges in polylog rounds when
//! `t = O(√n/polylog n)`, and that its analysis (like Theorem 3) is an
//! anti-concentration argument. We measure the fraction of honest nodes
//! agreeing after `Θ(log²n)` iterations under the poisoning attack, as
//! the budget sweeps through `√n` — the threshold should be visible as a
//! cliff, mirroring E2's coin cliff.

use super::ExpParams;
use aba_agreement::SamplingMajorityNode;
use aba_analysis::{Series, Table};
use aba_harness::Report;
use aba_harness::ScenarioBuilder;
use aba_harness::{AttackSpec, InputSpec, ProtocolSpec};

/// Runs E13.
pub fn run(params: &ExpParams) -> Report {
    let mut report = Report::new(
        "E13",
        "Sampling-majority convergence threshold (related work [3])",
    );
    let (n, trials) = if params.quick { (64, 6) } else { (576, 20) };
    let sqrt_n = (n as f64).sqrt();
    let iters = SamplingMajorityNode::recommended_iterations(n);

    let mut series = Series::new("mean agreement fraction");
    let mut table = Table::new(
        "Almost-everywhere agreement vs Byzantine budget",
        &["t", "t/sqrt(n)", "agreement fraction", "full agreement %"],
    );

    let budgets: Vec<usize> = (0..=8)
        .map(|i| (i as f64 * sqrt_n / 2.0) as usize)
        .filter(|t| 3 * t < n)
        .collect();
    for t in budgets {
        // Trials are independent; the facade runs them on all cores.
        let batch = ScenarioBuilder::new(n, t)
            .protocol(ProtocolSpec::SamplingMajority { iters })
            .adversary(AttackSpec::SamplingPoison)
            .inputs(InputSpec::Split)
            .seed(params.seed)
            .max_rounds(4 * iters + 8)
            .trials(trials)
            .run_batch();
        let full = batch
            .results
            .iter()
            .filter(|r| r.agree_fraction >= 1.0 - 1e-12)
            .count();
        let mean = batch.mean_agree_fraction();
        series.push(t as f64 / sqrt_n, mean);
        table.push_row(vec![
            t.into(),
            (t as f64 / sqrt_n).into(),
            mean.into(),
            (full as f64 * 100.0 / trials as f64).into(),
        ]);
    }

    report.series.push(series);
    report.tables.push(table);
    report.note(format!(
        "n = {n}, {iters} iterations (Θ(log²n)); the poisoning adversary replies with the \
         honest minority value to every query."
    ));
    report.note(
        "Claim ([3], §1.3): convergence tolerates O(√n/polylog n) Byzantine nodes. PASS iff \
         the agreement fraction stays ≈1 for t well below √n and degrades beyond it — the \
         same √n cliff as the committee coin (E2), as both analyses are anti-concentration \
         arguments."
            .to_string(),
    );
    report.note(
        "Contrast with Algorithm 3: sampling uses O(n) messages/round but only achieves \
         almost-everywhere agreement and only below t ≈ √n; the paper's protocol pays O(n²) \
         messages/round for everywhere-agreement at any t < n/3."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_e13_shows_threshold_shape() {
        let r = run(&ExpParams {
            quick: true,
            seed: 13,
        });
        let pts = &r.series[0].points;
        assert!(pts.len() >= 3);
        // Fault-free converges fully.
        assert!(pts[0].1 >= 0.95, "t=0 fraction {}", pts[0].1);
    }
}
