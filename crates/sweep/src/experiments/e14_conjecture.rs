//! E14 — Probing the paper's conjecture (Section 4, open problem 1).
//!
//! The paper conjectures that `Ω̃(t²/n)` is a *lower* bound for Byzantine
//! agreement under an adaptive rushing adversary, i.e. that Algorithm 3
//! is near-optimal for all `t < n/3`. A simulator cannot prove a lower
//! bound, but it can measure how close the best implemented adversary
//! gets: we fit the measured delay (rounds under the strongest attack)
//! against the two candidate shapes — the conjectured `t²·log n/n` and
//! the proven `t/√(n·log n)` — and report which basis explains the data
//! better and what fraction of the conjectured bound the attack already
//! achieves.

use super::{log_sweep, mean_rounds, ExpParams};
use aba_analysis::{theory, Series, Table};
use aba_harness::Report;
use aba_harness::ScenarioBuilder;
use aba_harness::{AttackSpec, ProtocolSpec};

/// Least-squares scale for `y ≈ a·basis` through the origin, plus the
/// relative RMS residual of that fit.
fn fit_through_origin(points: &[(f64, f64)]) -> (f64, f64) {
    let num: f64 = points.iter().map(|(b, y)| b * y).sum();
    let den: f64 = points.iter().map(|(b, _)| b * b).sum();
    if den == 0.0 {
        return (f64::NAN, f64::NAN);
    }
    let a = num / den;
    let ss: f64 = points.iter().map(|(b, y)| (y - a * b).powi(2)).sum();
    let yy: f64 = points.iter().map(|(_, y)| y * y).sum();
    (a, (ss / yy).sqrt())
}

/// Runs E14.
pub fn run(params: &ExpParams) -> Report {
    let mut report = Report::new("E14", "Conjecture probe: is t²/n the right lower bound?");
    let (n, trials) = if params.quick { (128, 4) } else { (512, 10) };
    let ts = log_sweep(
        (n as f64).sqrt() as usize,
        n / 4,
        if params.quick { 4 } else { 7 },
    );

    let mut measured = Series::new("measured delay (rounds - floor)");
    let mut conj = Series::new("conjecture shape t²·log n/n");
    let mut proven = Series::new("proven LB shape t/sqrt(n log n)");
    let mut table = Table::new(
        "Attack-achieved delay vs candidate bounds",
        &["t", "rounds", "t² log n/n", "t/sqrt(n log n)"],
    );

    // The constant floor (fault-free rounds) is subtracted so the shapes
    // compete on the adversary-attributable part only.
    let floor = mean_rounds(
        &ScenarioBuilder::new(n, ts[0])
            .protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
            .adversary(AttackSpec::Benign)
            .seed(params.seed)
            .trials(trials)
            .run_batch()
            .results,
    );

    let mut conj_pts = Vec::new();
    let mut lb_pts = Vec::new();
    for &t in &ts {
        let rounds = mean_rounds(
            &ScenarioBuilder::new(n, t)
                .protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
                .adversary(AttackSpec::FullAttack)
                .seed(params.seed)
                .max_rounds((8 * n) as u64)
                .trials(trials)
                .run_batch()
                .results,
        );
        let delay = (rounds - floor).max(0.0);
        let c_basis = theory::paper_bound_regime1(n, t);
        let l_basis = theory::bjb_lower_bound(n, t);
        measured.push(t as f64, delay);
        conj.push(t as f64, c_basis);
        proven.push(t as f64, l_basis);
        conj_pts.push((c_basis, delay));
        lb_pts.push((l_basis, delay));
        table.push_row(vec![t.into(), delay.into(), c_basis.into(), l_basis.into()]);
    }

    let (a_conj, res_conj) = fit_through_origin(&conj_pts);
    let (a_lb, res_lb) = fit_through_origin(&lb_pts);
    report.series.push(measured);
    report.series.push(conj);
    report.series.push(proven);
    report.tables.push(table);
    report.note(format!(
        "fit delay = a·(t² log n/n): a = {a_conj:.2}, relative RMS residual {res_conj:.3}; \
         fit delay = a·(t/√(n log n)): a = {a_lb:.2}, residual {res_lb:.3}."
    ));
    report.note(
        "Reading: the attack's achieved delay growing faster than the proven lower-bound \
         shape (smaller residual for a super-linear basis) is weak empirical support for the \
         conjecture; a simulator cannot do more — no attack can certify a lower bound."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_e14_fits_both_bases() {
        let r = run(&ExpParams {
            quick: true,
            seed: 14,
        });
        assert_eq!(r.series.len(), 3);
        assert!(r.notes[0].contains("residual"));
    }

    #[test]
    fn origin_fit_recovers_scale() {
        let pts: Vec<(f64, f64)> = (1..10).map(|i| (i as f64, 3.0 * i as f64)).collect();
        let (a, res) = fit_through_origin(&pts);
        assert!((a - 3.0).abs() < 1e-12);
        assert!(res < 1e-12);
    }
}
