//! E1 — Correctness matrix.
//!
//! Claim (Definition 1, Theorem 2): the paper's protocol satisfies
//! Agreement and Validity with high probability for any `t < n/3`, under
//! an adaptive rushing full-information adversary. We run every protocol
//! against every adversary on several `(n, t)` points with both uniform
//! and split inputs and report the success rates.

use super::{agreement_rate, mean_rounds, termination_rate, ExpParams};
use aba_analysis::Table;
use aba_harness::Report;
use aba_harness::ScenarioBuilder;
use aba_harness::{AttackSpec, InputSpec, ProtocolSpec};

/// Runs E1.
pub fn run(params: &ExpParams) -> Report {
    let mut report = Report::new("E1", "Correctness matrix (Definition 1, Theorem 2)");
    let sizes: &[(usize, usize)] = if params.quick {
        &[(16, 5)]
    } else {
        &[(16, 5), (31, 10), (64, 21)]
    };
    let trials = if params.quick { 5 } else { 20 };

    let protocols = [
        ProtocolSpec::Paper { alpha: 2.0 },
        ProtocolSpec::PaperLasVegas { alpha: 2.0 },
        ProtocolSpec::ChorCoan { beta: 1.0 },
        ProtocolSpec::RabinDealer,
        ProtocolSpec::PhaseKing,
    ];
    let attacks = [
        AttackSpec::Benign,
        AttackSpec::StaticSilent,
        AttackSpec::Crash { per_round: 1 },
        AttackSpec::SplitVote,
        AttackSpec::FullAttack,
    ];
    let inputs = [InputSpec::AllSame(true), InputSpec::Split];

    let mut table = Table::new(
        "Agreement/validity success rates",
        &[
            "n", "t", "protocol", "attack", "inputs", "agree%", "term%", "valid%", "rounds",
        ],
    );

    let mut total = 0usize;
    let mut correct = 0usize;
    for &(n, t) in sizes {
        for proto in protocols {
            for attack in attacks {
                for input in inputs {
                    let results = ScenarioBuilder::new(n, t)
                        .protocol(proto)
                        .adversary(attack)
                        .inputs(input)
                        .seed(params.seed)
                        .max_rounds(30_000)
                        .trials(trials)
                        .run_batch()
                        .results;
                    let validity_applicable: Vec<&aba_harness::TrialResult> =
                        results.iter().filter(|r| r.validity.is_some()).collect();
                    let valid_pct = if validity_applicable.is_empty() {
                        f64::NAN
                    } else {
                        validity_applicable
                            .iter()
                            .filter(|r| r.validity == Some(true))
                            .count() as f64
                            / validity_applicable.len() as f64
                    };
                    total += results.len();
                    correct += results.iter().filter(|r| r.correct()).count();
                    table.push_row(vec![
                        n.into(),
                        t.into(),
                        proto.name().into(),
                        attack.name().into(),
                        input.name().into(),
                        (agreement_rate(&results) * 100.0).into(),
                        (termination_rate(&results) * 100.0).into(),
                        (valid_pct * 100.0).into(),
                        mean_rounds(&results).into(),
                    ]);
                }
            }
        }
    }

    report.tables.push(table);
    report.note(format!(
        "{correct}/{total} trials satisfied every applicable condition of Definition 1 \
         (expected: all, since whp failure probability is tiny at these sizes)."
    ));
    report.note(
        "Paper claim: Agreement + Validity w.h.p. with t < n/3 resilience — PASS iff the \
         agree%/valid% columns are 100 across the matrix."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_is_all_correct() {
        let r = run(&ExpParams {
            quick: true,
            seed: 7,
        });
        assert_eq!(r.tables.len(), 1);
        // 5 protocols × 5 attacks × 2 inputs = 50 rows.
        assert_eq!(r.tables[0].rows.len(), 50);
        assert!(r.notes[0].contains('/'));
    }
}
