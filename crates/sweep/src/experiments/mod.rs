//! The experiment suite (E1–E16).
//!
//! Each experiment regenerates one table or figure of EXPERIMENTS.md,
//! validating a quantitative claim of the paper. All experiments are
//! deterministic in `(params.seed)` and scale down under
//! `params.quick` (used by tests and the bench targets).

pub mod e01_correctness;
pub mod e02_coin;
pub mod e03_rounds_vs_t;
pub mod e04_crossover;
pub mod e05_scaling_n;
pub mod e06_early_term;
pub mod e07_messages;
pub mod e08_las_vegas;
pub mod e09_lower_bound;
pub mod e10_ruin_cost;
pub mod e11_alpha;
pub mod e12_adversaries;
pub mod e13_sampling;
pub mod e14_conjecture;
pub mod e15_coin_sources;
pub mod e16_network;

use aba_harness::Report;
use aba_harness::TrialResult;

/// Global experiment parameters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExpParams {
    /// Scale down sizes/trials for smoke runs.
    pub quick: bool,
    /// Master seed offset.
    pub seed: u64,
}

impl ExpParams {
    /// Picks the quick-mode or full-mode value of a parameter — the one
    /// place experiments scale their sizes, trials, and sweeps down for
    /// smoke runs.
    pub fn pick<T>(&self, quick: T, full: T) -> T {
        if self.quick {
            quick
        } else {
            full
        }
    }
}

/// A registered experiment.
pub struct ExperimentDef {
    /// Identifier, e.g. "e3".
    pub id: &'static str,
    /// What it reproduces.
    pub title: &'static str,
    /// Entry point.
    pub runner: fn(&ExpParams) -> Report,
}

/// All experiments in suite order.
pub fn all() -> Vec<ExperimentDef> {
    vec![
        ExperimentDef {
            id: "e1",
            title: "Correctness matrix (Definition 1, Theorem 2)",
            runner: e01_correctness::run,
        },
        ExperimentDef {
            id: "e2",
            title: "Common coin vs Byzantine budget (Theorem 3, Fig. 1)",
            runner: e02_coin::run,
        },
        ExperimentDef {
            id: "e3",
            title: "Rounds vs t at fixed n (Theorem 2, Fig. 2)",
            runner: e03_rounds_vs_t::run,
        },
        ExperimentDef {
            id: "e4",
            title: "Crossover vs Chor-Coan (Section 1.2, Fig. 3)",
            runner: e04_crossover::run,
        },
        ExperimentDef {
            id: "e5",
            title: "Scaling at t = n^0.75 (Section 1.2, Fig. 4)",
            runner: e05_scaling_n::run,
        },
        ExperimentDef {
            id: "e6",
            title: "Early termination vs actual corruptions q (Theorem 2, Fig. 5)",
            runner: e06_early_term::run,
        },
        ExperimentDef {
            id: "e7",
            title: "Message complexity and CONGEST compliance (Section 1.2, Fig. 6)",
            runner: e07_messages::run,
        },
        ExperimentDef {
            id: "e8",
            title: "Las Vegas variant vs whp variant (Section 3.2, Table 2)",
            runner: e08_las_vegas::run,
        },
        ExperimentDef {
            id: "e9",
            title: "Gap to the Bar-Joseph-Ben-Or lower bound (Theorem 1, Fig. 7)",
            runner: e09_lower_bound::run,
        },
        ExperimentDef {
            id: "e10",
            title: "Committee-ruin cost: rushing vs non-rushing (Fig. 8)",
            runner: e10_ruin_cost::run,
        },
        ExperimentDef {
            id: "e11",
            title: "Committee constant alpha ablation (Theorem 2 proof, Table 3)",
            runner: e11_alpha::run,
        },
        ExperimentDef {
            id: "e12",
            title: "Adversary ablation matrix (Section 1.1, Table 4)",
            runner: e12_adversaries::run,
        },
        ExperimentDef {
            id: "e13",
            title: "Sampling-majority convergence threshold (Section 1.3, Fig. 9)",
            runner: e13_sampling::run,
        },
        ExperimentDef {
            id: "e14",
            title: "Conjecture probe: attack-achieved delay vs t²/n (Section 4)",
            runner: e14_conjecture::run,
        },
        ExperimentDef {
            id: "e15",
            title: "Coin-source ablation: committee vs dealer vs private (Section 1)",
            runner: e15_coin_sources::run,
        },
        ExperimentDef {
            id: "e16",
            title: "Agreement under weakened synchrony: lossy links and bounded delay (aba-net)",
            runner: e16_network::run,
        },
    ]
}

/// Looks an experiment up by id (case-insensitive; zero-padded forms
/// like `e01` are accepted).
pub fn by_id(id: &str) -> Option<ExperimentDef> {
    let id = id.to_ascii_lowercase();
    let canonical = match id.strip_prefix('e') {
        Some(num) => match num.trim_start_matches('0') {
            "" => id.clone(),
            trimmed => format!("e{trimmed}"),
        },
        None => id.clone(),
    };
    all().into_iter().find(|e| e.id == canonical)
}

// ---- shared aggregation helpers ----

/// Mean rounds over trials (censored trials count at their cap value).
pub(crate) fn mean_rounds(results: &[TrialResult]) -> f64 {
    if results.is_empty() {
        return f64::NAN;
    }
    results.iter().map(|r| r.rounds as f64).sum::<f64>() / results.len() as f64
}

/// Fraction of trials with agreement.
pub(crate) fn agreement_rate(results: &[TrialResult]) -> f64 {
    if results.is_empty() {
        return f64::NAN;
    }
    results.iter().filter(|r| r.agreement).count() as f64 / results.len() as f64
}

/// Fraction of trials that terminated before the cap.
pub(crate) fn termination_rate(results: &[TrialResult]) -> f64 {
    if results.is_empty() {
        return f64::NAN;
    }
    results.iter().filter(|r| r.terminated).count() as f64 / results.len() as f64
}

/// Log-spaced integer sweep from `lo` to `hi` (inclusive-ish, deduped).
pub(crate) fn log_sweep(lo: usize, hi: usize, points: usize) -> Vec<usize> {
    assert!(lo >= 1 && hi >= lo && points >= 2);
    let (lo_f, hi_f) = (lo as f64, hi as f64);
    let mut out: Vec<usize> = (0..points)
        .map(|i| {
            let frac = i as f64 / (points - 1) as f64;
            (lo_f * (hi_f / lo_f).powf(frac)).round() as usize
        })
        .collect();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_unique() {
        let defs = all();
        assert_eq!(defs.len(), 16);
        // aba-lint: allow(hash-nondeterminism) — uniqueness count only; iteration order never observed
        let ids: std::collections::HashSet<&str> = defs.iter().map(|d| d.id).collect();
        assert_eq!(ids.len(), 16);
        assert!(by_id("e3").is_some());
        assert!(by_id("E3").is_some());
        assert!(by_id("e03").is_some(), "zero-padded ids accepted");
        assert!(by_id("e16").is_some());
        assert!(by_id("e99").is_none());
        assert!(by_id("e0").is_none());
    }

    #[test]
    fn pick_scales_by_mode() {
        let quick = ExpParams {
            quick: true,
            seed: 0,
        };
        let full = ExpParams {
            quick: false,
            seed: 0,
        };
        assert_eq!(quick.pick(3, 8), 3);
        assert_eq!(full.pick(3, 8), 8);
        assert_eq!(quick.pick(&[1, 2][..], &[1, 2, 3][..]), &[1, 2]);
    }

    #[test]
    fn log_sweep_shapes() {
        let s = log_sweep(1, 100, 5);
        assert_eq!(s.first(), Some(&1));
        assert_eq!(s.last(), Some(&100));
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        let tight = log_sweep(3, 4, 6);
        assert!(tight.len() <= 6 && !tight.is_empty());
    }

    #[test]
    fn aggregation_helpers() {
        use aba_harness::TrialResult;
        let t = |rounds, agreement, terminated| TrialResult {
            seed: 0,
            rounds,
            terminated,
            agreement,
            validity: None,
            decision: None,
            corruptions: 0,
            messages: 0,
            bits: 0,
            max_edge_bits: 0,
            agree_fraction: 1.0,
            delivered: 0,
            dropped: 0,
            delayed: 0,
            adversary: "test",
            downgraded: false,
            network: "sync",
        };
        let rs = vec![t(10, true, true), t(20, false, false)];
        assert_eq!(mean_rounds(&rs), 15.0);
        assert_eq!(agreement_rate(&rs), 0.5);
        assert_eq!(termination_rate(&rs), 0.5);
        assert!(mean_rounds(&[]).is_nan());
    }
}
