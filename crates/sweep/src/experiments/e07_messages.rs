//! E7 — Message complexity and CONGEST compliance (Section 1.2 /
//! Figure 6).
//!
//! Claims: (a) message complexity `O(min{n·t²·log n, n²·t/log n})`
//! (rounds × n² broadcast traffic, early termination included);
//! (b) CONGEST model: only `O(log n)` bits cross any edge in any round.
//! We sweep `t` at fixed `n`, reporting total messages, total bits, and
//! the per-edge-per-round bit maximum.

use super::{log_sweep, ExpParams};
use aba_analysis::{theory, Series, Table};
use aba_harness::Report;
use aba_harness::ScenarioBuilder;
use aba_harness::{AttackSpec, ProtocolSpec};

/// Runs E7.
pub fn run(params: &ExpParams) -> Report {
    let mut report = Report::new("E7", "Message complexity and CONGEST compliance");
    let (n, trials) = if params.quick { (128, 4) } else { (512, 10) };
    let ts = log_sweep(2, n / 4, if params.quick { 4 } else { 7 });

    let mut msg_series = Series::new("messages measured");
    let mut bound_series = Series::new("message bound shape");
    let mut table = Table::new(
        "Traffic vs t",
        &[
            "t",
            "messages (mean)",
            "bits (mean)",
            "max edge bits",
            "bound min{n t² log n, n² t/log n}",
        ],
    );

    let mut worst_edge_bits = 0usize;
    for &t in &ts {
        let results = ScenarioBuilder::new(n, t)
            .protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
            .adversary(AttackSpec::FullAttack)
            .seed(params.seed)
            .max_rounds((8 * n) as u64)
            .trials(trials)
            .run_batch()
            .results;
        let msgs = results.iter().map(|r| r.messages as f64).sum::<f64>() / results.len() as f64;
        let bits = results.iter().map(|r| r.bits as f64).sum::<f64>() / results.len() as f64;
        let edge = results.iter().map(|r| r.max_edge_bits).max().unwrap_or(0);
        worst_edge_bits = worst_edge_bits.max(edge);
        msg_series.push(t as f64, msgs);
        bound_series.push(t as f64, theory::paper_message_bound(n, t));
        table.push_row(vec![
            t.into(),
            msgs.into(),
            bits.into(),
            edge.into(),
            theory::paper_message_bound(n, t).into(),
        ]);
    }

    let congest_budget = 8.0 * theory::log2n(n);
    report.series.push(msg_series);
    report.series.push(bound_series);
    report.tables.push(table);
    report.note(format!(
        "CONGEST check: worst per-edge-per-round bits = {worst_edge_bits}, budget 8·log₂n = \
         {congest_budget:.0} — PASS iff within budget."
    ));
    report.note(
        "Paper claim: message complexity O(min{n t² log n, n² t/log n}). PASS iff measured \
         messages stay below a constant multiple of the bound column (early termination makes \
         them much lower for small q-use)."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_e7_congest_holds() {
        let r = run(&ExpParams {
            quick: true,
            seed: 6,
        });
        assert!(r.notes[0].contains("PASS"));
        // Extract worst edge bits from the table and assert the budget.
        for row in &r.tables[0].rows {
            if let aba_analysis::table::Cell::Int(edge) = &row[3] {
                assert!(*edge <= (8.0 * theory::log2n(128)) as i64);
            }
        }
    }
}
