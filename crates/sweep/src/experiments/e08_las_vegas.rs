//! E8 — Las Vegas variant versus whp variant (Section 3.2 / Table 2).
//!
//! Claim: looping over the committees (instead of stopping after `c`
//! phases) makes agreement certain while keeping the same expected round
//! complexity. We compare both variants under the full attack: agreement
//! rate, termination rate, and the distribution of rounds.

use super::{agreement_rate, termination_rate, ExpParams};
use aba_analysis::Table;
use aba_harness::Report;
use aba_harness::ScenarioBuilder;
use aba_harness::{AttackSpec, ProtocolSpec};

/// Runs E8.
pub fn run(params: &ExpParams) -> Report {
    let mut report = Report::new("E8", "Las Vegas vs whp variant (Section 3.2)");
    let sizes: &[(usize, usize)] = if params.quick {
        &[(32, 10)]
    } else {
        &[(64, 21), (128, 42), (256, 85)]
    };
    let trials = if params.quick { 10 } else { 40 };

    let mut table = Table::new(
        "Variant comparison under the full adaptive attack",
        &[
            "n",
            "t",
            "variant",
            "agree%",
            "term%",
            "mean rounds",
            "median",
            "p95",
        ],
    );

    for &(n, t) in sizes {
        for (label, proto) in [
            ("whp", ProtocolSpec::Paper { alpha: 2.0 }),
            ("las-vegas", ProtocolSpec::PaperLasVegas { alpha: 2.0 }),
        ] {
            let batch = ScenarioBuilder::new(n, t)
                .protocol(proto)
                .adversary(AttackSpec::FullAttack)
                .seed(params.seed)
                .max_rounds((16 * n) as u64)
                .trials(trials)
                .run_batch();
            table.push_row(vec![
                n.into(),
                t.into(),
                label.into(),
                (agreement_rate(&batch.results) * 100.0).into(),
                (termination_rate(&batch.results) * 100.0).into(),
                batch.mean_rounds().into(),
                (batch.rounds_percentile(50.0) as usize).into(),
                (batch.rounds_percentile(95.0) as usize).into(),
            ]);
        }
    }

    report.tables.push(table);
    report.note(
        "Paper claim (Section 3.2): the Las Vegas variant always reaches agreement, in the \
         same expected rounds. PASS iff las-vegas rows show 100% agreement and a mean close \
         to (or below) the whp rows. Median/p95 are nearest-rank percentiles over the trial \
         batch; a heavy p95/median gap exposes the Las Vegas retry tail."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_e8_las_vegas_always_agrees() {
        let r = run(&ExpParams {
            quick: true,
            seed: 8,
        });
        // Row 1 is las-vegas; agree% is column 3.
        let row = &r.tables[0].rows[1];
        if let aba_analysis::table::Cell::Float(pct) = &row[3] {
            assert!(*pct >= 99.9, "las vegas agreement {pct}%");
        } else {
            panic!("expected float cell");
        }
    }
}
