//! E6 — Early termination versus actual corruptions `q` (Theorem 2 /
//! Figure 5).
//!
//! Claim: if the adversary only ever corrupts `q < t` nodes, the
//! protocol terminates in `O(min{q²·log n/n, q/log n})` rounds — the
//! protocol adapts to the *actual* adversary, not the worst case it was
//! provisioned for. We fix `(n, t)`, cap the full attack at `q`
//! corruptions, and sweep `q`.

use super::{mean_rounds, ExpParams};
use aba_analysis::{theory, Series, Table};
use aba_harness::Report;
use aba_harness::ScenarioBuilder;
use aba_harness::{AttackSpec, ProtocolSpec};

/// Runs E6.
pub fn run(params: &ExpParams) -> Report {
    let mut report = Report::new("E6", "Early termination vs corruptions used (Theorem 2)");
    let (n, t, trials) = if params.quick {
        (64, 21, 5)
    } else {
        (256, 85, 15)
    };
    let qs: Vec<usize> = [0usize, 1, 2, 4, 8, 16, 32, 64, 85]
        .into_iter()
        .filter(|q| *q <= t)
        .collect();

    let mut measured = Series::new("rounds measured");
    let mut bound = Series::new("early-termination bound");
    let mut table = Table::new(
        "Rounds vs corruption cap q",
        &[
            "q",
            "rounds",
            "corruptions used",
            "bound min{q^2 log n/n, q/log n}",
        ],
    );

    for &q in &qs {
        let results = ScenarioBuilder::new(n, t)
            .protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
            .adversary(AttackSpec::FullAttackCapped { q })
            .seed(params.seed)
            .max_rounds((16 * n) as u64)
            .trials(trials)
            .run_batch()
            .results;
        let rounds = mean_rounds(&results);
        let used = results.iter().map(|r| r.corruptions as f64).sum::<f64>() / results.len() as f64;
        measured.push(q as f64, rounds);
        bound.push(q as f64, theory::early_termination_bound(n, q));
        table.push_row(vec![
            q.into(),
            rounds.into(),
            used.into(),
            theory::early_termination_bound(n, q).into(),
        ]);
    }

    report.series.push(measured);
    report.series.push(bound);
    report.tables.push(table);
    report.note(format!(
        "Fixed n = {n}, protocol provisioned for t = {t}; only the adversary's cap q varies."
    ));
    report.note(
        "Paper claim: termination in O(min{q² log n/n, q/log n}) rounds. PASS iff measured \
         rounds grow with q (not with t) and stay within a constant of the bound column."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_e6_rounds_grow_with_q() {
        let r = run(&ExpParams {
            quick: true,
            seed: 5,
        });
        let pts = &r.series[0].points;
        assert!(pts.len() >= 4);
        let first = pts.first().unwrap().1;
        let last = pts.last().unwrap().1;
        assert!(
            last >= first,
            "rounds must not shrink as the cap rises: {first} -> {last}"
        );
    }
}
