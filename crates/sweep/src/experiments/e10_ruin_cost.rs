//! E10 — Committee-ruin cost: rushing vs non-rushing (Figure 8).
//!
//! The engine of Theorem 2's counting argument: a rushing adversary can
//! deny a committee coin by corrupting `⌈(|S|+1)/2⌉ ≈ √s/2`-on-average
//! majority-side flippers *after* seeing the flips, whereas a non-rushing
//! adversary must control a majority (`≈ s/2`) to be certain. We run the
//! standalone committee coin at a sweep of committee sizes with an
//! unlimited budget and record what the optimal attack actually paid.

use super::ExpParams;
use aba_analysis::{fit_loglog, Series, Table};
use aba_coin::analysis;
use aba_harness::Report;
use aba_harness::ScenarioBuilder;
use aba_harness::{AttackSpec, ProtocolSpec};
use aba_sim::InfoModel;

fn mean_cost(s: usize, trials: usize, seed: u64, info: InfoModel) -> f64 {
    ScenarioBuilder::new(s, s)
        .protocol(ProtocolSpec::CommonCoin)
        .adversary(AttackSpec::CoinKiller)
        .info_model(info)
        .seed(seed)
        .trials(trials)
        .run_batch()
        .mean_corruptions()
}

/// Runs E10.
pub fn run(params: &ExpParams) -> Report {
    let mut report = Report::new("E10", "Committee-ruin cost: rushing vs non-rushing");
    let (sizes, trials): (&[usize], usize) = if params.quick {
        (&[9, 25, 64], 30)
    } else {
        (&[9, 16, 25, 49, 100, 196, 400, 784], 100)
    };

    let mut rushing = Series::new("rushing cost");
    let mut nonrushing = Series::new("non-rushing cost");
    let mut expected = Series::new("(E|S|+1)/2 theory");
    let mut table = Table::new(
        "Corruptions to deny the committee coin",
        &[
            "committee size s",
            "rushing (measured)",
            "theory (E|S|+1)/2",
            "non-rushing (measured)",
            "s/2",
        ],
    );

    for &s in sizes {
        let rush = mean_cost(s, trials, params.seed, InfoModel::Rushing);
        let nonrush = mean_cost(s, trials, params.seed, InfoModel::NonRushing);
        let theory_cost = (analysis::expected_abs_sum(s as u64) + 1.0) / 2.0;
        rushing.push(s as f64, rush);
        nonrushing.push(s as f64, nonrush);
        expected.push(s as f64, theory_cost);
        table.push_row(vec![
            s.into(),
            rush.into(),
            theory_cost.into(),
            nonrush.into(),
            (s as f64 / 2.0).into(),
        ]);
    }

    let rush_fit = fit_loglog(&rushing.points);
    let nonrush_fit = fit_loglog(&nonrushing.points);
    if let (Some(r), Some(nr)) = (rush_fit, nonrush_fit) {
        report.note(format!(
            "fitted exponents: rushing cost ~ s^{:.2} (expect ~0.5), non-rushing ~ s^{:.2} \
             (expect ~1.0)",
            r.slope, nr.slope
        ));
    }
    report.series.push(rushing);
    report.series.push(nonrushing);
    report.series.push(expected);
    report.tables.push(table);
    report.note(
        "This is the quantity Theorem 2 charges the adversary √s/2 per denied phase (rushing) \
         and the reason Chor-Coan's analysis (non-rushing) pays Θ(s). PASS iff the fitted \
         exponents split cleanly around 0.5 vs 1.0."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_e10_exponents_separate() {
        let r = run(&ExpParams {
            quick: true,
            seed: 10,
        });
        let rushing = &r.series[0].points;
        let nonrushing = &r.series[1].points;
        // Non-rushing must always cost at least as much as rushing.
        for ((_, rc), (_, nc)) in rushing.iter().zip(nonrushing) {
            assert!(nc >= rc, "non-rushing {nc} < rushing {rc}");
        }
    }
}
