//! E12 — Adversary ablation matrix (Section 1.1 / Table 4).
//!
//! The paper's model hierarchy made measurable: static < adaptive crash <
//! adaptive Byzantine (non-rushing) < adaptive Byzantine (rushing). Each
//! strategy plays against the Las Vegas paper protocol at fixed `(n, t)`;
//! the table shows how many rounds each information/adaptivity level
//! actually buys the adversary. The whole matrix runs as one campaign —
//! attacks × information models as grid axes — so the expensive rushing
//! cells steal idle cores from the cheap benign ones, and the stopping
//! rule spends trials where the round distributions are widest.

use super::ExpParams;
use crate::spec::{attack_key, info_key};
use crate::{CampaignSpec, RoundCap, StopRule};
use aba_analysis::Table;
use aba_harness::Report;
use aba_harness::{AttackSpec, ProtocolSpec};
use aba_sim::InfoModel;

/// Runs E12.
pub fn run(params: &ExpParams) -> Report {
    let mut report = Report::new("E12", "Adversary ablation matrix");
    let (n, t) = params.pick((32, 10), (128, 42));
    let stop = params.pick(StopRule::fixed(6), StopRule::adaptive(12, 8, 40));

    let attacks = [
        AttackSpec::Benign,
        AttackSpec::StaticSilent,
        AttackSpec::StaticMirror,
        AttackSpec::Crash { per_round: 1 },
        AttackSpec::SplitVote,
        AttackSpec::FullAttackFrugal,
        AttackSpec::FullAttack,
    ];
    let infos = [InfoModel::NonRushing, InfoModel::Rushing];

    let result = CampaignSpec::new("e12-adversaries")
        .sizes(&[(n, t)])
        .protocols(&[ProtocolSpec::PaperLasVegas { alpha: 2.0 }])
        .attacks(&attacks)
        .infos(&infos)
        .round_cap(RoundCap::PerNode(16))
        .seed(params.seed)
        .stop(stop)
        .run();

    let mut table = Table::new(
        "Rounds bought by each adversary class",
        &[
            "attack",
            "info model",
            "mean rounds",
            "agree%",
            "corruptions used (mean)",
            "trials",
        ],
    );

    for attack in attacks {
        for info in infos {
            let cell = result
                .find(|c| c.attack == attack_key(&attack) && c.info == info_key(info))
                .expect("cell present");
            table.push_row(vec![
                attack.name().into(),
                info_key(info).into(),
                cell.mean_rounds().into(),
                (cell.agreement_rate() * 100.0).into(),
                cell.mean_corruptions().into(),
                cell.trials.into(),
            ]);
        }
    }

    report.tables.push(table);
    report.note(format!(
        "campaign `{}`: {} trials over {} cells (adaptive stopping; the trials column shows \
         where the budget went)",
        result.name,
        result.total_trials(),
        result.cells.len()
    ));
    report.note(
        "Paper context (Section 1): the adaptive rushing adversary is the strongest model; \
         static and crash adversaries barely slow the protocol. PASS iff mean rounds increase \
         down the adversary hierarchy and the rushing column dominates non-rushing for the \
         adaptive attacks, while agree% stays 100 everywhere."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_e12_has_matrix_rows() {
        let r = run(&ExpParams {
            quick: true,
            seed: 12,
        });
        assert_eq!(r.tables[0].rows.len(), 14);
    }
}
