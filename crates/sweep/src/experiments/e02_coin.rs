//! E2 — The common coin under attack (Theorem 3 / Figure 1).
//!
//! Claim: Algorithm 1 implements a common coin (Definition 2) whenever at
//! most `√n/2` nodes are Byzantine; the proof's Paley–Zygmund bound gives
//! `Pr[Comm] ≥ 1/6` (both signs together) with two-sided bias at least
//! `1/12` each.
//!
//! We run the one-round protocol against the optimal rushing denial
//! attack with budget `t` swept through `√n`, and measure:
//!
//! * `Pr[Comm]` — all honest outputs equal — versus the exact analytic
//!   curve `Pr[|S_n| ≥ 2t]` (the attack needs `⌈(|S|+1)/2⌉ ≤ t` to deny);
//! * the conditional bias `Pr[coin = 1 | Comm]` (Definition 2(B));
//! * the Paley–Zygmund floor at the Theorem 3 budget.

use super::ExpParams;
use aba_analysis::{Series, Table};
use aba_coin::analysis;
use aba_harness::Report;
use aba_harness::ScenarioBuilder;
use aba_harness::{AttackSpec, ProtocolSpec};

/// Measured outcome of a batch of standalone coin runs.
struct CoinStats {
    common: usize,
    common_ones: usize,
    trials: usize,
}

fn measure(n: usize, t: usize, trials: usize, seed: u64) -> CoinStats {
    let batch = ScenarioBuilder::new(n, t)
        .protocol(ProtocolSpec::CommonCoin)
        .adversary(AttackSpec::CoinKiller)
        .seed(seed)
        .trials(trials)
        .run_batch();
    CoinStats {
        common: batch
            .results
            .iter()
            .filter(|r| r.agreement && r.decision.is_some())
            .count(),
        common_ones: batch
            .results
            .iter()
            .filter(|r| r.decision == Some(true))
            .count(),
        trials,
    }
}

/// Runs E2.
pub fn run(params: &ExpParams) -> Report {
    let mut report = Report::new("E2", "Common coin vs Byzantine budget (Theorem 3)");
    let (ns, trials): (&[usize], usize) = if params.quick {
        (&[64], 60)
    } else {
        (&[64, 256, 1024], 400)
    };

    let mut table = Table::new(
        "Common-coin success under the optimal rushing denial attack",
        &[
            "n",
            "t",
            "t/sqrt(n)",
            "Pr[Comm] measured",
            "Pr[Comm] exact theory",
            "Pr[1|Comm]",
            "PZ floor",
        ],
    );

    for &n in ns {
        let sqrt_n = (n as f64).sqrt();
        let mut measured = Series::new(format!("n={n} measured"));
        let mut theory = Series::new(format!("n={n} theory"));
        let budgets: Vec<usize> = (0..=8)
            .map(|i| (i as f64 * sqrt_n / 4.0) as usize)
            .collect();
        for t in budgets {
            if 3 * t >= n {
                continue;
            }
            let stats = measure(n, t, trials, params.seed);
            let p_comm = stats.common as f64 / stats.trials as f64;
            let p_one = if stats.common > 0 {
                stats.common_ones as f64 / stats.common as f64
            } else {
                f64::NAN
            };
            // Exact survival probability against the optimal attack,
            // including the `sum ≥ 0 → 1` tie asymmetry (see
            // `prob_coin_survives`).
            let p_theory = analysis::prob_coin_survives(n as u64, t as u64);
            // The paper's headline floor: ≥ 1/12 per side (Theorem 3).
            let pz = 2.0 / 12.0;
            measured.push(t as f64 / sqrt_n, p_comm);
            theory.push(t as f64 / sqrt_n, p_theory);
            table.push_row(vec![
                n.into(),
                t.into(),
                (t as f64 / sqrt_n).into(),
                p_comm.into(),
                p_theory.into(),
                p_one.into(),
                pz.into(),
            ]);
        }
        report.series.push(measured);
        report.series.push(theory);
    }

    report.tables.push(table);
    report.note(
        "Paper claim (Theorem 3): at t = sqrt(n)/2 the coin is common with at least constant \
         probability (analytic floor 2·1/12 = 1/6). PASS iff measured Pr[Comm] at \
         t/sqrt(n)=0.5 is >= the floor and tracks the exact-theory curve."
            .to_string(),
    );
    report.note(
        "The exact curve accounts for the `sum ≥ 0 → 1` tie rule: denial from a negative sum \
         is one corruption cheaper than from a positive one, so survival is \
         Pr[S ≥ 2t] + Pr[S ≤ −2t−1] — the measured points land on this asymmetric curve, \
         not on the naive Pr[|S| ≥ 2t]."
            .to_string(),
    );
    report.note(
        "Definition 2(B): conditional bias Pr[1|Comm] must be bounded away from 0 and 1 — \
         observed values should sit near 1/2."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_coin_experiment_tracks_theory() {
        let r = run(&ExpParams {
            quick: true,
            seed: 3,
        });
        assert!(!r.tables[0].rows.is_empty());
        assert_eq!(r.series.len(), 2);
        // The measured curve at t=0 must be 1 (no adversary, coin always
        // common).
        let measured = &r.series[0];
        assert!((measured.points[0].1 - 1.0).abs() < 1e-9);
        // And must decay as the budget grows.
        let first = measured.points.first().unwrap().1;
        let last = measured.points.last().unwrap().1;
        assert!(last <= first);
    }
}
