//! E16 — agreement under weakened synchrony (the `aba-net` subsystem).
//!
//! The paper's guarantees are proved in the lock-step synchronous model.
//! This experiment measures how the paper's protocol and two baselines
//! (Chor–Coan, Phase-King) degrade when that assumption is weakened:
//! lossy links (drop probability sweep) and bounded-delay partial
//! synchrony (delay-bound sweep, random and adversarial schedulers).
//! Reported per cell: agreement rate, termination rate, and the round
//! blow-up relative to the same protocol on the synchronous network.
//!
//! The whole protocol × network grid runs as **one campaign**: the
//! lossy/delayed cells stall at the round cap and dominate wall-clock,
//! so scheduling at (cell, trial) granularity lets the cheap
//! synchronous baselines and Phase-King cells finish early and lend
//! their cores to the stalled committee cells — and the `p_drop = 0`
//! sweep rows simply *are* the synchronous baseline cells (one cell,
//! reused, instead of a re-run).

use super::ExpParams;
use crate::spec::{network_key, protocol_key};
use crate::{CampaignSpec, RoundCap, StopRule};
use aba_analysis::{Series, Table};
use aba_harness::Report;
use aba_harness::{AttackSpec, NetworkSpec, ProtocolSpec};
use aba_net::DelayScheduler;

const PROTOCOLS: [(&str, ProtocolSpec); 3] = [
    ("paper", ProtocolSpec::PaperLasVegas { alpha: 2.0 }),
    ("chor-coan", ProtocolSpec::ChorCoan { beta: 1.0 }),
    ("phase-king", ProtocolSpec::PhaseKing),
];

/// Runs E16.
pub fn run(params: &ExpParams) -> Report {
    let mut report = Report::new("E16", "Agreement under weakened synchrony (aba-net)");
    let (n, t) = params.pick((16, 5), (32, 10));
    // Quick mode pins the old fixed trial count. Full mode is adaptive:
    // deterministic cells (Phase-King, cap-stalled committee cells)
    // stop at min_trials, agreement-flapping cells earn the budget.
    let stop = params.pick(StopRule::fixed(6), StopRule::adaptive(12, 6, 36));
    let p_drops: &[f64] = params.pick(&[0.0, 0.1, 0.3], &[0.0, 0.02, 0.05, 0.1, 0.2, 0.3]);
    let delays: &[u64] = params.pick(&[1, 3], &[1, 2, 4, 8]);
    let schedulers = [
        ("random", DelayScheduler::Random),
        ("adversarial", DelayScheduler::DelayHonest),
    ];

    // Network axis: the synchronous baseline (which doubles as the
    // p_drop = 0 row), the strictly positive drop rates, and the delay
    // bounds under both schedulers.
    let mut networks = vec![NetworkSpec::Synchronous];
    networks.extend(
        p_drops
            .iter()
            .filter(|p| **p > 0.0)
            .map(|&p_drop| NetworkSpec::LossyLinks { p_drop }),
    );
    for &(_, scheduler) in &schedulers {
        networks.extend(delays.iter().map(|&max_delay| NetworkSpec::BoundedDelay {
            max_delay,
            scheduler,
        }));
    }

    let result = CampaignSpec::new("e16-network")
        .sizes(&[(n, t)])
        .protocols(&[PROTOCOLS[0].1, PROTOCOLS[1].1, PROTOCOLS[2].1])
        .attacks(&[AttackSpec::FullAttack])
        .networks(&networks)
        .round_cap(RoundCap::PerNode(24))
        .seed(params.seed)
        .stop(stop)
        .run();

    let cell = |proto: &ProtocolSpec, net: &NetworkSpec| {
        result
            .find(|c| c.protocol == protocol_key(proto) && c.network == network_key(net))
            .expect("cell present")
    };

    // Per-protocol synchronous baselines.
    let baseline: Vec<f64> = PROTOCOLS
        .iter()
        .map(|(_, p)| cell(p, &NetworkSpec::Synchronous).mean_rounds())
        .collect();

    // Sweep 1: drop probability.
    let mut loss_table = Table::new(
        "Lossy links: drop probability sweep (full attack)",
        &[
            "p_drop",
            "protocol",
            "agree%",
            "term%",
            "mean rounds",
            "blow-up",
            "delivery%",
        ],
    );
    let mut loss_series: Vec<Series> = PROTOCOLS
        .iter()
        .map(|(name, _)| Series::new(format!("loss/{name}")))
        .collect();
    for &p_drop in p_drops {
        for (i, (name, proto)) in PROTOCOLS.iter().enumerate() {
            let net = if p_drop == 0.0 {
                NetworkSpec::Synchronous
            } else {
                NetworkSpec::LossyLinks { p_drop }
            };
            let c = cell(proto, &net);
            let agree = c.agreement_rate();
            loss_series[i].push(p_drop, agree * 100.0);
            loss_table.push_row(vec![
                p_drop.into(),
                (*name).into(),
                (agree * 100.0).into(),
                (c.termination_rate() * 100.0).into(),
                c.mean_rounds().into(),
                (c.mean_rounds() / baseline[i]).into(),
                (c.delivery_rate() * 100.0).into(),
            ]);
        }
    }
    report.tables.push(loss_table);
    report.series.extend(loss_series);

    // Sweep 2: delay bound, random and adversarial schedulers.
    let mut delay_table = Table::new(
        "Bounded delay: delay-bound sweep (full attack)",
        &[
            "max_delay",
            "scheduler",
            "protocol",
            "agree%",
            "term%",
            "mean rounds",
            "blow-up",
        ],
    );
    for &max_delay in delays {
        for &(sched_name, scheduler) in &schedulers {
            for (i, (name, proto)) in PROTOCOLS.iter().enumerate() {
                let c = cell(
                    proto,
                    &NetworkSpec::BoundedDelay {
                        max_delay,
                        scheduler,
                    },
                );
                delay_table.push_row(vec![
                    (max_delay as usize).into(),
                    sched_name.into(),
                    (*name).into(),
                    (c.agreement_rate() * 100.0).into(),
                    (c.termination_rate() * 100.0).into(),
                    c.mean_rounds().into(),
                    (c.mean_rounds() / baseline[i]).into(),
                ]);
            }
        }
    }
    report.tables.push(delay_table);

    report.note(format!(
        "campaign `{}`: {} trials over {} cells (adaptive stopping)",
        result.name,
        result.total_trials(),
        result.cells.len()
    ));
    report.note(
        "The paper's guarantees assume lock-step synchrony; this experiment measures \
         degradation outside the model. Observed shape: at p_drop = 0 every protocol matches \
         its synchronous baseline (blow-up 1.0, delivery 100%). Under loss, the committee \
         protocols keep agreement (they only ever decide on supermajority evidence) but \
         termination collapses — lost votes starve the committee quorums, so rounds blow up \
         toward the cap — while Phase-King's fixed schedule ends on time. Under bounded \
         delay the asymmetry sharpens: the round-tagged committee protocols treat late \
         messages as missing (they arrive in a later protocol step), so even a 1-round \
         delay bound stalls termination, whereas Phase-King terminates on schedule but \
         loses agreement — fastest under the adversarial scheduler, which holds exactly \
         the honest traffic to the bound while expediting Byzantine messages."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_e16_shapes_and_baseline_sanity() {
        let r = run(&ExpParams {
            quick: true,
            seed: 16,
        });
        assert_eq!(r.tables.len(), 2);
        // 3 p_drop values × 3 protocols.
        assert_eq!(r.tables[0].rows.len(), 9);
        // 2 delays × 2 schedulers × 3 protocols.
        assert_eq!(r.tables[1].rows.len(), 12);
        assert_eq!(r.series.len(), 3);
        // The p_drop = 0 rows are the synchronous baseline: blow-up 1.0
        // and full delivery.
        for row in &r.tables[0].rows[..3] {
            if let aba_analysis::table::Cell::Float(blowup) = &row[5] {
                assert!((blowup - 1.0).abs() < 1e-9, "baseline blow-up {blowup}");
            } else {
                panic!("expected float blow-up cell");
            }
            if let aba_analysis::table::Cell::Float(delivery) = &row[6] {
                assert!((delivery - 100.0).abs() < 1e-9);
            } else {
                panic!("expected float delivery cell");
            }
        }
    }
}
