//! E11 — Committee-constant α ablation (Theorem 2 proof / Table 3).
//!
//! The protocol sets `c = min{α·⌈t²/n⌉·log n, 3α·t/log n}` committees for
//! a constant `α ≥ 1` "chosen from the analysis" (the proof needs
//! `α − 4√α ≥ γ` for failure probability `n^−γ`, i.e. a large constant;
//! in practice far smaller values suffice). This ablation sweeps `α` and
//! reports the agreement rate of the whp variant (which fails if `c`
//! phases are too few) and the cost in rounds.

use super::{agreement_rate, mean_rounds, termination_rate, ExpParams};
use aba_agreement::BaConfig;
use aba_analysis::Table;
use aba_harness::Report;
use aba_harness::ScenarioBuilder;
use aba_harness::{AttackSpec, ProtocolSpec};

/// Runs E11.
pub fn run(params: &ExpParams) -> Report {
    let mut report = Report::new("E11", "Committee constant alpha ablation");
    let (n, t, trials) = if params.quick {
        (64, 21, 8)
    } else {
        (256, 85, 30)
    };
    let alphas = [0.5, 1.0, 2.0, 4.0, 8.0];

    let mut table = Table::new(
        "Whp-variant quality vs alpha",
        &[
            "alpha",
            "phases c",
            "committee size s",
            "agree%",
            "term%",
            "mean rounds",
        ],
    );

    for alpha in alphas {
        let cfg = BaConfig::paper(n, t, alpha).expect("valid (n,t)");
        let results = ScenarioBuilder::new(n, t)
            .protocol(ProtocolSpec::Paper { alpha })
            .adversary(AttackSpec::FullAttack)
            .seed(params.seed)
            .max_rounds((16 * n) as u64)
            .trials(trials)
            .run_batch()
            .results;
        table.push_row(vec![
            alpha.into(),
            (cfg.phases as usize).into(),
            cfg.plan.committee_size().into(),
            (agreement_rate(&results) * 100.0).into(),
            (termination_rate(&results) * 100.0).into(),
            mean_rounds(&results).into(),
        ]);
    }

    report.tables.push(table);
    report.note(
        "Larger alpha buys more committees (phases), hence more chances for a good phase and a \
         smaller whp failure probability — at the price of a longer worst-case schedule. PASS \
         iff agreement rate is non-decreasing in alpha and reaches ~100% from moderate alpha on."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_e11_has_all_alphas() {
        let r = run(&ExpParams {
            quick: true,
            seed: 11,
        });
        assert_eq!(r.tables[0].rows.len(), 5);
    }
}
