//! E4 — Crossover against Chor–Coan (Section 1.2 / Figure 3).
//!
//! Claim: the paper's bound strictly improves on Chor–Coan's for
//! `t = o(n/log²n)` and matches it asymptotically for
//! `n/log²n ≤ t < n/3`. We plot the measured round ratio
//! `R_chor-coan / R_paper` against `t` (same adversary, same seeds) and
//! mark the regime boundary: the ratio should be well above 1 at small
//! `t` and decay toward ~1 as `t` crosses the boundary.

use super::{log_sweep, mean_rounds, ExpParams};
use aba_analysis::{theory, Series, Table};
use aba_harness::Report;
use aba_harness::ScenarioBuilder;
use aba_harness::{AttackSpec, ProtocolSpec};

/// Runs E4.
pub fn run(params: &ExpParams) -> Report {
    let mut report = Report::new("E4", "Crossover vs Chor-Coan (Section 1.2)");
    let (n, trials) = if params.quick { (128, 4) } else { (512, 12) };
    let ts = log_sweep(2, n / 4, if params.quick { 4 } else { 8 });

    let mut ratio_series = Series::new("R_cc / R_paper (measured)");
    let mut bound_ratio = Series::new("bound ratio (theory)");
    let mut table = Table::new(
        "Round ratio Chor-Coan / paper",
        &["t", "paper rounds", "cc rounds", "ratio", "bound ratio"],
    );

    for &t in &ts {
        let max_rounds = (8 * n) as u64;
        let paper = mean_rounds(
            &ScenarioBuilder::new(n, t)
                .protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
                .adversary(AttackSpec::FullAttack)
                .seed(params.seed)
                .max_rounds(max_rounds)
                .trials(trials)
                .run_batch()
                .results,
        );
        let cc = mean_rounds(
            &ScenarioBuilder::new(n, t)
                .protocol(ProtocolSpec::ChorCoan { beta: 1.0 })
                .adversary(AttackSpec::FullAttack)
                .seed(params.seed)
                .max_rounds(max_rounds)
                .trials(trials)
                .run_batch()
                .results,
        );
        let ratio = cc / paper;
        let b_ratio = theory::chor_coan_bound(n, t) / theory::paper_bound(n, t);
        ratio_series.push(t as f64, ratio);
        bound_ratio.push(t as f64, b_ratio);
        table.push_row(vec![
            t.into(),
            paper.into(),
            cc.into(),
            ratio.into(),
            b_ratio.into(),
        ]);
    }

    let boundary = theory::regime_boundary(n);
    report.series.push(ratio_series);
    report.series.push(bound_ratio);
    report.tables.push(table);
    report.note(format!(
        "Regime boundary t* = n/log²n = {boundary:.1} for n = {n}: the theoretical advantage \
         vanishes above it."
    ));
    report.note(
        "Paper claim: strict improvement for t = o(n/log²n), asymptotic match above. PASS iff \
         the measured ratio is > 1 at the small-t end and decays toward ~1 with growing t."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_e4_has_ratio_series() {
        let r = run(&ExpParams {
            quick: true,
            seed: 2,
        });
        assert_eq!(r.series.len(), 2);
        assert!(!r.tables[0].rows.is_empty());
    }
}
