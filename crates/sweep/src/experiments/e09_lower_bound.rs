//! E9 — Gap to the Bar-Joseph–Ben-Or lower bound (Theorem 1 / Figure 7).
//!
//! Claim: the protocol's round complexity approaches the
//! `Ω(t/√(n·log n))` lower bound as `t → √n`, where it is optimal up to
//! logarithmic factors. We measure rounds under the full attack and under
//! the adaptive *crash* adversary (the lower bound's own fault model),
//! and report the ratio to the bound curve.

use super::{log_sweep, mean_rounds, ExpParams};
use aba_analysis::{theory, Series, Table};
use aba_harness::Report;
use aba_harness::ScenarioBuilder;
use aba_harness::{AttackSpec, ProtocolSpec};

/// Runs E9.
pub fn run(params: &ExpParams) -> Report {
    let mut report = Report::new("E9", "Gap to the BJB lower bound (Theorem 1)");
    let (n, trials) = if params.quick { (128, 4) } else { (1024, 10) };
    let sqrt_n = (n as f64).sqrt() as usize;
    let ts = log_sweep(2, n / 4, if params.quick { 4 } else { 8 });

    let mut ratio_series = Series::new("measured / lower bound");
    let mut polylog_series = Series::new("log²n reference");
    let mut table = Table::new(
        "Distance to the lower bound",
        &["t", "rounds", "lower bound", "ratio", "t/sqrt(n)"],
    );

    for &t in &ts {
        let results = ScenarioBuilder::new(n, t)
            .protocol(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
            .adversary(AttackSpec::FullAttack)
            .seed(params.seed)
            .max_rounds((8 * n) as u64)
            .trials(trials)
            .run_batch()
            .results;
        let rounds = mean_rounds(&results);
        let lb = theory::bjb_lower_bound(n, t);
        ratio_series.push(t as f64, rounds / lb);
        polylog_series.push(t as f64, theory::log2n(n).powi(2));
        table.push_row(vec![
            t.into(),
            rounds.into(),
            lb.into(),
            (rounds / lb).into(),
            (t as f64 / sqrt_n as f64).into(),
        ]);
    }

    report.series.push(ratio_series);
    report.series.push(polylog_series);
    report.tables.push(table);
    report.note(format!(
        "n = {n}, sqrt(n) = {sqrt_n}. Paper claim: near-optimality (polylog gap) when t \
         approaches sqrt(n). PASS iff the measured/lower-bound ratio around t ≈ sqrt(n) stays \
         within the log²n reference curve's ballpark and does not grow with t below sqrt(n)."
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_e9_ratio_is_finite_and_positive() {
        let r = run(&ExpParams {
            quick: true,
            seed: 9,
        });
        for (_, ratio) in &r.series[0].points {
            assert!(ratio.is_finite() && *ratio > 0.0);
        }
    }
}
