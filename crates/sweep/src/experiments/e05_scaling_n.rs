//! E5 — Scaling at `t = n^{3/4}` (Section 1.2 / Figure 4).
//!
//! Claim (the paper's worked example): at `t = n^{3/4}` the paper's
//! protocol takes `Õ(√n)` rounds while Chor–Coan needs `Õ(n^{3/4})` —
//! asymptotically separated curves. We sweep `n` with `t = ⌊n^{3/4}⌋`
//! as one campaign (both protocols × all sizes in a single
//! work-stealing grid; the large-`n` Chor–Coan tails no longer
//! serialize the sweep) and plot both measured round counts next to
//! both theory shapes.

use super::ExpParams;
use crate::spec::protocol_key;
use crate::{CampaignSpec, RoundCap, StopRule};
use aba_analysis::{fit_loglog, theory, Series, Table};
use aba_harness::Report;
use aba_harness::{AttackSpec, PlaneSpec, ProtocolSpec};

const PROTOCOLS: [ProtocolSpec; 2] = [
    ProtocolSpec::PaperLasVegas { alpha: 2.0 },
    ProtocolSpec::ChorCoan { beta: 1.0 },
];

/// Sub-quadratic protocols for the sparse-plane large-`n` campaign.
const SPARSE_PROTOCOLS: [ProtocolSpec; 2] = [
    ProtocolSpec::SamplingMajority { iters: 16 },
    ProtocolSpec::KingSaia { iters: 16 },
];

/// Runs E5.
pub fn run(params: &ExpParams) -> Report {
    let mut report = Report::new("E5", "Scaling at t = n^0.75 (Section 1.2)");
    let ns: &[usize] = params.pick(&[128, 256], &[128, 256, 512, 1024, 2048]);
    // Quick mode pins the old fixed trial count; full mode lets the
    // stopping rule concentrate trials on the noisy large-n cells.
    let stop = params.pick(
        StopRule::fixed(3),
        StopRule::adaptive(8, 4, 24).agree_half_width(None),
    );
    let sizes: Vec<(usize, usize)> = ns
        .iter()
        .map(|&n| (n, ((n as f64).powf(0.75) as usize).min((n - 1) / 3)))
        .collect();

    let result = CampaignSpec::new("e05-scaling")
        .sizes(&sizes)
        .protocols(&PROTOCOLS)
        .attacks(&[AttackSpec::FullAttack])
        .round_cap(RoundCap::PerNode(8))
        .seed(params.seed)
        .stop(stop)
        .run();

    let mut paper_series = Series::new("paper measured");
    let mut cc_series = Series::new("chor-coan measured");
    let mut paper_bound = Series::new("paper bound");
    let mut cc_bound = Series::new("cc bound");
    let mut table = Table::new(
        "Rounds at t = n^0.75",
        &["n", "t", "paper", "chor-coan", "paper bound", "cc bound"],
    );

    for &(n, t) in &sizes {
        let mean = |p: &ProtocolSpec| {
            result
                .find(|c| c.n == n && c.protocol == protocol_key(p))
                .expect("cell present")
                .mean_rounds()
        };
        let paper = mean(&PROTOCOLS[0]);
        let cc = mean(&PROTOCOLS[1]);
        paper_series.push(n as f64, paper);
        cc_series.push(n as f64, cc);
        paper_bound.push(n as f64, theory::paper_bound(n, t));
        cc_bound.push(n as f64, theory::chor_coan_bound(n, t));
        table.push_row(vec![
            n.into(),
            t.into(),
            paper.into(),
            cc.into(),
            theory::paper_bound(n, t).into(),
            theory::chor_coan_bound(n, t).into(),
        ]);
    }

    if let Some(fit) = fit_loglog(&paper_series.points) {
        report.note(format!(
            "paper protocol: rounds ~ n^{:.2} (r²={:.3}); theory predicts an exponent well \
             below Chor-Coan's",
            fit.slope, fit.r_squared
        ));
    }
    if let Some(fit) = fit_loglog(&cc_series.points) {
        report.note(format!(
            "chor-coan: rounds ~ n^{:.2} (r²={:.3})",
            fit.slope, fit.r_squared
        ));
    }
    report.note(format!(
        "campaign `{}`: {} trials over {} cells (adaptive stopping)",
        result.name,
        result.total_trials(),
        result.cells.len()
    ));
    report.note(
        "Paper claim: at t = n^0.75 the new protocol is polynomially faster — asymptotically. \
         Honest caveat: with base-2 logs the separation n^0.5·log n < n^0.75/log n only opens \
         at n^0.25 > log²n (n ≳ 2^48); at simulable n the example point sits in the parity \
         regime where the paper's own bound says the curves match. PASS therefore iff the \
         paper protocol sits at or below Chor-Coan at every n and both follow the bound's \
         shape; the asymptotic separation is validated analytically in aba-analysis::theory \
         (test `paper_example_point`)."
            .to_string(),
    );
    report.series.push(paper_series);
    report.series.push(cc_series);
    report.series.push(paper_bound);
    report.series.push(cc_bound);
    report.tables.push(table);

    sparse_large_n(params, &mut report);
    report
}

/// Large-`n` extension on the sparse plane: the sampled-committee
/// protocols at n = 16 384 (and 65 536 in full mode) with every armed
/// oracle attached. The dense planes would need an n×n allocation per
/// round here; the sparse plane never materializes one. The attack is
/// a steady adaptive crash — an eager sampling poison would itself
/// send Θ(n²) point-to-point replies and bury the sub-quadratic wire
/// measurement under adversary traffic.
fn sparse_large_n(params: &ExpParams, report: &mut Report) {
    let ns: &[usize] = params.pick(&[16_384], &[16_384, 65_536]);
    let sizes: Vec<(usize, usize)> = ns
        .iter()
        .map(|&n| (n, ((n as f64).powf(0.75) as usize).min((n - 1) / 3)))
        .collect();

    let result = CampaignSpec::new("e05-scaling-sparse")
        .sizes(&sizes)
        .protocols(&SPARSE_PROTOCOLS)
        .attacks(&[AttackSpec::Crash { per_round: 1 }])
        .round_cap(RoundCap::Fixed(256))
        .seed(params.seed)
        .stop(StopRule::fixed(1))
        .oracles(true)
        .plane(PlaneSpec::Sparse)
        .run();

    let mut table = Table::new(
        "Sparse plane at large n (per-node messages, oracles armed)",
        &["n", "t", "protocol", "rounds", "msgs/node", "violations"],
    );
    for &(n, t) in &sizes {
        for p in &SPARSE_PROTOCOLS {
            let cell = result
                .find(|c| c.n == n && c.protocol == protocol_key(p))
                .expect("sparse cell present");
            let per_node = cell.mean_messages() / n as f64;
            // The acceptance bar: sub-quadratic total traffic, i.e.
            // strictly sub-linear per node. n/4 is the generous line —
            // measured values sit orders of magnitude below it.
            assert!(
                per_node < n as f64 / 4.0,
                "{} at n={n}: {per_node:.1} msgs/node is not sub-quadratic",
                cell.protocol
            );
            assert_eq!(
                cell.oracle_violations, 0,
                "{} at n={n}: armed oracles reported violations",
                cell.protocol
            );
            table.push_row(vec![
                n.into(),
                t.into(),
                cell.protocol.clone().into(),
                cell.mean_rounds().into(),
                per_node.into(),
                cell.oracle_violations.into(),
            ]);
        }
    }
    report.note(format!(
        "sparse campaign `{}`: {} trials over {} cells, congest + budget oracles armed, \
         all clean; per-node message counts asserted < n/4 (sub-quadratic wire)",
        result.name,
        result.total_trials(),
        result.cells.len()
    ));
    report.tables.push(table);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_e5_produces_four_series() {
        let r = run(&ExpParams {
            quick: true,
            seed: 4,
        });
        assert_eq!(r.series.len(), 4);
        assert_eq!(r.tables[0].rows.len(), 2);
        // Sparse large-n extension: one size × two protocols in quick
        // mode, every row oracle-clean (the sub-quadratic per-node
        // bound is asserted inside `sparse_large_n`).
        let sparse = &r.tables[1];
        assert_eq!(sparse.rows.len(), 2);
    }
}
