//! E15 — Coin-source ablation: why shared coins matter (paper §1, the
//! premise).
//!
//! The entire line of work from Rabin \[28\] through Chor–Coan to this
//! paper exists because *common* randomness collapses the convergence
//! problem. This ablation swaps only the case-3 coin of the identical
//! phase machine:
//!
//! * **committee** — Algorithm 2 (the paper);
//! * **dealer** — a perfect shared coin (Rabin's trusted dealer);
//! * **private** — every node flips alone (Ben-Or-style, reference
//!   &#91;5&#93; of the paper): agreement then needs a binomial deviation
//!   aligning an `n − t` supermajority, so expected rounds explode with
//!   `n` while the shared-coin variants stay flat.

use super::{mean_rounds, termination_rate, ExpParams};
use aba_analysis::{Series, Table};
use aba_harness::Report;
use aba_harness::ScenarioBuilder;
use aba_harness::{AttackSpec, ProtocolSpec};

/// Runs E15.
pub fn run(params: &ExpParams) -> Report {
    let mut report = Report::new(
        "E15",
        "Coin-source ablation: committee vs dealer vs private",
    );
    let (ns, trials): (&[usize], usize) = if params.quick {
        (&[16, 32], 6)
    } else {
        (&[16, 24, 32, 48, 64, 96], 15)
    };

    let mut committee = Series::new("committee (paper)");
    let mut dealer = Series::new("dealer (Rabin)");
    let mut private = Series::new("private (Ben-Or)");
    let mut table = Table::new(
        "Mean rounds to agreement (split inputs, split-vote attack)",
        &["n", "t", "committee", "dealer", "private", "private term%"],
    );

    for &n in ns {
        let t = n / 4;
        // Private coins take exponentially long at larger n; censor at a
        // generous cap and report the termination rate — the censoring
        // *is* the result.
        let cap = (50 * n) as u64;
        let mk = |proto| {
            ScenarioBuilder::new(n, t)
                .protocol(proto)
                .adversary(AttackSpec::SplitVote)
                .seed(params.seed)
                .max_rounds(cap)
                .trials(trials)
        };
        let com = mk(ProtocolSpec::PaperLasVegas { alpha: 2.0 })
            .run_batch()
            .results;
        let dea = mk(ProtocolSpec::RabinDealer).run_batch().results;
        let pri = mk(ProtocolSpec::BenOrPrivate).run_batch().results;
        let (rc, rd, rp) = (mean_rounds(&com), mean_rounds(&dea), mean_rounds(&pri));
        committee.push(n as f64, rc);
        dealer.push(n as f64, rd);
        private.push(n as f64, rp);
        table.push_row(vec![
            n.into(),
            t.into(),
            rc.into(),
            rd.into(),
            rp.into(),
            (termination_rate(&pri) * 100.0).into(),
        ]);
    }

    report.series.push(committee);
    report.series.push(dealer);
    report.series.push(private);
    report.tables.push(table);
    report.note(
        "Same phase machine, same thresholds, same adversary — only the case-3 coin differs. \
         PASS iff the private-coin column grows explosively with n (its per-phase success is \
         the probability a binomial deviation aligns n−t local flips) while committee and \
         dealer stay within a small constant of each other."
            .to_string(),
    );
    report.note(
        "This is the paper's premise made measurable: a committee coin of the right size \
         recovers (a constant fraction of) the dealer's power without any trusted setup, \
         even against an adaptive rushing adversary."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_e15_private_is_slowest() {
        let r = run(&ExpParams {
            quick: true,
            seed: 15,
        });
        let committee = &r.series[0].points;
        let private = &r.series[2].points;
        // At the largest quick n, private coins must cost at least as
        // much as the committee coin.
        let (_, c_last) = committee.last().unwrap();
        let (_, p_last) = private.last().unwrap();
        assert!(
            p_last >= c_last,
            "private ({p_last}) should not beat committee ({c_last})"
        );
    }
}
