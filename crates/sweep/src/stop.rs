//! Sequential stopping: how many trials each campaign cell deserves.
//!
//! The paper's claims are probabilistic — agreement holds w.h.p., round
//! counts are Las Vegas — so campaign cells estimate proportions and
//! tails. A fixed trial count wastes most samples on cells that are
//! already precise (deterministic baselines, saturated agreement) while
//! starving the interesting ones. The [`StopRule`] implements a
//! per-cell sequential stopping rule: after each completed *batch* of
//! trials, stop as soon as either precision target is met — the
//! (unclamped) Wilson 95% half-width on the agreement probability, or
//! the relative 95% CI half-width on mean rounds — up to a hard trial
//! cap.
//!
//! Decisions are only ever evaluated on the **complete prefix** of
//! trials `0..k` (in trial-index order) at batch boundaries, never on
//! whichever trials happen to have finished first. This is what makes
//! the executor's output independent of worker count and scheduling:
//! the set of trials a cell runs is a pure function of the cell's
//! results, which are a pure function of its derived seeds.

use aba_analysis::stats::{Proportion, Summary};
use aba_harness::TrialResult;

/// Per-cell sequential stopping rule.
#[derive(Debug, Clone, PartialEq)]
pub struct StopRule {
    /// Trials always run before the first decision (≥ 1).
    pub min_trials: usize,
    /// Trials added per round of the rule after the first (≥ 1).
    pub batch: usize,
    /// Hard cap on trials per cell (≥ `min_trials`).
    pub max_trials: usize,
    /// Target unclamped Wilson 95% half-width on the agreement
    /// probability (`None` disables the criterion).
    pub agree_half_width: Option<f64>,
    /// Target *relative* 95% CI half-width on mean rounds,
    /// `ci95_half_width / mean` (`None` disables the criterion).
    pub rounds_rel_half_width: Option<f64>,
}

impl Default for StopRule {
    /// Adaptive default: 8-trial batches, stop at a 0.1 Wilson
    /// half-width on agreement or a 10% relative CI on mean rounds,
    /// cap at 64 trials.
    fn default() -> Self {
        StopRule {
            min_trials: 8,
            batch: 8,
            max_trials: 64,
            agree_half_width: Some(0.1),
            rounds_rel_half_width: Some(0.1),
        }
    }
}

/// Outcome of one stopping decision at a batch boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopDecision {
    /// Run `next_batch` more trials, then decide again.
    Continue {
        /// Number of additional trials to schedule.
        next_batch: usize,
    },
    /// The cell is done.
    Stop {
        /// Which criterion fired (recorded in the cell summary):
        /// `"agree-ci"`, `"rounds-ci"`, `"fixed"`, or `"trial-cap"`.
        reason: &'static str,
    },
}

impl StopRule {
    /// A degenerate rule running exactly `k` trials — what migrated
    /// experiments use in `--quick` mode, and the right choice for
    /// fixed-work benchmarking.
    pub fn fixed(k: usize) -> Self {
        assert!(k >= 1, "a cell needs at least one trial");
        StopRule {
            min_trials: k,
            batch: k,
            max_trials: k,
            agree_half_width: None,
            rounds_rel_half_width: None,
        }
    }

    /// An adaptive rule with explicit schedule; precision targets start
    /// at the defaults and can be overridden with
    /// [`StopRule::agree_half_width`] / [`StopRule::rounds_rel_half_width`].
    pub fn adaptive(min_trials: usize, batch: usize, max_trials: usize) -> Self {
        StopRule {
            min_trials,
            batch,
            max_trials,
            ..StopRule::default()
        }
    }

    /// Sets the Wilson half-width target on agreement probability.
    #[must_use]
    pub fn agree_half_width(mut self, target: Option<f64>) -> Self {
        self.agree_half_width = target;
        self
    }

    /// Sets the relative CI half-width target on mean rounds.
    #[must_use]
    pub fn rounds_rel_half_width(mut self, target: Option<f64>) -> Self {
        self.rounds_rel_half_width = target;
        self
    }

    /// Validates the schedule invariants.
    ///
    /// # Panics
    ///
    /// Panics when `min_trials < 1`, `batch < 1`, or
    /// `max_trials < min_trials`.
    pub fn validate(&self) {
        assert!(self.min_trials >= 1, "min_trials must be ≥ 1");
        assert!(self.batch >= 1, "batch must be ≥ 1");
        assert!(
            self.max_trials >= self.min_trials,
            "max_trials {} < min_trials {}",
            self.max_trials,
            self.min_trials
        );
    }

    /// Decides at a batch boundary, given the complete ordered prefix of
    /// the cell's trials. Pure: same prefix, same decision.
    pub fn decide(&self, completed: &[TrialResult]) -> StopDecision {
        let k = completed.len();
        debug_assert!(k >= self.min_trials.min(self.max_trials));
        if k >= self.min_trials {
            if let Some(target) = self.agree_half_width {
                let agreements = completed.iter().filter(|r| r.agreement).count();
                let p = Proportion::of(agreements, k).expect("k ≥ 1");
                if p.half_width() <= target {
                    return StopDecision::Stop { reason: "agree-ci" };
                }
            }
            // The rounds criterion needs k ≥ 2: a single sample has
            // std_dev 0 by convention, which would read as "zero
            // uncertainty" and finalize a noisy cell off one trial.
            if let Some(target) = self.rounds_rel_half_width {
                if k >= 2 {
                    let rounds: Vec<f64> = completed.iter().map(|r| r.rounds as f64).collect();
                    let s = Summary::of(&rounds).expect("k ≥ 1");
                    if s.mean > 0.0 && s.ci95_half_width() / s.mean <= target {
                        return StopDecision::Stop {
                            reason: "rounds-ci",
                        };
                    }
                }
            }
            if self.agree_half_width.is_none() && self.rounds_rel_half_width.is_none() {
                return StopDecision::Stop { reason: "fixed" };
            }
        }
        if k >= self.max_trials {
            return StopDecision::Stop {
                reason: "trial-cap",
            };
        }
        StopDecision::Continue {
            next_batch: self.batch.min(self.max_trials - k),
        }
    }

    /// Canonical description, stored in checkpoints: a checkpoint is
    /// only resumable under the rule that produced it.
    pub fn fingerprint(&self) -> String {
        let opt = |o: Option<f64>| o.map_or("off".to_string(), |v| format!("{v}"));
        format!(
            "min{}|batch{}|max{}|agree{}|rounds{}",
            self.min_trials,
            self.batch,
            self.max_trials,
            opt(self.agree_half_width),
            opt(self.rounds_rel_half_width)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trial(rounds: u64, agreement: bool) -> TrialResult {
        TrialResult {
            seed: 0,
            rounds,
            terminated: true,
            agreement,
            validity: None,
            decision: None,
            corruptions: 0,
            messages: 0,
            bits: 0,
            max_edge_bits: 0,
            agree_fraction: 1.0,
            delivered: 0,
            dropped: 0,
            delayed: 0,
            adversary: "test",
            downgraded: false,
            network: "sync",
        }
    }

    #[test]
    fn fixed_rule_stops_exactly_at_k() {
        let rule = StopRule::fixed(6);
        rule.validate();
        let trials: Vec<TrialResult> = (0..6).map(|i| trial(10 + i, true)).collect();
        assert_eq!(rule.decide(&trials), StopDecision::Stop { reason: "fixed" });
    }

    #[test]
    fn deterministic_cells_stop_at_min_trials() {
        // Zero round variance → relative CI is 0 → stops immediately.
        let rule = StopRule::adaptive(4, 8, 64).agree_half_width(None);
        let trials: Vec<TrialResult> = (0..4).map(|_| trial(12, true)).collect();
        assert_eq!(
            rule.decide(&trials),
            StopDecision::Stop {
                reason: "rounds-ci"
            }
        );
    }

    #[test]
    fn noisy_cells_continue_to_the_cap() {
        // Alternating extremes keep the relative CI wide; agreement
        // flapping keeps the Wilson interval wide.
        let rule = StopRule::adaptive(4, 4, 12);
        let mk = |k: usize| -> Vec<TrialResult> {
            (0..k)
                .map(|i| trial(if i % 2 == 0 { 1 } else { 400 }, i % 2 == 0))
                .collect()
        };
        assert_eq!(
            rule.decide(&mk(4)),
            StopDecision::Continue { next_batch: 4 }
        );
        assert_eq!(
            rule.decide(&mk(8)),
            StopDecision::Continue { next_batch: 4 }
        );
        assert_eq!(
            rule.decide(&mk(12)),
            StopDecision::Stop {
                reason: "trial-cap"
            }
        );
    }

    #[test]
    fn wilson_criterion_fires_once_precise() {
        // All-agree cells: the unclamped Wilson half-width crosses 0.1
        // strictly between 8 and 16 trials (0.162 at 8, 0.097 at 16).
        let rule = StopRule::adaptive(8, 8, 64).rounds_rel_half_width(None);
        let all_agree = |k: usize| -> Vec<TrialResult> {
            (0..k).map(|i| trial(1 + (i as u64 % 97), true)).collect()
        };
        assert_eq!(
            rule.decide(&all_agree(8)),
            StopDecision::Continue { next_batch: 8 }
        );
        assert_eq!(
            rule.decide(&all_agree(16)),
            StopDecision::Stop { reason: "agree-ci" }
        );
    }

    #[test]
    fn next_batch_never_overshoots_the_cap() {
        let rule = StopRule::adaptive(4, 8, 10);
        let noisy: Vec<TrialResult> = (0..4)
            .map(|i| trial(if i % 2 == 0 { 1 } else { 400 }, i % 2 == 0))
            .collect();
        assert_eq!(
            rule.decide(&noisy),
            StopDecision::Continue { next_batch: 6 }
        );
    }

    #[test]
    fn one_trial_is_never_zero_uncertainty() {
        // min_trials = 1 with only the rounds criterion: a single
        // sample must not read as converged.
        let rule = StopRule::adaptive(1, 4, 64).agree_half_width(None);
        assert_eq!(
            rule.decide(&[trial(17, true)]),
            StopDecision::Continue { next_batch: 4 }
        );
        // Two identical samples may stop (true zero variance).
        assert_eq!(
            rule.decide(&[trial(17, true), trial(17, true)]),
            StopDecision::Stop {
                reason: "rounds-ci"
            }
        );
    }

    #[test]
    fn fingerprints_distinguish_rules() {
        assert_ne!(
            StopRule::fixed(6).fingerprint(),
            StopRule::fixed(8).fingerprint()
        );
        assert_ne!(
            StopRule::default().fingerprint(),
            StopRule::default().agree_half_width(None).fingerprint()
        );
    }

    #[test]
    #[should_panic(expected = "max_trials")]
    fn invalid_schedule_is_rejected() {
        StopRule::adaptive(8, 4, 4).validate();
    }
}
