//! `aba-experiments` — regenerate the tables and figures of
//! EXPERIMENTS.md.
//!
//! ```text
//! aba-experiments [--exp all|e1|e2|...] [--quick] [--seed N] [--out DIR] [--list]
//!                 [--quiet] [--verbose]
//! ```

use aba_obs::log::{self, Verbosity};
use aba_sweep::experiments::{self, ExpParams};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    exp: String,
    quick: bool,
    seed: u64,
    out: Option<PathBuf>,
    list: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        exp: "all".to_string(),
        quick: false,
        seed: 0,
        out: None,
        list: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--exp" => args.exp = it.next().ok_or("--exp needs a value")?,
            "--quick" => args.quick = true,
            "--seed" => {
                args.seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
            }
            "--out" => args.out = Some(PathBuf::from(it.next().ok_or("--out needs a value")?)),
            "--list" => args.list = true,
            "--quiet" => log::set_verbosity(Verbosity::Quiet),
            "--verbose" => log::set_verbosity(Verbosity::Verbose),
            "--help" | "-h" => {
                println!(
                    "usage: aba-experiments [--exp all|e1..e16] [--quick] [--seed N] \
                     [--out DIR] [--list] [--quiet] [--verbose]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    if args.list {
        for def in experiments::all() {
            println!("{:4}  {}", def.id, def.title);
        }
        return ExitCode::SUCCESS;
    }

    let params = ExpParams {
        quick: args.quick,
        seed: args.seed,
    };

    let defs: Vec<_> = if args.exp == "all" {
        experiments::all()
    } else {
        match experiments::by_id(&args.exp) {
            Some(d) => vec![d],
            None => {
                eprintln!("unknown experiment '{}'; try --list", args.exp);
                return ExitCode::FAILURE;
            }
        }
    };

    for def in defs {
        log::info(&format!("running {} — {} ...", def.id, def.title));
        #[allow(clippy::disallowed_methods)] // stderr progress timing, never in results
        let started = std::time::Instant::now();
        let report = (def.runner)(&params);
        log::info(&format!(
            "  done in {:.1}s",
            started.elapsed().as_secs_f64()
        ));
        println!("{}", report.to_markdown());
        if let Some(dir) = &args.out {
            if let Err(e) = report.write_to(dir) {
                log::warn(&format!("error writing {}: {e}", def.id));
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
