//! The sweep executor's **timing channel**: wall-clock trial spans,
//! per-cell latency percentiles, and scheduler pressure counters.
//!
//! This file is one of the two registered wall-clock files (aba-lint's
//! `wall-clock-in-sim` scoping — `TIMING_PATHS` in
//! `crates/lint/src/rules.rs`). Its numbers vary run to run and machine
//! to machine by design, so they are written to their own files
//! (`{name}.timing.csv`, `{name}.profile.json`,
//! `{name}.timing.collapsed.txt`) and never into the deterministic
//! CSV/JSON/checkpoint artifacts, which stay byte-identical with or
//! without profiling.
//!
//! Zero cost when disabled: the executor constructs an [`ExecProfiler`]
//! only when [`RunOptions::profile_dir`](crate::RunOptions) is set, so
//! an unprofiled campaign performs no clock reads and takes no extra
//! locks.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Mutex;

use aba_obs::export::{chrome_trace_from_spans, collapsed_stacks, SpanRecord};
use aba_obs::log;
use aba_obs::timing::{summarize_latencies, LatencySummary, WallClock};

/// A trial span in flight: created at claim time, closed by
/// [`ExecProfiler::record_trial`].
#[derive(Debug, Clone, Copy)]
pub struct TrialTimer {
    start_us: u64,
}

/// Mutable profiling state, behind one leaf mutex (locked briefly per
/// trial; the scheduler's state lock is never held at the same time).
#[derive(Debug, Default)]
struct ProfInner {
    /// One span per completed trial, in completion order.
    spans: Vec<SpanRecord>,
    /// Nanosecond trial latencies per cell key.
    cell_ns: BTreeMap<String, Vec<u64>>,
    /// Claims per worker index (the work-stealing balance).
    worker_claims: Vec<u64>,
    /// Shared-queue depth observed at each claim.
    depth_sum: u64,
    /// Maximum observed queue depth.
    depth_max: u64,
    /// Number of depth samples (= total claims).
    claims: u64,
}

/// Wall-clock profiler for one campaign run.
#[derive(Debug)]
pub struct ExecProfiler {
    clock: WallClock,
    inner: Mutex<ProfInner>,
}

impl Default for ExecProfiler {
    fn default() -> Self {
        ExecProfiler::new()
    }
}

impl ExecProfiler {
    /// Anchors the profiler's clock at "now".
    pub fn new() -> Self {
        ExecProfiler {
            clock: WallClock::new(),
            inner: Mutex::new(ProfInner::default()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ProfInner> {
        // A poisoned profiler must never abort a campaign: the inner
        // state is append-only counters, safe to keep using.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Records one task claim by `worker` that observed `queue_depth`
    /// tasks still queued.
    pub fn record_claim(&self, worker: usize, queue_depth: usize) {
        let mut inner = self.lock();
        if inner.worker_claims.len() <= worker {
            inner.worker_claims.resize(worker + 1, 0);
        }
        inner.worker_claims[worker] += 1;
        inner.depth_sum += queue_depth as u64;
        inner.depth_max = inner.depth_max.max(queue_depth as u64);
        inner.claims += 1;
    }

    /// Starts timing one trial.
    pub fn trial_timer(&self) -> TrialTimer {
        TrialTimer {
            start_us: self.clock.now_us(),
        }
    }

    /// Closes a trial span for `cell_key` executed by `worker`.
    pub fn record_trial(&self, cell_key: &str, worker: usize, timer: TrialTimer) {
        let end_us = self.clock.now_us();
        let dur_us = end_us.saturating_sub(timer.start_us).max(1);
        let mut inner = self.lock();
        inner.spans.push(SpanRecord {
            name: cell_key.to_string(),
            cat: "trial".to_string(),
            ts_us: timer.start_us,
            dur_us,
            tid: worker as u64,
        });
        inner
            .cell_ns
            .entry(cell_key.to_string())
            .or_default()
            .push(dur_us * 1_000);
    }

    /// Per-cell latency summaries, sorted by cell key.
    pub fn latency_summaries(&self) -> Vec<(String, LatencySummary)> {
        let mut inner = self.lock();
        let mut out = Vec::new();
        for (key, samples) in inner.cell_ns.iter_mut() {
            if let Some(s) = summarize_latencies(samples) {
                out.push((key.clone(), s));
            }
        }
        out
    }

    /// Writes the three timing artifacts for campaign `name` into
    /// `dir` (best-effort: IO failures warn, the campaign proceeds):
    ///
    /// * `{name}.timing.csv` — per-cell latency percentiles plus
    ///   `#`-prefixed scheduler counter lines;
    /// * `{name}.profile.json` — Chrome trace of trial spans (tracks =
    ///   workers), for Perfetto;
    /// * `{name}.timing.collapsed.txt` — collapsed stacks weighted by
    ///   wall time, for flamegraph tooling.
    pub fn write_artifacts(&self, dir: &Path, name: &str) {
        let mut csv = String::from(LatencySummary::csv_header());
        csv.push('\n');
        for (key, summary) in self.latency_summaries() {
            csv.push_str(&summary.csv_row(&key));
            csv.push('\n');
        }
        {
            let inner = self.lock();
            let mean_depth = if inner.claims > 0 {
                inner.depth_sum as f64 / inner.claims as f64
            } else {
                0.0
            };
            csv.push_str(&format!(
                "# exec claims={} queue_depth_max={} queue_depth_mean={mean_depth:.2}\n",
                inner.claims, inner.depth_max
            ));
            for (w, c) in inner.worker_claims.iter().enumerate() {
                csv.push_str(&format!("# worker {w} claims={c}\n"));
            }
        }

        let (profile, collapsed) = {
            let inner = self.lock();
            let profile = chrome_trace_from_spans(&inner.spans);
            let mut agg: BTreeMap<String, u64> = BTreeMap::new();
            for span in &inner.spans {
                *agg.entry(format!("{name};{}", span.name)).or_insert(0) += span.dur_us;
            }
            let lines: Vec<(String, u64)> = agg.into_iter().collect();
            (profile, collapsed_stacks(&lines))
        };

        for (suffix, contents) in [
            ("timing.csv", csv.as_str()),
            ("profile.json", profile.as_str()),
            ("timing.collapsed.txt", collapsed.as_str()),
        ] {
            let path = dir.join(format!("{name}.{suffix}"));
            if let Err(e) = crate::executor::atomic_write(&path, contents) {
                log::warn(&format!(
                    "warning: cannot write timing artifact {}: {e}",
                    path.display()
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiler_collects_spans_and_percentiles() {
        let p = ExecProfiler::new();
        p.record_claim(0, 3);
        p.record_claim(1, 5);
        let t = p.trial_timer();
        p.record_trial("cell_a", 0, t);
        let t = p.trial_timer();
        p.record_trial("cell_a", 1, t);
        let summaries = p.latency_summaries();
        assert_eq!(summaries.len(), 1);
        assert_eq!(summaries[0].0, "cell_a");
        assert_eq!(summaries[0].1.count, 2);
        let inner = p.lock();
        assert_eq!(inner.claims, 2);
        assert_eq!(inner.depth_max, 5);
        assert_eq!(inner.worker_claims, vec![1, 1]);
        assert_eq!(inner.spans.len(), 2);
    }

    #[test]
    fn artifacts_are_written_and_parseable_shaped() {
        let dir = std::env::temp_dir().join(format!("aba_prof_test_{}", std::process::id()));
        let p = ExecProfiler::new();
        let t = p.trial_timer();
        p.record_trial("k", 0, t);
        p.write_artifacts(&dir, "demo");
        let csv = std::fs::read_to_string(dir.join("demo.timing.csv")).unwrap();
        assert!(csv.starts_with(LatencySummary::csv_header()));
        assert!(csv.contains("k,1,"));
        let json = std::fs::read_to_string(dir.join("demo.profile.json")).unwrap();
        assert!(json.starts_with("[\n"));
        assert!(json.contains("\"name\":\"k\""));
        let collapsed = std::fs::read_to_string(dir.join("demo.timing.collapsed.txt")).unwrap();
        assert!(collapsed.starts_with("demo;k "));
        std::fs::remove_dir_all(&dir).ok();
    }
}
