//! Deterministic-channel observability artifacts are part of the
//! reproducibility surface: the same `CampaignSpec` + seed must write
//! byte-identical `{name}.events.log` / `{name}.metrics.txt` /
//! `{name}.trace.json` / `{name}.collapsed.txt` at any worker count,
//! and attaching the probe must not perturb the ordinary artifacts.

use aba_harness::{AttackSpec, NetworkSpec, ProtocolSpec};
use aba_sweep::{CampaignSpec, RoundCap, RunOptions, StopRule};
use std::path::{Path, PathBuf};

const OBS_FILES: [&str; 4] = [
    "obs.events.log",
    "obs.metrics.txt",
    "obs.trace.json",
    "obs.collapsed.txt",
];

fn obs_spec() -> CampaignSpec {
    CampaignSpec::new("obs")
        .sizes(&[(16, 5)])
        .protocols(&[
            ProtocolSpec::PaperLasVegas { alpha: 2.0 },
            ProtocolSpec::PhaseKing,
        ])
        .attacks(&[AttackSpec::Benign, AttackSpec::FullAttack])
        .networks(&[
            NetworkSpec::Synchronous,
            NetworkSpec::LossyLinks { p_drop: 0.1 },
        ])
        .round_cap(RoundCap::Fixed(400))
        .seed(42)
        .stop(StopRule::fixed(3))
}

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("aba_obs_campaign_{tag}_{}", std::process::id()))
}

fn read_artifacts(dir: &Path) -> Vec<(String, String)> {
    OBS_FILES
        .iter()
        .map(|f| {
            let bytes = std::fs::read_to_string(dir.join(f))
                .unwrap_or_else(|e| panic!("missing obs artifact {f}: {e}"));
            (f.to_string(), bytes)
        })
        .collect()
}

#[test]
fn obs_artifacts_are_byte_identical_across_worker_counts() {
    let spec = obs_spec();
    let dir1 = temp_dir("w1");
    let dir4 = temp_dir("w4");
    let serial = spec.run_with(&RunOptions {
        workers: 1,
        obs_dir: Some(dir1.clone()),
        ..RunOptions::default()
    });
    let parallel = spec.run_with(&RunOptions {
        workers: 4,
        obs_dir: Some(dir4.clone()),
        ..RunOptions::default()
    });

    let a = read_artifacts(&dir1);
    let b = read_artifacts(&dir4);
    for ((name, bytes1), (_, bytes4)) in a.iter().zip(&b) {
        assert!(!bytes1.is_empty(), "{name} must not be empty");
        assert_eq!(bytes1, bytes4, "{name} must not depend on worker count");
    }

    // The event log narrates the whole campaign in grid order.
    let events = &a[0].1;
    assert!(events.starts_with("0 campaign-start name=obs\n"));
    assert!(events.contains("cell-start"));
    assert!(events.contains("trial-start"));
    assert!(events.contains("cell-end"));
    // The registry aggregates every trial.
    let metrics = &a[1].1;
    let trials: u64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("counter sim.trials "))
        .expect("sim.trials counter present")
        .parse()
        .expect("counter value parses");
    assert_eq!(trials, serial.total_trials() as u64);
    // The Chrome trace is a JSON array with span and instant records.
    let trace = &a[2].1;
    assert!(trace.starts_with("[\n") && trace.trim_end().ends_with(']'));
    assert!(trace.contains("\"ph\":\"B\"") && trace.contains("\"ph\":\"X\""));

    // Probes observe only: summaries match an unobserved run.
    let plain = spec.run_with(&RunOptions {
        workers: 2,
        ..RunOptions::default()
    });
    assert_eq!(serial.to_csv(), plain.to_csv());
    assert_eq!(parallel.to_json(), plain.to_json());

    std::fs::remove_dir_all(&dir1).ok();
    std::fs::remove_dir_all(&dir4).ok();
}
