//! End-to-end campaign invariants.
//!
//! Pinned here (the PR's acceptance criteria):
//! * **Worker invariance** — the same `CampaignSpec` + seed produces
//!   byte-identical CSV/JSON artifacts at 1 worker and at N workers.
//! * **Reorder stability** — permuting axes leaves shared cells'
//!   summaries untouched.
//! * **Adaptive allocation** — deterministic cells stop at
//!   `min_trials`; agreement-flapping cells run to the cap.
//! * **Resume** — a finished checkpoint short-circuits the rerun to
//!   byte-identical artifacts; incompatible checkpoints are ignored.

use aba_harness::{AttackSpec, NetworkSpec, ProtocolSpec};
use aba_sweep::{CampaignSpec, RoundCap, RunOptions, StopRule};

/// A small but heterogeneous grid: deterministic Phase-King next to a
/// Las Vegas committee protocol, synchronous next to lossy.
fn demo_spec() -> CampaignSpec {
    CampaignSpec::new("demo")
        .sizes(&[(16, 5)])
        .protocols(&[
            ProtocolSpec::PaperLasVegas { alpha: 2.0 },
            ProtocolSpec::PhaseKing,
        ])
        .attacks(&[AttackSpec::Benign, AttackSpec::FullAttack])
        .networks(&[
            NetworkSpec::Synchronous,
            NetworkSpec::LossyLinks { p_drop: 0.1 },
        ])
        .round_cap(RoundCap::Fixed(400))
        .seed(42)
        .stop(StopRule::adaptive(4, 4, 12))
}

#[test]
fn artifacts_are_byte_identical_across_worker_counts() {
    let spec = demo_spec();
    let serial = spec.run_with(&RunOptions {
        workers: 1,
        checkpoint: None,
        repro_dir: None,
        ..RunOptions::default()
    });
    let parallel = spec.run_with(&RunOptions {
        workers: 8,
        checkpoint: None,
        repro_dir: None,
        ..RunOptions::default()
    });
    let auto = spec.run();
    assert_eq!(
        serial.cells, parallel.cells,
        "summaries must not depend on scheduling"
    );
    assert_eq!(serial.to_csv(), parallel.to_csv(), "CSV bytes must match");
    assert_eq!(
        serial.to_json(),
        parallel.to_json(),
        "JSON bytes must match"
    );
    assert_eq!(serial.to_csv(), auto.to_csv());
    assert_eq!(serial.to_json(), auto.to_json());
}

#[test]
fn cells_are_stable_under_axis_reordering() {
    let a = demo_spec().run_with(&RunOptions {
        workers: 2,
        checkpoint: None,
        repro_dir: None,
        ..RunOptions::default()
    });
    // Same axes, permuted, plus an extra protocol inserted in front.
    let b = CampaignSpec::new("demo-reordered")
        .sizes(&[(16, 5)])
        .protocols(&[
            ProtocolSpec::ChorCoan { beta: 1.0 },
            ProtocolSpec::PhaseKing,
            ProtocolSpec::PaperLasVegas { alpha: 2.0 },
        ])
        .attacks(&[AttackSpec::FullAttack, AttackSpec::Benign])
        .networks(&[
            NetworkSpec::LossyLinks { p_drop: 0.1 },
            NetworkSpec::Synchronous,
        ])
        .round_cap(RoundCap::Fixed(400))
        .seed(42)
        .stop(StopRule::adaptive(4, 4, 12))
        .run_with(&RunOptions {
            workers: 3,
            checkpoint: None,
            repro_dir: None,
            ..RunOptions::default()
        });
    for cell in &a.cells {
        let twin = b.cell(&cell.key).expect("shared cell survives reordering");
        assert_eq!(twin, cell, "summary drifted for {}", cell.key);
    }
}

#[test]
fn adaptive_allocation_spends_where_the_noise_is() {
    let result = demo_spec().run();
    // Phase-King is deterministic: same rounds every seed, full
    // agreement — the rule stops at min_trials.
    let pk_sync = result
        .find(|c| c.protocol == "phase-king" && c.network == "sync" && c.attack == "benign")
        .unwrap();
    assert_eq!(pk_sync.trials, 4, "deterministic cell stops at min_trials");
    assert!(pk_sync.stopped == "agree-ci" || pk_sync.stopped == "rounds-ci");
    // Every cell respects the schedule bounds.
    for c in &result.cells {
        assert!(
            (4..=12).contains(&c.trials),
            "{}: {} trials",
            c.key,
            c.trials
        );
        assert!(
            ["agree-ci", "rounds-ci", "trial-cap"].contains(&c.stopped.as_str()),
            "{}: stopped = {}",
            c.key,
            c.stopped
        );
    }
    // The grand total sits strictly between all-min and all-max: the
    // rule neither starves everything nor burns the full budget.
    let (lo, hi) = (4 * result.cells.len(), 12 * result.cells.len());
    let total = result.total_trials();
    assert!(
        total > lo && total < hi,
        "total {total} not in ({lo}, {hi})"
    );
}

#[test]
fn checkpoint_resume_is_byte_identical_and_skips_work() {
    let dir = std::env::temp_dir().join("aba_sweep_resume_test");
    let _ = std::fs::remove_dir_all(&dir);
    // Note: the directory does not exist — the executor must create it.
    let ckpt = dir.join("demo.json");
    let spec = demo_spec();
    let first = spec.run_with(&RunOptions {
        workers: 4,
        checkpoint: Some(ckpt.clone()),
        repro_dir: None,
        ..RunOptions::default()
    });
    assert!(ckpt.exists(), "checkpoint written");
    // Resume from the finished checkpoint: all cells restored, output
    // byte-identical (worker count differs on purpose).
    let resumed = spec.run_with(&RunOptions {
        workers: 1,
        checkpoint: Some(ckpt.clone()),
        repro_dir: None,
        ..RunOptions::default()
    });
    assert_eq!(resumed.to_csv(), first.to_csv());
    assert_eq!(resumed.to_json(), first.to_json());
    // A different stopping rule invalidates the checkpoint: the cells
    // re-run (trials change) instead of being adopted.
    let refit = spec.clone().stop(StopRule::fixed(2)).run_with(&RunOptions {
        workers: 2,
        checkpoint: Some(ckpt.clone()),
        repro_dir: None,
        ..RunOptions::default()
    });
    assert!(refit.cells.iter().all(|c| c.trials == 2));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn partial_checkpoint_resumes_only_matching_cells() {
    let dir = std::env::temp_dir().join("aba_sweep_partial_resume_test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("partial.json");
    let spec = demo_spec();
    let full = spec.run();
    // Truncate the finished campaign to half its cells and save that as
    // the checkpoint — as if the first run died midway.
    let mut partial = full.clone();
    partial.cells.truncate(full.cells.len() / 2);
    std::fs::write(&ckpt, partial.to_json()).unwrap();
    let resumed = spec.run_with(&RunOptions {
        workers: 4,
        checkpoint: Some(ckpt.clone()),
        repro_dir: None,
        ..RunOptions::default()
    });
    assert_eq!(resumed.to_csv(), full.to_csv(), "resume completes the grid");
    assert_eq!(resumed.to_json(), full.to_json());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
#[should_panic(expected = "scoped thread panicked")]
fn invalid_cell_panics_instead_of_hanging() {
    // (16, 8) violates n ≥ 3t + 1 for the committee protocols: the
    // first trial of that cell panics inside a worker ("valid (n, t)",
    // printed to stderr). The abort flag must drain every other worker
    // so the panic propagates through the thread scope — a hang here
    // would time the suite out.
    let _ = CampaignSpec::new("invalid")
        .sizes(&[(16, 5), (16, 8)])
        .protocols(&[ProtocolSpec::PaperLasVegas { alpha: 2.0 }])
        .stop(StopRule::fixed(4))
        .run_with(&RunOptions {
            workers: 4,
            checkpoint: None,
            repro_dir: None,
            ..RunOptions::default()
        });
}

#[test]
fn campaign_result_lookups() {
    let result = demo_spec().run();
    assert_eq!(result.cells.len(), 8);
    assert_eq!(result.name, "demo");
    assert_eq!(result.seed, 42);
    let key = &result.cells[3].key;
    assert_eq!(&result.cell(key).unwrap().key, key);
    assert!(result.cell("nope").is_none());
    // Cells arrive in grid order: protocols outermost after sizes.
    assert!(result.cells[..4]
        .iter()
        .all(|c| c.protocol == "paper-lv(a2)"));
    assert!(result.cells[4..].iter().all(|c| c.protocol == "phase-king"));
}
