//! Offline, vendored subset of the `rand` 0.8 API.
//!
//! This workspace builds in environments with no network access, so the
//! real `rand` crate cannot be fetched from a registry. This crate
//! re-implements exactly the slice of the 0.8 API the workspace uses —
//! [`RngCore`], the [`Rng`] extension trait (`gen`, `gen_bool`,
//! `gen_range`), [`SeedableRng::seed_from_u64`], [`rngs::SmallRng`]
//! (xoshiro256++ with SplitMix64 seeding, matching upstream `SmallRng`
//! on 64-bit targets), and [`seq::SliceRandom::shuffle`] — with the same
//! determinism guarantees: every generator is a pure function of its
//! seed. Swapping in the real crate later only requires changing the
//! workspace manifest, not call sites.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The core trait every random-number generator implements.
///
/// Object-safe: protocol and adversary code takes `&mut dyn RngCore`.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from an RNG via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly random value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u8
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u16
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, matching upstream `rand`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Unbiased sampling of `[0, bound)` by rejection from the top of the
/// 64-bit space.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from an empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full 64-bit domain.
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly random value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} must be in [0, 1]");
        f64::sample(self) < p
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, expanding it with
    /// SplitMix64 exactly as upstream `rand` 0.8 does.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// One SplitMix64 step — upstream's seed-expansion function.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A small, fast, non-cryptographic generator: xoshiro256++, the
    /// same algorithm upstream `SmallRng` uses on 64-bit platforms.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::{RngCore, SampleRange};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns one uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_from(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(0..self.len()).sample_from(rng)])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_in_bounds_and_covers() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0..10usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|s| *s), "all residues hit: {seen:?}");
        for _ in 0..100 {
            let v = rng.gen_range(5..=6u32);
            assert!((5..=6).contains(&v));
        }
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "100 elements almost surely move");
    }

    #[test]
    fn dyn_rng_core_usable() {
        let mut rng = SmallRng::seed_from_u64(4);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let b: bool = dyn_rng.gen();
        let _ = b;
        let x = dyn_rng.gen_range(0..5usize);
        assert!(x < 5);
    }

    #[test]
    fn fill_bytes_fills_every_byte() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|b| *b != 0));
    }
}
