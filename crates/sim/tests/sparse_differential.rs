//! Differential test: the adjacency-list sparse plane against the dense
//! broadcast-aware mailbox.
//!
//! Both planes implement [`MessagePlane`], so one driver replays seeded
//! interleavings of the *whole* mutation API (`set` broadcast /
//! per-recipient / silent, `silence`, `insert`, `knock_out`,
//! `set_broadcast_except`, `merge_broadcast_except`, `take_broadcast`,
//! `insert_if_vacant`, `insert_if_vacant_with`) against each and
//! compares every observable after every step, across
//! n ∈ {1, 2, 17, 64, 257} — mirroring `packed_differential.rs`. The
//! generator deliberately also inserts messages equal to a live
//! broadcast base (the flight-queue redelivery case) and, unlike the
//! packed differential, uses unpackable variable-size payloads: the
//! sparse plane is fully general over [`Message`], so its counters must
//! track arbitrary bit sizes.
//!
//! On top of the per-step observables, both planes fill an
//! [`ArrivalScan`] after every step and the scans are compared field by
//! field — the provenance seam's view of the plane must be identical.

use aba_sim::{ArrivalScan, Emission, Message, MessagePlane, NodeId, RoundMailbox, SparseMailbox};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

#[derive(Debug, Clone, PartialEq, Eq)]
struct Tm(u16);

impl Message for Tm {
    fn bit_size(&self) -> usize {
        4 + (self.0 % 13) as usize // varied sizes exercise the bit counters
    }
}

/// One random mutation applied to both planes through the trait.
fn random_op(
    gen: &mut SmallRng,
    dense: &mut RoundMailbox<Tm>,
    sparse: &mut SparseMailbox<Tm>,
    n: usize,
) {
    let s = NodeId::new(gen.gen_range(0..n as u32));
    let r = NodeId::new(gen.gen_range(0..n as u32));
    // Half the time, aim the message at the sender's live base value —
    // the equality path a generic reference model cannot express.
    let msg = match dense.broadcast_base(s) {
        Some(b) if gen.gen_bool(0.5) => b.clone(),
        _ => Tm(gen.gen()),
    };
    match gen.gen_range(0..10u32) {
        0 => {
            let e = Emission::Broadcast(Tm(gen.gen()));
            dense.set(s, e.clone());
            MessagePlane::set(sparse, s, e);
        }
        1 => {
            let k = gen.gen_range(0..2 * n);
            let v: Vec<(NodeId, Tm)> = (0..k)
                .map(|_| (NodeId::new(gen.gen_range(0..n as u32)), Tm(gen.gen())))
                .collect();
            let e = Emission::PerRecipient(v);
            dense.set(s, e.clone());
            MessagePlane::set(sparse, s, e);
        }
        2 => {
            dense.silence(s);
            MessagePlane::silence(sparse, s);
        }
        3 => {
            dense.insert(s, r, msg.clone());
            MessagePlane::insert(sparse, s, r, msg);
        }
        4 => {
            dense.knock_out(s, r);
            MessagePlane::knock_out(sparse, s, r);
        }
        5 => {
            let mut except: Vec<u32> = (0..n as u32).filter(|_| gen.gen_bool(0.3)).collect();
            except.sort_unstable();
            // set_broadcast_except tolerates unsorted input and
            // duplicates; shuffle and duplicate occasionally to prove
            // the sparse plane does too.
            if gen.gen_bool(0.3) && !except.is_empty() {
                let dup = except[gen.gen_range(0..except.len())];
                except.push(dup);
                let a = gen.gen_range(0..except.len());
                let b = gen.gen_range(0..except.len());
                except.swap(a, b);
            }
            dense.set_broadcast_except(s, msg.clone(), &except);
            MessagePlane::set_broadcast_except(sparse, s, msg, &except);
        }
        6 => {
            // Precondition (shared by both planes): merging over an
            // existing base is a programming error. Steer to a plain
            // insert when the row already has one.
            if dense.broadcast_base(s).is_some() {
                dense.insert(s, r, msg.clone());
                MessagePlane::insert(sparse, s, r, msg);
            } else {
                let mut except: Vec<u32> = (0..n as u32).filter(|_| gen.gen_bool(0.3)).collect();
                except.sort_unstable();
                let (mut ca, mut cb) = (Vec::new(), Vec::new());
                dense.merge_broadcast_except(s, msg.clone(), &except, &mut ca);
                MessagePlane::merge_broadcast_except(sparse, s, msg, &except, &mut cb);
                assert_eq!(ca, cb, "merge_broadcast_except conflicts for {s}");
            }
        }
        7 => {
            let a = dense.take_broadcast(s);
            let b = MessagePlane::take_broadcast(sparse, s);
            assert_eq!(a, b, "take_broadcast disagrees for sender {s}");
        }
        8 => {
            let a = dense.insert_if_vacant(s, r, msg.clone());
            let b = MessagePlane::insert_if_vacant(sparse, s, r, msg);
            assert_eq!(a, b, "insert_if_vacant disagrees for ({s}, {r})");
        }
        _ => {
            let a = dense.insert_if_vacant_with(s, r, || msg.clone());
            let b = MessagePlane::insert_if_vacant_with(sparse, s, r, || msg.clone());
            assert_eq!(a, b, "insert_if_vacant_with disagrees for ({s}, {r})");
        }
    }
}

/// Fills a fresh scan from `plane` (both the wire-side tally and the
/// arrival-side bitsets, as the engine does) and returns it.
fn scan_of<L: MessagePlane<Tm>>(plane: &L, n: usize) -> ArrivalScan {
    let mut scan = ArrivalScan::new();
    scan.reset(n);
    plane.tally_offered(&mut scan);
    plane.scan_arrivals(&mut scan);
    scan
}

fn assert_scans_equal(a: &ArrivalScan, b: &ArrivalScan, n: usize, ctx: &str) {
    assert_eq!(a.base_senders(), b.base_senders(), "{ctx}: base_senders");
    assert_eq!(a.sent_msgs(), b.sent_msgs(), "{ctx}: sent_msgs");
    assert_eq!(a.sent_bits(), b.sent_bits(), "{ctx}: sent_bits");
    assert_eq!(a.recv_msgs(), b.recv_msgs(), "{ctx}: recv_msgs");
    assert_eq!(a.recv_bits(), b.recv_bits(), "{ctx}: recv_bits");
    for s in 0..n {
        assert_eq!(a.base_bits(s), b.base_bits(s), "{ctx}: base_bits({s})");
    }
    for r in 0..n {
        assert_eq!(a.knocked_row(r), b.knocked_row(r), "{ctx}: knocked({r})");
        assert_eq!(a.extra_row(r), b.extra_row(r), "{ctx}: extra({r})");
        for s in 0..n {
            assert_eq!(
                a.has_message(s, r),
                b.has_message(s, r),
                "{ctx}: scan has_message({s}, {r})"
            );
        }
    }
}

fn assert_equivalent(dense: &RoundMailbox<Tm>, sparse: &SparseMailbox<Tm>, n: usize, ctx: &str) {
    assert_eq!(MessagePlane::n(dense), sparse.n(), "{ctx}: n");
    for s in 0..n as u32 {
        let s = NodeId::new(s);
        assert_eq!(
            dense.broadcast_base(s),
            MessagePlane::broadcast_base(sparse, s),
            "{ctx}: broadcast_base({s})"
        );
        assert_eq!(
            dense.broadcast_of(s),
            MessagePlane::broadcast_of(sparse, s),
            "{ctx}: broadcast_of({s})"
        );
        assert_eq!(
            dense.is_broadcast(s),
            MessagePlane::is_broadcast(sparse, s),
            "{ctx}: is_broadcast({s})"
        );
        assert_eq!(
            dense.is_silent(s),
            MessagePlane::is_silent(sparse, s),
            "{ctx}: is_silent({s})"
        );
        for r in 0..n as u32 {
            let r = NodeId::new(r);
            assert_eq!(
                MessagePlane::has_message(dense, s, r),
                sparse.resolve(s, r).is_some(),
                "{ctx}: has_message({s}, {r})"
            );
            assert_eq!(
                MessagePlane::resolve_value(dense, s, r),
                MessagePlane::resolve_value(sparse, s, r),
                "{ctx}: resolve_value({s}, {r})"
            );
        }
    }
    for r in 0..n as u32 {
        let r = NodeId::new(r);
        let via_dense: Vec<(u32, Tm)> = dense
            .inbox(r)
            .iter()
            .map(|(from, m)| (from.raw(), m.clone()))
            .collect();
        let via_sparse: Vec<(u32, Tm)> = MessagePlane::inbox(sparse, r)
            .iter()
            .map(|(from, m)| (from.raw(), m.clone()))
            .collect();
        assert_eq!(via_dense, via_sparse, "{ctx}: inbox({r})");
        let sparse_inbox = MessagePlane::inbox(sparse, r);
        assert_eq!(
            via_dense.len(),
            sparse_inbox.len(),
            "{ctx}: inbox({r}).len()"
        );
        assert_eq!(
            via_dense.is_empty(),
            sparse_inbox.is_empty(),
            "{ctx}: inbox({r}).is_empty()"
        );
        if let Some(&(from, _)) = via_dense.first() {
            assert_eq!(
                sparse_inbox.from(NodeId::new(from)),
                dense.resolve(NodeId::new(from), r),
                "{ctx}: inbox({r}).from({from})"
            );
        }
        assert_eq!(
            sparse_inbox.packed_match_count(0, 0, None),
            None,
            "{ctx}: sparse inbox must decline the packed tally"
        );
    }
    assert_eq!(
        dense.message_count(),
        MessagePlane::message_count(sparse),
        "{ctx}: message_count"
    );
    assert_eq!(
        dense.total_bits(),
        MessagePlane::total_bits(sparse),
        "{ctx}: total_bits"
    );
    assert_eq!(
        dense.max_edge_bits(),
        MessagePlane::max_edge_bits(sparse),
        "{ctx}: max_edge_bits"
    );
    assert_scans_equal(
        &scan_of(dense, n),
        &scan_of(sparse, n),
        n,
        &format!("{ctx}: arrival scan"),
    );
}

#[test]
fn sparse_plane_matches_dense_mailbox() {
    for n in [1usize, 2, 17, 64, 257] {
        let mut gen = SmallRng::seed_from_u64(0x5AB5 ^ n as u64);
        let cases = if n >= 257 { 3 } else { 8 };
        for case in 0..cases {
            let mut dense: RoundMailbox<Tm> = RoundMailbox::new(n);
            let mut sparse: SparseMailbox<Tm> = SparseMailbox::new(n);
            let steps = gen.gen_range(4..40usize);
            for step in 0..steps {
                random_op(&mut gen, &mut dense, &mut sparse, n);
                assert_equivalent(
                    &dense,
                    &sparse,
                    n,
                    &format!("n={n} case={case} step={step}"),
                );
            }
            // Pooled reuse must behave like a fresh plane on both sides.
            dense.reset(n);
            MessagePlane::reset(&mut sparse, n);
            assert_equivalent(&dense, &sparse, n, &format!("n={n} case={case} post-reset"));
        }
    }
}

#[test]
fn sparse_plane_survives_resize_reuse() {
    // Shrinking and growing a pooled sparse plane must leave no stale
    // index entries behind (the dense plane drops its arena on resize;
    // the sparse plane must deregister per-row state instead).
    let mut gen = SmallRng::seed_from_u64(0xD1FF);
    let mut dense: RoundMailbox<Tm> = RoundMailbox::new(17);
    let mut sparse: SparseMailbox<Tm> = SparseMailbox::new(17);
    for (i, n) in [17usize, 5, 64, 2, 33].into_iter().enumerate() {
        dense.reset(n);
        MessagePlane::reset(&mut sparse, n);
        for step in 0..20 {
            random_op(&mut gen, &mut dense, &mut sparse, n);
            assert_equivalent(&dense, &sparse, n, &format!("resize {i} n={n} step={step}"));
        }
    }
}
