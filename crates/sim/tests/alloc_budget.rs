//! Allocation-budget pins for the large-`n` path.
//!
//! The 65 536-node campaigns only work if nothing in the per-round loop
//! — planes, arrival scans, metrics — allocates quadratically in `n` or
//! linearly per message. This test wraps the global allocator in a
//! counter and pins two budgets:
//!
//! * an [`ArrivalScan`] sized for n = 65 536 with a sparse deviation set
//!   must stay tens of megabytes under the old dense `n × words`
//!   knocked/extra matrices (1 GiB combined at that size), and a pooled
//!   re-reset must allocate almost nothing;
//! * a point-to-point run on the sparse plane at n = 8 192 must
//!   allocate O(messages) total, not O(n²) per round.
//!
//! Budgets are deliberately loose (≥ 4× headroom over measured values)
//! so they only fire on a complexity-class regression, not on incidental
//! constant-factor drift.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use aba_sim::adversary::Benign;
use aba_sim::prelude::*;

struct CountingAlloc;

static BYTES: AtomicU64 = AtomicU64::new(0);
static CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Bytes and allocation calls spent inside `f`.
fn measure<R>(f: impl FnOnce() -> R) -> (u64, u64, R) {
    let (b0, c0) = (BYTES.load(Ordering::Relaxed), CALLS.load(Ordering::Relaxed));
    let out = f();
    let (b1, c1) = (BYTES.load(Ordering::Relaxed), CALLS.load(Ordering::Relaxed));
    (b1 - b0, c1 - c0, out)
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Ping;

impl Message for Ping {
    fn bit_size(&self) -> usize {
        1
    }
}

/// Sends one point-to-point message around a ring each round — the
/// traffic shape of the sampled sub-quadratic protocols, reduced to its
/// allocation essentials.
#[derive(Debug)]
struct RingSender {
    me: u32,
    n: u32,
    rounds_left: u32,
}

impl Protocol for RingSender {
    type Msg = Ping;

    fn emit(&mut self, _round: Round, _rng: &mut dyn rand::RngCore) -> Emission<Ping> {
        Emission::PerRecipient(vec![(NodeId::new((self.me + 1) % self.n), Ping)])
    }

    fn receive(&mut self, _round: Round, _inbox: Inbox<'_, Ping>, _rng: &mut dyn rand::RngCore) {
        self.rounds_left = self.rounds_left.saturating_sub(1);
    }

    fn output(&self) -> Option<bool> {
        (self.rounds_left == 0).then_some(true)
    }

    fn halted(&self) -> bool {
        self.rounds_left == 0
    }
}

// One test function: the counters are process-global, so the two pins
// run sequentially on one thread to keep their deltas honest.
#[test]
fn allocation_budgets_hold_at_large_n() {
    // --- ArrivalScan at n = 65 536 -----------------------------------
    let n = 65_536;
    let mut scan = ArrivalScan::new();
    let (bytes, _, ()) = measure(|| {
        scan.reset(n);
        for r in 0..1_000 {
            scan.mark_extra(r * 17 % n, r);
            scan.mark_knocked(r * 31 % n, r);
        }
    });
    // Fixed state is O(n) (~5 MB) plus ~2 000 pooled 2·words rows
    // (~16 KiB each); the old dense knocked/extra matrices alone were
    // 1 GiB. Anything quadratic blows this budget by an order of
    // magnitude.
    assert!(
        bytes < 128 << 20,
        "ArrivalScan at n=65536 allocated {bytes} bytes — quadratic scratch is back"
    );

    // A pooled same-shape reset must reuse everything.
    let (bytes, _, ()) = measure(|| {
        scan.reset(n);
        for r in 0..1_000 {
            scan.mark_extra(r * 17 % n, r);
        }
    });
    assert!(
        bytes < 1 << 20,
        "pooled ArrivalScan reset allocated {bytes} bytes — row pool not reused"
    );

    // --- sparse-plane steady state at n = 8 192 ----------------------
    let n = 8_192u32;
    let rounds = 32u32;
    let nodes: Vec<RingSender> = (0..n)
        .map(|me| RingSender {
            me,
            n,
            rounds_left: rounds,
        })
        .collect();
    let cfg = SimConfig::new(n as usize, 0).with_max_rounds(u64::from(rounds) + 4);
    let (bytes, calls, report) = measure(|| {
        SparseSimulation::with_instruments(cfg, nodes, Benign, PassThrough, NoOracle, NoProbe).run()
    });
    assert!(report.all_halted, "ring run did not complete");
    // ~260 k messages at one small Vec each plus O(n) plane state:
    // measured well under 64 MB. An O(n)-per-message or O(n²)-per-round
    // scratch would cost gigabytes here.
    assert!(
        bytes < 256 << 20,
        "sparse steady state allocated {bytes} bytes over {rounds} rounds"
    );
    assert!(
        calls < 4 * u64::from(n) * u64::from(rounds),
        "sparse steady state made {calls} allocator calls — per-message scratch regressed"
    );
}
