//! Differential test: the dense broadcast-aware mailbox against a
//! deliberately naive reference model.
//!
//! The reference stores an explicit `n × n` matrix of owned messages and
//! re-derives every observable from scratch; the production mailbox
//! shares broadcast bases, stamps deviation lanes in a flat arena, and
//! maintains counters incrementally. Seeded interleavings of the whole
//! public mutation API (`set` broadcast / per-recipient / silent,
//! `silence`, `insert`, `knock_out`, `set_broadcast_except`,
//! `take_broadcast`, `insert_if_vacant`) are replayed against both and
//! every observable is compared after each step, across n ∈ {1, 2, 17,
//! 64}. (No proptest in this offline workspace — cases are drawn from a
//! fixed-seed generator, so every run checks the identical sample.)

use aba_sim::{Emission, Message, NodeId, RoundMailbox};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

#[derive(Debug, Clone, PartialEq, Eq)]
struct Tm(u16);
impl Message for Tm {
    fn bit_size(&self) -> usize {
        4 + (self.0 % 13) as usize // varied sizes exercise max_edge_bits
    }
}

/// The reference model: an explicit matrix, observables derived fresh.
struct Reference {
    n: usize,
    /// `grid[s][r]`: the message `r` receives from `s`, if any.
    grid: Vec<Vec<Option<Tm>>>,
    /// Whether row `s` is a *pure* broadcast (same message everywhere,
    /// installed by a broadcast emission, never deviated).
    pure_broadcast: Vec<bool>,
    /// The broadcast base of row `s`, shared or not (mirrors
    /// `broadcast_base`).
    base: Vec<Option<Tm>>,
}

impl Reference {
    fn new(n: usize) -> Self {
        Reference {
            n,
            grid: vec![vec![None; n]; n],
            pure_broadcast: vec![false; n],
            base: vec![None; n],
        }
    }

    fn clear_row(&mut self, s: usize) {
        self.grid[s] = vec![None; self.n];
        self.pure_broadcast[s] = false;
        self.base[s] = None;
    }

    fn set(&mut self, s: usize, e: &Emission<Tm>) {
        self.clear_row(s);
        match e {
            Emission::Silent => {}
            Emission::Broadcast(m) => {
                self.grid[s] = vec![Some(m.clone()); self.n];
                self.pure_broadcast[s] = true;
                self.base[s] = Some(m.clone());
            }
            Emission::PerRecipient(v) => {
                for (to, m) in v {
                    self.grid[s][to.index()] = Some(m.clone());
                }
            }
        }
    }

    fn insert(&mut self, s: usize, r: usize, m: Tm) {
        self.grid[s][r] = Some(m);
        self.pure_broadcast[s] = false;
    }

    fn knock_out(&mut self, s: usize, r: usize) {
        // A fully silent row ignores knock-outs (matches the mailbox).
        if self.grid[s].iter().all(Option::is_none) {
            return;
        }
        self.grid[s][r] = None;
        self.pure_broadcast[s] = false;
    }

    fn set_broadcast_except(&mut self, s: usize, m: Tm, except: &[u32]) {
        self.clear_row(s);
        self.grid[s] = vec![Some(m.clone()); self.n];
        for &r in except {
            self.grid[s][r as usize] = None;
        }
        self.pure_broadcast[s] = except.is_empty();
        self.base[s] = Some(m);
    }

    fn take_broadcast(&mut self, s: usize) -> Option<Tm> {
        if !self.pure_broadcast[s] {
            return None;
        }
        let m = self.base[s].clone();
        self.clear_row(s);
        m
    }

    fn insert_if_vacant(&mut self, s: usize, r: usize, m: Tm) -> bool {
        if self.grid[s][r].is_some() {
            return false;
        }
        self.insert(s, r, m);
        true
    }

    /// Is `(s, r)` carrying the free self-copy of a broadcast base?
    /// (Counting convention: only base-derived self-copies are free.)
    fn free_self_copy(&self, s: usize, r: usize) -> bool {
        s == r
            && self.base[s].is_some()
            && self.grid[s][r] == self.base[s]
            && self.counted_as_base(s, r)
    }

    /// Whether the cell value at `(s, r)` comes from the shared base
    /// rather than an explicit insert. The reference cannot distinguish
    /// an inserted message equal to the base, so the generator never
    /// inserts a message equal to a live base at the sender's own cell
    /// (see `random_op`).
    fn counted_as_base(&self, s: usize, r: usize) -> bool {
        self.base[s].is_some() && self.grid[s][r] == self.base[s]
    }

    fn message_count(&self) -> usize {
        let mut count = 0;
        for s in 0..self.n {
            for r in 0..self.n {
                if self.grid[s][r].is_some() && !self.free_self_copy(s, r) {
                    count += 1;
                }
            }
        }
        count
    }

    fn total_bits(&self) -> usize {
        let mut bits = 0;
        for s in 0..self.n {
            for r in 0..self.n {
                if let Some(m) = &self.grid[s][r] {
                    if !self.free_self_copy(s, r) {
                        bits += m.bit_size();
                    }
                }
            }
        }
        bits
    }
}

/// One random mutation applied to both models.
fn random_op(gen: &mut SmallRng, mb: &mut RoundMailbox<Tm>, rf: &mut Reference, n: usize) {
    let s = gen.gen_range(0..n as u32);
    let r = gen.gen_range(0..n as u32);
    let msg = Tm(gen.gen::<u16>() | 1); // odd tag: never equals a base tag
    let base_msg = Tm(gen.gen::<u16>() & !1); // even tag
    match gen.gen_range(0..8u32) {
        0 => {
            let e = Emission::Broadcast(base_msg);
            rf.set(s as usize, &e);
            mb.set(NodeId::new(s), e);
        }
        1 => {
            let k = gen.gen_range(0..2 * n);
            let v: Vec<(NodeId, Tm)> = (0..k)
                .map(|_| {
                    (
                        NodeId::new(gen.gen_range(0..n as u32)),
                        Tm(gen.gen::<u16>() | 1),
                    )
                })
                .collect();
            let e = Emission::PerRecipient(v);
            rf.set(s as usize, &e);
            mb.set(NodeId::new(s), e);
        }
        2 => {
            rf.set(s as usize, &Emission::Silent);
            mb.silence(NodeId::new(s));
        }
        3 => {
            rf.insert(s as usize, r as usize, msg.clone());
            mb.insert(NodeId::new(s), NodeId::new(r), msg);
        }
        4 => {
            rf.knock_out(s as usize, r as usize);
            mb.knock_out(NodeId::new(s), NodeId::new(r));
        }
        5 => {
            let mut except: Vec<u32> = (0..n as u32).filter(|_| gen.gen_bool(0.3)).collect();
            except.sort_unstable();
            rf.set_broadcast_except(s as usize, base_msg.clone(), &except);
            mb.set_broadcast_except(NodeId::new(s), base_msg, &except);
        }
        6 => {
            let a = rf.take_broadcast(s as usize);
            let b = mb.take_broadcast(NodeId::new(s));
            assert_eq!(a, b, "take_broadcast disagrees for sender {s}");
        }
        _ => {
            let a = rf.insert_if_vacant(s as usize, r as usize, msg.clone());
            let b = mb
                .insert_if_vacant(NodeId::new(s), NodeId::new(r), msg)
                .is_none();
            assert_eq!(a, b, "insert_if_vacant disagrees for ({s}, {r})");
        }
    }
}

fn assert_equivalent(mb: &RoundMailbox<Tm>, rf: &Reference, ctx: &str) {
    let n = rf.n;
    for s in 0..n {
        let sid = NodeId::new(s as u32);
        for r in 0..n {
            assert_eq!(
                mb.resolve(sid, NodeId::new(r as u32)),
                rf.grid[s][r].as_ref(),
                "{ctx}: resolve({s}, {r})"
            );
        }
        assert_eq!(
            mb.is_broadcast(sid),
            rf.pure_broadcast[s],
            "{ctx}: is_broadcast({s})"
        );
        assert_eq!(
            mb.broadcast_of(sid),
            if rf.pure_broadcast[s] {
                rf.base[s].as_ref()
            } else {
                None
            },
            "{ctx}: broadcast_of({s})"
        );
        assert_eq!(
            mb.is_silent(sid),
            rf.grid[s].iter().all(Option::is_none),
            "{ctx}: is_silent({s})"
        );
        // Inboxes agree with the grid column, in sender order.
        let via_inbox: Vec<(u32, Tm)> = mb
            .inbox(NodeId::new(s as u32))
            .iter()
            .map(|(from, m)| (from.raw(), m.clone()))
            .collect();
        let via_grid: Vec<(u32, Tm)> = (0..n)
            .filter_map(|from| rf.grid[from][s].clone().map(|m| (from as u32, m)))
            .collect();
        assert_eq!(via_inbox, via_grid, "{ctx}: inbox({s})");
    }
    assert_eq!(mb.message_count(), rf.message_count(), "{ctx}: count");
    assert_eq!(mb.total_bits(), rf.total_bits(), "{ctx}: bits");
    // max_edge_bits: bracketed rather than pinned, because the mailbox
    // (like the pre-dense implementation, which reported a broadcast's
    // size even at n = 1) may count a live base that no remote edge
    // currently carries. Lower bound: every resolvable message. Upper
    // bound: those plus live broadcast bases.
    let mut lower = 0;
    let mut upper = 0;
    for s in 0..n {
        for m in rf.grid[s].iter().flatten() {
            lower = lower.max(m.bit_size());
        }
        if let Some(b) = mb.broadcast_base(NodeId::new(s as u32)) {
            upper = upper.max(b.bit_size());
        }
    }
    upper = upper.max(lower);
    let got = mb.max_edge_bits();
    assert!(
        got >= lower && got <= upper,
        "{ctx}: max_edge_bits {got} outside [{lower}, {upper}]"
    );
}

#[test]
fn dense_mailbox_matches_reference_model() {
    for n in [1usize, 2, 17, 64] {
        let mut gen = SmallRng::seed_from_u64(0xD1FF ^ n as u64);
        for case in 0..8 {
            let mut mb: RoundMailbox<Tm> = RoundMailbox::new(n);
            let mut rf = Reference::new(n);
            let steps = gen.gen_range(4..40usize);
            for step in 0..steps {
                random_op(&mut gen, &mut mb, &mut rf, n);
                assert_equivalent(&mb, &rf, &format!("n={n} case={case} step={step}"));
            }
            // Pooled reuse must behave like a fresh mailbox.
            mb.reset(n);
            let rf2 = Reference::new(n);
            assert_equivalent(&mb, &rf2, &format!("n={n} case={case} post-reset"));
        }
    }
}
