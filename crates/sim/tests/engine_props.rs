//! Property-style tests on the engine, deterministically sampled:
//! invariants that must hold for arbitrary corruption schedules and
//! network sizes. (No proptest in this offline workspace — cases are
//! drawn from a fixed-seed generator so every run checks the same
//! sample.)

use aba_sim::adversary::{Adversary, AdversaryAction, RoundView};
use aba_sim::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

#[derive(Debug, Clone)]
struct Tick(#[allow(dead_code)] u8);
impl Message for Tick {
    fn bit_size(&self) -> usize {
        8
    }
}

/// Counts invocations; halts at a deadline.
#[derive(Debug)]
struct Probe {
    deadline: u64,
    emits: u64,
    receives: u64,
    halted: bool,
}

fn probes(n: usize, deadline: u64) -> Vec<Probe> {
    (0..n)
        .map(|_| Probe {
            deadline,
            emits: 0,
            receives: 0,
            halted: false,
        })
        .collect()
}

impl Protocol for Probe {
    type Msg = Tick;
    fn emit(&mut self, _r: Round, _rng: &mut dyn RngCore) -> Emission<Tick> {
        self.emits += 1;
        Emission::Broadcast(Tick(1))
    }
    fn receive(&mut self, r: Round, _i: Inbox<'_, Tick>, _rng: &mut dyn RngCore) {
        self.receives += 1;
        if r.index() + 1 >= self.deadline {
            self.halted = true;
        }
    }
    fn output(&self) -> Option<bool> {
        self.halted.then_some(true)
    }
    fn halted(&self) -> bool {
        self.halted
    }
}

/// Corrupts a scripted set of (round, node) pairs; corrupted nodes stay
/// silent.
#[derive(Debug, Clone)]
struct Scripted {
    script: Vec<(u64, u32)>,
}

impl Adversary<Probe> for Scripted {
    fn act(
        &mut self,
        view: &RoundView<'_, Probe>,
        _rng: &mut dyn RngCore,
    ) -> AdversaryAction<Tick> {
        let due: Vec<NodeId> = self
            .script
            .iter()
            .filter(|(r, _)| *r == view.round.index())
            .map(|(_, id)| NodeId::new(*id))
            .filter(|id| !view.ledger.is_corrupted(*id))
            .take(view.ledger.remaining())
            .collect();
        AdversaryAction {
            corruptions: due,
            sends: Vec::new(),
        }
    }
}

/// Corrupted nodes are never stepped again: their emit/receive counters
/// freeze at the corruption round.
#[test]
fn corrupted_nodes_are_frozen() {
    let mut gen = SmallRng::seed_from_u64(0xF07E);
    for _ in 0..96 {
        let n = gen.gen_range(2..16usize);
        let t = gen.gen_range(0..16usize) % n;
        let deadline = gen.gen_range(2..12u64);
        let script: Vec<(u64, u32)> = (0..gen.gen_range(0..12usize))
            .map(|_| (gen.gen_range(0..12u64), gen.gen_range(0..n as u32)))
            .collect();
        let seed = gen.next_u64();
        let ctx = format!("n={n} t={t} deadline={deadline} seed={seed} script={script:?}");

        let cfg = SimConfig::new(n, t)
            .with_seed(seed)
            .with_max_rounds(40)
            .with_trace(true);
        let mut sim = Simulation::new(cfg, probes(n, deadline), Scripted { script });
        while sim.step() {}
        // Corruption rounds, by node.
        // aba-lint: allow(hash-nondeterminism) — keyed lookup only; iteration order never observed
        let corrupted_at: std::collections::HashMap<usize, u64> = sim
            .ledger()
            .history()
            .iter()
            .map(|(r, id)| (id.index(), r.index()))
            .collect();
        let report_rounds = sim.round().index();
        for (i, node) in sim.nodes().iter().enumerate() {
            match corrupted_at.get(&i) {
                Some(r) => {
                    // Stepped once per round up to and including round r
                    // (corruption happens after emit of round r).
                    assert!(
                        node.emits <= r + 1,
                        "{ctx}: node {i} emitted after corruption"
                    );
                    assert!(
                        node.receives <= *r,
                        "{ctx}: node {i} received after corruption"
                    );
                }
                None => {
                    assert!(node.emits <= report_rounds, "{ctx}: node {i}");
                }
            }
        }
        // Budget always respected.
        assert!(sim.ledger().used() <= t, "{ctx}");
    }
}

/// Metrics identity: total messages equals the sum over rounds, and
/// every round's messages fit under n(n−1).
#[test]
fn metrics_are_consistent() {
    let mut gen = SmallRng::seed_from_u64(0x3E7A);
    for _ in 0..64 {
        let n = gen.gen_range(1..12usize);
        let deadline = gen.gen_range(1..10u64);
        let seed = gen.next_u64();
        let cfg = SimConfig::new(n, 0)
            .with_seed(seed)
            .with_round_metrics(true)
            .with_max_rounds(32);
        let report = Simulation::new(cfg, probes(n, deadline), aba_sim::adversary::Benign).run();
        let sum: usize = report.metrics.per_round.iter().map(|r| r.messages).sum();
        assert_eq!(sum, report.metrics.total_messages, "n={n} seed={seed}");
        for rm in &report.metrics.per_round {
            assert!(rm.messages <= n * (n - 1), "n={n} seed={seed}");
        }
        assert!(report.all_halted);
        assert_eq!(report.rounds, deadline, "n={n} seed={seed}");
    }
}

/// Determinism across reconstruction: step-by-step equals run().
#[test]
fn stepping_equals_running() {
    let mut gen = SmallRng::seed_from_u64(0x57E9);
    for _ in 0..48 {
        let n = gen.gen_range(1..10usize);
        let deadline = gen.gen_range(1..8u64);
        let seed = gen.next_u64();
        let cfg = SimConfig::new(n, 0).with_seed(seed);
        let a = Simulation::new(cfg.clone(), probes(n, deadline), aba_sim::adversary::Benign).run();
        let mut sim = Simulation::new(cfg, probes(n, deadline), aba_sim::adversary::Benign);
        while sim.step() {}
        let b = sim.into_report();
        assert_eq!(a.rounds, b.rounds, "n={n} seed={seed}");
        assert_eq!(a.outputs, b.outputs, "n={n} seed={seed}");
        assert_eq!(
            a.metrics.total_messages, b.metrics.total_messages,
            "n={n} seed={seed}"
        );
    }
}
