//! Property tests on the engine: invariants that must hold for arbitrary
//! corruption schedules and network sizes.

use aba_sim::adversary::{Adversary, AdversaryAction, RoundView};
use aba_sim::prelude::*;
use proptest::prelude::*;
use rand::RngCore;

#[derive(Debug, Clone)]
struct Tick(u8);
impl Message for Tick {
    fn bit_size(&self) -> usize {
        8
    }
}

/// Counts invocations; halts at a deadline.
#[derive(Debug)]
struct Probe {
    deadline: u64,
    emits: u64,
    receives: u64,
    halted: bool,
}

impl Protocol for Probe {
    type Msg = Tick;
    fn emit(&mut self, _r: Round, _rng: &mut dyn RngCore) -> Emission<Tick> {
        self.emits += 1;
        Emission::Broadcast(Tick(1))
    }
    fn receive(&mut self, r: Round, _i: Inbox<'_, Tick>, _rng: &mut dyn RngCore) {
        self.receives += 1;
        if r.index() + 1 >= self.deadline {
            self.halted = true;
        }
    }
    fn output(&self) -> Option<bool> {
        self.halted.then_some(true)
    }
    fn halted(&self) -> bool {
        self.halted
    }
}

/// Corrupts a scripted set of (round, node) pairs; corrupted nodes stay
/// silent.
#[derive(Debug, Clone)]
struct Scripted {
    script: Vec<(u64, u32)>,
}

impl Adversary<Probe> for Scripted {
    fn act(&mut self, view: &RoundView<'_, Probe>, _rng: &mut dyn RngCore) -> AdversaryAction<Tick> {
        let due: Vec<NodeId> = self
            .script
            .iter()
            .filter(|(r, _)| *r == view.round.index())
            .map(|(_, id)| NodeId::new(*id))
            .filter(|id| !view.ledger.is_corrupted(*id))
            .take(view.ledger.remaining())
            .collect();
        AdversaryAction {
            corruptions: due,
            sends: Vec::new(),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// Corrupted nodes are never stepped again: their emit/receive
    /// counters freeze at the corruption round.
    #[test]
    fn corrupted_nodes_are_frozen(
        n in 2usize..16,
        t_frac in 0usize..16,
        deadline in 2u64..12,
        script in proptest::collection::vec((0u64..12, 0u32..16), 0..12),
        seed in any::<u64>(),
    ) {
        let t = t_frac % n;
        let script: Vec<(u64, u32)> = script
            .into_iter()
            .map(|(r, id)| (r, id % n as u32))
            .collect();
        let nodes: Vec<Probe> = (0..n)
            .map(|_| Probe { deadline, emits: 0, receives: 0, halted: false })
            .collect();
        let cfg = SimConfig::new(n, t).with_seed(seed).with_max_rounds(40).with_trace(true);
        let mut sim = Simulation::new(cfg, nodes, Scripted { script });
        while sim.step() {}
        // Corruption rounds, by node.
        let corrupted_at: std::collections::HashMap<usize, u64> = sim
            .ledger()
            .history()
            .iter()
            .map(|(r, id)| (id.index(), r.index()))
            .collect();
        let report_rounds = sim.round().index();
        for (i, node) in sim.nodes().iter().enumerate() {
            match corrupted_at.get(&i) {
                Some(r) => {
                    // Stepped once per round up to and including round r
                    // (corruption happens after emit of round r).
                    prop_assert!(node.emits <= r + 1, "node {i} emitted after corruption");
                    prop_assert!(node.receives <= *r, "node {i} received after corruption");
                }
                None => {
                    let active = node.emits;
                    prop_assert!(active <= report_rounds);
                }
            }
        }
        // Budget always respected.
        prop_assert!(sim.ledger().used() <= t);
    }

    /// Metrics identity: total messages equals the sum over rounds, and
    /// every round's messages fit under n(n−1).
    #[test]
    fn metrics_are_consistent(
        n in 1usize..12,
        deadline in 1u64..10,
        seed in any::<u64>(),
    ) {
        let nodes: Vec<Probe> = (0..n)
            .map(|_| Probe { deadline, emits: 0, receives: 0, halted: false })
            .collect();
        let cfg = SimConfig::new(n, 0)
            .with_seed(seed)
            .with_round_metrics(true)
            .with_max_rounds(32);
        let report = Simulation::new(cfg, nodes, aba_sim::adversary::Benign).run();
        let sum: usize = report.metrics.per_round.iter().map(|r| r.messages).sum();
        prop_assert_eq!(sum, report.metrics.total_messages);
        for rm in &report.metrics.per_round {
            prop_assert!(rm.messages <= n * (n - 1).max(0));
        }
        prop_assert!(report.all_halted);
        prop_assert_eq!(report.rounds, deadline);
    }

    /// Determinism across reconstruction: step-by-step equals run().
    #[test]
    fn stepping_equals_running(
        n in 1usize..10,
        deadline in 1u64..8,
        seed in any::<u64>(),
    ) {
        let mk = || -> Vec<Probe> {
            (0..n)
                .map(|_| Probe { deadline, emits: 0, receives: 0, halted: false })
                .collect()
        };
        let cfg = SimConfig::new(n, 0).with_seed(seed);
        let a = Simulation::new(cfg.clone(), mk(), aba_sim::adversary::Benign).run();
        let mut sim = Simulation::new(cfg, mk(), aba_sim::adversary::Benign);
        while sim.step() {}
        let b = sim.into_report();
        prop_assert_eq!(a.rounds, b.rounds);
        prop_assert_eq!(a.outputs, b.outputs);
        prop_assert_eq!(a.metrics.total_messages, b.metrics.total_messages);
    }
}
