//! Engine edge cases: full corruption, corrupting halted nodes, zero
//! budgets, trace completeness.

use aba_sim::adversary::{Adversary, AdversaryAction, Benign, RoundView};
use aba_sim::prelude::*;
use rand::RngCore;

#[derive(Debug, Clone)]
struct Ping;
impl Message for Ping {
    fn bit_size(&self) -> usize {
        2
    }
}

#[derive(Debug)]
struct Node {
    deadline: u64,
    halted: bool,
}
impl Protocol for Node {
    type Msg = Ping;
    fn emit(&mut self, _r: Round, _rng: &mut dyn RngCore) -> Emission<Ping> {
        Emission::Broadcast(Ping)
    }
    fn receive(&mut self, r: Round, _i: Inbox<'_, Ping>, _rng: &mut dyn RngCore) {
        if r.index() + 1 >= self.deadline {
            self.halted = true;
        }
    }
    fn output(&self) -> Option<bool> {
        self.halted.then_some(true)
    }
    fn halted(&self) -> bool {
        self.halted
    }
}

fn nodes(n: usize, deadline: u64) -> Vec<Node> {
    (0..n)
        .map(|_| Node {
            deadline,
            halted: false,
        })
        .collect()
}

/// Corrupts everyone in round 0.
struct TotalCorruption;
impl Adversary<Node> for TotalCorruption {
    fn act(&mut self, view: &RoundView<'_, Node>, _rng: &mut dyn RngCore) -> AdversaryAction<Ping> {
        if view.round == Round::ZERO {
            AdversaryAction {
                corruptions: (0..view.n() as u32).map(NodeId::new).collect(),
                sends: Vec::new(),
            }
        } else {
            AdversaryAction::pass()
        }
    }
}

#[test]
fn fully_corrupted_network_terminates_vacuously() {
    let cfg = SimConfig::new(4, 4).with_max_rounds(100);
    let report = Simulation::new(cfg, nodes(4, 50), TotalCorruption).run();
    // No honest nodes left: the run ends immediately after the round.
    assert!(report.all_halted, "vacuously true with zero honest nodes");
    assert_eq!(report.corruptions_used, 4);
    assert!(report.rounds <= 2);
    assert!(report.outputs.iter().all(|o| o.is_none()));
}

/// Corrupts one node well after it has halted.
struct LateCorruptor;
impl Adversary<Node> for LateCorruptor {
    fn act(&mut self, view: &RoundView<'_, Node>, _rng: &mut dyn RngCore) -> AdversaryAction<Ping> {
        // Node 0 halts at round 1; corrupt it at round 2.
        if view.round.index() == 2 {
            AdversaryAction {
                corruptions: vec![NodeId::new(0)],
                sends: vec![(NodeId::new(0), Emission::Broadcast(Ping))],
            }
        } else {
            AdversaryAction::pass()
        }
    }
}

#[test]
fn corrupting_a_halted_node_is_allowed_and_erases_its_output() {
    // Nodes 1..3 halt at round 4; node 0 halts at round 2 (deadline 2).
    let mut all = nodes(4, 4);
    all[0].deadline = 2;
    let cfg = SimConfig::new(4, 1).with_max_rounds(100);
    let report = Simulation::new(cfg, all, LateCorruptor).run();
    assert!(!report.honest[0]);
    assert_eq!(report.outputs[0], None, "corrupted outputs are discarded");
    assert!(report.honest[1] && report.outputs[1] == Some(true));
}

#[test]
fn zero_budget_ledger_blocks_everything() {
    let cfg = SimConfig::new(3, 0).with_max_rounds(10);
    let report = Simulation::new(cfg, nodes(3, 2), Benign).run();
    assert_eq!(report.corruptions_used, 0);
    assert!(report.honest.iter().all(|h| *h));
}

#[test]
fn trace_records_round_starts_halts_and_corruptions() {
    let cfg = SimConfig::new(4, 1).with_max_rounds(100).with_trace(true);
    let mut all = nodes(4, 4);
    all[0].deadline = 2;
    let report = Simulation::new(cfg, all, LateCorruptor).run();
    let round_starts = report
        .trace
        .events()
        .iter()
        .filter(|e| matches!(e, Event::RoundStart { .. }))
        .count();
    assert_eq!(round_starts as u64, report.rounds);
    assert_eq!(report.trace.corruptions().count(), 1);
    // Node 0 halted (round 1) before being corrupted (round 2).
    let halts: Vec<_> = report.trace.halts().collect();
    assert!(halts
        .iter()
        .any(|(r, node, _)| node.index() == 0 && r.index() == 1));
}

#[test]
fn per_round_metrics_recorded_when_enabled() {
    let cfg = SimConfig::new(3, 0).with_round_metrics(true);
    let report = Simulation::new(cfg, nodes(3, 3), Benign).run();
    assert_eq!(report.metrics.per_round.len() as u64, report.rounds);
    for rm in &report.metrics.per_round {
        assert_eq!(rm.messages, 3 * 2);
        assert_eq!(rm.max_edge_bits, 2);
    }
}

#[test]
fn n_equals_one_runs() {
    let cfg = SimConfig::new(1, 0);
    let report = Simulation::new(cfg, nodes(1, 2), Benign).run();
    assert!(report.all_halted);
    assert_eq!(report.metrics.total_messages, 0, "no one to talk to");
}
