//! Differential test: the bit-packed binary plane against the dense
//! broadcast-aware mailbox.
//!
//! Both planes implement [`MessagePlane`], so one driver replays seeded
//! interleavings of the *whole* mutation API (`set` broadcast /
//! per-recipient / silent, `silence`, `insert`, `knock_out`,
//! `set_broadcast_except`, `merge_broadcast_except`, `take_broadcast`,
//! `insert_if_vacant`, `insert_if_vacant_with`) against each and
//! compares every observable after every step, across
//! n ∈ {1, 2, 17, 64, 257} — the word-boundary shapes (64, 257) are the
//! ones a bitset implementation gets wrong first. Unlike the
//! naive-reference differential (`mailbox_differential.rs`), the dense
//! mailbox *can* distinguish base-derived cells from inserted copies, so
//! this generator deliberately also inserts messages equal to a live
//! broadcast base — the case flight-queue redelivery produces.
//!
//! The packed plane's one extra observable — `packed_match_count`, the
//! popcount tally — is checked against a from-scratch dense scan.

use aba_sim::{
    Emission, Message, MessagePlane, NodeId, PackedMailbox, PackedMessage, RoundMailbox,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

#[derive(Debug, Clone, PartialEq, Eq)]
struct Tm(u16);

impl Message for Tm {
    fn bit_size(&self) -> usize {
        4 + (self.0 % 13) as usize // varied sizes exercise the bit counters
    }
}

impl PackedMessage for Tm {
    fn pack(&self) -> Option<u32> {
        Some(self.0 as u32)
    }
    fn unpack(code: u32) -> Self {
        Tm(code as u16)
    }
}

/// One random mutation applied to both planes through the trait.
fn random_op(
    gen: &mut SmallRng,
    dense: &mut RoundMailbox<Tm>,
    packed: &mut PackedMailbox<Tm>,
    n: usize,
) {
    let s = NodeId::new(gen.gen_range(0..n as u32));
    let r = NodeId::new(gen.gen_range(0..n as u32));
    // Half the time, aim the message at the sender's live base value —
    // the equality path a generic reference model cannot express.
    let msg = match dense.broadcast_base(s) {
        Some(b) if gen.gen_bool(0.5) => b.clone(),
        _ => Tm(gen.gen()),
    };
    match gen.gen_range(0..10u32) {
        0 => {
            let e = Emission::Broadcast(Tm(gen.gen()));
            dense.set(s, e.clone());
            packed.set(s, e);
        }
        1 => {
            let k = gen.gen_range(0..2 * n);
            let v: Vec<(NodeId, Tm)> = (0..k)
                .map(|_| (NodeId::new(gen.gen_range(0..n as u32)), Tm(gen.gen())))
                .collect();
            let e = Emission::PerRecipient(v);
            dense.set(s, e.clone());
            packed.set(s, e);
        }
        2 => {
            dense.silence(s);
            packed.silence(s);
        }
        3 => {
            dense.insert(s, r, msg.clone());
            packed.insert(s, r, msg);
        }
        4 => {
            dense.knock_out(s, r);
            packed.knock_out(s, r);
        }
        5 => {
            let mut except: Vec<u32> = (0..n as u32).filter(|_| gen.gen_bool(0.3)).collect();
            except.sort_unstable();
            dense.set_broadcast_except(s, msg.clone(), &except);
            packed.set_broadcast_except(s, msg, &except);
        }
        6 => {
            // Precondition (shared by both planes): merging over an
            // existing base is a programming error. Steer to a plain
            // insert when the row already has one.
            if dense.broadcast_base(s).is_some() {
                dense.insert(s, r, msg.clone());
                packed.insert(s, r, msg);
            } else {
                let mut except: Vec<u32> = (0..n as u32).filter(|_| gen.gen_bool(0.3)).collect();
                except.sort_unstable();
                let (mut ca, mut cb) = (Vec::new(), Vec::new());
                dense.merge_broadcast_except(s, msg.clone(), &except, &mut ca);
                packed.merge_broadcast_except(s, msg, &except, &mut cb);
                assert_eq!(ca, cb, "merge_broadcast_except conflicts for {s}");
            }
        }
        7 => {
            let a = dense.take_broadcast(s);
            let b = packed.take_broadcast(s);
            assert_eq!(a, b, "take_broadcast disagrees for sender {s}");
        }
        8 => {
            let a = dense.insert_if_vacant(s, r, msg.clone());
            let b = packed.insert_if_vacant(s, r, msg);
            assert_eq!(a, b, "insert_if_vacant disagrees for ({s}, {r})");
        }
        _ => {
            let a = dense.insert_if_vacant_with(s, r, || msg.clone());
            let b = packed.insert_if_vacant_with(s, r, || msg.clone());
            assert_eq!(a, b, "insert_if_vacant_with disagrees for ({s}, {r})");
        }
    }
}

fn assert_equivalent(dense: &RoundMailbox<Tm>, packed: &PackedMailbox<Tm>, n: usize, ctx: &str) {
    assert_eq!(MessagePlane::n(dense), packed.n(), "{ctx}: n");
    for s in 0..n as u32 {
        let s = NodeId::new(s);
        assert_eq!(
            dense.broadcast_base(s),
            MessagePlane::broadcast_base(packed, s),
            "{ctx}: broadcast_base({s})"
        );
        assert_eq!(
            dense.broadcast_of(s),
            MessagePlane::broadcast_of(packed, s),
            "{ctx}: broadcast_of({s})"
        );
        assert_eq!(
            dense.is_broadcast(s),
            MessagePlane::is_broadcast(packed, s),
            "{ctx}: is_broadcast({s})"
        );
        assert_eq!(
            dense.is_silent(s),
            MessagePlane::is_silent(packed, s),
            "{ctx}: is_silent({s})"
        );
        for r in 0..n as u32 {
            let r = NodeId::new(r);
            assert_eq!(
                MessagePlane::has_message(dense, s, r),
                packed.has_message(s, r),
                "{ctx}: has_message({s}, {r})"
            );
            assert_eq!(
                MessagePlane::resolve_value(dense, s, r),
                packed.resolve_value(s, r),
                "{ctx}: resolve_value({s}, {r})"
            );
        }
    }
    for r in 0..n as u32 {
        let r = NodeId::new(r);
        let via_dense: Vec<(u32, Tm)> = dense
            .inbox(r)
            .iter()
            .map(|(from, m)| (from.raw(), m.clone()))
            .collect();
        let via_packed: Vec<(u32, Tm)> = MessagePlane::inbox(packed, r)
            .iter()
            .map(|(from, m)| (from.raw(), m.clone()))
            .collect();
        assert_eq!(via_dense, via_packed, "{ctx}: inbox({r})");
        // The popcount tally against a from-scratch dense scan, over a
        // spread of masks and a word-straddling sender range.
        for (mask, bits) in [(0u32, 0u32), (1, 1), (0b1111, 0b1010), (0xFFFF, 0x00FF)] {
            let lo = (n as u32) / 3;
            let hi = (2 * n as u32).div_ceil(3);
            for range in [None, Some(lo..hi)] {
                let expect = dense
                    .inbox(r)
                    .iter()
                    .filter(|(from, _)| range.as_ref().is_none_or(|rg| rg.contains(&from.raw())))
                    .filter(|(_, m)| (m.0 as u32) & mask == bits)
                    .count();
                let got = MessagePlane::inbox(packed, r)
                    .packed_match_count(mask, bits, range.clone())
                    .expect("packed inbox answers packed_match_count");
                assert_eq!(
                    got, expect,
                    "{ctx}: match_count(r={r}, mask={mask:#x}, bits={bits:#x}, range={range:?})"
                );
            }
        }
        assert_eq!(
            dense.inbox(r).packed_match_count(0, 0, None),
            None,
            "{ctx}: dense inbox must decline the packed tally"
        );
    }
    assert_eq!(
        dense.message_count(),
        MessagePlane::message_count(packed),
        "{ctx}: message_count"
    );
    assert_eq!(
        dense.total_bits(),
        MessagePlane::total_bits(packed),
        "{ctx}: total_bits"
    );
    assert_eq!(
        dense.max_edge_bits(),
        MessagePlane::max_edge_bits(packed),
        "{ctx}: max_edge_bits"
    );
}

#[test]
fn packed_plane_matches_dense_mailbox() {
    for n in [1usize, 2, 17, 64, 257] {
        let mut gen = SmallRng::seed_from_u64(0xB175 ^ n as u64);
        let cases = if n >= 257 { 3 } else { 8 };
        for case in 0..cases {
            let mut dense: RoundMailbox<Tm> = RoundMailbox::new(n);
            let mut packed: PackedMailbox<Tm> = PackedMailbox::new(n);
            let steps = gen.gen_range(4..40usize);
            for step in 0..steps {
                random_op(&mut gen, &mut dense, &mut packed, n);
                assert_equivalent(
                    &dense,
                    &packed,
                    n,
                    &format!("n={n} case={case} step={step}"),
                );
            }
            // Pooled reuse must behave like a fresh plane on both sides.
            dense.reset(n);
            MessagePlane::reset(&mut packed, n);
            assert_equivalent(&dense, &packed, n, &format!("n={n} case={case} post-reset"));
        }
    }
}
