//! Property tests for the mailbox/emission layer: delivery semantics,
//! counting laws, and equivocation behaviour under arbitrary traffic.

use aba_sim::{Emission, Message, NodeId, RoundMailbox};
use proptest::prelude::*;

#[derive(Debug, Clone, PartialEq, Eq)]
struct Tm(u16);
impl Message for Tm {
    fn bit_size(&self) -> usize {
        16
    }
}

/// An arbitrary emission targeting nodes in `0..n`.
fn emission_strategy(n: usize) -> impl Strategy<Value = Emission<Tm>> {
    prop_oneof![
        Just(Emission::Silent),
        any::<u16>().prop_map(|v| Emission::Broadcast(Tm(v))),
        proptest::collection::vec((0..n as u32, any::<u16>()), 0..2 * n).prop_map(|pairs| {
            Emission::PerRecipient(
                pairs
                    .into_iter()
                    .map(|(to, v)| (NodeId::new(to), Tm(v)))
                    .collect(),
            )
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// message_count equals the number of resolvable (sender, receiver)
    /// pairs, excluding broadcast self-copies.
    #[test]
    fn message_count_matches_resolution(
        n in 1usize..24,
        emissions in proptest::collection::vec(emission_strategy(16), 1..24),
    ) {
        let mut mb: RoundMailbox<Tm> = RoundMailbox::new(n);
        for (i, e) in emissions.iter().enumerate().take(n) {
            // Clamp recipient ids into range.
            let clamped = match e {
                Emission::PerRecipient(v) => Emission::PerRecipient(
                    v.iter()
                        .map(|(to, m)| (NodeId::new(to.raw() % n as u32), m.clone()))
                        .collect(),
                ),
                other => other.clone(),
            };
            mb.set(NodeId::new(i as u32), clamped);
        }
        let mut resolvable = 0usize;
        for s in 0..n {
            let sender = NodeId::new(s as u32);
            for r in 0..n {
                let receiver = NodeId::new(r as u32);
                if mb.resolve(sender, receiver).is_some() && !(mb.is_broadcast(sender) && s == r) {
                    resolvable += 1;
                }
            }
        }
        prop_assert_eq!(mb.message_count(), resolvable);
    }

    /// Inboxes are consistent with point resolution.
    #[test]
    fn inbox_agrees_with_resolve(
        n in 1usize..16,
        emissions in proptest::collection::vec(emission_strategy(16), 1..16),
    ) {
        let mut mb: RoundMailbox<Tm> = RoundMailbox::new(n);
        for (i, e) in emissions.iter().enumerate().take(n) {
            let clamped = match e {
                Emission::PerRecipient(v) => Emission::PerRecipient(
                    v.iter()
                        .map(|(to, m)| (NodeId::new(to.raw() % n as u32), m.clone()))
                        .collect(),
                ),
                other => other.clone(),
            };
            mb.set(NodeId::new(i as u32), clamped);
        }
        for r in 0..n {
            let receiver = NodeId::new(r as u32);
            let via_inbox: Vec<(u32, Tm)> = mb
                .inbox(receiver)
                .iter()
                .map(|(s, m)| (s.raw(), m.clone()))
                .collect();
            let via_resolve: Vec<(u32, Tm)> = (0..n as u32)
                .filter_map(|s| {
                    mb.resolve(NodeId::new(s), receiver)
                        .map(|m| (s, m.clone()))
                })
                .collect();
            prop_assert_eq!(via_inbox, via_resolve);
        }
    }

    /// Total bits = Σ message bits; the per-edge max never exceeds the
    /// total and is attained by some delivered message.
    #[test]
    fn bit_accounting_laws(
        n in 2usize..16,
        emissions in proptest::collection::vec(emission_strategy(12), 1..12),
    ) {
        let mut mb: RoundMailbox<Tm> = RoundMailbox::new(n);
        for (i, e) in emissions.iter().enumerate().take(n) {
            let clamped = match e {
                Emission::PerRecipient(v) => Emission::PerRecipient(
                    v.iter()
                        .map(|(to, m)| (NodeId::new(to.raw() % n as u32), m.clone()))
                        .collect(),
                ),
                other => other.clone(),
            };
            mb.set(NodeId::new(i as u32), clamped);
        }
        prop_assert_eq!(mb.total_bits(), mb.message_count() * 16);
        if mb.message_count() > 0 {
            prop_assert_eq!(mb.max_edge_bits(), 16);
        } else {
            prop_assert_eq!(mb.max_edge_bits(), 0);
        }
    }

    /// Setting a slot twice keeps only the second emission.
    #[test]
    fn set_is_last_writer_wins(
        n in 2usize..12,
        first in emission_strategy(8),
        second in emission_strategy(8),
    ) {
        let clamp = |e: &Emission<Tm>| match e {
            Emission::PerRecipient(v) => Emission::PerRecipient(
                v.iter()
                    .map(|(to, m)| (NodeId::new(to.raw() % n as u32), m.clone()))
                    .collect(),
            ),
            other => other.clone(),
        };
        let mut a: RoundMailbox<Tm> = RoundMailbox::new(n);
        a.set(NodeId::new(0), clamp(&first));
        a.set(NodeId::new(0), clamp(&second));
        let mut b: RoundMailbox<Tm> = RoundMailbox::new(n);
        b.set(NodeId::new(0), clamp(&second));
        for r in 0..n as u32 {
            prop_assert_eq!(
                a.resolve(NodeId::new(0), NodeId::new(r)),
                b.resolve(NodeId::new(0), NodeId::new(r))
            );
        }
    }
}
