//! Property-style tests for the mailbox/emission layer, deterministically
//! sampled: delivery semantics, counting laws, and equivocation behaviour
//! under arbitrary traffic. (No proptest in this offline workspace —
//! cases are drawn from a fixed-seed generator.)

use aba_sim::{Emission, Message, NodeId, RoundMailbox};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

#[derive(Debug, Clone, PartialEq, Eq)]
struct Tm(u16);
impl Message for Tm {
    fn bit_size(&self) -> usize {
        16
    }
}

/// An arbitrary emission with recipients already clamped into `0..n`.
fn random_emission(gen: &mut SmallRng, n: usize) -> Emission<Tm> {
    match gen.gen_range(0..3u32) {
        0 => Emission::Silent,
        1 => Emission::Broadcast(Tm(gen.gen::<u16>())),
        _ => {
            let k = gen.gen_range(0..2 * n);
            Emission::PerRecipient(
                (0..k)
                    .map(|_| {
                        (
                            NodeId::new(gen.gen_range(0..n as u32)),
                            Tm(gen.gen::<u16>()),
                        )
                    })
                    .collect(),
            )
        }
    }
}

/// A mailbox with random traffic from every sender.
fn random_mailbox(gen: &mut SmallRng, n: usize, senders: usize) -> RoundMailbox<Tm> {
    let mut mb: RoundMailbox<Tm> = RoundMailbox::new(n);
    for i in 0..senders.min(n) {
        let e = random_emission(gen, n);
        mb.set(NodeId::new(i as u32), e);
    }
    mb
}

/// message_count equals the number of resolvable (sender, receiver)
/// pairs, excluding broadcast self-copies.
#[test]
fn message_count_matches_resolution() {
    let mut gen = SmallRng::seed_from_u64(0x4A11);
    for case in 0..128 {
        let n = gen.gen_range(1..24usize);
        let senders = gen.gen_range(1..24usize);
        let mb = random_mailbox(&mut gen, n, senders);
        let mut resolvable = 0usize;
        for s in 0..n {
            let sender = NodeId::new(s as u32);
            for r in 0..n {
                let receiver = NodeId::new(r as u32);
                if mb.resolve(sender, receiver).is_some() && !(mb.is_broadcast(sender) && s == r) {
                    resolvable += 1;
                }
            }
        }
        assert_eq!(mb.message_count(), resolvable, "case {case} n={n}");
    }
}

/// Inboxes are consistent with point resolution.
#[test]
fn inbox_agrees_with_resolve() {
    let mut gen = SmallRng::seed_from_u64(0x1B0E);
    for case in 0..96 {
        let n = gen.gen_range(1..16usize);
        let senders = gen.gen_range(1..16usize);
        let mb = random_mailbox(&mut gen, n, senders);
        for r in 0..n {
            let receiver = NodeId::new(r as u32);
            let via_inbox: Vec<(u32, Tm)> = mb
                .inbox(receiver)
                .iter()
                .map(|(s, m)| (s.raw(), m.clone()))
                .collect();
            let via_resolve: Vec<(u32, Tm)> = (0..n as u32)
                .filter_map(|s| mb.resolve(NodeId::new(s), receiver).map(|m| (s, m.clone())))
                .collect();
            assert_eq!(via_inbox, via_resolve, "case {case} n={n} r={r}");
        }
    }
}

/// Total bits = Σ message bits; the per-edge max never exceeds the
/// total and is attained by some delivered message.
#[test]
fn bit_accounting_laws() {
    let mut gen = SmallRng::seed_from_u64(0xB175);
    for case in 0..96 {
        let n = gen.gen_range(2..16usize);
        let senders = gen.gen_range(1..12usize);
        let mb = random_mailbox(&mut gen, n, senders);
        assert_eq!(mb.total_bits(), mb.message_count() * 16, "case {case}");
        if mb.message_count() > 0 {
            assert_eq!(mb.max_edge_bits(), 16, "case {case}");
        } else {
            assert_eq!(mb.max_edge_bits(), 0, "case {case}");
        }
    }
}

/// Setting a slot twice keeps only the second emission.
#[test]
fn set_is_last_writer_wins() {
    let mut gen = SmallRng::seed_from_u64(0x2ED0);
    for case in 0..96 {
        let n = gen.gen_range(2..12usize);
        let first = random_emission(&mut gen, n);
        let second = random_emission(&mut gen, n);
        let mut a: RoundMailbox<Tm> = RoundMailbox::new(n);
        a.set(NodeId::new(0), first);
        a.set(NodeId::new(0), second.clone());
        let mut b: RoundMailbox<Tm> = RoundMailbox::new(n);
        b.set(NodeId::new(0), second);
        for r in 0..n as u32 {
            assert_eq!(
                a.resolve(NodeId::new(0), NodeId::new(r)),
                b.resolve(NodeId::new(0), NodeId::new(r)),
                "case {case} n={n} r={r}"
            );
        }
    }
}
