//! The delivery-stage seam of the engine.
//!
//! Between the adversary phase (step 2) and local processing (step 3)
//! the engine hands the round's *wire mailbox* — everything emitted this
//! round, after adversarial replacement — to a [`Delivery`]
//! implementation, which decides what actually arrives this round. The
//! default, [`PassThrough`], reproduces the paper's lock-step synchronous
//! model exactly: every message is delivered in its emission round.
//!
//! Richer policies (lossy links, bounded-delay partial synchrony,
//! partitions) live in the `aba-net` crate, which implements this trait
//! on top of a per-message `NetworkModel` and a cross-round flight
//! queue. Keeping the seam here and the policies there means `aba-sim`
//! stays dependency-free while the engine needs no knowledge of any
//! concrete network condition.

use crate::adversary::CorruptionLedger;
use crate::id::Round;
use crate::mailbox::RoundMailbox;
use crate::message::Message;
use crate::plane::MessagePlane;

/// What the delivery stage did with this round's traffic.
///
/// Under [`PassThrough`] (and any transparent model) `delivered` equals
/// the round's point-to-point message count and the other two are zero,
/// so the pre-delivery-stage engine semantics are preserved bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeliveryStats {
    /// Point-to-point messages handed to receivers this round (a node's
    /// local self-copy of its own broadcast is not counted, matching
    /// [`RoundMailbox::message_count`]).
    pub delivered: usize,
    /// Messages dropped by the network this round.
    pub dropped: usize,
    /// Delay events this round: a message held back at emission counts
    /// once, and once more for every later round it is deferred again
    /// (e.g. by a busy link).
    pub delayed: usize,
}

/// The delivery stage: transforms the round's wire mailbox into the
/// mailbox receivers actually see, possibly holding messages for later
/// rounds or dropping them.
///
/// Implementations must be deterministic given their construction-time
/// seed: the engine guarantees `deliver` is called exactly once per
/// round, in round order, so any internal RNG stream replays identically
/// for identical runs.
///
/// The second parameter is the message plane the stage operates on,
/// defaulting to the dense [`RoundMailbox`] — implementations generic
/// over `L` (like `aba-net`'s `NetDelivery`) work unchanged on the
/// bit-packed plane.
pub trait Delivery<M: Message, L: MessagePlane<M> = RoundMailbox<M>> {
    /// Decides this round's arrivals.
    ///
    /// `wire` holds everything emitted this round (post-adversary);
    /// `ledger` identifies corrupted senders, letting adversarial
    /// schedulers discriminate honest traffic. Returns the mailbox to
    /// deliver plus the round's accounting.
    fn deliver(&mut self, round: Round, wire: L, ledger: &CorruptionLedger) -> (L, DeliveryStats);

    /// Messages currently held for future rounds.
    fn in_flight(&self) -> usize {
        0
    }

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

/// The identity delivery stage: every message arrives in its emission
/// round. This is the engine's default and reproduces the strictly
/// synchronous model of the paper.
#[derive(Debug, Clone, Copy, Default)]
pub struct PassThrough;

impl<M: Message, L: MessagePlane<M>> Delivery<M, L> for PassThrough {
    fn deliver(
        &mut self,
        _round: Round,
        wire: L,
        _ledger: &CorruptionLedger,
    ) -> (L, DeliveryStats) {
        let stats = DeliveryStats {
            delivered: wire.message_count(),
            ..DeliveryStats::default()
        };
        (wire, stats)
    }

    fn name(&self) -> &'static str {
        "pass-through"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::NodeId;
    use crate::message::Emission;

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Tm(u8);
    impl Message for Tm {
        fn bit_size(&self) -> usize {
            8
        }
    }

    #[test]
    fn pass_through_is_identity() {
        let mut mb = RoundMailbox::new(3);
        mb.set(NodeId::new(0), Emission::Broadcast(Tm(1)));
        mb.set(
            NodeId::new(2),
            Emission::PerRecipient(vec![(NodeId::new(1), Tm(9))]),
        );
        let ledger = CorruptionLedger::new(3, 0);
        let (out, stats) = PassThrough.deliver(Round::ZERO, mb, &ledger);
        assert_eq!(stats.delivered, 3);
        assert_eq!(stats.dropped, 0);
        assert_eq!(stats.delayed, 0);
        assert_eq!(out.resolve(NodeId::new(0), NodeId::new(1)), Some(&Tm(1)));
        assert_eq!(out.resolve(NodeId::new(2), NodeId::new(1)), Some(&Tm(9)));
        assert_eq!(<PassThrough as Delivery<Tm>>::in_flight(&PassThrough), 0);
        assert_eq!(
            <PassThrough as Delivery<Tm>>::name(&PassThrough),
            "pass-through"
        );
    }
}
