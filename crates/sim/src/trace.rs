//! Optional event log for debugging and for invariant-checking tests.
//!
//! Tracing is off by default (it allocates); integration tests switch it
//! on to check per-lemma invariants (e.g. Lemma 3: no two honest nodes
//! assign different values in the same phase's first round).

use crate::id::{NodeId, Round};

/// A structured event recorded during a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A round began.
    RoundStart {
        /// The round.
        round: Round,
    },
    /// The adversary corrupted a node.
    Corruption {
        /// The round.
        round: Round,
        /// The victim.
        node: NodeId,
        /// Total corruptions so far (including this one).
        total: usize,
    },
    /// An honest node halted with an output.
    Halt {
        /// The round.
        round: Round,
        /// The node.
        node: NodeId,
        /// Its decided output.
        output: Option<bool>,
    },
    /// Free-form, protocol-supplied annotation (phase transitions etc.).
    Note {
        /// The round.
        round: Round,
        /// The node the note concerns, if any.
        node: Option<NodeId>,
        /// The annotation.
        text: String,
    },
}

impl Event {
    /// The round the event belongs to.
    pub fn round(&self) -> Round {
        match self {
            Event::RoundStart { round }
            | Event::Corruption { round, .. }
            | Event::Halt { round, .. }
            | Event::Note { round, .. } => *round,
        }
    }
}

/// An append-only event log.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    enabled: bool,
    events: Vec<Event>,
}

impl Trace {
    /// A disabled trace: `push` is a no-op.
    pub fn disabled() -> Self {
        Trace {
            enabled: false,
            events: Vec::new(),
        }
    }

    /// An enabled trace that records every event.
    pub fn enabled() -> Self {
        Trace {
            enabled: true,
            events: Vec::new(),
        }
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event (no-op when disabled).
    pub fn push(&mut self, event: Event) {
        if self.enabled {
            self.events.push(event);
        }
    }

    /// All recorded events, in order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Events of a given round.
    pub fn in_round(&self, round: Round) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| e.round() == round)
    }

    /// All corruption events, in order.
    pub fn corruptions(&self) -> impl Iterator<Item = (Round, NodeId)> + '_ {
        self.events.iter().filter_map(|e| match e {
            Event::Corruption { round, node, .. } => Some((*round, *node)),
            _ => None,
        })
    }

    /// All halt events, in order.
    pub fn halts(&self) -> impl Iterator<Item = (Round, NodeId, Option<bool>)> + '_ {
        self.events.iter().filter_map(|e| match e {
            Event::Halt {
                round,
                node,
                output,
            } => Some((*round, *node, *output)),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.push(Event::RoundStart { round: Round::ZERO });
        assert!(t.events().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_trace_records_in_order() {
        let mut t = Trace::enabled();
        t.push(Event::RoundStart { round: Round::ZERO });
        t.push(Event::Corruption {
            round: Round::ZERO,
            node: NodeId::new(3),
            total: 1,
        });
        t.push(Event::Halt {
            round: Round::new(2),
            node: NodeId::new(1),
            output: Some(true),
        });
        assert_eq!(t.events().len(), 3);
        assert_eq!(t.in_round(Round::ZERO).count(), 2);
        assert_eq!(
            t.corruptions().collect::<Vec<_>>(),
            vec![(Round::ZERO, NodeId::new(3))]
        );
        assert_eq!(
            t.halts().collect::<Vec<_>>(),
            vec![(Round::new(2), NodeId::new(1), Some(true))]
        );
    }

    #[test]
    fn note_round_extraction() {
        let e = Event::Note {
            round: Round::new(5),
            node: None,
            text: "phase 2 begins".into(),
        };
        assert_eq!(e.round(), Round::new(5));
    }
}
