//! Sparse message plane: per-sender adjacency with no n×n allocation.
//!
//! The dense [`RoundMailbox`](crate::mailbox::RoundMailbox) stamps a flat
//! `n × n` deviation arena the first time any sender deviates from pure
//! broadcast — O(n²) memory whether or not the protocol ever uses it.
//! That is the right trade for broadcast-heavy committee protocols, but
//! sampling-based protocols ([`SamplingMajorityNode`-style dynamics and
//! King–Saia sampled committees](https://dl.acm.org/doi/10.1145/1993636.1993686))
//! send O(polylog n) point-to-point messages per node per round: at
//! n = 65,536 the dense arena is 4 Gi cells for a few hundred thousand
//! live edges.
//!
//! [`SparseMailbox`] stores each sender's row as a **sorted deviation
//! list** — `(receiver, cell)` pairs ordered by receiver — plus the same
//! optional shared broadcast base the dense plane uses. Two sorted
//! indices make the hot reads sublinear in `n`:
//!
//! * `base_senders`: the senders whose rows currently hold a broadcast
//!   base, so a receiver's inbox never scans `n` rows to find them.
//! * `by_receiver[r]`: the senders holding an explicit deviation cell
//!   for receiver `r`, so inbox iteration is
//!   O(|bases| + |devs(r)| · log dev_row) instead of O(n).
//!
//! Memory is O(n + Σ deviations + Σ bases): **no n×n allocation ever**,
//! which is the entire point — the e05 campaign runs this plane at
//! n = 65,536 in tens of megabytes.
//!
//! # Semantics contract
//!
//! Every observable — counters, dirty-flag behaviour of
//! [`max_edge_bits`](SparseMailbox::max_edge_bits), replace/merge/
//! knock-out rules, inbox order, arrival scans — reproduces the dense
//! mailbox exactly, including its counting convention (a broadcast is
//! `n − 1` messages, the local self-copy is free, an explicit
//! self-message counts). The `sparse_differential` integration test
//! drives both planes through the whole mutation surface and compares
//! every observable after every step, mirroring `packed_differential`.
//!
//! Like the packed plane, a mutation that may have *lowered* a row
//! maximum only marks the row dirty; readers rescan on demand and the
//! rescan result is deliberately **not** memoized back into the row —
//! the persistent dirty flag reproduces the dense plane's observable
//! `max_edge_bits` stream bit-for-bit.

use crate::arrivals::ArrivalScan;
use crate::id::NodeId;
use crate::mailbox::Inbox;
use crate::message::{Emission, Message};
use crate::plane::MessagePlane;

/// One receiver's explicit deviation from the row's broadcast base.
/// Absence of a cell means the receiver inherits the base (or nothing).
#[derive(Debug, Clone)]
enum SparseCell<M> {
    /// The receiver gets nothing, even if the row has a base.
    Knocked,
    /// The receiver gets this specific message instead of the base.
    Msg(M),
}

/// One sender's contribution to the round: an optional shared broadcast
/// base plus a sorted per-receiver deviation list.
#[derive(Debug, Clone)]
struct SparseRow<M> {
    base: Option<M>,
    /// Whether the row has deviated from pure broadcast this round —
    /// the sparse mirror of the dense row's `dense` flag. A row can be
    /// deviated with an empty `devs` list (e.g. after a merge over a
    /// silent row), and that state is observable: it makes the row
    /// impure for [`SparseMailbox::broadcast_of`] / `take_broadcast`.
    deviated: bool,
    /// Explicit deviation cells, sorted by receiver, at most one per
    /// receiver.
    devs: Vec<(u32, SparseCell<M>)>,
    /// Countable messages in this row (see the counting convention).
    count: usize,
    /// Total bits of the counted messages.
    bits: usize,
    /// Largest message present in this row, in bits. Exact unless
    /// `max_dirty`.
    max_bits: usize,
    /// Set when a mutation removed or shrank a message that may have
    /// held the row maximum; readers rescan the deviation list on
    /// demand (and never memoize the result — see the module docs).
    max_dirty: bool,
}

impl<M> Default for SparseRow<M> {
    fn default() -> Self {
        SparseRow {
            base: None,
            deviated: false,
            devs: Vec::new(),
            count: 0,
            bits: 0,
            max_bits: 0,
            max_dirty: false,
        }
    }
}

impl<M: Message> SparseRow<M> {
    /// Binary-search position of receiver `r`'s deviation cell.
    fn dev_index(&self, r: u32) -> Result<usize, usize> {
        self.devs.binary_search_by_key(&r, |(k, _)| *k)
    }

    /// The deviation cell for receiver `r`, if any.
    fn dev(&self, r: u32) -> Option<&SparseCell<M>> {
        self.dev_index(r).ok().map(|i| &self.devs[i].1)
    }

    /// The message receiver `r` gets from this row, if any.
    fn effective(&self, r: u32) -> Option<&M> {
        if !self.deviated {
            self.base.as_ref()
        } else {
            match self.dev(r) {
                None => self.base.as_ref(),
                Some(SparseCell::Knocked) => None,
                Some(SparseCell::Msg(m)) => Some(m),
            }
        }
    }

    /// `(counted, bits)` contribution of receiver `r` for a row owned
    /// by sender `me` — the base self-copy is free, explicit messages
    /// are not. Mirrors the dense row's `contribution`.
    fn contribution(&self, me: u32, r: u32) -> (bool, usize) {
        let via_base = !self.deviated || self.dev(r).is_none();
        match self.effective(r) {
            None => (false, 0),
            Some(m) => {
                if via_base && r == me {
                    (false, 0)
                } else {
                    (true, m.bit_size())
                }
            }
        }
    }

    /// The exact row maximum, rescanning the deviation list if a
    /// removal dirtied the cached value. The result is *not* memoized
    /// (see the module docs).
    fn current_max(&self, n: usize) -> usize {
        if !self.max_dirty {
            return self.max_bits;
        }
        // The base is still reachable iff some receiver has no explicit
        // deviation cell — the sparse mirror of the dense "lane has any
        // Inherit" check.
        let mut max = if self.base.is_some() && (!self.deviated || self.devs.len() < n) {
            self.base.as_ref().map_or(0, Message::bit_size)
        } else {
            0
        };
        for (_, cell) in &self.devs {
            if let SparseCell::Msg(m) = cell {
                max = max.max(m.bit_size());
            }
        }
        max
    }
}

/// Inserts `v` into a sorted ID list, keeping it sorted and duplicate-
/// free. O(1) amortized for the engine's ascending install order.
fn list_insert(list: &mut Vec<u32>, v: u32) {
    match list.last() {
        Some(&last) if last < v => list.push(v),
        _ => {
            if let Err(i) = list.binary_search(&v) {
                list.insert(i, v);
            }
        }
    }
}

/// Removes `v` from a sorted ID list, if present.
fn list_remove(list: &mut Vec<u32>, v: u32) {
    if let Ok(i) = list.binary_search(&v) {
        list.remove(i);
    }
}

/// Sparse per-round message store: sorted per-sender deviation lists, a
/// shared broadcast base per row, and receiver-side indices. See the
/// module docs for layout, complexity, and the semantics contract.
#[derive(Debug, Clone)]
pub struct SparseMailbox<M> {
    n: usize,
    rows: Vec<SparseRow<M>>,
    /// Sorted sender IDs whose rows currently hold a broadcast base.
    base_senders: Vec<u32>,
    /// Per receiver: sorted sender IDs holding an explicit deviation
    /// cell for that receiver. Together with `base_senders` this makes
    /// inbox resolution O(|bases| + |devs(r)|), never O(n).
    by_receiver: Vec<Vec<u32>>,
    count: usize,
    bits: usize,
    max_cache: usize,
    max_dirty: bool,
    /// Pooled scratch for `merge_broadcast_except`'s sorted-list merge.
    merge_scratch: Vec<(u32, SparseCell<M>)>,
}

impl<M> Default for SparseMailbox<M> {
    /// An empty zero-node mailbox — the pooling placeholder. Call
    /// [`SparseMailbox::reset`] to size it before use.
    fn default() -> Self {
        SparseMailbox {
            n: 0,
            rows: Vec::new(),
            base_senders: Vec::new(),
            by_receiver: Vec::new(),
            count: 0,
            bits: 0,
            max_cache: 0,
            max_dirty: false,
            merge_scratch: Vec::new(),
        }
    }
}

impl<M: Message> SparseMailbox<M> {
    /// Creates an empty sparse mailbox for an `n`-node network.
    pub fn new(n: usize) -> Self {
        let mut mb = Self::default();
        mb.reset(n);
        mb
    }

    /// Empties the mailbox and (re)sizes it for an `n`-node network,
    /// retaining every allocation (rows, deviation lists, indices) so
    /// pooled mailboxes allocate nothing per round after warm-up.
    pub fn reset(&mut self, n: usize) {
        self.rows.truncate(n);
        for row in &mut self.rows {
            // Skip rows untouched since the last reset: after warm-up a
            // sparse round clears only the rows it actually used.
            if row.base.is_some() || row.deviated || row.count != 0 {
                row.base = None;
                row.deviated = false;
                row.devs.clear();
                row.count = 0;
                row.bits = 0;
                row.max_bits = 0;
                row.max_dirty = false;
            }
        }
        self.rows.resize_with(n, SparseRow::default);
        self.by_receiver.truncate(n);
        for list in &mut self.by_receiver {
            list.clear();
        }
        self.by_receiver.resize_with(n, Vec::new);
        self.base_senders.clear();
        self.n = n;
        self.count = 0;
        self.bits = 0;
        self.max_cache = 0;
        self.max_dirty = false;
    }

    /// Number of nodes in the network.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Subtracts row `me` from the global counters and returns the
    /// row's exact current maximum; pair with
    /// [`SparseMailbox::end_edit`].
    fn begin_edit(&mut self, me: usize) -> usize {
        let row = &self.rows[me];
        self.count -= row.count;
        self.bits -= row.bits;
        row.current_max(self.n)
    }

    /// Adds row `me` back into the global counters, propagating the
    /// dense plane's dirty-flag rule: a row whose maximum may have
    /// shrunk (or is only an upper bound) dirties the global cache.
    fn end_edit(&mut self, me: usize, old_max: usize) {
        let row = &self.rows[me];
        self.count += row.count;
        self.bits += row.bits;
        if row.max_dirty || row.max_bits < old_max {
            self.max_dirty = true;
        } else if !self.max_dirty {
            self.max_cache = self.max_cache.max(row.max_bits);
        }
    }

    /// Empties row `me` and deregisters it from both indices. Must run
    /// inside a `begin_edit`/`end_edit` pair.
    fn clear_row(&mut self, me: usize) {
        let row = &mut self.rows[me];
        if row.base.is_some() {
            list_remove(&mut self.base_senders, me as u32);
        }
        for (r, _) in row.devs.drain(..) {
            list_remove(&mut self.by_receiver[r as usize], me as u32);
        }
        row.base = None;
        row.deviated = false;
        row.count = 0;
        row.bits = 0;
        row.max_bits = 0;
        row.max_dirty = false;
    }

    /// Installs (or replaces) receiver `r`'s deviation cell in row `me`,
    /// keeping `by_receiver` in sync. Returns the replaced cell, if any.
    fn put_dev(&mut self, me: usize, r: u32, cell: SparseCell<M>) -> Option<SparseCell<M>> {
        let row = &mut self.rows[me];
        match row.dev_index(r) {
            Ok(i) => Some(std::mem::replace(&mut row.devs[i].1, cell)),
            Err(i) => {
                row.devs.insert(i, (r, cell));
                list_insert(&mut self.by_receiver[r as usize], me as u32);
                None
            }
        }
    }

    /// Installs `emission` as `sender`'s contribution, replacing
    /// whatever was there.
    ///
    /// # Panics
    ///
    /// Panics if `sender` or any per-recipient receiver is out of range.
    pub fn set(&mut self, sender: NodeId, emission: Emission<M>) {
        let me = sender.index();
        match emission {
            Emission::Silent => self.silence(sender),
            Emission::Broadcast(m) => {
                let old_max = self.begin_edit(me);
                self.clear_row(me);
                let bs = m.bit_size();
                let row = &mut self.rows[me];
                row.count = self.n.saturating_sub(1);
                row.bits = bs * row.count;
                row.max_bits = bs;
                row.base = Some(m);
                list_insert(&mut self.base_senders, me as u32);
                self.end_edit(me, old_max);
            }
            Emission::PerRecipient(v) => {
                if v.is_empty() {
                    self.silence(sender);
                    return;
                }
                let old_max = self.begin_edit(me);
                self.clear_row(me);
                self.rows[me].deviated = true;
                for (to, m) in v {
                    // Later entries override earlier ones, exactly as
                    // in the dense plane (including its lazy rescan of
                    // an overridden duplicate's maximum).
                    let bs = m.bit_size();
                    assert!(to.index() < self.n, "recipient out of range");
                    match self.put_dev(me, to.raw(), SparseCell::Msg(m)) {
                        None | Some(SparseCell::Knocked) => {
                            let row = &mut self.rows[me];
                            row.count += 1;
                            row.bits += bs;
                        }
                        Some(SparseCell::Msg(old)) => {
                            let row = &mut self.rows[me];
                            row.bits += bs;
                            row.bits -= old.bit_size();
                            row.max_dirty = true;
                        }
                    }
                    let row = &mut self.rows[me];
                    row.max_bits = row.max_bits.max(bs);
                }
                self.end_edit(me, old_max);
            }
        }
    }

    /// Removes `sender`'s contribution entirely.
    pub fn silence(&mut self, sender: NodeId) {
        let me = sender.index();
        let old_max = self.begin_edit(me);
        self.clear_row(me);
        self.end_edit(me, old_max);
    }

    /// Installs a broadcast of `msg` from `sender` that skips the
    /// receivers in `except` — one shared copy plus O(|except|) knocked
    /// cells. Duplicate entries in `except` are tolerated; `sender`'s
    /// free self-copy is unaffected unless explicitly listed.
    ///
    /// # Panics
    ///
    /// Panics if `sender` or any entry of `except` is out of range.
    pub fn set_broadcast_except(&mut self, sender: NodeId, msg: M, except: &[u32]) {
        let me = sender.index();
        if except.is_empty() {
            return self.set(sender, Emission::Broadcast(msg));
        }
        let old_max = self.begin_edit(me);
        self.clear_row(me);
        let bs = msg.bit_size();
        {
            let row = &mut self.rows[me];
            row.deviated = true;
            row.max_bits = bs;
            row.count = self.n.saturating_sub(1);
        }
        for &r in except {
            assert!((r as usize) < self.n, "except receiver out of range");
            if self.rows[me].dev(r).is_none() {
                self.put_dev(me, r, SparseCell::Knocked);
                if r as usize != me {
                    self.rows[me].count -= 1;
                }
            }
        }
        let row = &mut self.rows[me];
        row.bits = bs * row.count;
        row.base = Some(msg);
        list_insert(&mut self.base_senders, me as u32);
        self.end_edit(me, old_max);
    }

    /// Layers a broadcast of `msg` from `sender` *under* the row's
    /// existing point-to-point messages: receivers with no message and
    /// no `except` entry now inherit the shared base; receivers that
    /// already hold a message keep it and are appended to `conflicts`
    /// (ascending). `except` must be sorted ascending (duplicates are
    /// tolerated); the row must not already hold a broadcast base.
    ///
    /// Cost: O(|devs| + |except|) — a sorted merge of the row's
    /// deviation list with the except list, never an O(n) walk.
    ///
    /// # Panics
    ///
    /// Panics if `sender` or any entry of `except` is out of range, or
    /// if the row already has a base.
    pub fn merge_broadcast_except(
        &mut self,
        sender: NodeId,
        msg: M,
        except: &[u32],
        conflicts: &mut Vec<u32>,
    ) {
        let me = sender.index();
        debug_assert!(except.windows(2).all(|w| w[0] <= w[1]), "except not sorted");
        if let Some(&r) = except.last() {
            assert!((r as usize) < self.n, "except receiver out of range");
        }
        let old_max = self.begin_edit(me);
        {
            let row = &mut self.rows[me];
            assert!(
                row.base.is_none(),
                "merge_broadcast_except over an existing broadcast base"
            );
            row.deviated = true;
        }
        // Merge the (sorted) deviation list with the (sorted) except
        // list into pooled scratch: existing cells keep their state
        // (a knocked `except` hit silences a conflict report, exactly
        // as in the dense walk), fresh except hits become Knocked.
        let mut scratch = std::mem::take(&mut self.merge_scratch);
        debug_assert!(scratch.is_empty());
        let mut k = 0usize;
        let row = &mut self.rows[me];
        for (r, cell) in row.devs.drain(..) {
            while k < except.len() && except[k] < r {
                let e = except[k];
                while k < except.len() && except[k] == e {
                    k += 1;
                }
                scratch.push((e, SparseCell::Knocked));
            }
            let mut is_knocked = false;
            while k < except.len() && except[k] == r {
                is_knocked = true;
                k += 1;
            }
            if matches!(cell, SparseCell::Msg(_)) && !is_knocked {
                conflicts.push(r);
            }
            scratch.push((r, cell));
        }
        while k < except.len() {
            let e = except[k];
            while k < except.len() && except[k] == e {
                k += 1;
            }
            scratch.push((e, SparseCell::Knocked));
        }
        std::mem::swap(&mut row.devs, &mut scratch);
        self.merge_scratch = scratch;
        // Register freshly-knocked receivers in the receiver index
        // (existing cells are already registered).
        let me_u32 = me as u32;
        let mut fresh = Vec::new();
        for &(r, ref cell) in &self.rows[me].devs {
            if matches!(cell, SparseCell::Knocked) {
                fresh.push(r);
            }
        }
        for r in fresh {
            list_insert(&mut self.by_receiver[r as usize], me_u32);
        }
        // Receivers that now inherit the base: everyone without an
        // explicit cell, minus the sender's free self-copy.
        let row = &mut self.rows[me];
        let me_inherits = row.dev(me_u32).is_none();
        let inherited = self.n - row.devs.len() - usize::from(me_inherits);
        let bs = msg.bit_size();
        row.count += inherited;
        row.bits += inherited * bs;
        row.max_bits = row.max_bits.max(bs);
        row.base = Some(msg);
        list_insert(&mut self.base_senders, me_u32);
        self.end_edit(me, old_max);
    }

    /// Removes the single `(sender, receiver)` message, if any.
    ///
    /// # Panics
    ///
    /// Panics if `sender` or `receiver` is out of range.
    pub fn knock_out(&mut self, sender: NodeId, receiver: NodeId) {
        let me = sender.index();
        let r = receiver.raw();
        assert!((r as usize) < self.n, "receiver out of range");
        if self.is_silent_row(me) {
            return; // silent row: nothing to knock out
        }
        let old_max = self.begin_edit(me);
        self.rows[me].deviated = true;
        let row = &self.rows[me];
        let (counted, bits) = row.contribution(me as u32, r);
        let removed_bits = row.effective(r).map(Message::bit_size);
        self.put_dev(me, r, SparseCell::Knocked);
        let row = &mut self.rows[me];
        if counted {
            row.count -= 1;
            row.bits -= bits;
        }
        if removed_bits == Some(row.max_bits) {
            // The removed message may have held the row maximum.
            row.max_dirty = true;
        }
        self.end_edit(me, old_max);
    }

    /// Whether row `me` carries nothing at all (not even a self-copy).
    fn is_silent_row(&self, me: usize) -> bool {
        let row = &self.rows[me];
        row.count == 0 && row.effective(me as u32).is_none()
    }

    /// Adds a single point-to-point message, merging with whatever
    /// `sender` already has in this mailbox; an existing message for
    /// the same pair is replaced, other receivers of a broadcast keep
    /// the shared copy.
    ///
    /// # Panics
    ///
    /// Panics if `sender` or `receiver` is out of range.
    pub fn insert(&mut self, sender: NodeId, receiver: NodeId, m: M) {
        let me = sender.index();
        let r = receiver.raw();
        assert!((r as usize) < self.n, "receiver out of range");
        let old_max = self.begin_edit(me);
        self.rows[me].deviated = true;
        let (counted, old_bits) = self.rows[me].contribution(me as u32, r);
        let bs = m.bit_size();
        self.put_dev(me, r, SparseCell::Msg(m));
        let row = &mut self.rows[me];
        if counted {
            row.bits -= old_bits;
            row.count -= 1;
            if old_bits >= bs && old_bits == row.max_bits {
                row.max_dirty = true;
            }
        }
        row.count += 1;
        row.bits += bs;
        row.max_bits = row.max_bits.max(bs);
        self.end_edit(me, old_max);
    }

    /// Inserts `m` at `(sender, receiver)` only if no message occupies
    /// that pair, returning `None` on success and handing `m` back when
    /// the link is busy.
    ///
    /// # Panics
    ///
    /// Panics if `sender` or `receiver` is out of range.
    pub fn insert_if_vacant(&mut self, sender: NodeId, receiver: NodeId, m: M) -> Option<M> {
        let mut m = Some(m);
        let inserted =
            self.insert_if_vacant_with(sender, receiver, || m.take().expect("built once"));
        debug_assert_eq!(inserted, m.is_none());
        m
    }

    /// Like [`SparseMailbox::insert_if_vacant`], but builds the message
    /// with `make` only when the pair is actually vacant. Returns
    /// whether the message was installed. This is the flight queue's
    /// drain primitive: one sorted-list probe decides *and* installs,
    /// with no row rescan — a pure add can never lower a row maximum,
    /// so the incremental counter update is exact (the same direct path
    /// the dense plane takes).
    ///
    /// # Panics
    ///
    /// Panics if `sender` or `receiver` is out of range.
    pub fn insert_if_vacant_with(
        &mut self,
        sender: NodeId,
        receiver: NodeId,
        make: impl FnOnce() -> M,
    ) -> bool {
        let me = sender.index();
        let r = receiver.raw();
        assert!((r as usize) < self.n, "receiver out of range");
        let row = &self.rows[me];
        if !row.deviated && row.base.is_some() {
            return false; // pure broadcast: every pair is occupied
        }
        match row.dev(r) {
            Some(SparseCell::Msg(_)) => return false,
            None if row.base.is_some() => return false,
            None | Some(SparseCell::Knocked) => {}
        }
        // Vacant: an explicit message always counts (even a self-copy).
        let m = make();
        let bs = m.bit_size();
        self.rows[me].deviated = true;
        self.put_dev(me, r, SparseCell::Msg(m));
        let row = &mut self.rows[me];
        row.count += 1;
        row.bits += bs;
        row.max_bits = row.max_bits.max(bs);
        let row_max = row.max_bits;
        self.count += 1;
        self.bits += bs;
        if !self.max_dirty {
            self.max_cache = self.max_cache.max(row_max);
        }
        true
    }

    /// Removes and returns `sender`'s *pure* broadcast message, leaving
    /// the row silent; `None` for any other row shape.
    pub fn take_broadcast(&mut self, sender: NodeId) -> Option<M> {
        let me = sender.index();
        if self.rows[me].deviated || self.rows[me].base.is_none() {
            return None;
        }
        let old_max = self.begin_edit(me);
        let taken = self.rows[me].base.take();
        list_remove(&mut self.base_senders, me as u32);
        self.clear_row(me);
        self.end_edit(me, old_max);
        taken
    }

    /// The row's shared broadcast base, if any — present even when
    /// receivers have been knocked out or overridden.
    pub fn broadcast_base(&self, sender: NodeId) -> Option<&M> {
        self.rows[sender.index()].base.as_ref()
    }

    /// The broadcast message of `sender`, if it (purely) broadcast.
    pub fn broadcast_of(&self, sender: NodeId) -> Option<&M> {
        let row = &self.rows[sender.index()];
        if row.deviated {
            None
        } else {
            row.base.as_ref()
        }
    }

    /// Whether `sender` broadcast (sent one identical message to
    /// everyone, with no knock-outs or overrides).
    pub fn is_broadcast(&self, sender: NodeId) -> bool {
        let row = &self.rows[sender.index()];
        row.base.is_some() && !row.deviated
    }

    /// Whether `sender` sent nothing at all (to anyone, itself
    /// included).
    pub fn is_silent(&self, sender: NodeId) -> bool {
        self.is_silent_row(sender.index())
    }

    /// The message `receiver` gets from `sender` this round, if any.
    pub fn resolve(&self, sender: NodeId, receiver: NodeId) -> Option<&M> {
        self.rows[sender.index()].effective(receiver.raw())
    }

    /// Zero-allocation view of all messages addressed to `receiver`.
    pub fn inbox(&self, receiver: NodeId) -> Inbox<'_, M> {
        Inbox::sparse(self, receiver)
    }

    /// Iterates `(sender, message)` pairs addressed to `receiver` in
    /// ascending sender order — a sorted-merge cursor over the base
    /// index and the receiver's deviation index, O(|bases| + |devs(r)|)
    /// and allocation-free.
    pub(crate) fn inbox_iter(&self, receiver: NodeId) -> SparseInboxIter<'_, M> {
        SparseInboxIter {
            plane: self,
            r: receiver.raw(),
            bases: &self.base_senders,
            devs: &self.by_receiver[receiver.index()],
        }
    }

    /// Total point-to-point messages generated this round. O(1).
    pub fn message_count(&self) -> usize {
        self.count
    }

    /// Total bits on the wire this round. O(1).
    pub fn total_bits(&self) -> usize {
        self.bits
    }

    /// The largest message crossing any single edge this round, in
    /// bits. O(1) unless a mutation lowered a row maximum since the
    /// last full write, in which case the touched rows are rescanned.
    pub fn max_edge_bits(&self) -> usize {
        if !self.max_dirty {
            return self.max_cache;
        }
        self.rows
            .iter()
            .map(|row| row.current_max(self.n))
            .max()
            .unwrap_or(0)
    }

    /// Adds each sender's offered traffic to `scan`'s per-sender
    /// counters (this plane as the *wire* mailbox, pre-delivery).
    pub(crate) fn tally_offered_into(&self, scan: &mut ArrivalScan) {
        for (s, row) in self.rows.iter().enumerate() {
            if row.count != 0 {
                scan.add_sent(s, row.count as u32, row.bits as u64);
            }
        }
    }

    /// Fills `scan`'s arrival bitsets and per-receiver delivered
    /// counters (this plane as the *arrivals* mailbox, post-delivery),
    /// mirroring the dense walk — O(n + Σ deviations), never O(n²).
    pub(crate) fn scan_arrivals_into(&self, scan: &mut ArrivalScan) {
        for (s, row) in self.rows.iter().enumerate() {
            let has_base = if let Some(base) = &row.base {
                scan.mark_base(s, base.bit_size() as u32);
                true
            } else {
                false
            };
            if row.deviated {
                for &(r, ref cell) in &row.devs {
                    let r = r as usize;
                    match cell {
                        SparseCell::Knocked => {
                            if has_base {
                                scan.mark_knocked(r, s);
                            }
                        }
                        SparseCell::Msg(m) => {
                            if has_base {
                                scan.mark_knocked(r, s);
                            }
                            scan.mark_extra(r, s);
                            if r != s {
                                scan.add_recv(r, 1, m.bit_size() as u64);
                            }
                        }
                    }
                }
            }
        }
        scan.finish_base_recv();
    }
}

/// Sorted-merge iterator over one receiver's sparse inbox: advances a
/// cursor through `base_senders` and `by_receiver[r]` in lockstep,
/// yielding each sender's effective message in ascending sender order.
pub(crate) struct SparseInboxIter<'a, M> {
    plane: &'a SparseMailbox<M>,
    r: u32,
    /// Remaining senders with a broadcast base.
    bases: &'a [u32],
    /// Remaining senders with an explicit deviation cell for `r`.
    devs: &'a [u32],
}

impl<'a, M: Message> Iterator for SparseInboxIter<'a, M> {
    type Item = (NodeId, &'a M);

    fn next(&mut self) -> Option<(NodeId, &'a M)> {
        loop {
            let (s, has_dev) = match (self.bases.first(), self.devs.first()) {
                (Some(&b), Some(&d)) if b < d => {
                    self.bases = &self.bases[1..];
                    (b, false)
                }
                (Some(&b), Some(&d)) if b > d => {
                    self.devs = &self.devs[1..];
                    (d, true)
                }
                (Some(&b), Some(_)) => {
                    self.bases = &self.bases[1..];
                    self.devs = &self.devs[1..];
                    (b, true)
                }
                (Some(&b), None) => {
                    self.bases = &self.bases[1..];
                    (b, false)
                }
                (None, Some(&d)) => {
                    self.devs = &self.devs[1..];
                    (d, true)
                }
                (None, None) => return None,
            };
            let row = &self.plane.rows[s as usize];
            if has_dev {
                match row.dev(self.r) {
                    Some(SparseCell::Msg(m)) => return Some((NodeId::new(s), m)),
                    _ => continue, // knocked out of the base (or silent)
                }
            } else if let Some(base) = row.base.as_ref() {
                return Some((NodeId::new(s), base));
            }
            // A base sender with no base is impossible (index invariant),
            // but fall through defensively rather than panic in a reader.
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, Some(self.bases.len() + self.devs.len()))
    }
}

impl<M: Message> MessagePlane<M> for SparseMailbox<M> {
    fn reset(&mut self, n: usize) {
        SparseMailbox::reset(self, n);
    }

    fn n(&self) -> usize {
        SparseMailbox::n(self)
    }

    fn set(&mut self, sender: NodeId, emission: Emission<M>) {
        SparseMailbox::set(self, sender, emission);
    }

    fn silence(&mut self, sender: NodeId) {
        SparseMailbox::silence(self, sender);
    }

    fn insert(&mut self, sender: NodeId, receiver: NodeId, m: M) {
        SparseMailbox::insert(self, sender, receiver, m);
    }

    fn insert_if_vacant(&mut self, sender: NodeId, receiver: NodeId, m: M) -> Option<M> {
        SparseMailbox::insert_if_vacant(self, sender, receiver, m)
    }

    fn insert_if_vacant_with(
        &mut self,
        sender: NodeId,
        receiver: NodeId,
        make: impl FnOnce() -> M,
    ) -> bool {
        SparseMailbox::insert_if_vacant_with(self, sender, receiver, make)
    }

    fn set_broadcast_except(&mut self, sender: NodeId, msg: M, except: &[u32]) {
        SparseMailbox::set_broadcast_except(self, sender, msg, except);
    }

    fn merge_broadcast_except(
        &mut self,
        sender: NodeId,
        msg: M,
        except: &[u32],
        conflicts: &mut Vec<u32>,
    ) {
        SparseMailbox::merge_broadcast_except(self, sender, msg, except, conflicts);
    }

    fn take_broadcast(&mut self, sender: NodeId) -> Option<M> {
        SparseMailbox::take_broadcast(self, sender)
    }

    fn knock_out(&mut self, sender: NodeId, receiver: NodeId) {
        SparseMailbox::knock_out(self, sender, receiver);
    }

    fn broadcast_base(&self, sender: NodeId) -> Option<&M> {
        SparseMailbox::broadcast_base(self, sender)
    }

    fn broadcast_of(&self, sender: NodeId) -> Option<&M> {
        SparseMailbox::broadcast_of(self, sender)
    }

    fn resolve_value(&self, sender: NodeId, receiver: NodeId) -> Option<M> {
        self.resolve(sender, receiver).cloned()
    }

    fn has_message(&self, sender: NodeId, receiver: NodeId) -> bool {
        self.resolve(sender, receiver).is_some()
    }

    fn is_broadcast(&self, sender: NodeId) -> bool {
        SparseMailbox::is_broadcast(self, sender)
    }

    fn is_silent(&self, sender: NodeId) -> bool {
        SparseMailbox::is_silent(self, sender)
    }

    fn inbox(&self, receiver: NodeId) -> Inbox<'_, M> {
        SparseMailbox::inbox(self, receiver)
    }

    fn message_count(&self) -> usize {
        SparseMailbox::message_count(self)
    }

    fn total_bits(&self) -> usize {
        SparseMailbox::total_bits(self)
    }

    fn max_edge_bits(&self) -> usize {
        SparseMailbox::max_edge_bits(self)
    }

    fn tally_offered(&self, scan: &mut ArrivalScan) {
        self.tally_offered_into(scan);
    }

    fn scan_arrivals(&self, scan: &mut ArrivalScan) {
        self.scan_arrivals_into(scan);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Tm(u8);
    impl Message for Tm {
        fn bit_size(&self) -> usize {
            8
        }
    }

    /// Variable-size message, for max-edge-bits recovery tests.
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Var(usize);
    impl Message for Var {
        fn bit_size(&self) -> usize {
            self.0
        }
    }

    fn id(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn broadcast_counts_n_minus_one() {
        let mut mb = SparseMailbox::new(4);
        mb.set(id(0), Emission::Broadcast(Tm(7)));
        assert_eq!(mb.message_count(), 3);
        assert_eq!(mb.total_bits(), 24);
        assert_eq!(mb.max_edge_bits(), 8);
        assert!(mb.is_broadcast(id(0)));
        assert_eq!(mb.broadcast_of(id(0)), Some(&Tm(7)));
        for r in 0..4 {
            assert_eq!(mb.resolve(id(0), id(r)), Some(&Tm(7)));
        }
    }

    #[test]
    fn knock_out_and_inbox_order() {
        let mut mb = SparseMailbox::new(5);
        mb.set(id(0), Emission::Broadcast(Tm(1)));
        mb.set(id(3), Emission::Broadcast(Tm(3)));
        mb.insert(id(1), id(2), Tm(9));
        mb.knock_out(id(0), id(2));
        let inbox: Vec<_> = mb
            .inbox(id(2))
            .iter()
            .map(|(s, m)| (s.raw(), m.clone()))
            .collect();
        assert_eq!(inbox, vec![(1, Tm(9)), (3, Tm(3))]);
        assert!(!mb.is_broadcast(id(0)), "knocked row is impure");
        assert!(mb.broadcast_base(id(0)).is_some());
        assert_eq!(mb.message_count(), 4 + 4 + 1 - 1);
    }

    #[test]
    fn explicit_self_message_counts_broadcast_self_copy_free() {
        let mut mb = SparseMailbox::new(3);
        mb.set(id(0), Emission::Broadcast(Tm(1)));
        assert_eq!(mb.message_count(), 2);
        mb.insert(id(1), id(1), Tm(2));
        assert_eq!(mb.message_count(), 3, "explicit self-message counts");
    }

    #[test]
    fn per_recipient_override_dirties_then_recovers() {
        let mut mb = SparseMailbox::new(4);
        mb.set(
            id(0),
            Emission::PerRecipient(vec![(id(1), Var(16)), (id(1), Var(4))]),
        );
        assert_eq!(mb.message_count(), 1);
        assert_eq!(mb.total_bits(), 4);
        // The override may have lowered the row max: a rescan finds 4,
        // but the cached row.max_bits stays an upper bound (16) and the
        // global reader rescans — same as dense.
        assert_eq!(mb.max_edge_bits(), 4);
    }

    #[test]
    fn max_edge_bits_recovers_after_removals() {
        let mut mb = SparseMailbox::new(4);
        mb.insert(id(0), id(1), Var(32));
        mb.insert(id(1), id(2), Var(8));
        assert_eq!(mb.max_edge_bits(), 32);
        mb.knock_out(id(0), id(1));
        assert_eq!(mb.max_edge_bits(), 8);
        mb.silence(id(1));
        assert_eq!(mb.max_edge_bits(), 0);
    }

    #[test]
    fn set_broadcast_except_skips_and_counts() {
        let mut mb = SparseMailbox::new(5);
        mb.set_broadcast_except(id(0), Tm(7), &[3, 1, 3]);
        assert_eq!(mb.message_count(), 2);
        assert_eq!(mb.total_bits(), 16);
        assert!(mb.resolve(id(0), id(1)).is_none());
        assert!(mb.resolve(id(0), id(3)).is_none());
        assert_eq!(mb.resolve(id(0), id(2)), Some(&Tm(7)));
        assert_eq!(mb.resolve(id(0), id(0)), Some(&Tm(7)), "self-copy kept");
    }

    #[test]
    fn merge_broadcast_reports_conflicts_ascending() {
        let mut mb = SparseMailbox::new(6);
        mb.insert(id(0), id(4), Tm(9));
        mb.insert(id(0), id(1), Tm(8));
        mb.knock_out(id(0), id(2));
        let mut conflicts = Vec::new();
        mb.merge_broadcast_except(id(0), Tm(1), &[4], &mut conflicts);
        // 1 conflicts (kept message), 4 is knocked in except so its kept
        // message is not reported, 2 stays knocked.
        assert_eq!(conflicts, vec![1]);
        assert_eq!(mb.resolve(id(0), id(1)), Some(&Tm(8)));
        assert!(mb.resolve(id(0), id(2)).is_none());
        assert_eq!(mb.resolve(id(0), id(3)), Some(&Tm(1)));
        assert_eq!(mb.resolve(id(0), id(4)), Some(&Tm(9)));
        assert_eq!(mb.resolve(id(0), id(5)), Some(&Tm(1)));
        // count: explicit 1 and 4 (2 msgs) + inherited {3, 5} (2) — the
        // self-copy at 0 is free, 2 knocked.
        assert_eq!(mb.message_count(), 4);
    }

    #[test]
    fn take_broadcast_only_pure() {
        let mut mb = SparseMailbox::new(4);
        mb.set(id(0), Emission::Broadcast(Tm(7)));
        mb.set(id(1), Emission::Broadcast(Tm(8)));
        mb.knock_out(id(1), id(2));
        assert_eq!(mb.take_broadcast(id(0)), Some(Tm(7)));
        assert!(mb.is_silent(id(0)));
        assert_eq!(mb.take_broadcast(id(1)), None, "impure row");
        assert_eq!(mb.take_broadcast(id(2)), None, "silent row");
    }

    #[test]
    fn insert_if_vacant_respects_occupancy() {
        let mut mb = SparseMailbox::new(4);
        mb.set(id(0), Emission::Broadcast(Tm(7)));
        assert_eq!(
            mb.insert_if_vacant(id(0), id(2), Tm(9)),
            Some(Tm(9)),
            "pure broadcast occupies every pair"
        );
        mb.knock_out(id(0), id(2));
        assert_eq!(
            mb.insert_if_vacant(id(0), id(2), Tm(9)),
            None,
            "knocked pair is vacant"
        );
        assert_eq!(mb.resolve(id(0), id(2)), Some(&Tm(9)));
        assert_eq!(mb.insert_if_vacant(id(0), id(2), Tm(5)), Some(Tm(5)));
        assert_eq!(mb.insert_if_vacant(id(1), id(3), Tm(4)), None);
        assert_eq!(mb.resolve(id(1), id(3)), Some(&Tm(4)));
    }

    #[test]
    fn reset_pools_allocations_and_clears_state() {
        let mut mb = SparseMailbox::new(4);
        mb.set(id(0), Emission::Broadcast(Tm(7)));
        mb.insert(id(1), id(2), Tm(9));
        mb.reset(4);
        assert_eq!(mb.message_count(), 0);
        assert_eq!(mb.total_bits(), 0);
        assert_eq!(mb.max_edge_bits(), 0);
        for s in 0..4 {
            assert!(mb.is_silent(id(s)));
            assert_eq!(mb.inbox(id(s)).len(), 0);
        }
        mb.reset(2);
        assert_eq!(mb.n(), 2);
        mb.set(id(1), Emission::Broadcast(Tm(3)));
        assert_eq!(mb.message_count(), 1);
    }

    #[test]
    fn no_quadratic_allocation_at_large_n() {
        // The whole point: a broadcast round at large n allocates O(n)
        // rows and index slots, never an n×n arena. At n = 65,536 a
        // dense arena would be 4 Gi cells; this must stay small enough
        // to build instantly.
        let n = 65_536;
        let mut mb = SparseMailbox::new(n);
        mb.set(id(7), Emission::Broadcast(Tm(1)));
        mb.insert(id(3), id(9), Tm(2));
        mb.knock_out(id(7), id(100));
        assert_eq!(mb.message_count(), (n - 1) + 1 - 1);
        assert_eq!(mb.inbox(id(9)).len(), 2);
        assert_eq!(mb.inbox(id(100)).len(), 0);
    }

    #[test]
    fn trait_surface_matches_dense_spot_check() {
        // Same drive as plane.rs's dense_plane_forwards_to_inherent_api.
        fn drive<L: MessagePlane<Tm>>(plane: &mut L) -> (usize, usize, usize, bool) {
            plane.reset(4);
            plane.set(NodeId::new(0), Emission::Broadcast(Tm(7)));
            plane.set(
                NodeId::new(1),
                Emission::PerRecipient(vec![(NodeId::new(2), Tm(9))]),
            );
            plane.knock_out(NodeId::new(0), NodeId::new(3));
            (
                plane.message_count(),
                plane.total_bits(),
                plane.max_edge_bits(),
                plane.is_silent(NodeId::new(3)),
            )
        }
        let mut mb = SparseMailbox::<Tm>::default();
        assert_eq!(drive(&mut mb), (3, 24, 8, true));
        assert_eq!(mb.inbox(NodeId::new(2)).len(), 2);
    }
}
