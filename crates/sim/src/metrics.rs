//! Run-level and round-level measurement.
//!
//! The experiment harness reads these to reproduce the paper's complexity
//! claims: round complexity (Theorem 2), message complexity
//! (`O(min{n·t²·log n, n²·t/log n})`, Section 1.2), and CONGEST
//! compliance (`O(log n)` bits per edge per round, Section 1.1).

/// Measurements for a single round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoundMetrics {
    /// Point-to-point messages delivered this round (a broadcast in an
    /// `n`-node network counts as `n - 1`).
    pub messages: usize,
    /// Total bits on the wire this round.
    pub bits: usize,
    /// Largest message crossing any single edge this round, in bits.
    pub max_edge_bits: usize,
    /// Corruptions performed this round.
    pub corruptions: usize,
    /// Honest nodes that halted by the end of this round (cumulative).
    pub halted_honest: usize,
    /// Point-to-point messages actually handed to receivers this round
    /// (equals `messages` under the synchronous network).
    pub delivered: usize,
    /// Messages dropped by the network this round.
    pub dropped: usize,
    /// Delay events this round (a message counts once when first held
    /// back and once per further deferral).
    pub delayed: usize,
}

/// Aggregated measurements for a whole run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RunMetrics {
    /// Rounds executed.
    pub rounds: u64,
    /// Total point-to-point messages.
    pub total_messages: usize,
    /// Total bits on the wire.
    pub total_bits: usize,
    /// Maximum over rounds of the per-edge bit maximum — the quantity the
    /// CONGEST model bounds by `O(log n)`.
    pub max_edge_bits: usize,
    /// Total corruptions performed by the adversary.
    pub corruptions: usize,
    /// Total messages the network actually delivered. Equals
    /// `total_messages` under the synchronous network; lower when links
    /// drop traffic or hold it past the end of the run.
    pub total_delivered: usize,
    /// Total messages the network dropped.
    pub total_dropped: usize,
    /// Total delay events (see [`RoundMetrics::delayed`]).
    pub total_delayed: usize,
    /// Per-round breakdown (present only when recording is enabled).
    pub per_round: Vec<RoundMetrics>,
}

impl RunMetrics {
    /// Creates empty metrics; `record_rounds` controls whether the
    /// per-round breakdown is kept (costs memory on long runs).
    pub fn new(record_rounds: bool) -> Self {
        RunMetrics {
            per_round: Vec::with_capacity(if record_rounds { 64 } else { 0 }),
            ..Default::default()
        }
    }

    /// Folds one round's metrics into the totals.
    pub fn absorb(&mut self, rm: RoundMetrics, keep_round: bool) {
        self.rounds += 1;
        self.total_messages += rm.messages;
        self.total_bits += rm.bits;
        self.max_edge_bits = self.max_edge_bits.max(rm.max_edge_bits);
        self.corruptions += rm.corruptions;
        self.total_delivered += rm.delivered;
        self.total_dropped += rm.dropped;
        self.total_delayed += rm.delayed;
        if keep_round {
            self.per_round.push(rm);
        }
    }

    /// Average messages per round, if any rounds ran.
    pub fn messages_per_round(&self) -> Option<f64> {
        (self.rounds > 0).then(|| self.total_messages as f64 / self.rounds as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates() {
        let mut m = RunMetrics::new(true);
        m.absorb(
            RoundMetrics {
                messages: 10,
                bits: 100,
                max_edge_bits: 12,
                corruptions: 1,
                halted_honest: 0,
                delivered: 9,
                dropped: 1,
                delayed: 0,
            },
            true,
        );
        m.absorb(
            RoundMetrics {
                messages: 5,
                bits: 40,
                max_edge_bits: 30,
                corruptions: 0,
                halted_honest: 3,
                delivered: 4,
                dropped: 0,
                delayed: 2,
            },
            true,
        );
        assert_eq!(m.rounds, 2);
        assert_eq!(m.total_messages, 15);
        assert_eq!(m.total_bits, 140);
        assert_eq!(m.max_edge_bits, 30);
        assert_eq!(m.corruptions, 1);
        assert_eq!(m.total_delivered, 13);
        assert_eq!(m.total_dropped, 1);
        assert_eq!(m.total_delayed, 2);
        assert_eq!(m.per_round.len(), 2);
        assert_eq!(m.messages_per_round(), Some(7.5));
    }

    #[test]
    fn no_rounds_means_no_average() {
        let m = RunMetrics::new(false);
        assert_eq!(m.messages_per_round(), None);
    }

    #[test]
    fn per_round_can_be_skipped() {
        let mut m = RunMetrics::new(false);
        m.absorb(RoundMetrics::default(), false);
        assert_eq!(m.rounds, 1);
        assert!(m.per_round.is_empty());
    }
}
