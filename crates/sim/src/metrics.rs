//! Run-level and round-level measurement.
//!
//! The experiment harness reads these to reproduce the paper's complexity
//! claims: round complexity (Theorem 2), message complexity
//! (`O(min{n·t²·log n, n²·t/log n})`, Section 1.2), and CONGEST
//! compliance (`O(log n)` bits per edge per round, Section 1.1).

/// Measurements for a single round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoundMetrics {
    /// Point-to-point messages delivered this round (a broadcast in an
    /// `n`-node network counts as `n - 1`).
    pub messages: usize,
    /// Total bits on the wire this round.
    pub bits: usize,
    /// Largest message crossing any single edge this round, in bits.
    pub max_edge_bits: usize,
    /// Corruptions performed this round.
    pub corruptions: usize,
    /// Honest nodes that halted by the end of this round (cumulative).
    pub halted_honest: usize,
    /// Point-to-point messages actually handed to receivers this round
    /// (equals `messages` under the synchronous network).
    pub delivered: usize,
    /// Messages dropped by the network this round.
    pub dropped: usize,
    /// Delay events this round (a message counts once when first held
    /// back and once per further deferral).
    pub delayed: usize,
}

/// Capacity of the per-round ring buffer: recording keeps the **most
/// recent** `PER_ROUND_CAP` rounds, so probe-enabled long-horizon runs
/// (the sampling dynamics run for thousands of rounds; future async
/// engines for more) hold bounded memory instead of growing linearly.
/// Evictions are counted in [`RunMetrics::per_round_dropped`] so every
/// export can carry an explicit "truncated" marker.
pub const PER_ROUND_CAP: usize = 4096;

/// Aggregated measurements for a whole run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RunMetrics {
    /// Rounds executed.
    pub rounds: u64,
    /// Total point-to-point messages.
    pub total_messages: usize,
    /// Total bits on the wire.
    pub total_bits: usize,
    /// Maximum over rounds of the per-edge bit maximum — the quantity the
    /// CONGEST model bounds by `O(log n)`.
    pub max_edge_bits: usize,
    /// Total corruptions performed by the adversary.
    pub corruptions: usize,
    /// Total messages the network actually delivered. Equals
    /// `total_messages` under the synchronous network; lower when links
    /// drop traffic or hold it past the end of the run.
    pub total_delivered: usize,
    /// Total messages the network dropped.
    pub total_dropped: usize,
    /// Total delay events (see [`RoundMetrics::delayed`]).
    pub total_delayed: usize,
    /// Per-round breakdown (present only when recording is enabled).
    ///
    /// This is a **ring buffer** capped at [`PER_ROUND_CAP`]: once the
    /// cap is reached the oldest round is overwritten, so the vector's
    /// storage order is rotated. Read through
    /// [`RunMetrics::per_round_ordered`] for chronological order and
    /// check [`RunMetrics::per_round_truncated`] before treating it as
    /// the complete history.
    pub per_round: Vec<RoundMetrics>,
    /// Rounds evicted from [`RunMetrics::per_round`] by the ring-buffer
    /// cap — non-zero exactly when the recorded history is truncated.
    pub per_round_dropped: u64,
}

impl RunMetrics {
    /// Creates empty metrics; `record_rounds` controls whether the
    /// per-round breakdown is kept (costs memory on long runs).
    pub fn new(record_rounds: bool) -> Self {
        RunMetrics {
            per_round: Vec::with_capacity(if record_rounds { 64 } else { 0 }),
            ..Default::default()
        }
    }

    /// Folds one round's metrics into the totals.
    pub fn absorb(&mut self, rm: RoundMetrics, keep_round: bool) {
        self.rounds += 1;
        self.total_messages += rm.messages;
        self.total_bits += rm.bits;
        self.max_edge_bits = self.max_edge_bits.max(rm.max_edge_bits);
        self.corruptions += rm.corruptions;
        self.total_delivered += rm.delivered;
        self.total_dropped += rm.dropped;
        self.total_delayed += rm.delayed;
        if keep_round {
            if self.per_round.len() < PER_ROUND_CAP {
                self.per_round.push(rm);
            } else {
                // Ring eviction: round index r lands in slot r % CAP, so
                // the slot being overwritten always holds the oldest
                // surviving round.
                let slot = ((self.rounds - 1) % PER_ROUND_CAP as u64) as usize;
                self.per_round[slot] = rm;
                self.per_round_dropped += 1;
            }
        }
    }

    /// Whether the per-round ring buffer evicted any rounds — exports
    /// must surface this as an explicit "truncated" marker.
    pub fn per_round_truncated(&self) -> bool {
        self.per_round_dropped > 0
    }

    /// The recorded rounds in chronological order (oldest surviving
    /// round first), undoing the ring buffer's storage rotation. When
    /// nothing was evicted this is simply a copy of
    /// [`RunMetrics::per_round`].
    pub fn per_round_ordered(&self) -> Vec<RoundMetrics> {
        if !self.per_round_truncated() {
            return self.per_round.clone();
        }
        let head = (self.rounds % PER_ROUND_CAP as u64) as usize;
        let mut out = Vec::with_capacity(self.per_round.len());
        out.extend_from_slice(&self.per_round[head..]);
        out.extend_from_slice(&self.per_round[..head]);
        out
    }

    /// Average messages per round, if any rounds ran.
    pub fn messages_per_round(&self) -> Option<f64> {
        (self.rounds > 0).then(|| self.total_messages as f64 / self.rounds as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates() {
        let mut m = RunMetrics::new(true);
        m.absorb(
            RoundMetrics {
                messages: 10,
                bits: 100,
                max_edge_bits: 12,
                corruptions: 1,
                halted_honest: 0,
                delivered: 9,
                dropped: 1,
                delayed: 0,
            },
            true,
        );
        m.absorb(
            RoundMetrics {
                messages: 5,
                bits: 40,
                max_edge_bits: 30,
                corruptions: 0,
                halted_honest: 3,
                delivered: 4,
                dropped: 0,
                delayed: 2,
            },
            true,
        );
        assert_eq!(m.rounds, 2);
        assert_eq!(m.total_messages, 15);
        assert_eq!(m.total_bits, 140);
        assert_eq!(m.max_edge_bits, 30);
        assert_eq!(m.corruptions, 1);
        assert_eq!(m.total_delivered, 13);
        assert_eq!(m.total_dropped, 1);
        assert_eq!(m.total_delayed, 2);
        assert_eq!(m.per_round.len(), 2);
        assert_eq!(m.messages_per_round(), Some(7.5));
    }

    #[test]
    fn no_rounds_means_no_average() {
        let m = RunMetrics::new(false);
        assert_eq!(m.messages_per_round(), None);
    }

    #[test]
    fn per_round_can_be_skipped() {
        let mut m = RunMetrics::new(false);
        m.absorb(RoundMetrics::default(), false);
        assert_eq!(m.rounds, 1);
        assert!(m.per_round.is_empty());
        assert!(!m.per_round_truncated());
    }

    /// One round's metrics tagged with a recognizable message count.
    fn tagged(i: usize) -> RoundMetrics {
        RoundMetrics {
            messages: i,
            ..RoundMetrics::default()
        }
    }

    #[test]
    fn per_round_ring_keeps_most_recent_rounds() {
        let mut m = RunMetrics::new(true);
        let total = PER_ROUND_CAP + 100;
        for i in 0..total {
            m.absorb(tagged(i), true);
        }
        assert_eq!(m.per_round.len(), PER_ROUND_CAP);
        assert_eq!(m.per_round_dropped, 100);
        assert!(m.per_round_truncated());
        let ordered = m.per_round_ordered();
        assert_eq!(ordered.len(), PER_ROUND_CAP);
        assert_eq!(ordered[0].messages, 100, "oldest surviving round");
        assert_eq!(ordered[PER_ROUND_CAP - 1].messages, total - 1, "newest");
        // Chronological throughout, not just at the ends.
        assert!(ordered
            .windows(2)
            .all(|w| w[1].messages == w[0].messages + 1));
        // Totals are unaffected by eviction.
        assert_eq!(m.rounds, total as u64);
    }

    #[test]
    fn per_round_below_cap_is_complete_and_in_order() {
        let mut m = RunMetrics::new(true);
        for i in 0..10 {
            m.absorb(tagged(i), true);
        }
        assert_eq!(m.per_round_dropped, 0);
        assert_eq!(m.per_round_ordered(), m.per_round);
        assert_eq!(m.per_round.len(), 10);
    }
}
