//! The online-observer seam of the engine.
//!
//! An [`Oracle`] watches a run from inside the engine: it sees the
//! adversary's action before it is applied, the completed round (the
//! arrivals receivers actually processed, the round's metrics, the
//! corruption ledger, halt flags, and decided outputs), and the finished
//! report. Oracles never influence the run — the engine hands them
//! shared references only — so attaching one cannot perturb results.
//!
//! The seam mirrors the [`crate::delivery::Delivery`] seam: a fourth
//! generic parameter on [`crate::Simulation`] defaulting to [`NoOracle`],
//! whose empty inline hooks compile away entirely. Concrete observers —
//! the per-lemma invariant checkers and the trace recorder/replayer —
//! live in the `aba-check` crate, keeping `aba-sim` dependency-free.

use crate::adversary::{AdversaryAction, CorruptionLedger};
use crate::engine::RunReport;
use crate::id::Round;
use crate::mailbox::RoundMailbox;
use crate::message::Message;
use crate::metrics::RoundMetrics;
use crate::plane::MessagePlane;

/// Everything an oracle sees at the end of one round, after delivery and
/// local processing.
///
/// All references point at live engine state; the context is rebuilt
/// every round and costs a handful of pointer copies. `L` is the message
/// plane the run uses (default: the dense [`RoundMailbox`]).
pub struct RoundCtx<'a, M: Message, L: MessagePlane<M> = RoundMailbox<M>> {
    /// The round that just completed.
    pub round: Round,
    /// Network size `n`.
    pub n: usize,
    /// Corruption budget `t`.
    pub t: usize,
    /// The arrivals plane — exactly what receivers processed this
    /// round (post-delivery, not the offered wire load).
    pub arrivals: &'a L,
    /// This round's measurements (wire-side message/bit counts, the
    /// per-edge bit maximum, corruption and delivery accounting).
    pub metrics: &'a RoundMetrics,
    /// Corruption bookkeeping as of the end of the round.
    pub ledger: &'a CorruptionLedger,
    /// Per-node halt flags (corrupted nodes keep their last value).
    pub halted: &'a [bool],
    /// Per-node decided outputs, recorded at halt time (`None` for nodes
    /// that have not halted — and for nodes corrupted before halting).
    pub outputs: &'a [Option<bool>],
    /// Ties the context to the message type (carried by the plane `L`).
    pub(crate) _msg: std::marker::PhantomData<M>,
}

/// An online observer attached to a [`crate::Simulation`].
///
/// Every hook has an empty default body, so an oracle implements only
/// what it needs; [`NoOracle`] implements none and vanishes at compile
/// time.
pub trait Oracle<M: Message, L: MessagePlane<M> = RoundMailbox<M>> {
    /// Observes the adversary's action for `round`, before the engine
    /// validates and applies it.
    fn observe_action(&mut self, round: Round, action: &AdversaryAction<M>) {
        let _ = (round, action);
    }

    /// Observes a completed round (after delivery and local processing,
    /// before the round's metrics are folded into the run totals).
    fn observe_round(&mut self, ctx: &RoundCtx<'_, M, L>) {
        let _ = ctx;
    }

    /// Observes the finished run, right before the report is returned.
    fn observe_end(&mut self, report: &RunReport) {
        let _ = report;
    }
}

/// The default oracle: observes nothing, costs nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoOracle;

impl<M: Message, L: MessagePlane<M>> Oracle<M, L> for NoOracle {}

/// Pairs compose oracles: `(recorder, checkers)` attaches both to one
/// run. Nest tuples for more.
impl<M: Message, L: MessagePlane<M>, A: Oracle<M, L>, B: Oracle<M, L>> Oracle<M, L> for (A, B) {
    fn observe_action(&mut self, round: Round, action: &AdversaryAction<M>) {
        self.0.observe_action(round, action);
        self.1.observe_action(round, action);
    }

    fn observe_round(&mut self, ctx: &RoundCtx<'_, M, L>) {
        self.0.observe_round(ctx);
        self.1.observe_round(ctx);
    }

    fn observe_end(&mut self, report: &RunReport) {
        self.0.observe_end(report);
        self.1.observe_end(report);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Tm(u8);
    impl Message for Tm {
        fn bit_size(&self) -> usize {
            8
        }
    }

    /// Counts hook invocations.
    #[derive(Default)]
    struct Tally {
        actions: usize,
        rounds: usize,
        ends: usize,
    }

    impl Oracle<Tm> for Tally {
        fn observe_action(&mut self, _round: Round, _action: &AdversaryAction<Tm>) {
            self.actions += 1;
        }
        fn observe_round(&mut self, _ctx: &RoundCtx<'_, Tm>) {
            self.rounds += 1;
        }
        fn observe_end(&mut self, _report: &RunReport) {
            self.ends += 1;
        }
    }

    #[test]
    fn tuple_forwards_to_both() {
        let mut pair = (Tally::default(), Tally::default());
        let action: AdversaryAction<Tm> = AdversaryAction::pass();
        Oracle::<Tm>::observe_action(&mut pair, Round::ZERO, &action);
        Oracle::<Tm>::observe_action(&mut pair, Round::new(1), &action);
        assert_eq!(pair.0.actions, 2);
        assert_eq!(pair.1.actions, 2);
    }

    #[test]
    fn no_oracle_has_empty_hooks() {
        // Just exercises the default bodies for coverage.
        let mut o = NoOracle;
        let action: AdversaryAction<Tm> = AdversaryAction::pass();
        Oracle::<Tm>::observe_action(&mut o, Round::ZERO, &action);
    }
}
