//! The node-side protocol trait.

use crate::id::Round;
use crate::mailbox::Inbox;
use crate::message::{Emission, Message};
use rand::RngCore;

/// A synchronous protocol, as run by one (honest) node.
///
/// The engine drives every live honest node through the same two steps
/// each round:
///
/// 1. [`Protocol::emit`] — produce this round's outgoing messages,
///    drawing any randomness *now* (a rushing adversary will see these
///    messages, including fresh coin flips, before acting);
/// 2. [`Protocol::receive`] — process the messages delivered this round
///    (sender identities attached) and update state.
///
/// A node signals completion via [`Protocol::halted`]; once true, the
/// engine stops invoking it. A node that wants to "broadcast once more and
/// terminate" (paper, Algorithm 3 lines 9–10) should return that final
/// broadcast from `emit` and set its halted flag in the same call: the
/// emission is still delivered, but `receive` will no longer be invoked.
///
/// Corrupted nodes are never stepped: the adversary speaks for them.
pub trait Protocol: Sized {
    /// Wire message type of the protocol.
    type Msg: Message;

    /// Produce this round's outgoing messages.
    fn emit(&mut self, round: Round, rng: &mut dyn RngCore) -> Emission<Self::Msg>;

    /// Process this round's inbox.
    fn receive(&mut self, round: Round, inbox: Inbox<'_, Self::Msg>, rng: &mut dyn RngCore);

    /// The node's decided output, if it has decided.
    fn output(&self) -> Option<bool>;

    /// Whether the node has terminated.
    fn halted(&self) -> bool;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::NodeId;

    // A minimal protocol to exercise the trait surface.
    #[derive(Debug)]
    struct Echo {
        me: NodeId,
        seen: usize,
        done: bool,
    }

    #[derive(Debug, Clone)]
    struct Ping;
    impl Message for Ping {
        fn bit_size(&self) -> usize {
            1
        }
    }

    impl Protocol for Echo {
        type Msg = Ping;
        fn emit(&mut self, _round: Round, _rng: &mut dyn RngCore) -> Emission<Ping> {
            Emission::Broadcast(Ping)
        }
        fn receive(&mut self, _round: Round, inbox: Inbox<'_, Ping>, _rng: &mut dyn RngCore) {
            self.seen = inbox.iter().count();
            self.done = true;
        }
        fn output(&self) -> Option<bool> {
            self.done.then_some(true)
        }
        fn halted(&self) -> bool {
            self.done
        }
    }

    #[test]
    fn trait_is_usable_directly() {
        use crate::mailbox::RoundMailbox;
        use rand::SeedableRng;

        let mut node = Echo {
            me: NodeId::new(0),
            seen: 0,
            done: false,
        };
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        let mut mb = RoundMailbox::new(2);
        let e = node.emit(Round::ZERO, &mut rng);
        mb.set(node.me, e);
        node.receive(Round::ZERO, mb.inbox(node.me), &mut rng);
        assert_eq!(node.seen, 1);
        assert!(node.halted());
        assert_eq!(node.output(), Some(true));
    }
}
