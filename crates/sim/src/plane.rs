//! The message-plane seam of the engine.
//!
//! The engine never cares *how* a round's messages are stored — only
//! that it can install emissions, let the delivery stage reroute them,
//! and hand receivers an inbox. [`MessagePlane`] captures exactly that
//! contract, mirroring the Delivery/Oracle/Probe seams: a sixth generic
//! parameter on [`crate::Simulation`] defaulting to the dense
//! [`RoundMailbox`], chosen statically per protocol family, so the
//! default path compiles to the very same code it always did.
//!
//! Two planes implement the trait:
//!
//! * [`RoundMailbox`] — the dense broadcast-base + deviation-cell
//!   mailbox (PR 3). General: any [`Message`] type, full by-reference
//!   access. This is the default.
//! * [`crate::packed::PackedMailbox`] — u64-word bitset rows for
//!   messages that fit a 32-bit code ([`crate::packed::PackedMessage`]),
//!   with word-parallel popcount tallies. Binary-BA protocols opt in
//!   for large-`n` throughput.
//!
//! # Semantics contract
//!
//! Every implementation must reproduce the dense mailbox's observable
//! behaviour exactly — same counting convention (a broadcast is `n - 1`
//! messages, the local self-copy is free, an explicit self-message
//! counts), same replace/merge/knock-out rules, same inbox contents in
//! the same sender order. The packed-vs-dense differential test drives
//! both planes through this whole surface and compares every observable
//! after every mutation.

use crate::arrivals::ArrivalScan;
use crate::id::NodeId;
use crate::mailbox::{Inbox, RoundMailbox};
use crate::message::{Emission, Message};

/// A per-round message store, as the engine and the delivery stage see
/// it.
///
/// `Default` must produce an empty zero-node plane (the pooling
/// placeholder); [`MessagePlane::reset`] sizes it. All methods mirror
/// the inherent [`RoundMailbox`] API — see those docs for the precise
/// semantics each implementation must reproduce.
pub trait MessagePlane<M: Message>: Default {
    /// Empties the plane and (re)sizes it for an `n`-node network,
    /// retaining allocations for pooling.
    fn reset(&mut self, n: usize);

    /// Number of nodes in the network.
    fn n(&self) -> usize;

    /// Installs `emission` as `sender`'s contribution, replacing
    /// whatever was there.
    fn set(&mut self, sender: NodeId, emission: Emission<M>);

    /// Removes `sender`'s contribution entirely.
    fn silence(&mut self, sender: NodeId);

    /// Adds a single point-to-point message, replacing an existing one
    /// for the same pair.
    fn insert(&mut self, sender: NodeId, receiver: NodeId, m: M);

    /// Inserts `m` only if the pair is vacant, handing `m` back when
    /// the link is busy.
    fn insert_if_vacant(&mut self, sender: NodeId, receiver: NodeId, m: M) -> Option<M>;

    /// Like [`MessagePlane::insert_if_vacant`], but builds the message
    /// only when the pair is actually vacant. Returns whether it was
    /// installed.
    fn insert_if_vacant_with(
        &mut self,
        sender: NodeId,
        receiver: NodeId,
        make: impl FnOnce() -> M,
    ) -> bool;

    /// Installs a broadcast that skips the receivers in `except`.
    fn set_broadcast_except(&mut self, sender: NodeId, msg: M, except: &[u32]);

    /// Layers a broadcast *under* the row's existing point-to-point
    /// messages; receivers that already hold one are appended to
    /// `conflicts`. `except` must be sorted ascending; the row must not
    /// already hold a base.
    fn merge_broadcast_except(
        &mut self,
        sender: NodeId,
        msg: M,
        except: &[u32],
        conflicts: &mut Vec<u32>,
    );

    /// Removes and returns `sender`'s *pure* broadcast message, leaving
    /// the row silent; `None` for any other row shape.
    fn take_broadcast(&mut self, sender: NodeId) -> Option<M>;

    /// Removes the single `(sender, receiver)` message, if any.
    fn knock_out(&mut self, sender: NodeId, receiver: NodeId);

    /// The row's shared broadcast base, if any — present even when
    /// receivers have been knocked out or overridden.
    fn broadcast_base(&self, sender: NodeId) -> Option<&M>;

    /// The broadcast message of `sender`, if it (purely) broadcast.
    fn broadcast_of(&self, sender: NodeId) -> Option<&M>;

    /// The message `receiver` gets from `sender` this round, by value
    /// (packed planes materialize it from the stored code).
    fn resolve_value(&self, sender: NodeId, receiver: NodeId) -> Option<M>;

    /// Whether `receiver` gets a message from `sender` this round.
    fn has_message(&self, sender: NodeId, receiver: NodeId) -> bool;

    /// Whether `sender` purely broadcast.
    fn is_broadcast(&self, sender: NodeId) -> bool;

    /// Whether `sender` sent nothing at all (to anyone, itself
    /// included).
    fn is_silent(&self, sender: NodeId) -> bool;

    /// View of all messages addressed to `receiver`.
    fn inbox(&self, receiver: NodeId) -> Inbox<'_, M>;

    /// Total point-to-point messages this round (see the counting
    /// convention in the [`crate::mailbox`] docs).
    fn message_count(&self) -> usize;

    /// Total bits on the wire this round.
    fn total_bits(&self) -> usize;

    /// The largest message crossing any single edge this round.
    fn max_edge_bits(&self) -> usize;

    /// Adds each sender's offered traffic to `scan`'s per-sender
    /// counters (this plane as the *wire* mailbox, pre-delivery).
    /// Per-sender sums must equal [`MessagePlane::message_count`] /
    /// [`MessagePlane::total_bits`] exactly.
    fn tally_offered(&self, scan: &mut ArrivalScan);

    /// Fills `scan`'s arrival bitsets and per-receiver delivered
    /// counters (this plane as the *arrivals* mailbox, post-delivery).
    /// The in-set of each receiver must reproduce
    /// [`MessagePlane::has_message`], and per-receiver counter sums
    /// must equal the plane's `message_count` / `total_bits` under the
    /// engine's counting convention.
    fn scan_arrivals(&self, scan: &mut ArrivalScan);
}

impl<M: Message> MessagePlane<M> for RoundMailbox<M> {
    fn reset(&mut self, n: usize) {
        RoundMailbox::reset(self, n);
    }

    fn n(&self) -> usize {
        RoundMailbox::n(self)
    }

    fn set(&mut self, sender: NodeId, emission: Emission<M>) {
        RoundMailbox::set(self, sender, emission);
    }

    fn silence(&mut self, sender: NodeId) {
        RoundMailbox::silence(self, sender);
    }

    fn insert(&mut self, sender: NodeId, receiver: NodeId, m: M) {
        RoundMailbox::insert(self, sender, receiver, m);
    }

    fn insert_if_vacant(&mut self, sender: NodeId, receiver: NodeId, m: M) -> Option<M> {
        RoundMailbox::insert_if_vacant(self, sender, receiver, m)
    }

    fn insert_if_vacant_with(
        &mut self,
        sender: NodeId,
        receiver: NodeId,
        make: impl FnOnce() -> M,
    ) -> bool {
        RoundMailbox::insert_if_vacant_with(self, sender, receiver, make)
    }

    fn set_broadcast_except(&mut self, sender: NodeId, msg: M, except: &[u32]) {
        RoundMailbox::set_broadcast_except(self, sender, msg, except);
    }

    fn merge_broadcast_except(
        &mut self,
        sender: NodeId,
        msg: M,
        except: &[u32],
        conflicts: &mut Vec<u32>,
    ) {
        RoundMailbox::merge_broadcast_except(self, sender, msg, except, conflicts);
    }

    fn take_broadcast(&mut self, sender: NodeId) -> Option<M> {
        RoundMailbox::take_broadcast(self, sender)
    }

    fn knock_out(&mut self, sender: NodeId, receiver: NodeId) {
        RoundMailbox::knock_out(self, sender, receiver);
    }

    fn broadcast_base(&self, sender: NodeId) -> Option<&M> {
        RoundMailbox::broadcast_base(self, sender)
    }

    fn broadcast_of(&self, sender: NodeId) -> Option<&M> {
        RoundMailbox::broadcast_of(self, sender)
    }

    fn resolve_value(&self, sender: NodeId, receiver: NodeId) -> Option<M> {
        self.resolve(sender, receiver).cloned()
    }

    fn has_message(&self, sender: NodeId, receiver: NodeId) -> bool {
        self.resolve(sender, receiver).is_some()
    }

    fn is_broadcast(&self, sender: NodeId) -> bool {
        RoundMailbox::is_broadcast(self, sender)
    }

    fn is_silent(&self, sender: NodeId) -> bool {
        RoundMailbox::is_silent(self, sender)
    }

    fn inbox(&self, receiver: NodeId) -> Inbox<'_, M> {
        RoundMailbox::inbox(self, receiver)
    }

    fn message_count(&self) -> usize {
        RoundMailbox::message_count(self)
    }

    fn total_bits(&self) -> usize {
        RoundMailbox::total_bits(self)
    }

    fn max_edge_bits(&self) -> usize {
        RoundMailbox::max_edge_bits(self)
    }

    fn tally_offered(&self, scan: &mut ArrivalScan) {
        self.tally_offered_into(scan);
    }

    fn scan_arrivals(&self, scan: &mut ArrivalScan) {
        self.scan_arrivals_into(scan);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Tm(u8);
    impl Message for Tm {
        fn bit_size(&self) -> usize {
            8
        }
    }

    /// The trait forwards to the dense mailbox without changing any
    /// observable: a quick spot check (the differential test covers the
    /// packed plane against this same surface).
    #[test]
    fn dense_plane_forwards_to_inherent_api() {
        fn drive<L: MessagePlane<Tm>>(plane: &mut L) -> (usize, usize, usize, bool) {
            plane.reset(4);
            plane.set(NodeId::new(0), Emission::Broadcast(Tm(7)));
            plane.set(
                NodeId::new(1),
                Emission::PerRecipient(vec![(NodeId::new(2), Tm(9))]),
            );
            plane.knock_out(NodeId::new(0), NodeId::new(3));
            assert_eq!(
                plane.resolve_value(NodeId::new(0), NodeId::new(1)),
                Some(Tm(7))
            );
            assert!(!plane.has_message(NodeId::new(0), NodeId::new(3)));
            assert!(plane.broadcast_base(NodeId::new(0)).is_some());
            assert!(
                plane.broadcast_of(NodeId::new(0)).is_none(),
                "knocked row is impure"
            );
            (
                plane.message_count(),
                plane.total_bits(),
                plane.max_edge_bits(),
                plane.is_silent(NodeId::new(3)),
            )
        }
        let mut mb = RoundMailbox::<Tm>::default();
        assert_eq!(drive(&mut mb), (3, 24, 8, true));
        assert_eq!(mb.inbox(NodeId::new(2)).len(), 2);
    }
}
