//! The adversary-side interface: full-information views, corruption
//! bookkeeping, and the action type.
//!
//! The model implemented here is the paper's strongest: an **adaptive,
//! rushing, full-information** Byzantine adversary (Section 1.1). Every
//! round, after honest nodes have committed their outgoing messages (and
//! thus their current-round randomness), the adversary:
//!
//! * reads the complete internal state of every node,
//! * reads all messages emitted this round (only under [`InfoModel::Rushing`];
//!   under [`InfoModel::NonRushing`] the current round's messages are
//!   hidden, matching the weaker model Chor–Coan assumed),
//! * corrupts any set of additional nodes subject to its global budget
//!   `t`, and
//! * dictates, for every corrupted node, what that node sends this round —
//!   including per-recipient equivocation. A node corrupted *this* round
//!   has its already-emitted honest message replaced.

use crate::error::SimError;
use crate::id::{NodeId, Round};
use crate::mailbox::RoundMailbox;
use crate::message::Emission;
use crate::plane::MessagePlane;
use crate::protocol::Protocol;
use rand::RngCore;

/// How much of the current round the adversary observes before acting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InfoModel {
    /// The adversary sees the current round's messages (and therefore the
    /// current round's random choices) before choosing corruptions and
    /// Byzantine messages. This is the paper's model.
    Rushing,
    /// The adversary only sees history up to the previous round; its
    /// round-`r` behaviour is committed before seeing round-`r` coin
    /// flips. This is the model of Chor–Coan (1985).
    NonRushing,
}

impl InfoModel {
    /// True for the rushing model.
    pub fn is_rushing(self) -> bool {
        matches!(self, InfoModel::Rushing)
    }
}

/// Permanent record of which nodes are corrupted and how much budget is
/// left. Enforced by the engine: corruptions are irreversible and capped.
#[derive(Debug, Clone)]
pub struct CorruptionLedger {
    budget: usize,
    corrupted: Vec<bool>,
    history: Vec<(Round, NodeId)>,
}

impl CorruptionLedger {
    /// New ledger for `n` nodes with a total budget of `t` corruptions.
    pub fn new(n: usize, t: usize) -> Self {
        CorruptionLedger {
            budget: t,
            corrupted: vec![false; n],
            history: Vec::new(),
        }
    }

    /// Total corruption budget `t`.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Corruptions performed so far.
    pub fn used(&self) -> usize {
        self.history.len()
    }

    /// Corruptions still available.
    pub fn remaining(&self) -> usize {
        self.budget - self.used()
    }

    /// Whether `node` is corrupted.
    pub fn is_corrupted(&self, node: NodeId) -> bool {
        self.corrupted[node.index()]
    }

    /// Number of currently honest nodes.
    pub fn honest_count(&self) -> usize {
        self.corrupted.iter().filter(|c| !**c).count()
    }

    /// Per-node corruption flags, indexed by node.
    pub fn flags(&self) -> &[bool] {
        &self.corrupted
    }

    /// Iterator over corrupted node IDs.
    pub fn corrupted_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.corrupted
            .iter()
            .enumerate()
            .filter(|(_, c)| **c)
            .map(|(i, _)| NodeId::new(i as u32))
    }

    /// The round-stamped corruption history, in order.
    pub fn history(&self) -> &[(Round, NodeId)] {
        &self.history
    }

    /// Marks `node` corrupted at `round`.
    ///
    /// # Errors
    ///
    /// Fails if the budget is exhausted or the node is out of range.
    /// Corrupting an already-corrupted node is a no-op.
    pub fn corrupt(&mut self, node: NodeId, round: Round) -> Result<(), SimError> {
        if node.index() >= self.corrupted.len() {
            return Err(SimError::UnknownNode {
                node,
                n: self.corrupted.len(),
            });
        }
        if self.corrupted[node.index()] {
            return Ok(());
        }
        if self.remaining() == 0 {
            return Err(SimError::BudgetExceeded {
                budget: self.budget,
                requested: self.used() + 1,
                round,
            });
        }
        self.corrupted[node.index()] = true;
        self.history.push((round, node));
        Ok(())
    }
}

/// What the adversary does in one round.
#[derive(Debug, Clone)]
pub struct AdversaryAction<M> {
    /// Nodes to corrupt *now* (before this round's delivery). Must fit in
    /// the remaining budget. Duplicates and already-corrupted entries are
    /// ignored.
    pub corruptions: Vec<NodeId>,
    /// Round emissions for corrupted nodes. Each entry fully replaces the
    /// node's message for this round. Corrupted nodes with no entry stay
    /// silent. Entries for honest nodes are rejected by the engine.
    pub sends: Vec<(NodeId, CorruptSend<M>)>,
}

/// A corrupted node's emission, as dictated by the adversary.
pub type CorruptSend<M> = Emission<M>;

impl<M> AdversaryAction<M> {
    /// The do-nothing action.
    pub fn pass() -> Self {
        AdversaryAction {
            corruptions: Vec::new(),
            sends: Vec::new(),
        }
    }

    /// Whether the action does anything at all.
    pub fn is_pass(&self) -> bool {
        self.corruptions.is_empty() && self.sends.is_empty()
    }
}

impl<M> Default for AdversaryAction<M> {
    fn default() -> Self {
        Self::pass()
    }
}

/// Everything the adversary sees before acting in a round.
///
/// `nodes` exposes the *entire* state of every node — this is the
/// full-information model; strategies for a concrete protocol type can
/// read any field its accessors expose. `outgoing` carries the messages
/// honest nodes emitted this round; it is `None` under
/// [`InfoModel::NonRushing`]. `L` is the message plane the run uses
/// (default: the dense [`RoundMailbox`]).
pub struct RoundView<'a, P: Protocol, L: MessagePlane<P::Msg> = RoundMailbox<<P as Protocol>::Msg>>
{
    /// Current round.
    pub round: Round,
    /// All protocol nodes (honest and corrupted alike), indexed by ID.
    pub nodes: &'a [P],
    /// Honest emissions of the current round (rushing model only).
    pub outgoing: Option<&'a L>,
    /// Corruption bookkeeping (who is corrupted, remaining budget).
    pub ledger: &'a CorruptionLedger,
    /// Which nodes have halted.
    pub halted: &'a [bool],
}

impl<'a, P: Protocol, L: MessagePlane<P::Msg>> RoundView<'a, P, L> {
    /// Network size.
    pub fn n(&self) -> usize {
        self.nodes.len()
    }

    /// IDs of currently honest, non-halted nodes.
    pub fn live_honest(&self) -> impl Iterator<Item = NodeId> + 'a {
        let ledger = self.ledger;
        let halted = self.halted;
        (0..self.nodes.len()).filter_map(move |i| {
            let id = NodeId::new(i as u32);
            (!ledger.is_corrupted(id) && !halted[i]).then_some(id)
        })
    }
}

/// An adversary strategy.
///
/// Implementations receive the full-information [`RoundView`] and their own
/// independent RNG stream, and return an [`AdversaryAction`]. The engine
/// validates the action (budget, no sends from honest nodes) and applies
/// it.
pub trait Adversary<P: Protocol, L: MessagePlane<P::Msg> = RoundMailbox<<P as Protocol>::Msg>> {
    /// Decide this round's corruptions and Byzantine messages.
    fn act(&mut self, view: &RoundView<'_, P, L>, rng: &mut dyn RngCore)
        -> AdversaryAction<P::Msg>;

    /// Human-readable strategy name (used in reports).
    fn name(&self) -> &'static str {
        "adversary"
    }
}

/// The adversary that corrupts nobody and sends nothing.
///
/// Useful as the fault-free baseline and for validity experiments.
#[derive(Debug, Clone, Copy, Default)]
pub struct Benign;

impl Benign {
    /// Creates the benign adversary.
    pub fn new() -> Self {
        Benign
    }
}

impl<P: Protocol, L: MessagePlane<P::Msg>> Adversary<P, L> for Benign {
    fn act(
        &mut self,
        _view: &RoundView<'_, P, L>,
        _rng: &mut dyn RngCore,
    ) -> AdversaryAction<P::Msg> {
        AdversaryAction::pass()
    }

    fn name(&self) -> &'static str {
        "benign"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_enforces_budget() {
        let mut ledger = CorruptionLedger::new(5, 2);
        assert_eq!(ledger.budget(), 2);
        assert_eq!(ledger.remaining(), 2);
        ledger.corrupt(NodeId::new(0), Round::ZERO).unwrap();
        ledger.corrupt(NodeId::new(1), Round::new(1)).unwrap();
        assert_eq!(ledger.remaining(), 0);
        let err = ledger.corrupt(NodeId::new(2), Round::new(1)).unwrap_err();
        assert!(matches!(err, SimError::BudgetExceeded { .. }));
    }

    #[test]
    fn ledger_recorruption_is_noop() {
        let mut ledger = CorruptionLedger::new(5, 1);
        ledger.corrupt(NodeId::new(3), Round::ZERO).unwrap();
        ledger.corrupt(NodeId::new(3), Round::new(7)).unwrap();
        assert_eq!(ledger.used(), 1);
        assert_eq!(ledger.history().len(), 1);
        assert!(ledger.is_corrupted(NodeId::new(3)));
    }

    #[test]
    fn ledger_rejects_unknown_nodes() {
        let mut ledger = CorruptionLedger::new(3, 3);
        let err = ledger.corrupt(NodeId::new(9), Round::ZERO).unwrap_err();
        assert!(matches!(err, SimError::UnknownNode { .. }));
    }

    #[test]
    fn ledger_tracks_honest_count_and_iter() {
        let mut ledger = CorruptionLedger::new(4, 4);
        assert_eq!(ledger.honest_count(), 4);
        ledger.corrupt(NodeId::new(1), Round::ZERO).unwrap();
        ledger.corrupt(NodeId::new(2), Round::ZERO).unwrap();
        assert_eq!(ledger.honest_count(), 2);
        let ids: Vec<_> = ledger.corrupted_nodes().map(|x| x.index()).collect();
        assert_eq!(ids, vec![1, 2]);
        assert_eq!(ledger.flags(), &[false, true, true, false]);
    }

    #[test]
    fn pass_action_is_empty() {
        let a: AdversaryAction<()> = AdversaryAction::pass();
        assert!(a.is_pass());
        let b: AdversaryAction<()> = AdversaryAction::default();
        assert!(b.is_pass());
    }

    #[test]
    fn info_model_flags() {
        assert!(InfoModel::Rushing.is_rushing());
        assert!(!InfoModel::NonRushing.is_rushing());
    }
}
