//! The instrumentation seam: a [`Probe`] observes the engine's phase
//! structure without influencing it.
//!
//! This is the third observation seam after [`crate::delivery`] and
//! [`crate::oracle`], and it follows the same static-dispatch pattern:
//! the engine is generic over a `Probe` whose default, [`NoProbe`],
//! consists of empty `#[inline]` hooks that the optimizer deletes — the
//! uninstrumented engine is bit-identical in behaviour and cost to the
//! pre-probe engine. Concrete probes (the structured event log and the
//! metrics registry of `aba-obs`) live downstream, keeping `aba-sim`
//! dependency-free.
//!
//! Probes differ from [`Oracle`](crate::oracle::Oracle)s in what they
//! see and what they are for: an oracle watches *protocol claims*
//! (agreement, budgets) through typed per-round context, while a probe
//! watches the *engine itself* — round/phase boundaries, corruptions,
//! halts — on the message-agnostic spine, so one probe type serves
//! every protocol without a generic parameter. Like oracles, probes
//! observe only: they receive no mutable access to nodes, mailboxes, or
//! RNGs, so an instrumented run's outcome is the uninstrumented one.

use crate::arrivals::ArrivalScan;
use crate::engine::{RunReport, SimConfig};
use crate::id::{NodeId, Round};
use crate::metrics::RoundMetrics;

/// The four phases of one engine round, in normative order (see the
/// [`crate::engine`] docs). A probe receives a [`Probe::phase_end`] hook
/// after each; the phase's start is the previous phase's end (or
/// [`Probe::round_start`] for [`RoundPhase::Emit`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RoundPhase {
    /// Phase 1: live honest nodes emit.
    Emit,
    /// Phase 2: the adversary acts (corruptions applied, sends placed).
    Adversary,
    /// Phase 3a: the delivery stage decides what arrives.
    Deliver,
    /// Phase 3b: live honest nodes process their inboxes.
    Receive,
}

impl RoundPhase {
    /// Stable lowercase name, used by event logs and exporters.
    pub fn name(self) -> &'static str {
        match self {
            RoundPhase::Emit => "emit",
            RoundPhase::Adversary => "adversary",
            RoundPhase::Deliver => "deliver",
            RoundPhase::Receive => "receive",
        }
    }

    /// All phases, in round order.
    pub const ALL: [RoundPhase; 4] = [
        RoundPhase::Emit,
        RoundPhase::Adversary,
        RoundPhase::Deliver,
        RoundPhase::Receive,
    ];
}

/// An engine instrumentation hook. Every method has an empty default
/// body, so a probe implements only what it observes.
///
/// Hooks fire on logical time (round and phase indices), never on the
/// wall clock: a probe that records exactly what it is handed is
/// deterministic by construction. Wall-clock *timing* probes are
/// possible (the hooks are `&mut self`, a probe may read a clock), but
/// such probes belong to the explicitly non-deterministic timing
/// channel of `aba-obs` and its lint-registered files.
pub trait Probe {
    /// Whether this probe wants the per-round [`ArrivalScan`].
    ///
    /// The scan costs O(n + deviations) per round to fill, so the
    /// engine skips it entirely — at compile time, for statically
    /// known probes — unless a probe opts in. Tuples opt in when
    /// either member does.
    const WANTS_ARRIVALS: bool = false;

    /// The run is configured and about to execute its first round.
    fn run_start(&mut self, cfg: &SimConfig) {
        let _ = cfg;
    }

    /// A round is starting.
    fn round_start(&mut self, round: Round) {
        let _ = round;
    }

    /// One of the round's phases just completed.
    fn phase_end(&mut self, round: Round, phase: RoundPhase) {
        let _ = (round, phase);
    }

    /// The adversary corrupted `node` (`total` = corruptions so far).
    fn corruption(&mut self, round: Round, node: NodeId, total: usize) {
        let _ = (round, node, total);
    }

    /// An honest node halted with `output`.
    fn halt(&mut self, round: Round, node: NodeId, output: Option<bool>) {
        let _ = (round, node, output);
    }

    /// The round's arrival relation and per-node traffic, post-delivery.
    ///
    /// Fires between [`RoundPhase::Deliver`] and the receive loop, only
    /// when [`Probe::WANTS_ARRIVALS`] is set. The scan is pooled and
    /// reused every round — copy out whatever must survive.
    fn arrivals(&mut self, round: Round, scan: &ArrivalScan) {
        let _ = (round, scan);
    }

    /// The round completed with these measurements.
    fn round_end(&mut self, round: Round, metrics: &RoundMetrics) {
        let _ = (round, metrics);
    }

    /// The run finished; `report` is final.
    fn run_end(&mut self, report: &RunReport) {
        let _ = report;
    }
}

/// The default probe: observes nothing, costs nothing. Its empty
/// inline hooks compile away entirely, so `Simulation` with `NoProbe`
/// is the uninstrumented engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoProbe;

impl Probe for NoProbe {}

/// Probes compose as tuples (mirroring [`crate::oracle::Oracle`]):
/// `(A, B)` forwards every hook to `A` then `B`, and tuples nest.
impl<A: Probe, B: Probe> Probe for (A, B) {
    const WANTS_ARRIVALS: bool = A::WANTS_ARRIVALS || B::WANTS_ARRIVALS;

    fn run_start(&mut self, cfg: &SimConfig) {
        self.0.run_start(cfg);
        self.1.run_start(cfg);
    }
    fn round_start(&mut self, round: Round) {
        self.0.round_start(round);
        self.1.round_start(round);
    }
    fn phase_end(&mut self, round: Round, phase: RoundPhase) {
        self.0.phase_end(round, phase);
        self.1.phase_end(round, phase);
    }
    fn corruption(&mut self, round: Round, node: NodeId, total: usize) {
        self.0.corruption(round, node, total);
        self.1.corruption(round, node, total);
    }
    fn halt(&mut self, round: Round, node: NodeId, output: Option<bool>) {
        self.0.halt(round, node, output);
        self.1.halt(round, node, output);
    }
    fn arrivals(&mut self, round: Round, scan: &ArrivalScan) {
        self.0.arrivals(round, scan);
        self.1.arrivals(round, scan);
    }
    fn round_end(&mut self, round: Round, metrics: &RoundMetrics) {
        self.0.round_end(round, metrics);
        self.1.round_end(round, metrics);
    }
    fn run_end(&mut self, report: &RunReport) {
        self.0.run_end(report);
        self.1.run_end(report);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Counts hook invocations — the shape every recording probe shares.
    #[derive(Debug, Default, Clone, PartialEq, Eq)]
    struct Counter {
        runs: usize,
        rounds: usize,
        phases: usize,
        ends: usize,
    }

    impl Probe for Counter {
        fn run_start(&mut self, _cfg: &SimConfig) {
            self.runs += 1;
        }
        fn round_start(&mut self, _round: Round) {
            self.rounds += 1;
        }
        fn phase_end(&mut self, _round: Round, _phase: RoundPhase) {
            self.phases += 1;
        }
        fn run_end(&mut self, _report: &RunReport) {
            self.ends += 1;
        }
    }

    #[test]
    fn tuple_composition_forwards_to_both() {
        let mut pair = (Counter::default(), Counter::default());
        pair.round_start(Round::ZERO);
        pair.phase_end(Round::ZERO, RoundPhase::Emit);
        assert_eq!(pair.0.rounds, 1);
        assert_eq!(pair.1.rounds, 1);
        assert_eq!(pair.0.phases, 1);
        assert_eq!(pair.1.phases, 1);
    }

    #[test]
    fn phase_names_are_stable_and_ordered() {
        let names: Vec<_> = RoundPhase::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names, ["emit", "adversary", "deliver", "receive"]);
        assert!(RoundPhase::Emit < RoundPhase::Receive);
    }

    #[test]
    fn no_probe_ignores_everything() {
        let mut p = NoProbe;
        p.round_start(Round::ZERO);
        p.corruption(Round::ZERO, NodeId::new(0), 1);
        p.halt(Round::ZERO, NodeId::new(0), Some(true));
        assert_eq!(p, NoProbe);
    }
}
