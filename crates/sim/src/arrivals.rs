//! Pooled per-round arrival summary handed to [`crate::probe::Probe`]s
//! that opt into happens-before recording.
//!
//! The provenance layer of `aba-obs` needs, once per round, the full
//! sender → receiver arrival relation plus per-node traffic counters —
//! but it must cost nothing when unused and never allocate per message.
//! [`ArrivalScan`] is the answer: a pooled, non-generic bundle of u64
//! bitsets that both message planes know how to fill in O(n + deviations)
//! time, mirroring the broadcast-base + deviation-cell layout of the
//! planes themselves:
//!
//! * `base_senders` — one bit per sender that contributed a broadcast
//!   base this round (every receiver gets it unless knocked out);
//! * `knocked[r]` — receiver-major rows, bit `s` set when `r` does *not*
//!   receive `s`'s base (knock-out or a per-recipient override row with
//!   a hole);
//! * `extra[r]` — receiver-major rows, bit `s` set when an explicit
//!   point-to-point message `s → r` arrives (deviation cells, including
//!   overrides of a base);
//!
//! so the arrival in-set of receiver `r` is
//! `(base_senders & !knocked[r]) | extra[r]`, and a receiver with no
//! knocked/extra words (`is_clean`) receives exactly `base_senders` —
//! the broadcast fast path that keeps online closure near-linear.
//!
//! Traffic counters follow the engine's counting convention exactly
//! (a broadcast is `n - 1` messages, the local self-copy is free, an
//! explicit self-message counts): `sent_*` is filled from the wire
//! plane before delivery (offered traffic, summing to
//! [`crate::metrics::RoundMetrics::messages`]/`bits`), `recv_*` from
//! the arrivals plane after delivery (summing to the round's delivered
//! count).

use crate::id::NodeId;

/// Number of u64 words needed for an `n`-bit set.
#[inline]
pub(crate) fn words_for(n: usize) -> usize {
    n.div_ceil(64)
}

/// Sentinel in [`ArrivalScan`]'s receiver→slot map: no row pair yet.
const NO_SLOT: u32 = u32::MAX;

/// A pooled, reusable summary of one round's arrivals and traffic.
///
/// Filled by the message planes via
/// [`MessagePlane::tally_offered`](crate::plane::MessagePlane::tally_offered)
/// and
/// [`MessagePlane::scan_arrivals`](crate::plane::MessagePlane::scan_arrivals),
/// then handed by reference to [`Probe::arrivals`](crate::probe::Probe::arrivals).
/// All storage is retained across rounds; `reset` only zeroes.
#[derive(Debug, Default, Clone)]
pub struct ArrivalScan {
    n: usize,
    words: usize,
    /// Bit `s`: sender `s` has a broadcast base on the arrivals plane.
    base_senders: Vec<u64>,
    /// Per sender: bit size of the base message (0 when none).
    base_bits: Vec<u32>,
    /// Receiver → row-pair slot in [`Self::arena`] ([`NO_SLOT`] when the
    /// receiver is clean). Knocked/extra rows used to be two dense
    /// `n × words` matrices — 1 GiB combined at n = 65 536 — allocated
    /// even when a round deviates at a handful of receivers. Rows now
    /// materialize lazily, one pair per *dirty* receiver, so the scan
    /// costs O(n + dirty·words) memory: exactly the shape of the sparse
    /// plane's traffic.
    row_slot: Vec<u32>,
    /// Dirty receivers' row pairs, in first-touch order: slot `k` holds
    /// the knocked row at `k·2·words`, the extra row `words` after it.
    arena: Vec<u64>,
    /// Shared all-zero row returned for clean receivers.
    zero_row: Vec<u64>,
    /// Bit `r`: receiver `r` has at least one knocked/extra bit (not clean).
    dirty: Vec<u64>,
    /// Per sender: messages offered on the wire this round.
    sent_msgs: Vec<u32>,
    /// Per sender: bits offered on the wire this round.
    sent_bits: Vec<u64>,
    /// Per receiver: messages delivered this round.
    recv_msgs: Vec<u32>,
    /// Per receiver: bits delivered this round.
    recv_bits: Vec<u64>,
    /// Bit `s`: sender `s` was corrupted at scan time.
    corrupted: Vec<u64>,
}

impl ArrivalScan {
    /// A fresh, empty scan (the pooling placeholder, like the planes').
    pub fn new() -> Self {
        Self::default()
    }

    /// Empties the scan and (re)sizes it for an `n`-node network,
    /// retaining allocations.
    ///
    /// When the shape is unchanged (the per-round pooled case), the
    /// `n × words` knocked/extra pools are swept per *dirty row* rather
    /// than wholesale — the dirty bitset records exactly which rows
    /// carry bits, so a clean round's reset is O(n), not O(n·words).
    pub fn reset(&mut self, n: usize) {
        let words = words_for(n);
        if self.n == n && self.words == words {
            for w in 0..words {
                let mut bits = self.dirty[w];
                while bits != 0 {
                    let r = w * 64 + bits.trailing_zeros() as usize;
                    self.row_slot[r] = NO_SLOT;
                    bits &= bits - 1;
                }
                self.dirty[w] = 0;
            }
            self.arena.clear();
            self.base_senders.fill(0);
            self.base_bits.fill(0);
            self.sent_msgs.fill(0);
            self.sent_bits.fill(0);
            self.recv_msgs.fill(0);
            self.recv_bits.fill(0);
            self.corrupted.fill(0);
            return;
        }
        self.n = n;
        self.words = words;
        resize_zero(&mut self.base_senders, words);
        resize_zero(&mut self.base_bits, n);
        self.row_slot.clear();
        self.row_slot.resize(n, NO_SLOT);
        self.arena.clear();
        resize_zero(&mut self.zero_row, words);
        resize_zero(&mut self.dirty, words);
        resize_zero(&mut self.sent_msgs, n);
        resize_zero(&mut self.sent_bits, n);
        resize_zero(&mut self.recv_msgs, n);
        resize_zero(&mut self.recv_bits, n);
        resize_zero(&mut self.corrupted, words);
    }

    /// Base arena index of receiver `r`'s row pair, materializing a
    /// zeroed pair (and marking `r` dirty) on first touch.
    #[inline]
    fn ensure_rows(&mut self, r: usize) -> usize {
        let slot = self.row_slot[r];
        if slot != NO_SLOT {
            return slot as usize * 2 * self.words;
        }
        let slot = (self.arena.len() / (2 * self.words)) as u32;
        self.row_slot[r] = slot;
        self.arena.resize(self.arena.len() + 2 * self.words, 0);
        self.dirty[r / 64] |= 1 << (r % 64);
        slot as usize * 2 * self.words
    }

    /// Number of nodes this scan was sized for.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Words per bitset row (`ceil(n / 64)`).
    #[inline]
    pub fn words(&self) -> usize {
        self.words
    }

    // --- plane-side builder API -------------------------------------

    /// Records that sender `s` contributed a broadcast base of
    /// `bits` bits.
    #[inline]
    pub fn mark_base(&mut self, s: usize, bits: u32) {
        self.base_senders[s / 64] |= 1 << (s % 64);
        self.base_bits[s] = bits;
    }

    /// Records that receiver `r` does not get `s`'s base.
    ///
    /// Callers must only mark senders that actually have a base this
    /// round (`knocked ⊆ base_senders`) — [`ArrivalScan::finish_base_recv`]
    /// subtracts the knocked bases from the per-receiver totals.
    #[inline]
    pub fn mark_knocked(&mut self, r: usize, s: usize) {
        let base = self.ensure_rows(r);
        self.arena[base + s / 64] |= 1 << (s % 64);
    }

    /// Word-granular [`ArrivalScan::mark_knocked`] (packed-plane path):
    /// ORs `bits` into word `w` of `r`'s knocked row. Same
    /// `knocked ⊆ base_senders` precondition.
    #[inline]
    pub fn or_knocked_word(&mut self, r: usize, w: usize, bits: u64) {
        if bits != 0 {
            let base = self.ensure_rows(r);
            self.arena[base + w] |= bits;
        }
    }

    /// Records an explicit point-to-point arrival `s → r`.
    #[inline]
    pub fn mark_extra(&mut self, r: usize, s: usize) {
        let base = self.ensure_rows(r);
        self.arena[base + self.words + s / 64] |= 1 << (s % 64);
    }

    /// Word-granular [`ArrivalScan::mark_extra`] (packed-plane path).
    #[inline]
    pub fn or_extra_word(&mut self, r: usize, w: usize, bits: u64) {
        if bits != 0 {
            let base = self.ensure_rows(r);
            self.arena[base + self.words + w] |= bits;
        }
    }

    /// Adds to sender `s`'s offered-traffic counters.
    #[inline]
    pub fn add_sent(&mut self, s: usize, msgs: u32, bits: u64) {
        self.sent_msgs[s] += msgs;
        self.sent_bits[s] += bits;
    }

    /// Adds to receiver `r`'s delivered-traffic counters.
    #[inline]
    pub fn add_recv(&mut self, r: usize, msgs: u32, bits: u64) {
        self.recv_msgs[r] += msgs;
        self.recv_bits[r] += bits;
    }

    /// Folds the broadcast bases into the per-receiver delivered
    /// counters, after every base/knocked mark is in: each receiver
    /// gets every un-knocked base, its own base self-copy free — the
    /// engine's counting convention. O(n + knocked bits): clean
    /// receivers use the round totals directly.
    ///
    /// Explicit arrivals are *not* folded here; planes account them
    /// per deviation cell via [`ArrivalScan::add_recv`].
    pub fn finish_base_recv(&mut self) {
        let total_msgs: u32 = self.base_senders.iter().map(|w| w.count_ones()).sum();
        let mut total_bits = 0u64;
        for (w, &word) in self.base_senders.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let s = w * 64 + bits.trailing_zeros() as usize;
                total_bits += self.base_bits[s] as u64;
                bits &= bits - 1;
            }
        }
        for r in 0..self.n {
            let mut msgs = total_msgs;
            let mut bits = total_bits;
            let mut own_in = self.base_senders[r / 64] & (1 << (r % 64)) != 0;
            if !self.is_clean(r) {
                for (w, &kw) in self.knocked_row(r).iter().enumerate() {
                    let mut k = kw;
                    while k != 0 {
                        let s = w * 64 + k.trailing_zeros() as usize;
                        msgs -= 1;
                        bits -= self.base_bits[s] as u64;
                        if s == r {
                            own_in = false;
                        }
                        k &= k - 1;
                    }
                }
            }
            if own_in {
                msgs -= 1;
                bits -= self.base_bits[r] as u64;
            }
            self.recv_msgs[r] += msgs;
            self.recv_bits[r] += bits;
        }
    }

    /// Sets the corrupted-sender bitset from the ledger's flags.
    pub fn set_corrupted(&mut self, flags: &[bool]) {
        debug_assert_eq!(flags.len(), self.n);
        for (word, chunk) in self.corrupted.iter_mut().zip(flags.chunks(64)) {
            let mut bits = 0u64;
            for (i, &f) in chunk.iter().enumerate() {
                bits |= (f as u64) << i;
            }
            *word = bits;
        }
    }

    // --- probe-side query API ---------------------------------------

    /// Bitset of senders whose broadcast base is on the arrivals plane.
    #[inline]
    pub fn base_senders(&self) -> &[u64] {
        &self.base_senders
    }

    /// Bit size of sender `s`'s base message (0 when it has none).
    #[inline]
    pub fn base_bits(&self, s: usize) -> u32 {
        self.base_bits[s]
    }

    /// Receiver `r`'s knocked row (bit `s` ⇒ no base from `s`).
    /// Clean receivers share one all-zero row.
    #[inline]
    pub fn knocked_row(&self, r: usize) -> &[u64] {
        match self.row_slot[r] {
            NO_SLOT => &self.zero_row,
            slot => {
                let base = slot as usize * 2 * self.words;
                &self.arena[base..base + self.words]
            }
        }
    }

    /// Receiver `r`'s explicit-arrival row (bit `s` ⇒ message `s → r`).
    /// Clean receivers share one all-zero row.
    #[inline]
    pub fn extra_row(&self, r: usize) -> &[u64] {
        match self.row_slot[r] {
            NO_SLOT => &self.zero_row,
            slot => {
                let base = slot as usize * 2 * self.words;
                &self.arena[base + self.words..base + 2 * self.words]
            }
        }
    }

    /// Whether `r` receives exactly the broadcast bases (no knocked or
    /// extra bits) — the fast path for online closure.
    #[inline]
    pub fn is_clean(&self, r: usize) -> bool {
        self.dirty[r / 64] & (1 << (r % 64)) == 0
    }

    /// Bit `r`: receiver `r`'s in-set deviates from the broadcast bases.
    /// All-zero means every receiver is clean — consumers can skip
    /// per-receiver [`ArrivalScan::is_clean`] probing entirely.
    #[inline]
    pub fn dirty(&self) -> &[u64] {
        &self.dirty
    }

    /// Writes receiver `r`'s arrival in-set,
    /// `(base_senders & !knocked[r]) | extra[r]`, into `out`
    /// (`out.len() == words`).
    pub fn in_set(&self, r: usize, out: &mut [u64]) {
        debug_assert_eq!(out.len(), self.words);
        let k = self.knocked_row(r);
        let e = self.extra_row(r);
        for (w, o) in out.iter_mut().enumerate() {
            *o = (self.base_senders[w] & !k[w]) | e[w];
        }
    }

    /// Calls `f(s)` for every sender in `r`'s arrival in-set, in
    /// ascending sender order.
    pub fn for_each_sender(&self, r: usize, mut f: impl FnMut(NodeId)) {
        let k = self.knocked_row(r);
        let e = self.extra_row(r);
        for w in 0..self.words {
            let mut bits = (self.base_senders[w] & !k[w]) | e[w];
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                f(NodeId::new((w * 64 + b) as u32));
                bits &= bits - 1;
            }
        }
    }

    /// Whether a message `s → r` arrives this round.
    pub fn has_message(&self, s: usize, r: usize) -> bool {
        let (w, b) = (s / 64, 1u64 << (s % 64));
        (self.base_senders[w] & !self.knocked_row(r)[w] | self.extra_row(r)[w]) & b != 0
    }

    /// Per-sender offered message counts (index = sender id).
    #[inline]
    pub fn sent_msgs(&self) -> &[u32] {
        &self.sent_msgs
    }

    /// Per-sender offered bit counts.
    #[inline]
    pub fn sent_bits(&self) -> &[u64] {
        &self.sent_bits
    }

    /// Per-receiver delivered message counts.
    #[inline]
    pub fn recv_msgs(&self) -> &[u32] {
        &self.recv_msgs
    }

    /// Per-receiver delivered bit counts.
    #[inline]
    pub fn recv_bits(&self) -> &[u64] {
        &self.recv_bits
    }

    /// Bitset of corrupted senders at scan time.
    #[inline]
    pub fn corrupted(&self) -> &[u64] {
        &self.corrupted
    }

    /// Whether node `s` was corrupted at scan time.
    #[inline]
    pub fn is_corrupted(&self, s: usize) -> bool {
        self.corrupted[s / 64] & (1 << (s % 64)) != 0
    }
}

fn resize_zero<T: Copy + Default>(v: &mut Vec<T>, len: usize) {
    v.clear();
    v.resize(len, T::default());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_set_combines_base_knocked_and_extra() {
        let mut s = ArrivalScan::new();
        s.reset(70);
        s.mark_base(0, 8);
        s.mark_base(65, 16);
        s.mark_knocked(3, 0); // 3 loses 0's base
        s.mark_extra(3, 7); // 7 -> 3 explicit
        assert!(!s.is_clean(3));
        assert!(s.is_clean(4));
        let mut got = Vec::new();
        s.for_each_sender(3, |id| got.push(id.index()));
        assert_eq!(got, vec![7, 65]);
        let mut all = Vec::new();
        s.for_each_sender(4, |id| all.push(id.index()));
        assert_eq!(all, vec![0, 65]);
        assert!(s.has_message(65, 3));
        assert!(!s.has_message(0, 3));
        assert!(s.has_message(7, 3));
        let mut buf = vec![0u64; s.words()];
        s.in_set(3, &mut buf);
        assert_eq!(buf[0], 1 << 7);
        assert_eq!(buf[1], 1 << 1);
    }

    #[test]
    fn reset_clears_everything_and_resizes() {
        let mut s = ArrivalScan::new();
        s.reset(10);
        s.mark_base(9, 4);
        s.mark_extra(1, 2);
        s.add_sent(0, 3, 24);
        s.add_recv(1, 1, 8);
        s.set_corrupted(&[
            true, false, false, false, false, false, false, false, false, false,
        ]);
        assert!(s.is_corrupted(0));
        s.reset(4);
        assert_eq!(s.n(), 4);
        assert!(s.is_clean(1));
        assert_eq!(s.sent_msgs(), &[0; 4]);
        assert_eq!(s.recv_bits(), &[0; 4]);
        assert!(!s.is_corrupted(0));
        let mut any = false;
        s.for_each_sender(0, |_| any = true);
        assert!(!any);
    }

    #[test]
    fn finish_base_recv_applies_the_counting_convention() {
        let mut s = ArrivalScan::new();
        s.reset(4);
        // Bases from 0 (8 bits) and 1 (16 bits); receiver 2 loses 0's
        // base; receiver 1 gets its own base (free self-copy).
        s.mark_base(0, 8);
        s.mark_base(1, 16);
        s.mark_knocked(2, 0);
        s.finish_base_recv();
        // r=0: own base free, 1's base counts -> (1, 16)
        assert_eq!((s.recv_msgs()[0], s.recv_bits()[0]), (1, 16));
        // r=1: 0's base counts, own free -> (1, 8)
        assert_eq!((s.recv_msgs()[1], s.recv_bits()[1]), (1, 8));
        // r=2: 0's base knocked, 1's counts -> (1, 16)
        assert_eq!((s.recv_msgs()[2], s.recv_bits()[2]), (1, 16));
        // r=3: both count -> (2, 24)
        assert_eq!((s.recv_msgs()[3], s.recv_bits()[3]), (2, 24));
    }

    #[test]
    fn finish_base_recv_handles_own_base_knocked_for_self() {
        let mut s = ArrivalScan::new();
        s.reset(2);
        s.mark_base(0, 8);
        s.mark_knocked(0, 0); // 0 loses its own (free) self-copy
        s.finish_base_recv();
        assert_eq!((s.recv_msgs()[0], s.recv_bits()[0]), (0, 0));
        assert_eq!((s.recv_msgs()[1], s.recv_bits()[1]), (1, 8));
    }

    #[test]
    fn word_granular_marks_match_bit_marks() {
        let mut a = ArrivalScan::new();
        let mut b = ArrivalScan::new();
        a.reset(70);
        b.reset(70);
        a.mark_knocked(3, 65);
        a.mark_extra(3, 2);
        b.or_knocked_word(3, 1, 1 << 1);
        b.or_extra_word(3, 0, 1 << 2);
        b.or_extra_word(5, 0, 0); // no-op: must not dirty r=5
        assert_eq!(a.knocked_row(3), b.knocked_row(3));
        assert_eq!(a.extra_row(3), b.extra_row(3));
        assert!(!b.is_clean(3));
        assert!(b.is_clean(5));
    }

    #[test]
    fn counters_accumulate() {
        let mut s = ArrivalScan::new();
        s.reset(3);
        s.add_sent(1, 2, 10);
        s.add_sent(1, 1, 5);
        s.add_recv(2, 4, 40);
        assert_eq!(s.sent_msgs()[1], 3);
        assert_eq!(s.sent_bits()[1], 15);
        assert_eq!(s.recv_msgs()[2], 4);
        assert_eq!(s.recv_bits()[2], 40);
    }
}
