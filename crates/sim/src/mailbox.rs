//! Per-round message store.
//!
//! In a complete network most traffic is broadcast, so the mailbox stores
//! one slot per sender: either a broadcast message (one clone, shared by
//! all receivers) or a per-recipient map (used by equivocating Byzantine
//! nodes). Receivers resolve their inbox lazily without allocating.

use crate::id::NodeId;
use crate::message::{Emission, Message};
use std::collections::HashMap;

/// One sender's contribution to the round.
#[derive(Debug, Clone)]
enum Slot<M> {
    Silent,
    Broadcast(M),
    PerRecipient(HashMap<u32, M>),
}

/// All messages emitted in a single round, indexed by sender.
#[derive(Debug, Clone)]
pub struct RoundMailbox<M> {
    n: usize,
    slots: Vec<Slot<M>>,
}

impl<M: Message> RoundMailbox<M> {
    /// Creates an empty mailbox for an `n`-node network.
    pub fn new(n: usize) -> Self {
        RoundMailbox {
            n,
            slots: (0..n).map(|_| Slot::Silent).collect(),
        }
    }

    /// Number of nodes in the network.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Installs `emission` as `sender`'s contribution, replacing whatever
    /// was there (used both for honest emissions and for the adversary
    /// overriding a freshly-corrupted node's message).
    ///
    /// # Panics
    ///
    /// Panics if `sender` is out of range.
    pub fn set(&mut self, sender: NodeId, emission: Emission<M>) {
        let slot = &mut self.slots[sender.index()];
        *slot = match emission {
            Emission::Silent => Slot::Silent,
            Emission::Broadcast(m) => Slot::Broadcast(m),
            Emission::PerRecipient(v) => {
                let mut map = HashMap::with_capacity(v.len());
                for (to, m) in v {
                    map.insert(to.raw(), m); // later entries override earlier
                }
                if map.is_empty() {
                    Slot::Silent
                } else {
                    Slot::PerRecipient(map)
                }
            }
        };
    }

    /// Removes `sender`'s contribution entirely.
    pub fn silence(&mut self, sender: NodeId) {
        self.slots[sender.index()] = Slot::Silent;
    }

    /// Adds a single point-to-point message, merging with whatever
    /// `sender` already has in this mailbox (the delivery stage uses this
    /// to assemble a round's arrivals one message at a time). A broadcast
    /// slot is first expanded to its per-recipient equivalent; an
    /// existing message for the same `(sender, receiver)` pair is
    /// replaced.
    ///
    /// # Panics
    ///
    /// Panics if `sender` is out of range.
    pub fn insert(&mut self, sender: NodeId, receiver: NodeId, m: M) {
        let slot = &mut self.slots[sender.index()];
        match slot {
            Slot::Silent => {
                let mut map = HashMap::with_capacity(1);
                map.insert(receiver.raw(), m);
                *slot = Slot::PerRecipient(map);
            }
            Slot::Broadcast(b) => {
                let mut map = HashMap::with_capacity(self.n);
                for r in 0..self.n as u32 {
                    map.insert(r, b.clone());
                }
                map.insert(receiver.raw(), m);
                *slot = Slot::PerRecipient(map);
            }
            Slot::PerRecipient(map) => {
                map.insert(receiver.raw(), m);
            }
        }
    }

    /// The message `receiver` gets from `sender` this round, if any.
    pub fn resolve(&self, sender: NodeId, receiver: NodeId) -> Option<&M> {
        match &self.slots[sender.index()] {
            Slot::Silent => None,
            Slot::Broadcast(m) => Some(m),
            Slot::PerRecipient(map) => map.get(&receiver.raw()),
        }
    }

    /// Whether `sender` broadcast (sent one identical message to everyone).
    pub fn is_broadcast(&self, sender: NodeId) -> bool {
        matches!(&self.slots[sender.index()], Slot::Broadcast(_))
    }

    /// Whether `sender` sent nothing at all.
    pub fn is_silent(&self, sender: NodeId) -> bool {
        matches!(&self.slots[sender.index()], Slot::Silent)
    }

    /// The broadcast message of `sender`, if it broadcast.
    pub fn broadcast_of(&self, sender: NodeId) -> Option<&M> {
        match &self.slots[sender.index()] {
            Slot::Broadcast(m) => Some(m),
            _ => None,
        }
    }

    /// Zero-allocation view of all messages addressed to `receiver`.
    pub fn inbox(&self, receiver: NodeId) -> Inbox<'_, M> {
        Inbox {
            mailbox: self,
            receiver,
        }
    }

    /// Total point-to-point messages generated this round.
    pub fn message_count(&self) -> usize {
        self.slots
            .iter()
            .map(|s| match s {
                Slot::Silent => 0,
                Slot::Broadcast(_) => self.n.saturating_sub(1),
                Slot::PerRecipient(map) => map.len(),
            })
            .sum()
    }

    /// Total bits on the wire this round.
    pub fn total_bits(&self) -> usize {
        self.slots
            .iter()
            .map(|s| match s {
                Slot::Silent => 0,
                Slot::Broadcast(m) => m.bit_size() * self.n.saturating_sub(1),
                Slot::PerRecipient(map) => map.values().map(Message::bit_size).sum(),
            })
            .sum()
    }

    /// The largest message crossing any single edge this round, in bits.
    ///
    /// Because each ordered pair of nodes exchanges at most one message per
    /// round in this engine, this *is* the per-edge-per-round bit maximum
    /// that the CONGEST model bounds.
    pub fn max_edge_bits(&self) -> usize {
        self.slots
            .iter()
            .map(|s| match s {
                Slot::Silent => 0,
                Slot::Broadcast(m) => m.bit_size(),
                Slot::PerRecipient(map) => map.values().map(Message::bit_size).max().unwrap_or(0),
            })
            .max()
            .unwrap_or(0)
    }
}

/// Lazily-resolved view of one receiver's incoming messages.
///
/// Iteration yields `(sender, &message)` in sender-ID order, one entry per
/// sender that addressed this receiver. The receiver's own broadcast is
/// included (the paper's tallies count the node's own value).
#[derive(Debug, Clone, Copy)]
pub struct Inbox<'a, M> {
    mailbox: &'a RoundMailbox<M>,
    receiver: NodeId,
}

impl<'a, M: Message> Inbox<'a, M> {
    /// The receiving node.
    pub fn receiver(&self) -> NodeId {
        self.receiver
    }

    /// Network size.
    pub fn n(&self) -> usize {
        self.mailbox.n
    }

    /// Iterates over `(sender, message)` pairs addressed to this receiver.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &'a M)> + '_ {
        let receiver = self.receiver;
        let mailbox = self.mailbox;
        (0..mailbox.n).filter_map(move |i| {
            let sender = NodeId::new(i as u32);
            mailbox.resolve(sender, receiver).map(|m| (sender, m))
        })
    }

    /// The message from a specific sender, if any.
    pub fn from(&self, sender: NodeId) -> Option<&'a M> {
        self.mailbox.resolve(sender, self.receiver)
    }

    /// Number of messages addressed to this receiver.
    pub fn len(&self) -> usize {
        self.iter().count()
    }

    /// Whether the inbox is empty.
    pub fn is_empty(&self) -> bool {
        self.iter().next().is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Tm(u8);
    impl Message for Tm {
        fn bit_size(&self) -> usize {
            8
        }
    }

    fn id(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn broadcast_reaches_everyone_including_self() {
        let mut mb = RoundMailbox::new(4);
        mb.set(id(1), Emission::Broadcast(Tm(9)));
        for r in 0..4 {
            assert_eq!(mb.resolve(id(1), id(r)), Some(&Tm(9)));
        }
        assert!(mb.is_broadcast(id(1)));
        assert_eq!(mb.broadcast_of(id(1)), Some(&Tm(9)));
    }

    #[test]
    fn silence_by_default_and_after_clear() {
        let mut mb = RoundMailbox::new(3);
        assert!(mb.is_silent(id(0)));
        mb.set(id(0), Emission::Broadcast(Tm(1)));
        assert!(!mb.is_silent(id(0)));
        mb.silence(id(0));
        assert!(mb.is_silent(id(0)));
        assert_eq!(mb.resolve(id(0), id(1)), None);
    }

    #[test]
    fn equivocation_delivers_different_messages() {
        let mut mb = RoundMailbox::new(3);
        mb.set(
            id(2),
            Emission::PerRecipient(vec![(id(0), Tm(0)), (id(1), Tm(1))]),
        );
        assert_eq!(mb.resolve(id(2), id(0)), Some(&Tm(0)));
        assert_eq!(mb.resolve(id(2), id(1)), Some(&Tm(1)));
        assert_eq!(mb.resolve(id(2), id(2)), None);
        assert!(!mb.is_broadcast(id(2)));
    }

    #[test]
    fn later_per_recipient_entries_override() {
        let mut mb = RoundMailbox::new(2);
        mb.set(
            id(0),
            Emission::PerRecipient(vec![(id(1), Tm(1)), (id(1), Tm(2))]),
        );
        assert_eq!(mb.resolve(id(0), id(1)), Some(&Tm(2)));
    }

    #[test]
    fn inbox_iterates_in_sender_order() {
        let mut mb = RoundMailbox::new(4);
        mb.set(id(3), Emission::Broadcast(Tm(3)));
        mb.set(id(1), Emission::Broadcast(Tm(1)));
        mb.set(id(2), Emission::PerRecipient(vec![(id(0), Tm(2))]));
        let inbox = mb.inbox(id(0));
        let got: Vec<_> = inbox.iter().map(|(s, m)| (s.index(), m.0)).collect();
        assert_eq!(got, vec![(1, 1), (2, 2), (3, 3)]);
        assert_eq!(inbox.len(), 3);
        assert!(!inbox.is_empty());
        assert_eq!(inbox.from(id(3)), Some(&Tm(3)));
        assert_eq!(inbox.from(id(0)), None);
    }

    #[test]
    fn counting_messages_and_bits() {
        let mut mb = RoundMailbox::new(4);
        mb.set(id(0), Emission::Broadcast(Tm(0))); // 3 msgs, 24 bits
        mb.set(
            id(1),
            Emission::PerRecipient(vec![(id(2), Tm(1)), (id(3), Tm(2))]),
        ); // 2 msgs, 16 bits
        assert_eq!(mb.message_count(), 5);
        assert_eq!(mb.total_bits(), 40);
        assert_eq!(mb.max_edge_bits(), 8);
    }

    #[test]
    fn empty_mailbox_counts_zero() {
        let mb: RoundMailbox<Tm> = RoundMailbox::new(8);
        assert_eq!(mb.message_count(), 0);
        assert_eq!(mb.total_bits(), 0);
        assert_eq!(mb.max_edge_bits(), 0);
        assert!(mb.inbox(id(5)).is_empty());
    }

    #[test]
    fn insert_merges_into_every_slot_kind() {
        let mut mb = RoundMailbox::new(3);
        // Into a silent slot.
        mb.insert(id(0), id(1), Tm(5));
        assert_eq!(mb.resolve(id(0), id(1)), Some(&Tm(5)));
        assert_eq!(mb.resolve(id(0), id(2)), None);
        // Into a per-recipient slot: same pair replaces, new pair adds.
        mb.insert(id(0), id(1), Tm(6));
        mb.insert(id(0), id(2), Tm(7));
        assert_eq!(mb.resolve(id(0), id(1)), Some(&Tm(6)));
        assert_eq!(mb.resolve(id(0), id(2)), Some(&Tm(7)));
        // Into a broadcast slot: other recipients keep the broadcast copy.
        mb.set(id(1), Emission::Broadcast(Tm(1)));
        mb.insert(id(1), id(0), Tm(9));
        assert_eq!(mb.resolve(id(1), id(0)), Some(&Tm(9)));
        assert_eq!(mb.resolve(id(1), id(1)), Some(&Tm(1)));
        assert_eq!(mb.resolve(id(1), id(2)), Some(&Tm(1)));
    }

    #[test]
    fn overriding_a_slot_replaces_it() {
        let mut mb = RoundMailbox::new(2);
        mb.set(id(0), Emission::Broadcast(Tm(1)));
        mb.set(id(0), Emission::PerRecipient(vec![(id(1), Tm(7))]));
        assert_eq!(mb.resolve(id(0), id(0)), None);
        assert_eq!(mb.resolve(id(0), id(1)), Some(&Tm(7)));
    }
}
